//! Offline shim for the subset of `bytes` used by this workspace:
//! [`BytesMut`] as a growable byte buffer and [`Bytes`] as a cheaply
//! cloneable frozen view (`Arc<Vec<u8>>` underneath).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes(Arc::new(data))
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Appends `data` to the buffer.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(Arc::new(self.0))
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut(data.to_vec())
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut(data)
    }
}

#[cfg(test)]
mod tests {
    use super::{Bytes, BytesMut};

    #[test]
    fn build_and_freeze() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&[1, 2]);
        buf.extend_from_slice(&[3]);
        let frozen: Bytes = buf.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3]);
        assert_eq!(frozen.clone().len(), 3);
    }

    #[test]
    fn from_slice_round_trips() {
        let b = BytesMut::from(&[9u8, 8][..]);
        assert_eq!(&b[..], &[9, 8]);
    }
}
