//! # tlt-model
//!
//! Language-model substrate for the TLT ("Taming the Long-Tail") reproduction.
//!
//! The original system trains 7B–70B parameter LLMs on GPU clusters. This crate
//! replaces them with two complementary pieces:
//!
//! * a **real tiny transformer** ([`TinyLm`]) with exact forward *and* backward
//!   passes, used wherever token-level behaviour matters (speculative-decoding
//!   losslessness, drafter training, acceptance-length dynamics, policy drift), and
//! * a **model-geometry catalog** ([`ModelSpec`]) carrying the true parameter/layer/
//!   KV-cache geometry of the paper's models, used by the GPU cost model in
//!   `tlt-gpusim` to estimate realistic execution times and memory footprints.
//!
//! ## Quick example
//!
//! ```
//! use tlt_model::{ModelConfig, TinyLm, SamplingParams, sample_token};
//! use rand::SeedableRng;
//!
//! let model = TinyLm::new(ModelConfig::tiny(), 0);
//! let mut cache = model.new_cache();
//! let prompt = [1u32, 2, 3];
//! let out = model.forward(&prompt, &mut cache, false);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let next = sample_token(
//!     out.logits.row(out.logits.rows() - 1),
//!     SamplingParams::greedy(),
//!     &mut rng,
//! );
//! assert!((next as usize) < model.config.vocab_size);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod autotune;
pub mod dispatch;
pub mod kl;
pub mod kv_cache;
pub mod layers;
pub mod ops;
pub mod optim;
pub mod paged_kv;
pub mod par;
pub mod sampling;
pub mod spec;
pub mod tensor;
pub mod transformer;
pub mod workspace;

pub use autotune::{autotune, load_profile, save_profile, AutotuneConfig, AutotuneReport};
pub use dispatch::{
    ColKernel, DispatchTable, DotKernel, KernelOp, RowKernel, ShapeClass, NUM_SHAPE_CLASSES,
};
pub use kl::{kl_divergence, mean_sampled_kl, KlEstimator};
pub use kv_cache::{KvCache, KvStore, LayerKvCache};
pub use layers::{DecoderLayer, DecoderLayerGrads, LayerConfig};
pub use optim::{Adam, AdamConfig};
pub use paged_kv::{
    BlockId, BlockLedger, PagedKv, PagedKvCache, PagedKvPool, PoolStats, PrefixIndex, SharedGroup,
};
pub use par::{max_workers, parallel_map};
pub use sampling::{
    argmax, probs_from_logits, probs_from_logits_into, sample_from_probs, sample_from_residual,
    sample_token, SamplingParams,
};
pub use spec::{DraftModelSpec, ModelSpec};
pub use tensor::Mat;
pub use transformer::{ForwardOutput, ModelConfig, PolicyGrads, TinyLm, TokenId, TrainableForward};
pub use workspace::{DecodeWorkspace, LayerScratch};
