//! # tlt-bench
//!
//! Benchmark harness for the TLT reproduction: shared experiment setups, a small
//! text-table reporter, and the `experiments` binary that regenerates every table and
//! figure of the paper's evaluation section (run
//! `cargo run -p tlt-bench --release --bin experiments -- all`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod report;
pub mod setups;

pub use report::Table;
