//! Round-trip suite for `tlt-trace`: recording a run, writing the trace,
//! reading it back and replaying it must reproduce the recorded run's
//! per-request completion stream **bit for bit** — for the monolithic and the
//! disaggregated frontends, over random seeds — and damaged trace files must
//! be rejected with typed errors, never panics or silently-wrong traces.

use proptest::prelude::*;
use tlt::replay_deployment;
use tlt_serve::DisaggConfig;
use tlt_trace::{
    record_disagg, record_serving, replay_disagg, replay_serving, CorpusPreset, Trace, TraceError,
};
use tlt_workload::{generate_arrivals, ArrivalConfig};

fn arrivals_for(seed: u64, rps: f64, horizon_s: f64) -> Vec<tlt_workload::RequestArrival> {
    generate_arrivals(&ArrivalConfig::constant(rps, horizon_s, seed).with_prefix(0.4, 128))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Monolithic frontend: record → encode → decode → replay equals the
    /// recorded run bit for bit, at nanosecond and at millisecond ticks.
    #[test]
    fn monolithic_record_replay_round_trips(seed in 0u64..10_000) {
        // Alternate between nanosecond (lossless) and millisecond ticks.
        let tick = if seed % 2 == 0 { 1u64 } else { 1_000_000 };
        let arrivals = arrivals_for(seed, 6.0, 15.0);
        let config = replay_deployment(2);
        let (recorded, trace) = record_serving("prop", tick, &config, &arrivals);

        let decoded = Trace::from_bytes(&trace.to_bytes()).expect("round trip");
        prop_assert_eq!(&decoded, &trace);

        let replayed = replay_serving(&decoded, &config);
        prop_assert_eq!(&replayed.completed, &recorded.completed);
        prop_assert_eq!(replayed.goodput_rps, recorded.goodput_rps);
        prop_assert_eq!(replayed.slo_attainment, recorded.slo_attainment);
        prop_assert_eq!(replayed.throughput_tokens_per_s, recorded.throughput_tokens_per_s);
    }

    /// Disaggregated frontend: the same round trip holds through the
    /// prefill/decode cluster, including the recorded SD bitstream.
    #[test]
    fn disagg_record_replay_round_trips(seed in 0u64..10_000) {
        let arrivals = arrivals_for(seed, 4.0, 10.0);
        let config = || DisaggConfig::new(replay_deployment(1), 1, 2);
        let (recorded, trace) = record_disagg("prop-disagg", 1_000, config(), &arrivals);

        let decoded = Trace::from_bytes(&trace.to_bytes()).expect("round trip");
        prop_assert_eq!(&decoded, &trace);

        let replayed = replay_disagg(&decoded, config());
        prop_assert_eq!(&replayed.serve.completed, &recorded.serve.completed);
        prop_assert_eq!(replayed.serve.goodput_rps, recorded.serve.goodput_rps);
        prop_assert_eq!(replayed.migrations, recorded.migrations);
    }
}

/// Replaying the *same decoded bytes* twice yields identical reports — the
/// bit-determinism the CI double-run `cmp` gate relies on.
#[test]
fn double_replay_is_bit_identical() {
    let trace = CorpusPreset::Chat.build();
    let a = tlt::run_replay(&trace, 2);
    let b = tlt::run_replay(&trace, 2);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.goodput_rps, b.goodput_rps);
    assert_eq!(a.slo_attainment, b.slo_attainment);
}

/// A recorded trace survives an actual filesystem round trip.
#[test]
fn file_round_trip_preserves_the_trace() {
    let arrivals = arrivals_for(7, 5.0, 10.0);
    let (_, trace) = record_serving("file-rt", 1_000, &replay_deployment(2), &arrivals);
    let path = std::env::temp_dir().join("tlt_trace_file_rt.tltr");
    let path = path.to_str().expect("utf-8 temp path");
    trace.write_file(path).expect("write");
    let read = Trace::read_file(path).expect("read");
    std::fs::remove_file(path).ok();
    assert_eq!(read, trace);
}

/// Damaged traces are rejected with typed errors.
#[test]
fn damaged_traces_are_rejected_with_typed_errors() {
    let bytes = CorpusPreset::BurstyMobile.build().to_bytes();

    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'Z';
    assert_eq!(Trace::from_bytes(&bad_magic), Err(TraceError::BadMagic));

    let mut bad_version = bytes.clone();
    bad_version[4] = 200;
    assert_eq!(
        Trace::from_bytes(&bad_version),
        Err(TraceError::UnsupportedVersion(200))
    );

    for cut in [0, 3, 10, bytes.len() / 3, bytes.len() - 1] {
        let err = Trace::from_bytes(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, TraceError::Truncated | TraceError::Corrupt { .. }),
            "cut {cut}: {err:?}"
        );
    }

    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x01;
    assert!(matches!(
        Trace::from_bytes(&corrupt),
        Err(TraceError::Corrupt { .. })
    ));

    // Reading a missing file is a typed IO error, not a panic.
    assert!(matches!(
        Trace::read_file("/nonexistent/definitely-missing.tltr"),
        Err(TraceError::Io(_))
    ));
}

/// The committed corpus meets the acceptance criterion: ≤ 8 bytes/request on
/// average, every trace within its pinned budget.
#[test]
fn corpus_meets_the_size_budget() {
    let mut total_bytes = 0usize;
    let mut total_requests = 0usize;
    for preset in CorpusPreset::all() {
        let stats = preset.build().stats();
        assert!(stats.total_bytes <= preset.size_budget_bytes());
        total_bytes += stats.total_bytes;
        total_requests += stats.requests;
    }
    assert!(total_bytes as f64 / total_requests as f64 <= 8.0);
}

/// Transforms are deterministic per seed and replayable.
#[test]
fn transformed_variants_replay_deterministically() {
    let base = CorpusPreset::Chat.build();
    let variants = [
        base.rate_scaled(2.0),
        base.storm_injected(20.0, 5.0, 50.0, 9),
        base.tenant_shuffled(9),
    ];
    for variant in &variants {
        assert!(variant.sd_accepts().is_none());
        let decoded = Trace::from_bytes(&variant.to_bytes()).expect("round trip");
        let a = tlt::run_replay(&decoded, 2);
        let b = tlt::run_replay(&decoded, 2);
        assert_eq!(a.completed, b.completed);
    }
    // Same seed, same variant — different seed, different workload.
    assert_eq!(
        base.storm_injected(20.0, 5.0, 50.0, 9),
        base.storm_injected(20.0, 5.0, 50.0, 9)
    );
    assert_ne!(
        base.storm_injected(20.0, 5.0, 50.0, 9).arrivals(),
        base.storm_injected(20.0, 5.0, 50.0, 10).arrivals()
    );
}
