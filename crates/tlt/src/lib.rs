//! # tlt
//!
//! End-to-end reproduction of **TLT** ("Taming the Long-Tail: Efficient Reasoning RL
//! Training with Adaptive Drafter", ASPLOS 2026): a system that accelerates reasoning
//! RL training losslessly by combining an adaptive (continuously spot-trained) draft
//! model with an adaptive speculative-decoding rollout engine.
//!
//! The crate composes the substrates built in the sibling crates:
//!
//! * [`tlt_obs`] — sim-time tracing, the metrics registry, and the flight
//!   recorder (re-exported here as [`obs`]),
//! * [`tlt_model`] — the tiny-transformer token-level substrate and model catalog,
//! * [`tlt_gpusim`] — the roofline GPU cost model and cluster topology,
//! * [`tlt_workload`] — long-tail workloads and verifiable reasoning tasks,
//! * [`tlt_draft`] — the adaptive drafter (model, training, DataBuffer, checkpointing),
//! * [`tlt_rollout`] — the adaptive rollout engine (speculative decoding, CUDAGraph
//!   pool, BEG-MAB tuner),
//! * [`tlt_serve`] — the online continuous-batching serving subsystem,
//! * [`tlt_rl`] — GRPO and its siblings,
//! * [`tlt_coord`] — the worker coordinator and spot-task scheduling,
//! * [`tlt_chaos`] — deterministic fault injection and the invariant harness,
//!
//! and exposes four end-to-end pipelines:
//!
//! * [`pipeline`] — timing-level simulation of the paper's full-size models on
//!   simulated GPU clusters (Figures 1/11/14, Tables 2-5),
//! * [`adaptive`] — token-level RL training of the tiny model with speculative
//!   rollouts and adaptive drafter training (Figures 12/15/16, Tables 6-8),
//! * [`serve`] — online serving under open-loop load with SLO metrics, comparing
//!   speculative-decoding policies across arrival rates,
//! * [`chaos`] — the pinned fault-injection scenario matrix with its
//!   invariant-checking harness.
//!
//! ```no_run
//! use tlt::{ExperimentConfig, SystemKind, run_experiment};
//! use tlt_gpusim::ClusterConfig;
//! use tlt_model::ModelSpec;
//!
//! let config = ExperimentConfig::paper_default(
//!     ModelSpec::qwen2_5_7b(),
//!     ClusterConfig::dgx_h100_testbed(),
//! );
//! let verl = run_experiment(SystemKind::Verl, &config);
//! let tlt = run_experiment(SystemKind::Tlt, &config);
//! println!("TLT speedup: {:.2}x", tlt.speedup_over(&verl));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod chaos;
pub mod config;
pub mod pipeline;
pub mod serve;

pub use tlt_obs as obs;

pub use adaptive::{
    run_token_experiment, DrafterAccuracyPoint, TokenExperimentConfig, TokenExperimentReport,
};
pub use chaos::{run_chaos_matrix, run_disagg_chaos_matrix};
pub use config::{ExperimentConfig, SystemKind};
pub use pipeline::{run_comparison, run_experiment, ExperimentResult, StepBreakdown};
pub use serve::{
    replay_deployment, run_disagg_comparison, run_heterogeneous_comparison,
    run_prefix_sharing_comparison, run_replay, run_replay_streamed, run_serving,
    run_serving_comparison, ServingExperimentConfig, ServingSdPolicy,
};
