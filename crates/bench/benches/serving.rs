//! Benchmarks of the online serving subsystem: one bursty-load scenario served
//! under each SD policy, plus a load-balancer comparison at a fixed rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tlt::{run_serving, ServingExperimentConfig, ServingSdPolicy};
use tlt_serve::{simulate_serving, BalancerPolicy};

fn bench_sd_policies(c: &mut Criterion) {
    let config = ServingExperimentConfig::qwen7b_bursty(2, 10.0);
    let mut group = c.benchmark_group("serving_sd_policy");
    group.sample_size(10);
    for policy in ServingSdPolicy::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| b.iter(|| run_serving(&config, policy)),
        );
    }
    group.finish();
}

fn bench_balancers(c: &mut Criterion) {
    let base = ServingExperimentConfig::qwen7b_bursty(4, 12.0);
    let arrivals = base.arrivals();
    let mut group = c.benchmark_group("serving_balancer");
    group.sample_size(10);
    for policy in BalancerPolicy::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &policy| {
                let mut config = base.clone();
                config.balancer = policy;
                let serve = config.serve_config(ServingSdPolicy::Adaptive);
                b.iter(|| simulate_serving(&serve, &arrivals))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sd_policies, bench_balancers);
criterion_main!(benches);
