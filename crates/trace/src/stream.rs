//! Chunked, constant-memory TLTR I/O.
//!
//! [`Trace::from_bytes`] materialises the whole arrival vector; at the
//! million-request scale that is exactly the O(n) buffer the replay path must
//! avoid. This module provides the streaming counterparts:
//!
//! * [`TraceWriter`] encodes arrivals one at a time into any [`Write`] sink,
//!   hashing bytes as they pass (the header carries the request count, so the
//!   count is declared up front).
//! * [`TraceReader`] decodes arrivals one at a time from any [`Read`] source
//!   through a fixed-size chunk buffer: steady-state decode performs **no
//!   heap allocation per request** (enforced by the counting-allocator
//!   harness in `tests/alloc_free_decode.rs`).
//!
//! Both sides keep the prefix back-reference window as a fixed
//! [`PREFIX_WINDOW`]-slot ring — the format bounds back-reference distances
//! to the encoder's search window, so a ring of that size decodes every
//! encoder-produced trace; a hand-crafted deeper reference is rejected with a
//! typed error. The FNV-1a checksum accumulates over every consumed byte and
//! is validated against the trailer once the final record (and any SD
//! section) has been read, so a decode that returns `Ok(None)` has fully
//! verified the stream — the same guarantee as the in-memory decoder, a few
//! kilobytes at a time. The `trace_replay` proptest suite pins streamed and
//! in-memory decode to identical request streams.
//!
//! [`Trace::from_bytes`]: crate::Trace::from_bytes
//! [`PREFIX_WINDOW`]: crate::format::PREFIX_WINDOW

use crate::format::{
    self, fnv1a_64_update, put_varint, TraceError, FLAG_SD, FNV_OFFSET_BASIS, MAGIC, MAX_SD_ACCEPT,
    PREFIX_WINDOW, VERSION,
};
use std::io::{Read, Write};
use tlt_workload::RequestArrival;

/// Default chunk-buffer capacity of a [`TraceReader`]: the whole working set
/// of a streamed decode, independent of trace length.
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// Smallest usable chunk capacity (one maximal varint plus the checksum
/// trailer must fit contiguously).
const MIN_CHUNK_BYTES: usize = 16;

fn io_err(e: std::io::Error) -> TraceError {
    TraceError::Io(e.to_string())
}

/// Fixed-size most-recent-first ring over the prefix groups seen so far —
/// the streaming replacement for the encoder/decoder's unbounded `recent`
/// vector, sized to the format's back-reference search window.
#[derive(Debug, Clone)]
struct PrefixRing {
    slots: [(u64, usize); PREFIX_WINDOW],
    filled: usize,
    head: usize,
}

impl PrefixRing {
    fn new() -> Self {
        PrefixRing {
            slots: [(0, 0); PREFIX_WINDOW],
            filled: 0,
            head: 0,
        }
    }

    fn push(&mut self, id: u64, len: usize) {
        self.slots[self.head] = (id, len);
        self.head = (self.head + 1) % PREFIX_WINDOW;
        if self.filled < PREFIX_WINDOW {
            self.filled += 1;
        }
    }

    /// The entry `distance` steps back (1 = most recent), if retained.
    fn get(&self, distance: usize) -> Option<(u64, usize)> {
        if distance == 0 || distance > self.filled {
            return None;
        }
        Some(self.slots[(self.head + PREFIX_WINDOW - distance) % PREFIX_WINDOW])
    }

    /// Most-recent match for `id`: `(distance, stored prefix length)`.
    /// Searches newest-first, exactly like the in-memory encoder's
    /// `recent.iter().rev().take(PREFIX_WINDOW)` scan.
    fn find(&self, id: u64) -> Option<(usize, usize)> {
        (1..=self.filled).find_map(|d| {
            let (rid, rlen) = self.get(d).expect("within filled");
            (rid == id).then_some((d, rlen))
        })
    }

    fn retained(&self) -> usize {
        self.filled
    }
}

/// Incremental TLTR encoder over any [`Write`] sink.
///
/// The request count is part of the header, so it is declared at
/// construction; [`TraceWriter::finish`] fails if the pushed count differs.
/// Streamed traces are workload-only (no SD section), like every corpus
/// trace and transform output. For canonical (time-sorted, tick-aligned)
/// arrivals the output is byte-identical to
/// [`Trace::from_arrivals`](crate::Trace::from_arrivals) +
/// [`Trace::to_bytes`](crate::Trace::to_bytes).
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    hash: u64,
    tick_ns: u64,
    declared: u64,
    written: u64,
    prev_ticks: u64,
    window: PrefixRing,
    /// Per-record scratch, reused across pushes.
    buf: Vec<u8>,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the TLTR header for a trace of exactly `request_count`
    /// requests and returns the writer.
    ///
    /// # Panics
    ///
    /// Panics if `tick_ns` is 0 or the name exceeds 255 bytes (the same
    /// contract as [`Trace::from_arrivals`](crate::Trace::from_arrivals)).
    pub fn new(
        mut sink: W,
        name: &str,
        tick_ns: u64,
        request_count: u64,
    ) -> Result<Self, TraceError> {
        assert!(tick_ns >= 1, "trace tick must be at least 1 ns");
        assert!(name.len() <= 255, "trace name must fit in 255 bytes");
        let mut header = Vec::with_capacity(16 + name.len());
        header.extend_from_slice(&MAGIC);
        header.push(VERSION);
        header.push(0);
        header.push(name.len() as u8);
        header.extend_from_slice(name.as_bytes());
        put_varint(&mut header, tick_ns);
        put_varint(&mut header, request_count);
        sink.write_all(&header).map_err(io_err)?;
        Ok(TraceWriter {
            sink,
            hash: fnv1a_64_update(FNV_OFFSET_BASIS, &header),
            tick_ns,
            declared: request_count,
            written: 0,
            prev_ticks: 0,
            window: PrefixRing::new(),
            buf: Vec::with_capacity(64),
        })
    }

    /// Requests pushed so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Encodes one arrival. Ids are implicit (push order); times must be
    /// non-decreasing in ticks.
    pub fn push(&mut self, a: &RequestArrival) -> Result<(), TraceError> {
        if self.written == self.declared {
            return Err(TraceError::Malformed("more requests than declared"));
        }
        let ticks = a.time_ns / self.tick_ns;
        if ticks < self.prev_ticks {
            return Err(TraceError::Malformed(
                "streamed arrivals must be time-sorted",
            ));
        }
        self.buf.clear();
        put_varint(&mut self.buf, ticks - self.prev_ticks);
        self.prev_ticks = ticks;
        put_varint(&mut self.buf, a.prompt_len as u64);
        put_varint(&mut self.buf, a.output_len as u64);
        if a.prefix_id == 0 {
            put_varint(&mut self.buf, 0);
        } else {
            match self.window.find(a.prefix_id) {
                Some((distance, prev_len)) => {
                    put_varint(&mut self.buf, 1 + distance as u64);
                    put_varint(
                        &mut self.buf,
                        format::zigzag(a.prefix_len as i64 - prev_len as i64),
                    );
                }
                None => {
                    put_varint(&mut self.buf, 1);
                    put_varint(&mut self.buf, a.prefix_id);
                    put_varint(&mut self.buf, a.prefix_len as u64);
                }
            }
            self.window.push(a.prefix_id, a.prefix_len);
        }
        self.hash = fnv1a_64_update(self.hash, &self.buf);
        self.sink.write_all(&self.buf).map_err(io_err)?;
        self.written += 1;
        Ok(())
    }

    /// Writes the checksum trailer, flushes the sink and returns the
    /// checksum. Fails if fewer requests were pushed than declared.
    pub fn finish(mut self) -> Result<u64, TraceError> {
        if self.written != self.declared {
            return Err(TraceError::Malformed("fewer requests than declared"));
        }
        let checksum = self.hash;
        self.sink
            .write_all(&checksum.to_le_bytes())
            .map_err(io_err)?;
        self.sink.flush().map_err(io_err)?;
        Ok(checksum)
    }
}

/// Incremental TLTR decoder over any [`Read`] source through a fixed-size
/// chunk buffer (see the module docs for the memory and validation
/// guarantees).
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    source: R,
    /// Fixed-capacity chunk buffer; never grows after construction.
    buf: Vec<u8>,
    start: usize,
    end: usize,
    source_eof: bool,
    /// Running FNV over every consumed payload byte (trailer excluded).
    hash: u64,
    name: String,
    tick_ns: u64,
    count: u64,
    has_sd: bool,
    emitted: u64,
    ticks: u64,
    window: PrefixRing,
    finished: bool,
}

impl<R: Read> TraceReader<R> {
    /// Parses the TLTR header from `source` with the default chunk buffer.
    pub fn open(source: R) -> Result<Self, TraceError> {
        TraceReader::open_with_capacity(source, DEFAULT_CHUNK_BYTES)
    }

    /// Like [`TraceReader::open`] with an explicit chunk-buffer capacity
    /// (clamped to a small minimum). Tiny capacities force records and
    /// back-references to straddle refills — the equivalence proptests use
    /// this to stress the chunk boundaries.
    pub fn open_with_capacity(source: R, capacity: usize) -> Result<Self, TraceError> {
        let mut reader = TraceReader {
            source,
            buf: vec![0u8; capacity.max(MIN_CHUNK_BYTES)],
            start: 0,
            end: 0,
            source_eof: false,
            hash: FNV_OFFSET_BASIS,
            name: String::new(),
            tick_ns: 0,
            count: 0,
            has_sd: false,
            emitted: 0,
            ticks: 0,
            window: PrefixRing::new(),
            finished: false,
        };
        reader.read_header()?;
        Ok(reader)
    }

    /// Opens `path` for streamed decoding (the reader's chunk buffer does its
    /// own batching, so the file needs no extra buffering layer).
    pub fn open_file(path: &str) -> Result<TraceReader<std::fs::File>, TraceError> {
        let file = std::fs::File::open(path).map_err(io_err)?;
        TraceReader::open(file)
    }

    /// The workload name from the header.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Time quantum of the trace in nanoseconds.
    pub fn tick_ns(&self) -> u64 {
        self.tick_ns
    }

    /// Requests the header declares.
    pub fn request_count(&self) -> u64 {
        self.count
    }

    /// Whether the trace carries an SD accept-stream section (validated and
    /// skipped at the end of the stream; streamed replay is workload-only).
    pub fn has_sd(&self) -> bool {
        self.has_sd
    }

    /// Requests decoded so far.
    pub fn decoded(&self) -> u64 {
        self.emitted
    }

    /// Decodes the next arrival. After the last one, the SD section (if any)
    /// and the checksum trailer are consumed and validated, so `Ok(None)`
    /// means the whole stream verified clean; every subsequent call returns
    /// `Ok(None)` again.
    pub fn next_arrival(&mut self) -> Result<Option<RequestArrival>, TraceError> {
        if self.finished {
            return Ok(None);
        }
        if self.emitted == self.count {
            self.finish_tail()?;
            self.finished = true;
            return Ok(None);
        }
        let delta = self.get_varint()?;
        self.ticks = self
            .ticks
            .checked_add(delta)
            .ok_or(TraceError::Malformed("arrival tick overflows"))?;
        let time_ns = self
            .ticks
            .checked_mul(self.tick_ns)
            .ok_or(TraceError::Malformed("arrival time overflows"))?;
        let prompt_len = self.get_varint()? as usize;
        let output_len = self.get_varint()? as usize;
        let tag = self.get_varint()?;
        let (prefix_id, prefix_len) = match tag {
            0 => (0, 0),
            1 => {
                let prefix_id = self.get_varint()?;
                if prefix_id == 0 {
                    return Err(TraceError::Malformed("new prefix group with id 0"));
                }
                let prefix_len = self.get_varint()? as usize;
                (prefix_id, prefix_len)
            }
            back => {
                let distance = (back - 1) as usize;
                if distance > PREFIX_WINDOW {
                    // The encoder never refers beyond its search window, so
                    // this only fires on hand-crafted traces the bounded ring
                    // cannot resolve.
                    return Err(TraceError::Malformed(
                        "prefix back-reference beyond the streaming window",
                    ));
                }
                if distance > self.window.retained() {
                    return Err(TraceError::Malformed("prefix back-reference out of range"));
                }
                let (prefix_id, prev_len) = self.window.get(distance).expect("checked");
                let delta = format::unzigzag(self.get_varint()?);
                let prefix_len = prev_len as i64 + delta;
                if prefix_len < 0 {
                    return Err(TraceError::Malformed("negative prefix length"));
                }
                (prefix_id, prefix_len as usize)
            }
        };
        if prefix_id != 0 {
            self.window.push(prefix_id, prefix_len);
        }
        let arrival = RequestArrival {
            id: self.emitted,
            time_ns,
            prompt_len,
            output_len,
            prefix_id,
            prefix_len,
        };
        self.emitted += 1;
        Ok(Some(arrival))
    }

    fn read_header(&mut self) -> Result<(), TraceError> {
        let mut magic = [0u8; 4];
        for b in &mut magic {
            *b = self.take_u8()?;
        }
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = self.take_u8()?;
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let flags = self.take_u8()?;
        if flags & !FLAG_SD != 0 {
            return Err(TraceError::Malformed("unknown flag bits set"));
        }
        self.has_sd = flags & FLAG_SD != 0;
        let name_len = self.take_u8()? as usize;
        let mut name_bytes = [0u8; 255];
        for b in name_bytes.iter_mut().take(name_len) {
            *b = self.take_u8()?;
        }
        self.name = std::str::from_utf8(&name_bytes[..name_len])
            .map_err(|_| TraceError::Malformed("trace name is not UTF-8"))?
            .to_string();
        self.tick_ns = self.get_varint()?;
        if self.tick_ns == 0 {
            return Err(TraceError::Malformed("tick must be non-zero"));
        }
        self.count = self.get_varint()?;
        Ok(())
    }

    /// Consumes and validates the SD section (if any) and the checksum
    /// trailer; anything after the trailer is an error, as in-memory.
    fn finish_tail(&mut self) -> Result<(), TraceError> {
        if self.has_sd {
            let steps = self.get_varint()?;
            let mut current = 0u8;
            let mut bit = 8u8;
            for _ in 0..steps {
                let mut run = 0u64;
                loop {
                    if bit == 8 {
                        current = self.take_u8()?;
                        bit = 0;
                    }
                    let one = (current >> (7 - bit)) & 1 == 1;
                    bit += 1;
                    if !one {
                        break;
                    }
                    run += 1;
                    if run > u64::from(MAX_SD_ACCEPT) {
                        return Err(TraceError::Malformed("SD accept run exceeds the cap"));
                    }
                }
                if run == 0 {
                    return Err(TraceError::Malformed("SD step with zero accepted tokens"));
                }
            }
        }
        let expected = self.hash;
        self.ensure(8)?;
        let actual = u64::from_le_bytes(
            self.buf[self.start..self.start + 8]
                .try_into()
                .expect("8 bytes"),
        );
        self.start += 8; // the trailer is not part of its own hash
        if !self.at_eof()? {
            return Err(TraceError::Malformed("trailing bytes after checksum"));
        }
        if expected != actual {
            return Err(TraceError::Corrupt { expected, actual });
        }
        Ok(())
    }

    /// Makes `n` contiguous unconsumed bytes available at `self.start`,
    /// shifting the tail to the buffer front and refilling from the source.
    /// Never allocates: the chunk buffer's capacity is fixed at open.
    fn ensure(&mut self, n: usize) -> Result<(), TraceError> {
        debug_assert!(n <= self.buf.len(), "record field exceeds chunk capacity");
        while self.end - self.start < n {
            if self.start > 0 {
                self.buf.copy_within(self.start..self.end, 0);
                self.end -= self.start;
                self.start = 0;
            }
            if self.source_eof {
                return Err(TraceError::Truncated);
            }
            let read = self
                .source
                .read(&mut self.buf[self.end..])
                .map_err(io_err)?;
            if read == 0 {
                self.source_eof = true;
            }
            self.end += read;
        }
        Ok(())
    }

    /// Whether the source is exhausted (refills once if the buffer is empty).
    fn at_eof(&mut self) -> Result<bool, TraceError> {
        if self.start < self.end {
            return Ok(false);
        }
        if self.source_eof {
            return Ok(true);
        }
        self.start = 0;
        self.end = self.source.read(&mut self.buf).map_err(io_err)?;
        if self.end == 0 {
            self.source_eof = true;
        }
        Ok(self.end == 0)
    }

    fn take_u8(&mut self) -> Result<u8, TraceError> {
        self.ensure(1)?;
        let b = self.buf[self.start];
        self.start += 1;
        self.hash = fnv1a_64_update(self.hash, &[b]);
        Ok(b)
    }

    fn get_varint(&mut self) -> Result<u64, TraceError> {
        let mut value = 0u64;
        for shift in 0..10 {
            let byte = self.take_u8()?;
            if shift == 9 && byte > 1 {
                return Err(TraceError::Malformed("varint overflows 64 bits"));
            }
            value |= u64::from(byte & 0x7f) << (7 * shift);
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(TraceError::Malformed("varint longer than 10 bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::Trace;
    use tlt_workload::{generate_arrivals, ArrivalConfig};

    fn sample(prefix: bool) -> Trace {
        let mut config = ArrivalConfig::constant(20.0, 30.0, 42);
        if prefix {
            config = config.with_prefix(0.6, 128);
        }
        Trace::from_arrivals("sample", 1_000, &generate_arrivals(&config))
    }

    fn read_all(bytes: &[u8], capacity: usize) -> Result<Vec<RequestArrival>, TraceError> {
        let mut reader = TraceReader::open_with_capacity(bytes, capacity)?;
        let mut out = Vec::new();
        while let Some(a) = reader.next_arrival()? {
            out.push(a);
        }
        Ok(out)
    }

    #[test]
    fn writer_matches_in_memory_encoder_byte_for_byte() {
        let trace = sample(true);
        let mut out = Vec::new();
        let mut writer = TraceWriter::new(
            &mut out,
            trace.name(),
            trace.tick_ns(),
            trace.arrivals().len() as u64,
        )
        .unwrap();
        for a in trace.arrivals() {
            writer.push(a).unwrap();
        }
        let checksum = writer.finish().unwrap();
        assert_eq!(out, trace.to_bytes());
        let stored = u64::from_le_bytes(out[out.len() - 8..].try_into().unwrap());
        assert_eq!(checksum, stored);
    }

    #[test]
    fn reader_matches_in_memory_decoder_at_any_chunk_size() {
        let trace = sample(true).with_sd_accepts(vec![2, 63, 1, 4]);
        let bytes = trace.to_bytes();
        for capacity in [0, 16, 17, 61, 4096] {
            let mut reader = TraceReader::open_with_capacity(&bytes[..], capacity).unwrap();
            assert_eq!(reader.name(), trace.name());
            assert_eq!(reader.tick_ns(), trace.tick_ns());
            assert_eq!(reader.request_count() as usize, trace.arrivals().len());
            assert!(reader.has_sd());
            let mut out = Vec::new();
            while let Some(a) = reader.next_arrival().unwrap() {
                out.push(a);
            }
            assert_eq!(out, trace.arrivals(), "capacity {capacity}");
            assert_eq!(reader.decoded() as usize, out.len());
            // Idempotent at the end.
            assert_eq!(reader.next_arrival().unwrap(), None);
        }
    }

    #[test]
    fn writer_enforces_the_declared_count_and_time_order() {
        let trace = sample(false);
        let mut out = Vec::new();
        let mut writer = TraceWriter::new(&mut out, "t", 1_000, 1).unwrap();
        writer.push(&trace.arrivals()[0]).unwrap();
        assert_eq!(
            writer.push(&trace.arrivals()[1]),
            Err(TraceError::Malformed("more requests than declared"))
        );

        let mut out = Vec::new();
        let writer = TraceWriter::new(&mut out, "t", 1_000, 5).unwrap();
        assert_eq!(
            writer.finish(),
            Err(TraceError::Malformed("fewer requests than declared"))
        );

        let mut out = Vec::new();
        let mut writer = TraceWriter::new(&mut out, "t", 1_000, 2).unwrap();
        writer.push(&trace.arrivals()[5]).unwrap();
        assert_eq!(
            writer.push(&trace.arrivals()[0]),
            Err(TraceError::Malformed(
                "streamed arrivals must be time-sorted"
            ))
        );
    }

    #[test]
    fn streamed_errors_mirror_the_in_memory_decoder() {
        let bytes = sample(true).to_bytes();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(read_all(&bad, 64), Err(TraceError::BadMagic));
        // Unsupported version.
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert_eq!(read_all(&bad, 64), Err(TraceError::UnsupportedVersion(9)));
        // Truncations.
        for cut in [2, 12, bytes.len() / 2, bytes.len() - 1] {
            let err = read_all(&bytes[..cut], 64).unwrap_err();
            assert!(
                matches!(err, TraceError::Truncated | TraceError::Corrupt { .. }),
                "cut {cut}: {err:?}"
            );
        }
        // Checksum flip.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(matches!(
            read_all(&bad, 64),
            Err(TraceError::Corrupt { .. })
        ));
        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.push(0);
        assert_eq!(
            read_all(&bad, 64),
            Err(TraceError::Malformed("trailing bytes after checksum"))
        );
    }

    #[test]
    fn empty_trace_streams_round_trip() {
        let trace = Trace::from_arrivals("empty", 1, &[]);
        let bytes = trace.to_bytes();
        assert_eq!(read_all(&bytes, 16).unwrap(), Vec::new());
        let mut out = Vec::new();
        TraceWriter::new(&mut out, "empty", 1, 0)
            .unwrap()
            .finish()
            .unwrap();
        assert_eq!(out, bytes);
    }

    #[test]
    fn prefix_ring_matches_the_unbounded_window_semantics() {
        let mut ring = PrefixRing::new();
        assert_eq!(ring.find(1), None);
        for i in 1..=(PREFIX_WINDOW as u64 + 5) {
            ring.push(i, i as usize * 10);
        }
        // Most recent entry is at distance 1.
        assert_eq!(
            ring.get(1),
            Some((PREFIX_WINDOW as u64 + 5, (PREFIX_WINDOW + 5) * 10))
        );
        // The oldest retained entry is exactly PREFIX_WINDOW back.
        assert_eq!(ring.get(PREFIX_WINDOW), Some((6, 60)));
        assert_eq!(ring.get(PREFIX_WINDOW + 1), None);
        // Ids 1..=5 fell out of the window.
        assert_eq!(ring.find(5), None);
        assert_eq!(ring.find(6), Some((PREFIX_WINDOW, 60)));
    }
}
