//! # tlt-rl
//!
//! Reasoning-RL algorithms for the TLT reproduction: GRPO (the paper's primary
//! algorithm) plus the RLOO / REINFORCE / REINFORCE++ variants it states are equally
//! compatible with the adaptive drafter, a rollout-engine-agnostic policy trainer
//! with KL regularisation toward a frozen reference model, and group-based advantage
//! estimation over rule-based rewards.
//!
//! ```
//! use tlt_rl::{compute_advantages, RlAlgorithm};
//!
//! let groups = vec![vec![1.0, 0.0, 1.0, 0.0]];
//! let adv = compute_advantages(RlAlgorithm::Grpo, &groups);
//! assert!(adv[0][0] > 0.0 && adv[0][1] < 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod advantage;
pub mod trainer;

pub use advantage::{compute_advantages, RlAlgorithm};
pub use trainer::{PolicyTrainer, RlConfig, RolloutGroup, StepMetrics};
