//! # tlt-rollout
//!
//! The Adaptive Rollout Engine of the TLT reproduction (§5 of the paper).
//!
//! Two execution levels are provided:
//!
//! * **Token level** ([`spec`]) — real speculative decoding against the tiny
//!   transformer with lossless rejection-sampling verification, used to demonstrate
//!   losslessness and measure acceptance behaviour.
//! * **Timing level** ([`sim_engine`]) — a continuous-batching rollout simulation of
//!   the paper's full-size models driven by the roofline cost model and the drafter
//!   acceptance profiles, used to regenerate the throughput tables and figures.
//!
//! Shared infrastructure: the model-free n-gram drafter ([`ngram`]), the CUDAGraph
//! capture planner ([`cudagraph`]), the BEG-MAB tuner ([`mab`]) and the Adaptive SD
//! Manager ([`manager`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cudagraph;
pub mod mab;
pub mod manager;
pub mod ngram;
pub mod sim_engine;
pub mod spec;

pub use cudagraph::{default_batch_buckets, CaptureMode, CapturedGraph, CudaGraphPool};
pub use mab::{BegMabConfig, BegMabSelector, StepObservation};
pub use manager::{AdaptiveSdManager, DrafterChoice, SdDecision, SdManagerConfig};
pub use ngram::{NgramConfig, NgramDrafter};
pub use sim_engine::{
    fixed_batch_speedup, simulate_rollout, simulate_rollout_batch, single_request_throughput,
    RolloutProfile, SdMode, SimRolloutConfig, TimelinePoint,
};
pub use spec::{
    batch_seed, generate_batch, generate_group, measure_acceptance, speculative_generate,
    speculative_generate_with_swap, vanilla_generate, GenerationResult, SdStrategy, SpecDrafter,
};
