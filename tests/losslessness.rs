//! Property-based losslessness tests: the core guarantee of the paper is that
//! speculative decoding never changes the output distribution of the target model.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tlt_draft::{DraftModel, FeatureSource};
use tlt_model::{ModelConfig, SamplingParams, TinyLm};
use tlt_rollout::{
    speculative_generate, speculative_generate_with_swap, vanilla_generate, NgramConfig,
    NgramDrafter, SdStrategy, SpecDrafter,
};
use tlt_workload::TaskGenerator;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Greedy speculative decoding with a learned drafter emits exactly the vanilla
    /// sequence for arbitrary prompts, drafter seeds and draft depths.
    #[test]
    fn greedy_speculative_equals_vanilla(
        prompt in proptest::collection::vec(0u32..32, 1..6),
        drafter_seed in 0u64..50,
        depth in 1usize..8,
        max_new in 1usize..40,
    ) {
        let target = TinyLm::new(ModelConfig::micro(), 1234);
        let drafter = DraftModel::new(&target, FeatureSource::LastLayer, drafter_seed);
        let params = SamplingParams::greedy();
        let mut rng = StdRng::seed_from_u64(0);
        let vanilla = vanilla_generate(&target, &prompt, max_new, params, None, &mut rng);
        let mut rng = StdRng::seed_from_u64(1);
        let strategy = SdStrategy { draft_depth: depth, top_k: 1, tokens_to_verify: depth };
        let spec = speculative_generate(
            &target,
            &SpecDrafter::Learned(&drafter),
            &prompt,
            max_new,
            strategy,
            params,
            None,
            &mut rng,
        );
        prop_assert_eq!(spec.tokens, vanilla.tokens);
    }

    /// The same holds for the model-free n-gram drafter, whatever it has observed.
    #[test]
    fn greedy_model_free_equals_vanilla(
        prompt in proptest::collection::vec(0u32..32, 2..6),
        observed in proptest::collection::vec(0u32..32, 8..64),
        max_new in 1usize..32,
    ) {
        let target = TinyLm::new(ModelConfig::micro(), 999);
        let mut ngram = NgramDrafter::new(NgramConfig::default());
        ngram.observe(&observed);
        let params = SamplingParams::greedy();
        let mut rng = StdRng::seed_from_u64(0);
        let vanilla = vanilla_generate(&target, &prompt, max_new, params, None, &mut rng);
        let mut rng = StdRng::seed_from_u64(1);
        let spec = speculative_generate(
            &target,
            &SpecDrafter::ModelFree(&ngram),
            &prompt,
            max_new,
            SdStrategy::default(),
            params,
            None,
            &mut rng,
        );
        prop_assert_eq!(spec.tokens, vanilla.tokens);
    }

    /// Swapping the drafter mid-generation — the chaos harness's checkpoint
    /// adoption / last-good fallback path — never changes a single output token
    /// under greedy decoding, for arbitrary prompts, drafter pairs and swap
    /// points.
    #[test]
    fn greedy_speculative_equals_vanilla_across_a_mid_run_drafter_swap(
        prompt in proptest::collection::vec(0u32..32, 1..6),
        seed_a in 0u64..40,
        seed_b in 40u64..80,
        swap_after in 1usize..5,
        max_new in 8usize..40,
    ) {
        let target = TinyLm::new(ModelConfig::micro(), 1234);
        let drafter_a = DraftModel::new(&target, FeatureSource::LastLayer, seed_a);
        let drafter_b = DraftModel::new(&target, FeatureSource::LastLayer, seed_b);
        let params = SamplingParams::greedy();
        let mut rng = StdRng::seed_from_u64(0);
        let vanilla = vanilla_generate(&target, &prompt, max_new, params, None, &mut rng);
        let spec_a = SpecDrafter::Learned(&drafter_a);
        let spec_b = SpecDrafter::Learned(&drafter_b);
        let mut rng = StdRng::seed_from_u64(1);
        let swapped = speculative_generate_with_swap(
            &target,
            &[(swap_after, &spec_a), (usize::MAX, &spec_b)],
            &prompt,
            max_new,
            SdStrategy { draft_depth: 4, top_k: 1, tokens_to_verify: 4 },
            params,
            None,
            &mut rng,
        );
        prop_assert_eq!(swapped.tokens, vanilla.tokens);
    }

    /// Rewards computed on speculative rollouts equal rewards computed on vanilla
    /// rollouts under greedy decoding: RL sees exactly the same learning signal.
    #[test]
    fn rewards_identical_under_greedy_rollouts(task_seed in 0u64..100) {
        let target = TinyLm::new(ModelConfig::micro(), 77);
        let drafter = DraftModel::new(&target, FeatureSource::LastLayer, 7);
        let mut task_gen = TaskGenerator::new(target.config.vocab_size);
        let mut task_rng = StdRng::seed_from_u64(task_seed);
        let task = task_gen.generate(&mut task_rng);
        let prompt = task.prompt_tokens();
        let params = SamplingParams::greedy();
        let mut rng = StdRng::seed_from_u64(0);
        let vanilla = vanilla_generate(&target, &prompt, 24, params, Some(task.vocab.eos()), &mut rng);
        let mut rng = StdRng::seed_from_u64(1);
        let spec = speculative_generate(
            &target,
            &SpecDrafter::Learned(&drafter),
            &prompt,
            24,
            SdStrategy { draft_depth: 4, top_k: 1, tokens_to_verify: 4 },
            params,
            Some(task.vocab.eos()),
            &mut rng,
        );
        prop_assert_eq!(task.reward(&vanilla.tokens), task.reward(&spec.tokens));
    }
}
