//! JSON document builder — re-exported from [`tlt_obs::json`].
//!
//! The builder moved to `tlt-obs` so the workspace has exactly one JSON
//! emitter: bench reports and the Chrome trace exporter render through the
//! same deterministic value tree. This module keeps the historical
//! `tlt_bench::json::JsonValue` path working.

pub use tlt_obs::json::JsonValue;
