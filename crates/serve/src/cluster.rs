//! Disaggregated prefill/decode serving cluster.
//!
//! [`ClusterSim`] splits the deployment into a **prefill pool** and a **decode
//! pool** joined by a serial KV [`TransferLink`]. A request's lifecycle:
//!
//! 1. The frontend routes the arrival to a prefill replica by **prefix-cache
//!    affinity** — the replica whose resident prefix cache holds the most
//!    blocks of the request's prefix wins; without a hit, least outstanding
//!    prefill tokens — so shared-prefix traffic concentrates where its KV
//!    already lives.
//! 2. The prefill replica runs the (possibly prefix-cached) prefill and hands
//!    the sequence off as a [`MigratedEntry`]: a block-table handoff whose
//!    private blocks stay charged on the source as an *outbound* migration.
//! 3. The handoff is dispatched FIFO to the decode replica with the least
//!    outstanding decode work that can reserve the sequence's blocks
//!    (*inbound* charge), and the KV crosses the link at its configured
//!    bandwidth + latency, costed from block count × block bytes.
//! 4. On landing, the decode replica merges the sequence into its batch with
//!    **zero recompute** and streams tokens to completion.
//!
//! A reactive autoscaler (optional) ticks on a fixed interval and grows or
//! drains either pool one replica at a time against queue-depth / outstanding-
//! token signals, with drain-before-retire semantics: a draining replica takes
//! no new work and leaves the pool only when it is completely empty and no
//! in-flight migration references it.
//!
//! Everything — routing, dispatch, autoscaling, transfer timing — is a pure
//! function of the configuration and seed, so cluster runs are bit-identical
//! per seed (the chaos harness double-runs and compares flight-recorder event
//! streams).

use crate::balancer::{BalancerPolicy, LoadBalancer};
use crate::config::ServeConfig;
use crate::events::{DriveOutcome, EventCore, EventKey, EventQueue};
use crate::metrics::ServeReport;
use crate::replica::{FailoverRequest, MigratedEntry, Replica};
use crate::request::ServeRequest;
use crate::transfer::{TransferLink, TransferLinkConfig};
use serde::Serialize;
use std::collections::VecDeque;
use tlt_obs::{hooks, record, EventKind, ObsEvent, Track, NO_REQ};

/// Reactive autoscaler parameters. Signals are per-*active*-replica averages
/// sampled at each tick; one scaling action per pool per tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AutoscaleConfig {
    /// Seconds between autoscaler decisions.
    pub interval_s: f64,
    /// Prefill-pool size bounds.
    pub min_prefill: usize,
    /// Upper bound on prefill replicas.
    pub max_prefill: usize,
    /// Decode-pool size bounds.
    pub min_decode: usize,
    /// Upper bound on decode replicas.
    pub max_decode: usize,
    /// Scale the prefill pool up when mean queued requests per active prefill
    /// replica exceeds this.
    pub prefill_queue_high: f64,
    /// Scale the prefill pool down when the same signal falls below this.
    pub prefill_queue_low: f64,
    /// Scale the decode pool up when mean outstanding tokens per active decode
    /// replica exceeds this.
    pub decode_tokens_high: f64,
    /// Scale the decode pool down when the same signal falls below this.
    pub decode_tokens_low: f64,
    /// Seconds between a scale-up decision and the new replica taking work.
    pub spawn_delay_s: f64,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            interval_s: 2.0,
            min_prefill: 1,
            max_prefill: 8,
            min_decode: 1,
            max_decode: 8,
            prefill_queue_high: 4.0,
            prefill_queue_low: 0.5,
            decode_tokens_high: 24_000.0,
            decode_tokens_low: 4_000.0,
            spawn_delay_s: 1.0,
        }
    }
}

impl AutoscaleConfig {
    fn validate(&self) {
        assert!(
            self.interval_s.is_finite() && self.interval_s > 0.0,
            "autoscale interval must be finite and positive"
        );
        assert!(
            self.min_prefill >= 1 && self.min_prefill <= self.max_prefill,
            "prefill bounds must satisfy 1 <= min <= max"
        );
        assert!(
            self.min_decode >= 1 && self.min_decode <= self.max_decode,
            "decode bounds must satisfy 1 <= min <= max"
        );
        assert!(
            self.spawn_delay_s.is_finite() && self.spawn_delay_s >= 0.0,
            "spawn delay must be finite and non-negative"
        );
    }
}

/// Configuration of a disaggregated cluster.
#[derive(Debug, Clone)]
pub struct DisaggConfig {
    /// Per-replica engine configuration shared by both pools. Must use paged
    /// KV accounting — migration is a block-table handoff.
    pub base: ServeConfig,
    /// Initial prefill-pool size.
    pub prefill_replicas: usize,
    /// Initial decode-pool size.
    pub decode_replicas: usize,
    /// The pool-to-pool KV transfer link.
    pub link: TransferLinkConfig,
    /// Optional reactive autoscaler.
    pub autoscale: Option<AutoscaleConfig>,
}

impl DisaggConfig {
    /// A cluster of `prefill_replicas` + `decode_replicas` over `base`, with
    /// the default NVLink-class link and no autoscaler.
    ///
    /// # Panics
    ///
    /// Panics unless `base` uses paged KV accounting and both pools are
    /// non-empty.
    pub fn new(base: ServeConfig, prefill_replicas: usize, decode_replicas: usize) -> Self {
        let config = DisaggConfig {
            base,
            prefill_replicas,
            decode_replicas,
            link: TransferLinkConfig::default(),
            autoscale: None,
        };
        config.validate();
        config
    }

    /// Replaces the transfer-link parameters.
    pub fn with_link(mut self, link: TransferLinkConfig) -> Self {
        link.validate();
        self.link = link;
        self
    }

    /// Enables the reactive autoscaler.
    pub fn with_autoscale(mut self, autoscale: AutoscaleConfig) -> Self {
        autoscale.validate();
        self.autoscale = Some(autoscale);
        self
    }

    fn validate(&self) {
        assert!(
            self.base.kv_accounting.block_size().is_some(),
            "disaggregated serving requires paged KV accounting (the migration \
             unit is the block)"
        );
        assert!(
            self.prefill_replicas >= 1 && self.decode_replicas >= 1,
            "both pools need at least one replica"
        );
        self.link.validate();
        if let Some(a) = &self.autoscale {
            a.validate();
            assert!(
                self.prefill_replicas >= a.min_prefill
                    && self.prefill_replicas <= a.max_prefill
                    && self.decode_replicas >= a.min_decode
                    && self.decode_replicas <= a.max_decode,
                "initial pool sizes must lie within the autoscale bounds"
            );
        }
        // Per-replica block geometry must be identical across pools for the
        // block-table handoff to be meaningful; both pools share `base`, so
        // only a zero budget can break this.
        assert!(
            self.base.kv_block_budget() > 0,
            "replica KV budget must hold at least one block"
        );
    }
}

/// Which pool a replica belongs to (event args encode prefill=0, decode=1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pool {
    Prefill,
    Decode,
}

impl Pool {
    fn arg(self) -> f64 {
        match self {
            Pool::Prefill => 0.0,
            Pool::Decode => 1.0,
        }
    }
}

/// A pool member with its autoscaler lifecycle state.
#[derive(Debug, Clone)]
struct PoolReplica {
    replica: Replica,
    /// Takes no new work; retires when empty and unreferenced.
    draining: bool,
    /// Left the pool (terminal; stops costing replica-seconds).
    retired: bool,
    /// Spawn warm-up: takes no work before this time.
    ready_at_s: f64,
}

impl PoolReplica {
    /// Eligible for new work right now.
    fn accepting(&self, now: f64) -> bool {
        self.replica.is_up() && !self.retired && !self.draining && now + 1e-12 >= self.ready_at_s
    }

    /// Counts toward the provisioned-capacity cost.
    fn provisioned(&self) -> bool {
        !self.retired
    }
}

/// A migration on the wire.
#[derive(Debug, Clone)]
struct InFlightTransfer {
    entry: MigratedEntry,
    source: usize,
    dest: usize,
    reserved_blocks: usize,
    start_s: f64,
    finish_s: f64,
}

/// Event classes for deterministic same-time ordering: transfer landings,
/// then prefill steps, then decode steps, then autoscaler ticks.
const CLASS_TRANSFER: u8 = 0;
const CLASS_PREFILL: u8 = 1;
const CLASS_DECODE: u8 = 2;
const CLASS_TICK: u8 = 3;

/// Hard ceiling on processed events, a runaway guard mirroring `ServeSim`.
const MAX_EVENTS: u64 = 200_000_000;

/// The disaggregated cluster simulator. Mirrors the `ServeSim` step-level API
/// (offer / advance / crash / restart / report) so the chaos harness drives
/// both the same way.
#[derive(Debug, Clone)]
pub struct ClusterSim {
    config: DisaggConfig,
    prefill: Vec<PoolReplica>,
    decode: Vec<PoolReplica>,
    /// Initial prefill-pool size: global fault indices `< this` address the
    /// prefill pool, the rest the decode pool (stable under autoscaling).
    initial_prefill: usize,
    link: TransferLink,
    /// Migrations on the wire, in landing order (the serial link guarantees
    /// the front finishes first).
    in_flight: VecDeque<InFlightTransfer>,
    /// Handoffs awaiting a feasible decode destination, FIFO.
    pending: VecDeque<(MigratedEntry, usize)>,
    /// Requests (or failovers) parked while no prefill replica is up.
    orphans: VecDeque<FailoverRequest>,
    fallback: LoadBalancer,
    now_s: f64,
    events: u64,
    requeued: u64,
    crashes: u64,
    restarts: u64,
    aborted_transfers: u64,
    scale_ups: u64,
    scale_downs: u64,
    retires: u64,
    /// Autoscaler ticks already fired.
    ticks: u64,
    /// Provisioned-capacity integral: Σ provisioned replicas × dt.
    replica_seconds: f64,
    last_account_s: f64,
    event_budget: u64,
    budget_reported: bool,
    core: EventCore,
    queue: EventQueue,
}

/// Cluster-level outcome: the standard serving report plus migration, link,
/// and autoscaler accounting. `goodput_per_replica` is the headline metric —
/// SLO-meeting completions per second per provisioned replica.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterReport {
    /// The standard serving report over both pools' replicas.
    pub serve: ServeReport,
    /// Final prefill-pool size (provisioned, i.e. not retired).
    pub prefill_replicas: usize,
    /// Final decode-pool size (provisioned).
    pub decode_replicas: usize,
    /// Migrations scheduled over the link.
    pub migrations: u64,
    /// Blocks moved over the link.
    pub migrated_blocks: u64,
    /// Migrations abandoned mid-wire by a crash.
    pub aborted_transfers: u64,
    /// Seconds the link was held.
    pub transfer_busy_s: f64,
    /// Mean wire time per migration.
    pub mean_transfer_s: f64,
    /// Autoscaler scale-up actions.
    pub scale_ups: u64,
    /// Autoscaler scale-down (drain) actions.
    pub scale_downs: u64,
    /// Drained replicas that left the pool.
    pub retires: u64,
    /// Time-averaged provisioned replica count over the makespan.
    pub avg_active_replicas: f64,
    /// `serve.goodput_rps / avg_active_replicas`.
    pub goodput_per_replica: f64,
}

impl ClusterSim {
    /// Builds the cluster: prefill replicas `0..P` (tracked as `prefill {i}`)
    /// and decode replicas (engine indices `1000 + j`, tracked as
    /// `decode {j}`) with disjoint deterministic RNG streams.
    pub fn new(config: DisaggConfig) -> Self {
        config.validate();
        let block_size = config
            .base
            .kv_accounting
            .block_size()
            .expect("validated paged");
        let block_bytes =
            (config.base.cost.model.kv_bytes_per_token() * block_size as f64).ceil() as usize;
        let link = TransferLink::new(config.link, block_bytes);
        let mut sim = ClusterSim {
            prefill: Vec::new(),
            decode: Vec::new(),
            initial_prefill: config.prefill_replicas,
            link,
            in_flight: VecDeque::new(),
            pending: VecDeque::new(),
            orphans: VecDeque::new(),
            fallback: LoadBalancer::new(BalancerPolicy::LeastOutstandingTokens),
            now_s: 0.0,
            events: 0,
            requeued: 0,
            crashes: 0,
            restarts: 0,
            aborted_transfers: 0,
            scale_ups: 0,
            scale_downs: 0,
            retires: 0,
            ticks: 0,
            replica_seconds: 0.0,
            last_account_s: 0.0,
            event_budget: MAX_EVENTS,
            budget_reported: false,
            core: EventCore::default(),
            queue: EventQueue::new(),
            config,
        };
        for i in 0..sim.config.prefill_replicas {
            sim.prefill.push(sim.spawn_prefill(i, 0.0));
        }
        for j in 0..sim.config.decode_replicas {
            sim.decode.push(sim.spawn_decode(j, 0.0));
        }
        sim.touch_tick();
        sim
    }

    /// Switches the next-event implementation, re-seeding the heap from the
    /// cluster's current state (pool replicas, link front, next tick). The two
    /// cores are bit-identical; the scan stays as the oracle and benchmark
    /// baseline.
    pub fn set_event_core(&mut self, core: EventCore) {
        self.core = core;
        self.queue.clear();
        if core == EventCore::IndexedHeap {
            for i in 0..self.prefill.len() {
                self.queue
                    .push(self.prefill[i].replica.next_event_s(), CLASS_PREFILL, i);
            }
            for j in 0..self.decode.len() {
                self.queue
                    .push(self.decode[j].replica.next_event_s(), CLASS_DECODE, j);
            }
            self.touch_link();
            self.touch_tick();
        }
    }

    /// The next-event implementation in use.
    pub fn event_core(&self) -> EventCore {
        self.core
    }

    /// Overrides the hard event budget (default 200M). Exposed so tests can
    /// exercise the typed [`DriveOutcome::BudgetExhausted`] path cheaply.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Re-pushes prefill replica `i`'s key after a mutation that started from
    /// next-event time `before_s` (unchanged keys push nothing).
    fn touch_prefill(&mut self, i: usize, before_s: f64) {
        if self.core == EventCore::IndexedHeap {
            let now = self.prefill[i].replica.next_event_s();
            if now.to_bits() != before_s.to_bits() {
                self.queue.push(now, CLASS_PREFILL, i);
            }
        }
    }

    /// Re-pushes decode replica `j`'s key; see [`ClusterSim::touch_prefill`].
    fn touch_decode(&mut self, j: usize, before_s: f64) {
        if self.core == EventCore::IndexedHeap {
            let now = self.decode[j].replica.next_event_s();
            if now.to_bits() != before_s.to_bits() {
                self.queue.push(now, CLASS_DECODE, j);
            }
        }
    }

    /// Pushes the current link-front landing time (called whenever the front
    /// of `in_flight` may have changed; duplicates are discarded lazily).
    fn touch_link(&mut self) {
        if self.core == EventCore::IndexedHeap {
            if let Some(t) = self.in_flight.front() {
                self.queue.push(t.finish_s, CLASS_TRANSFER, 0);
            }
        }
    }

    /// Pushes the next autoscaler tick's key (exactly one per fired tick, so
    /// tick keys are never duplicated).
    fn touch_tick(&mut self) {
        if self.core == EventCore::IndexedHeap {
            if let Some(a) = &self.config.autoscale {
                self.queue
                    .push((self.ticks + 1) as f64 * a.interval_s, CLASS_TICK, 0);
            }
        }
    }

    fn spawn_prefill(&self, index: usize, ready_at_s: f64) -> PoolReplica {
        let mut replica = Replica::new(&self.config.base, index);
        replica.set_prefill_only(true);
        replica.set_track(Track::PrefillReplica(index as u32));
        PoolReplica {
            replica,
            draining: false,
            retired: false,
            ready_at_s,
        }
    }

    fn spawn_decode(&self, index: usize, ready_at_s: f64) -> PoolReplica {
        // Engine index 1000 + j keeps the decode pool's RNG streams, stats
        // labels, and any per-replica cost overrides disjoint from prefill's.
        let mut replica = Replica::new(&self.config.base, 1000 + index);
        replica.set_track(Track::DecodeReplica(index as u32));
        PoolReplica {
            replica,
            draining: false,
            retired: false,
            ready_at_s,
        }
    }

    /// Integrates the provisioned-capacity cost up to `t`.
    fn account_to(&mut self, t: f64) {
        let dt = t - self.last_account_s;
        if dt > 0.0 {
            let provisioned = self
                .prefill
                .iter()
                .chain(self.decode.iter())
                .filter(|p| p.provisioned())
                .count();
            self.replica_seconds += dt * provisioned as f64;
            self.last_account_s = t;
        }
    }

    /// Routes a fresh arrival (the caller feeds arrivals in time order).
    pub fn offer(&mut self, req: ServeRequest) {
        let now = self.now_s.max(req.arrival_s);
        self.account_to(now);
        self.now_s = now;
        let target = self.route_prefill(&req);
        record(
            ObsEvent::instant(now, Track::Frontend, EventKind::Arrival, req.id).with_args(
                target.map(|i| i as f64).unwrap_or(-1.0),
                req.prompt_len as f64,
            ),
        );
        match target {
            Some(i) => {
                let before = self.prefill[i].replica.next_event_s();
                self.prefill[i].replica.enqueue(req, now);
                self.touch_prefill(i, before);
            }
            None => self.orphans.push_back(FailoverRequest {
                req,
                generated: 0.0,
                first_token_s: None,
                admitted_s: None,
                preemptions: 0,
            }),
        }
    }

    /// Prefix-affinity routing over the prefill pool: the accepting replica
    /// holding the most resident blocks of the request's prefix wins (ties to
    /// the lowest index); with no resident hit anywhere, least outstanding
    /// prefill tokens. `None` when no prefill replica is accepting.
    fn route_prefill(&mut self, req: &ServeRequest) -> Option<usize> {
        let now = self.now_s;
        let eligible: Vec<bool> = self.prefill.iter().map(|p| p.accepting(now)).collect();
        if !eligible.iter().any(|&e| e) {
            return None;
        }
        if req.prefix_id != 0 {
            let best = self
                .prefill
                .iter()
                .enumerate()
                .filter(|(i, _)| eligible[*i])
                .map(|(i, p)| (p.replica.resident_prefix_blocks(req.prefix_id), i))
                .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
                .expect("an accepting replica exists");
            if best.0 > 0 {
                return Some(best.1);
            }
        }
        let loads: Vec<_> = self.prefill.iter().map(|p| p.replica.load()).collect();
        Some(self.fallback.pick_among(&loads, Some(&eligible)))
    }

    /// Re-routes a crash-drained (or orphaned) request back through prefill.
    fn deliver_failover(&mut self, fo: FailoverRequest, now: f64) {
        match self.route_prefill(&fo.req) {
            Some(i) => {
                self.requeued += 1;
                let before = self.prefill[i].replica.next_event_s();
                self.prefill[i].replica.enqueue_failover(fo, now);
                self.touch_prefill(i, before);
            }
            None => self.orphans.push_back(fo),
        }
    }

    /// Drains fresh handoffs from a prefill replica into the dispatch queue.
    fn collect_handoffs(&mut self, source: usize) {
        for entry in self.prefill[source].replica.take_handoffs() {
            self.pending.push_back((entry, source));
        }
    }

    /// Dispatches pending handoffs FIFO onto the link: each goes to the
    /// accepting decode replica with the least outstanding work (decode load
    /// plus blocks already bound its way) that can reserve the sequence's
    /// blocks. Strictly FIFO: an infeasible head blocks the queue (KV ordering
    /// is part of the determinism contract).
    fn dispatch_pending(&mut self, now: f64) {
        let link_was_idle = self.in_flight.is_empty();
        while let Some((entry, _source)) = self.pending.front() {
            let entry = *entry;
            let mut best: Option<(u64, usize, usize)> = None; // (score, dest, blocks)
            for (j, p) in self.decode.iter().enumerate() {
                if !p.accepting(now) {
                    continue;
                }
                let bound = self
                    .in_flight
                    .iter()
                    .filter(|t| t.dest == j)
                    .collect::<Vec<_>>();
                let Some(blocks) = p.replica.plan_inbound(&entry, bound.len()) else {
                    continue;
                };
                let bound_tokens: u64 = bound
                    .iter()
                    .map(|t| (t.reserved_blocks * self.block_size()) as u64)
                    .sum();
                let score = p.replica.load().outstanding_tokens + bound_tokens;
                if best.map(|(s, d, _)| (score, j) < (s, d)).unwrap_or(true) {
                    best = Some((score, j, blocks));
                }
            }
            let Some((_score, dest, blocks)) = best else {
                break;
            };
            let (entry, source) = self.pending.pop_front().expect("front exists");
            self.decode[dest].replica.reserve_inbound(blocks);
            let (start_s, finish_s) = self.link.schedule(now, entry.wire_blocks);
            self.in_flight.push_back(InFlightTransfer {
                entry,
                source,
                dest,
                reserved_blocks: blocks,
                start_s,
                finish_s,
            });
        }
        // The serial link only grows at the back; the front key changes only
        // when a dispatch lands on a previously idle link.
        if link_was_idle {
            self.touch_link();
        }
    }

    fn block_size(&self) -> usize {
        self.config
            .base
            .kv_accounting
            .block_size()
            .expect("validated paged")
    }

    /// Lands the front in-flight transfer (its `finish_s` is due now).
    fn land_transfer(&mut self, now: f64) {
        let t = self.in_flight.pop_front().expect("a transfer is due");
        self.touch_link();
        record(
            ObsEvent::span(
                t.start_s,
                t.finish_s - t.start_s,
                Track::TransferLink,
                EventKind::Transfer,
                t.entry.req.id,
            )
            .with_args(t.entry.wire_blocks as f64, t.dest as f64),
        );
        // The source stayed up (a source crash aborts its transfers), so its
        // outbound charge releases exactly as the destination's reservation
        // converts into a running footprint.
        let before = self.prefill[t.source].replica.next_event_s();
        self.prefill[t.source]
            .replica
            .complete_outbound(t.entry.source_blocks);
        self.prefill[t.source].replica.kick(now);
        self.touch_prefill(t.source, before);
        let before = self.decode[t.dest].replica.next_event_s();
        let dest = t.dest;
        self.decode[t.dest]
            .replica
            .deliver_migrated(t.entry, t.reserved_blocks, now);
        self.touch_decode(dest, before);
        self.check_retirements(now);
        self.dispatch_pending(now);
    }

    /// Crashes prefill replica `i`: its held requests (queue, running batch,
    /// un-dispatched handoffs) fail over, its pending and in-flight migrations
    /// are aborted — the KV lived in the crashed pool — and every affected
    /// request is re-routed through the surviving prefill replicas for a fresh
    /// prefill.
    fn crash_prefill(&mut self, i: usize, now: f64) {
        self.crashes += 1;
        let mut failovers = self.prefill[i].replica.crash(now);
        // Pending handoffs whose KV died with the source.
        let mut kept = VecDeque::with_capacity(self.pending.len());
        for (entry, source) in std::mem::take(&mut self.pending) {
            if source == i {
                failovers.push(Self::migration_failover(entry));
            } else {
                kept.push_back((entry, source));
            }
        }
        self.pending = kept;
        // In-flight transfers from the dead source: release the destination's
        // reservation and re-queue the request.
        let mut kept = VecDeque::with_capacity(self.in_flight.len());
        for t in std::mem::take(&mut self.in_flight) {
            if t.source == i {
                self.aborted_transfers += 1;
                self.link.note_abort();
                record(
                    ObsEvent::instant(
                        now,
                        Track::TransferLink,
                        EventKind::TransferAbort,
                        t.entry.req.id,
                    )
                    .with_args(t.entry.wire_blocks as f64, 0.0),
                );
                if self.decode[t.dest].replica.is_up() {
                    self.decode[t.dest]
                        .replica
                        .cancel_inbound(t.reserved_blocks);
                }
                failovers.push(Self::migration_failover(t.entry));
            } else {
                kept.push_back(t);
            }
        }
        self.in_flight = kept;
        self.touch_link();
        for fo in failovers {
            self.deliver_failover(fo, now);
        }
        self.dispatch_pending(now);
    }

    /// Crashes decode replica `j`: running/arriving sequences fail over for a
    /// fresh prefill; in-flight transfers to it are aborted with the request
    /// going back to the *front* of the dispatch queue — its KV is still
    /// intact on the source, which keeps the outbound charge until a retry
    /// lands elsewhere.
    fn crash_decode(&mut self, j: usize, now: f64) {
        self.crashes += 1;
        let failovers = self.decode[j].replica.crash(now);
        let mut retry: Vec<(MigratedEntry, usize)> = Vec::new();
        let mut kept = VecDeque::with_capacity(self.in_flight.len());
        for t in std::mem::take(&mut self.in_flight) {
            if t.dest == j {
                self.aborted_transfers += 1;
                self.link.note_abort();
                record(
                    ObsEvent::instant(
                        now,
                        Track::TransferLink,
                        EventKind::TransferAbort,
                        t.entry.req.id,
                    )
                    .with_args(t.entry.wire_blocks as f64, 1.0),
                );
                retry.push((t.entry, t.source));
            } else {
                kept.push_back(t);
            }
        }
        self.in_flight = kept;
        self.touch_link();
        for item in retry.into_iter().rev() {
            self.pending.push_front(item);
        }
        for fo in failovers {
            self.deliver_failover(fo, now);
        }
        self.dispatch_pending(now);
    }

    /// A migration whose KV was lost: back through prefill, with the
    /// preemption counter charged for the forced recompute.
    fn migration_failover(entry: MigratedEntry) -> FailoverRequest {
        FailoverRequest {
            req: entry.req,
            generated: entry.generated,
            first_token_s: None,
            admitted_s: Some(entry.admitted_s),
            preemptions: entry.preemptions + 1,
        }
    }

    /// Crashes the replica at global fault index `idx` (`< initial prefill
    /// size` → prefill pool, else decode pool, both by initial numbering).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn crash_replica(&mut self, idx: usize, now: f64) {
        self.advance_now(now);
        if idx < self.initial_prefill {
            self.crash_prefill(idx, now);
        } else {
            self.crash_decode(idx - self.initial_prefill, now);
        }
    }

    /// Restarts the replica at global fault index `idx` and drains any parked
    /// orphans back into routing.
    pub fn restart_replica(&mut self, idx: usize, now: f64) {
        self.advance_now(now);
        self.restarts += 1;
        if idx < self.initial_prefill {
            let before = self.prefill[idx].replica.next_event_s();
            self.prefill[idx].replica.restart(now);
            self.touch_prefill(idx, before);
        } else {
            let j = idx - self.initial_prefill;
            let before = self.decode[j].replica.next_event_s();
            self.decode[j].replica.restart(now);
            self.touch_decode(j, before);
        }
        while let Some(fo) = self.orphans.pop_front() {
            match self.route_prefill(&fo.req) {
                Some(i) => {
                    self.requeued += 1;
                    let before = self.prefill[i].replica.next_event_s();
                    self.prefill[i].replica.enqueue_failover(fo, now);
                    self.touch_prefill(i, before);
                }
                None => {
                    self.orphans.push_front(fo);
                    break;
                }
            }
        }
        self.dispatch_pending(now);
    }

    /// Sets the straggler factor of the replica at global fault index `idx`.
    pub fn set_slow_factor(&mut self, idx: usize, factor: f64) {
        if idx < self.initial_prefill {
            self.prefill[idx].replica.set_slow_factor(factor);
        } else {
            self.decode[idx - self.initial_prefill]
                .replica
                .set_slow_factor(factor);
        }
    }

    /// Whether any request is still queued, running, on the wire, or parked.
    pub fn has_work(&self) -> bool {
        !self.in_flight.is_empty()
            || !self.pending.is_empty()
            || !self.orphans.is_empty()
            || self
                .prefill
                .iter()
                .chain(self.decode.iter())
                .any(|p| p.replica.has_work())
    }

    /// The next event due: `(time, class, index)` with the deterministic
    /// same-time order transfer < prefill step < decode step < tick.
    fn next_event(&self, include_ticks: bool) -> Option<(f64, u8, usize)> {
        let mut best: Option<(f64, u8, usize)> = None;
        let mut consider = |t: f64, class: u8, idx: usize| {
            if t == f64::MAX {
                return;
            }
            let better = match best {
                None => true,
                Some((bt, bc, bi)) => t < bt || (t == bt && (class, idx) < (bc, bi)),
            };
            if better {
                best = Some((t, class, idx));
            }
        };
        if let Some(t) = self.in_flight.front() {
            consider(t.finish_s, CLASS_TRANSFER, 0);
        }
        for (i, p) in self.prefill.iter().enumerate() {
            consider(p.replica.next_event_s(), CLASS_PREFILL, i);
        }
        for (j, p) in self.decode.iter().enumerate() {
            consider(p.replica.next_event_s(), CLASS_DECODE, j);
        }
        if include_ticks {
            if let Some(a) = &self.config.autoscale {
                consider((self.ticks + 1) as f64 * a.interval_s, CLASS_TICK, 0);
            }
        }
        best
    }

    /// Simulated time of the next due event — transfer landing, pool step, or
    /// autoscaler tick — or infinity when the cluster is idle (the external
    /// driver loop's clock, mirroring `ServeSim::next_event_s`).
    pub fn next_event_s(&self) -> f64 {
        self.next_event(self.has_work())
            .map(|(t, _, _)| t)
            .unwrap_or(f64::MAX)
    }

    /// Advances the clock without processing events (the caller guarantees no
    /// event lies in between — used when injecting faults).
    pub fn advance_now(&mut self, t: f64) {
        if t > self.now_s {
            self.account_to(t);
            self.now_s = t;
        }
    }

    /// Processes the event described by a validated `(time, class, index)`
    /// triple — the single dispatch shared by both event cores and both drive
    /// loops.
    fn dispatch_event(&mut self, et: f64, class: u8, idx: usize) {
        match class {
            CLASS_TRANSFER => self.land_transfer(et),
            CLASS_PREFILL => {
                self.prefill[idx].replica.on_step_complete(et);
                self.touch_prefill(idx, et);
                self.collect_handoffs(idx);
                self.check_retirements(et);
                self.dispatch_pending(et);
            }
            CLASS_DECODE => {
                self.decode[idx].replica.on_step_complete(et);
                self.touch_decode(idx, et);
                self.check_retirements(et);
                self.dispatch_pending(et);
            }
            _ => self.autoscale_tick(et),
        }
    }

    /// Pops the earliest *valid* due event strictly before `t`, discarding
    /// stale keys along the way. A due-but-suppressed tick (when
    /// `include_ticks` is false) is stashed and re-pushed on exit so the
    /// one-sided heap invariant survives drain loops that exclude ticks.
    fn pop_due_event(&mut self, t: f64, include_ticks: bool) -> Option<(f64, u8, usize)> {
        let mut deferred_tick: Option<EventKey> = None;
        let due = loop {
            let Some(key) = self.queue.peek() else {
                break None;
            };
            if key.time_s() >= t {
                break None;
            }
            let key = self.queue.pop().expect("peeked");
            let (class, idx) = (key.class(), key.index());
            let valid = match class {
                CLASS_TRANSFER => {
                    self.in_flight.front().map(|f| f.finish_s.to_bits()) == Some(key.time_bits())
                }
                CLASS_PREFILL => {
                    self.prefill[idx].replica.next_event_s().to_bits() == key.time_bits()
                }
                CLASS_DECODE => {
                    self.decode[idx].replica.next_event_s().to_bits() == key.time_bits()
                }
                _ => {
                    self.config
                        .autoscale
                        .as_ref()
                        .map(|a| ((self.ticks + 1) as f64 * a.interval_s).to_bits())
                        == Some(key.time_bits())
                }
            };
            if !valid {
                hooks::on_sim_stale_event();
                continue;
            }
            if class == CLASS_TICK && !include_ticks {
                // Tick keys are never duplicated, so one stash slot suffices.
                deferred_tick = Some(key);
                continue;
            }
            break Some((key.time_s(), class, idx));
        };
        if let Some(key) = deferred_tick {
            self.queue.push_key(key);
        }
        due
    }

    /// Processes every event strictly before `t`, then advances to `t`.
    /// Returns [`DriveOutcome::BudgetExhausted`] — reported once through the
    /// flight recorder — if the hard event budget tripped with an event still
    /// due.
    pub fn advance_before(&mut self, t: f64) -> DriveOutcome {
        let mut outcome = DriveOutcome::Completed;
        match self.core {
            EventCore::IndexedHeap => {
                while let Some((et, class, idx)) = self.pop_due_event(t, true) {
                    if self.events >= self.event_budget {
                        // Put the valid key back and stop.
                        self.queue.push(et, class, idx);
                        outcome = self.budget_outcome();
                        break;
                    }
                    self.events += 1;
                    hooks::on_sim_event();
                    self.account_to(et);
                    self.now_s = self.now_s.max(et);
                    self.dispatch_event(et, class, idx);
                }
            }
            EventCore::LinearScan => {
                while let Some((et, class, idx)) = self.next_event(true) {
                    if et >= t {
                        break;
                    }
                    if self.events >= self.event_budget {
                        outcome = self.budget_outcome();
                        break;
                    }
                    self.events += 1;
                    hooks::on_sim_event();
                    self.account_to(et);
                    self.now_s = self.now_s.max(et);
                    self.dispatch_event(et, class, idx);
                }
            }
        }
        self.advance_now(t);
        outcome
    }

    /// Concatenated SD accept-length log across both pools — prefill replicas
    /// first, then decode replicas, each in pool order with speculative steps
    /// in step order. Mirrors [`ServeSim::sd_accept_trace`] for the trace
    /// recorder; prefill-only replicas never speculate, so in practice the
    /// stream comes from the decode pool.
    ///
    /// [`ServeSim::sd_accept_trace`]: crate::ServeSim::sd_accept_trace
    pub fn sd_accept_trace(&self) -> Vec<u8> {
        self.prefill
            .iter()
            .chain(self.decode.iter())
            .flat_map(|p| p.replica.sd_accept_trace().iter().copied())
            .collect()
    }

    /// Runs until every request has drained (autoscaler ticks stop firing once
    /// the cluster is idle, so this terminates). Returns
    /// [`DriveOutcome::BudgetExhausted`] if the event budget tripped first.
    pub fn run_until_drained(&mut self) -> DriveOutcome {
        loop {
            let include_ticks = self.has_work();
            let next = match self.core {
                EventCore::IndexedHeap => self.pop_due_event(f64::MAX, include_ticks),
                EventCore::LinearScan => self.next_event(include_ticks),
            };
            let Some((et, class, idx)) = next else {
                return DriveOutcome::Completed;
            };
            if self.events >= self.event_budget {
                if self.core == EventCore::IndexedHeap {
                    self.queue.push(et, class, idx);
                }
                return self.budget_outcome();
            }
            self.events += 1;
            hooks::on_sim_event();
            self.account_to(et);
            self.now_s = self.now_s.max(et);
            self.dispatch_event(et, class, idx);
        }
    }

    fn budget_outcome(&mut self) -> DriveOutcome {
        if !self.budget_reported {
            self.budget_reported = true;
            record(
                ObsEvent::instant(
                    self.now_s,
                    Track::Frontend,
                    EventKind::BudgetExhausted,
                    NO_REQ,
                )
                .with_args(self.events as f64, self.event_budget as f64),
            );
        }
        DriveOutcome::BudgetExhausted
    }

    /// One autoscaler decision: at most one action per pool, driven by
    /// per-active-replica signals. Scale-up first re-activates a draining
    /// replica (free), else spawns a fresh one after the warm-up delay;
    /// scale-down drains the highest-index active replica.
    fn autoscale_tick(&mut self, now: f64) {
        self.ticks += 1;
        self.touch_tick();
        let a = *self.config.autoscale.as_ref().expect("ticks imply config");

        // Prefill pool: queue-depth signal.
        let active: Vec<usize> = (0..self.prefill.len())
            .filter(|&i| self.prefill[i].accepting(now))
            .collect();
        if !active.is_empty() {
            let queued: usize = active
                .iter()
                .map(|&i| self.prefill[i].replica.load().queued)
                .sum();
            let per = queued as f64 / active.len() as f64;
            let provisioned = self.prefill.iter().filter(|p| p.provisioned()).count();
            if per > a.prefill_queue_high && provisioned < a.max_prefill {
                self.scale_up(Pool::Prefill, now);
            } else if per < a.prefill_queue_low && active.len() > a.min_prefill {
                self.scale_down(Pool::Prefill, &active, now);
            }
        }

        // Decode pool: outstanding-token signal (decode work plus blocks
        // already bound over the link).
        let active: Vec<usize> = (0..self.decode.len())
            .filter(|&j| self.decode[j].accepting(now))
            .collect();
        if !active.is_empty() {
            let mut outstanding: u64 = active
                .iter()
                .map(|&j| self.decode[j].replica.load().outstanding_tokens)
                .sum();
            outstanding += self
                .in_flight
                .iter()
                .map(|t| (t.reserved_blocks * self.block_size()) as u64)
                .sum::<u64>();
            let per = outstanding as f64 / active.len() as f64;
            let provisioned = self.decode.iter().filter(|p| p.provisioned()).count();
            if per > a.decode_tokens_high && provisioned < a.max_decode {
                self.scale_up(Pool::Decode, now);
            } else if per < a.decode_tokens_low && active.len() > a.min_decode {
                self.scale_down(Pool::Decode, &active, now);
            }
        }

        self.check_retirements(now);
        self.dispatch_pending(now);
    }

    fn scale_up(&mut self, pool: Pool, now: f64) {
        self.scale_ups += 1;
        let a = self.config.autoscale.as_ref().expect("autoscale on");
        let members = match pool {
            Pool::Prefill => &mut self.prefill,
            Pool::Decode => &mut self.decode,
        };
        // Cheapest capacity first: cancel an in-progress drain.
        if let Some(i) = (0..members.len()).find(|&i| members[i].draining && !members[i].retired) {
            members[i].draining = false;
            let before = members[i].replica.next_event_s();
            members[i].replica.kick(now);
            match pool {
                Pool::Prefill => self.touch_prefill(i, before),
                Pool::Decode => self.touch_decode(i, before),
            }
            record(
                ObsEvent::instant(now, Track::Autoscaler, EventKind::ScaleUp, NO_REQ)
                    .with_args(i as f64, pool.arg()),
            );
            return;
        }
        let index = members.len();
        let ready = now + a.spawn_delay_s;
        let fresh = match pool {
            Pool::Prefill => self.spawn_prefill(index, ready),
            Pool::Decode => self.spawn_decode(index, ready),
        };
        match pool {
            Pool::Prefill => self.prefill.push(fresh),
            Pool::Decode => self.decode.push(fresh),
        }
        record(
            ObsEvent::instant(now, Track::Autoscaler, EventKind::ScaleUp, NO_REQ)
                .with_args(index as f64, pool.arg()),
        );
    }

    fn scale_down(&mut self, pool: Pool, active: &[usize], now: f64) {
        self.scale_downs += 1;
        let victim = *active.last().expect("non-empty active set");
        let members = match pool {
            Pool::Prefill => &mut self.prefill,
            Pool::Decode => &mut self.decode,
        };
        members[victim].draining = true;
        record(
            ObsEvent::instant(now, Track::Autoscaler, EventKind::ScaleDown, NO_REQ)
                .with_args(victim as f64, pool.arg()),
        );
    }

    /// Retires draining replicas that are empty and unreferenced by any
    /// pending or in-flight migration (drain-before-retire).
    fn check_retirements(&mut self, now: f64) {
        for i in 0..self.prefill.len() {
            let p = &self.prefill[i];
            if p.draining
                && !p.retired
                && !p.replica.has_work()
                && !self.in_flight.iter().any(|t| t.source == i)
                && !self.pending.iter().any(|(_, s)| *s == i)
            {
                self.retires += 1;
                self.prefill[i].retired = true;
                record(
                    ObsEvent::instant(now, Track::Autoscaler, EventKind::Retire, NO_REQ)
                        .with_args(i as f64, Pool::Prefill.arg()),
                );
            }
        }
        for j in 0..self.decode.len() {
            let p = &self.decode[j];
            if p.draining
                && !p.retired
                && !p.replica.has_work()
                && !self.in_flight.iter().any(|t| t.dest == j)
            {
                self.retires += 1;
                self.decode[j].retired = true;
                record(
                    ObsEvent::instant(now, Track::Autoscaler, EventKind::Retire, NO_REQ)
                        .with_args(j as f64, Pool::Decode.arg()),
                );
            }
        }
    }

    /// Requests still parked because no prefill replica is up.
    pub fn orphaned(&self) -> usize {
        self.orphans.len()
    }

    /// Crash-drained requests successfully re-routed.
    pub fn requeued(&self) -> u64 {
        self.requeued
    }

    /// `(crashes injected, restarts injected)`.
    pub fn fault_counts(&self) -> (u64, u64) {
        (self.crashes, self.restarts)
    }

    /// Migrations abandoned mid-wire by crashes.
    pub fn aborted_transfers(&self) -> u64 {
        self.aborted_transfers
    }

    /// Ids of requests dropped at admission, across both pools.
    pub fn dropped_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .prefill
            .iter()
            .chain(self.decode.iter())
            .flat_map(|p| p.replica.dropped_ids().iter().copied())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Whether the event-budget runaway guard tripped.
    pub fn event_budget_exhausted(&self) -> bool {
        self.events >= self.event_budget
    }

    /// Per-pool structural conservation check (the chaos invariant), plus the
    /// cross-pool in-flight balance: every inbound reservation in the decode
    /// pool belongs to a scheduled transfer, and every outbound charge in the
    /// prefill pool to a transfer or a not-yet-dispatched handoff.
    pub fn kv_pool_check(&self) -> Result<(), String> {
        for (i, p) in self.prefill.iter().enumerate() {
            p.replica
                .kv_pool_check()
                .map_err(|e| format!("prefill {i}: {e}"))?;
        }
        for (j, p) in self.decode.iter().enumerate() {
            p.replica
                .kv_pool_check()
                .map_err(|e| format!("decode {j}: {e}"))?;
        }
        Ok(())
    }

    /// Blocks neither free nor reclaimable across both pools (0 after drain).
    pub fn kv_pool_leaked(&self) -> usize {
        self.prefill
            .iter()
            .chain(self.decode.iter())
            .map(|p| p.replica.kv_pool_leaked())
            .sum()
    }

    /// Peak KV blocks and budget per replica, for the budget invariant:
    /// `(pool label, index, peak blocks, budget blocks)`.
    pub fn kv_peaks(&self) -> Vec<(&'static str, usize, usize, usize)> {
        let mut out = Vec::new();
        for (i, p) in self.prefill.iter().enumerate() {
            out.push((
                "prefill",
                i,
                p.replica.peak_kv_blocks(),
                p.replica.kv_block_budget(),
            ));
        }
        for (j, p) in self.decode.iter().enumerate() {
            out.push((
                "decode",
                j,
                p.replica.peak_kv_blocks(),
                p.replica.kv_block_budget(),
            ));
        }
        out
    }

    /// Final report over both pools (SLO from the base config).
    pub fn into_report(mut self) -> ClusterReport {
        let slo = self.config.base.slo;
        let mut completed = Vec::new();
        let mut dropped = 0usize;
        for p in self.prefill.iter_mut().chain(self.decode.iter_mut()) {
            completed.extend(p.replica.take_completed());
            dropped += p.replica.dropped();
        }
        let makespan = completed.iter().map(|r| r.finish_s).fold(0.0f64, f64::max);
        self.account_to(makespan.max(self.now_s));
        let stats: Vec<_> = self
            .prefill
            .iter()
            .chain(self.decode.iter())
            .map(|p| p.replica.stats(makespan))
            .collect();
        let serve = ServeReport::build(completed, dropped, stats, slo);
        let span = self.last_account_s.max(1e-9);
        let avg_active_replicas = self.replica_seconds / span;
        let goodput_per_replica = serve.goodput_rps / avg_active_replicas.max(1e-9);
        ClusterReport {
            prefill_replicas: self.prefill.iter().filter(|p| p.provisioned()).count(),
            decode_replicas: self.decode.iter().filter(|p| p.provisioned()).count(),
            migrations: self.link.transfers(),
            migrated_blocks: self.link.blocks_moved(),
            aborted_transfers: self.aborted_transfers,
            transfer_busy_s: self.link.busy_s(),
            mean_transfer_s: self.link.mean_transfer_s(),
            scale_ups: self.scale_ups,
            scale_downs: self.scale_downs,
            retires: self.retires,
            avg_active_replicas,
            goodput_per_replica,
            serve,
        }
    }
}

/// Runs a full disaggregated simulation over a pre-sorted arrival stream,
/// mirroring [`crate::frontend::simulate_serving`].
pub fn simulate_disagg(
    config: DisaggConfig,
    arrivals: &[tlt_workload::RequestArrival],
) -> ClusterReport {
    let mut sim = ClusterSim::new(config);
    for arrival in arrivals {
        sim.advance_before(arrival.time_s());
        sim.offer(ServeRequest::from_arrival(arrival));
    }
    sim.run_until_drained();
    sim.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlt_gpusim::{GpuType, LlmCostModel};
    use tlt_model::ModelSpec;
    use tlt_workload::{generate_arrivals, ArrivalConfig};

    fn base_config(seed: u64) -> ServeConfig {
        let cost = LlmCostModel::new(ModelSpec::qwen2_5_7b(), GpuType::H100.spec(), 1);
        let mut config = ServeConfig::new(cost, 1).with_paged_kv(16);
        config.kv_memory_fraction = 0.25;
        config.max_output_tokens = 256;
        config.seed = seed;
        config
    }

    fn request(id: u64, arrival_s: f64, prompt: usize, output: usize) -> ServeRequest {
        ServeRequest {
            id,
            arrival_s,
            prompt_len: prompt,
            output_len: output,
            prefix_id: 0,
            prefix_len: 0,
        }
    }

    #[test]
    fn disagg_serves_everything_with_zero_recompute_and_no_leaks() {
        let arrivals = generate_arrivals(&ArrivalConfig::constant(6.0, 8.0, 42));
        let mut sim = ClusterSim::new(DisaggConfig::new(base_config(42), 2, 2));
        for a in &arrivals {
            sim.advance_before(a.time_s());
            sim.offer(ServeRequest::from_arrival(a));
        }
        sim.run_until_drained();
        assert!(!sim.has_work(), "cluster drained");
        assert!(sim.kv_pool_check().is_ok());
        assert_eq!(sim.kv_pool_leaked(), 0, "all blocks free after drain");
        let report = sim.into_report();
        assert_eq!(
            report.serve.completed.len() + report.serve.dropped,
            arrivals.len()
        );
        assert_eq!(report.aborted_transfers, 0);
        // Every completion crossed the link exactly once (no crash retries).
        assert_eq!(report.migrations, report.serve.completed.len() as u64);
        let (prefill_out, prefill_done): (u64, usize) = report
            .serve
            .replicas
            .iter()
            .filter(|r| r.replica < 1000)
            .map(|r| (r.migrations_out, r.completed))
            .fold((0, 0), |acc, x| (acc.0 + x.0, acc.1 + x.1));
        assert_eq!(prefill_done, 0, "prefill replicas never decode");
        assert_eq!(prefill_out, report.migrations);
        let decode_in: u64 = report
            .serve
            .replicas
            .iter()
            .filter(|r| r.replica >= 1000)
            .map(|r| r.migrations_in)
            .sum();
        assert_eq!(decode_in, report.migrations);
        // Zero recompute: nothing that only migrated is charged a preemption.
        assert!(report.serve.completed.iter().all(|r| r.preemptions == 0));
        assert!(report.avg_active_replicas > 3.9 && report.avg_active_replicas < 4.1);
        assert!(report.goodput_per_replica > 0.0);
    }

    #[test]
    fn disagg_runs_are_bit_identical_per_seed() {
        let arrivals =
            generate_arrivals(&ArrivalConfig::constant(8.0, 6.0, 7).with_prefix(0.5, 256));
        let run = || simulate_disagg(DisaggConfig::new(base_config(7), 2, 2), &arrivals);
        let (a, b) = (run(), run());
        assert_eq!(a.serve.completed, b.serve.completed);
        assert_eq!(a.serve.replicas, b.serve.replicas);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.migrated_blocks, b.migrated_blocks);
        assert_eq!(a.transfer_busy_s.to_bits(), b.transfer_busy_s.to_bits());
        assert_eq!(
            a.goodput_per_replica.to_bits(),
            b.goodput_per_replica.to_bits()
        );
    }

    #[test]
    fn prefix_affinity_concentrates_a_shared_prefix_on_one_prefill_replica() {
        // All requests share prefix group 1; once the first prefill leaves the
        // group's blocks resident on the replica that ran it, every later
        // arrival must follow them there, whatever the load spread says.
        let mut sim = ClusterSim::new(DisaggConfig::new(base_config(3), 2, 2));
        for i in 0..12u64 {
            let mut req = request(i, i as f64 * 0.4, 512, 32);
            req.prefix_id = 1;
            req.prefix_len = 256;
            sim.advance_before(req.arrival_s);
            sim.offer(req);
        }
        sim.run_until_drained();
        let report = sim.into_report();
        assert_eq!(report.serve.completed.len(), 12);
        let outs: Vec<u64> = report
            .serve
            .replicas
            .iter()
            .filter(|r| r.replica < 1000)
            .map(|r| r.migrations_out)
            .collect();
        assert_eq!(outs, vec![12, 0], "affinity pins the group to replica 0");
        let hit = report
            .serve
            .replicas
            .iter()
            .find(|r| r.replica == 0)
            .expect("prefill 0")
            .prefix_hit_rate;
        assert!(hit > 0.3, "resident prefix served repeatedly, got {hit}");
    }

    #[test]
    fn source_crash_mid_transfer_fails_over_losslessly() {
        let config = DisaggConfig::new(base_config(11), 2, 1).with_link(TransferLinkConfig {
            bandwidth_gbps: 50.0,
            latency_s: 0.5, // long enough to crash mid-wire
        });
        let mut sim = ClusterSim::new(config);
        sim.offer(request(0, 0.0, 512, 32));
        sim.advance_before(0.3); // prefill done, transfer on the wire
        assert_eq!(sim.in_flight.len(), 1, "transfer must be in flight");
        sim.crash_replica(0, 0.3); // the source (least-tokens routing picks 0)
        sim.run_until_drained();
        assert_eq!(sim.aborted_transfers(), 1);
        assert_eq!(sim.kv_pool_leaked(), 0);
        let report = sim.into_report();
        assert_eq!(
            report.serve.completed.len(),
            1,
            "request survives the crash"
        );
        assert_eq!(
            report.serve.completed[0].preemptions, 1,
            "the lost KV costs one recompute"
        );
    }

    #[test]
    fn dest_crash_mid_transfer_retries_without_recompute() {
        let config = DisaggConfig::new(base_config(13), 1, 1).with_link(TransferLinkConfig {
            bandwidth_gbps: 50.0,
            latency_s: 0.5,
        });
        let mut sim = ClusterSim::new(config);
        sim.offer(request(0, 0.0, 512, 32));
        sim.advance_before(0.3);
        assert_eq!(sim.in_flight.len(), 1, "transfer must be in flight");
        sim.crash_replica(1, 0.3); // global index 1 = decode 0
        assert_eq!(sim.pending.len(), 1, "entry back at the dispatch front");
        sim.restart_replica(1, 0.6); // retry dispatches on restart
        sim.run_until_drained();
        assert_eq!(sim.aborted_transfers(), 1);
        assert_eq!(sim.kv_pool_leaked(), 0);
        let report = sim.into_report();
        assert_eq!(report.serve.completed.len(), 1);
        assert_eq!(
            report.serve.completed[0].preemptions, 0,
            "the KV never left the source: the retry needs no recompute"
        );
        assert_eq!(report.migrations, 2, "original transfer plus the retry");
    }

    #[test]
    fn autoscaler_grows_under_load_and_drains_back_to_the_floor() {
        let autoscale = AutoscaleConfig {
            interval_s: 0.5,
            min_prefill: 1,
            max_prefill: 4,
            min_decode: 1,
            max_decode: 4,
            prefill_queue_high: 2.0,
            prefill_queue_low: 0.25,
            decode_tokens_high: 4_000.0,
            decode_tokens_low: 200.0,
            spawn_delay_s: 0.25,
        };
        let config = DisaggConfig::new(base_config(5), 1, 1).with_autoscale(autoscale);
        // 40 rps floods a 1+1 cluster (one H100 decode replica sustains about
        // a third of that), so both pools must grow, then drain on the tail.
        let arrivals = generate_arrivals(&ArrivalConfig::constant(40.0, 4.0, 5));
        let report = simulate_disagg(config, &arrivals);
        assert_eq!(
            report.serve.completed.len() + report.serve.dropped,
            arrivals.len()
        );
        assert!(report.scale_ups > 0, "the burst must trigger growth");
        assert!(
            report.scale_downs > 0 && report.retires > 0,
            "the drain tail must shrink the pools again (downs {}, retires {})",
            report.scale_downs,
            report.retires
        );
        assert!(
            report.avg_active_replicas > 2.0,
            "capacity grew, got {}",
            report.avg_active_replicas
        );
    }

    #[test]
    #[should_panic(expected = "paged KV accounting")]
    fn token_accounting_is_rejected() {
        let cost = LlmCostModel::new(ModelSpec::qwen2_5_7b(), GpuType::H100.spec(), 1);
        DisaggConfig::new(ServeConfig::new(cost, 1), 1, 1);
    }
}
