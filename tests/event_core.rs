//! Bit-identity of the two event cores: the lazy-invalidation indexed heap
//! must reproduce the linear next-event scan **exactly** — same event order,
//! same reports, same observability streams — on plain serving, disaggregated
//! clusters with an autoscaler, fault injection, trace replay, and degenerate
//! all-ties workloads. Budget exhaustion must be a typed, reported outcome
//! that both cores classify identically.

use tlt::obs::{install, uninstall, EventKind, FlightRecorder, ObsEvent, Track};
use tlt::replay_deployment;
use tlt_serve::{
    ClusterReport, ClusterSim, DisaggConfig, DriveOutcome, EventCore, ServeConfig, ServeReport,
    ServeRequest, ServeSim,
};
use tlt_trace::CorpusPreset;
use tlt_workload::{generate_arrivals, ArrivalConfig, RequestArrival};

const CORES: [EventCore; 2] = [EventCore::IndexedHeap, EventCore::LinearScan];

/// A timed fault action against a running simulation.
#[derive(Clone, Copy)]
enum Fault {
    Crash(usize),
    Restart(usize),
}

fn arrivals_for(seed: u64) -> Vec<RequestArrival> {
    generate_arrivals(&ArrivalConfig::constant(10.0, 8.0, seed).with_prefix(0.5, 128))
}

/// Drives a monolithic [`ServeSim`] under `core` over `arrivals` with faults
/// injected at their scheduled times, capturing the full observability stream.
fn drive_serving(
    core: EventCore,
    config: &ServeConfig,
    arrivals: &[RequestArrival],
    faults: &[(f64, Fault)],
) -> (ServeReport, Vec<ObsEvent>) {
    install(FlightRecorder::new(1 << 16));
    let mut sim = ServeSim::new(config);
    sim.set_event_core(core);
    let mut faults = faults.iter().copied().peekable();
    for a in arrivals {
        while let Some(&(t, fault)) = faults.peek() {
            if t > a.time_s() {
                break;
            }
            sim.advance_before(t);
            match fault {
                Fault::Crash(idx) => {
                    sim.crash_replica(idx);
                }
                Fault::Restart(idx) => sim.restart_replica(idx),
            }
            faults.next();
        }
        sim.advance_before(a.time_s());
        sim.offer(ServeRequest::from_arrival(a));
    }
    for (t, fault) in faults {
        sim.advance_before(t);
        match fault {
            Fault::Crash(idx) => {
                sim.crash_replica(idx);
            }
            Fault::Restart(idx) => sim.restart_replica(idx),
        }
    }
    assert_eq!(sim.run_until_drained(), DriveOutcome::Completed);
    let events = uninstall().expect("recorder installed").events();
    (sim.into_report(), events)
}

/// Disaggregated counterpart of [`drive_serving`] (global fault indices span
/// prefill then decode replicas).
fn drive_disagg(
    core: EventCore,
    config: DisaggConfig,
    arrivals: &[RequestArrival],
    faults: &[(f64, Fault)],
) -> (ClusterReport, Vec<ObsEvent>) {
    install(FlightRecorder::new(1 << 16));
    let mut sim = ClusterSim::new(config);
    sim.set_event_core(core);
    let mut faults = faults.iter().copied().peekable();
    for a in arrivals {
        while let Some(&(t, fault)) = faults.peek() {
            if t > a.time_s() {
                break;
            }
            sim.advance_before(t);
            match fault {
                Fault::Crash(idx) => sim.crash_replica(idx, t),
                Fault::Restart(idx) => sim.restart_replica(idx, t),
            }
            faults.next();
        }
        sim.advance_before(a.time_s());
        sim.offer(ServeRequest::from_arrival(a));
    }
    for (t, fault) in faults {
        sim.advance_before(t);
        match fault {
            Fault::Crash(idx) => sim.crash_replica(idx, t),
            Fault::Restart(idx) => sim.restart_replica(idx, t),
        }
    }
    assert_eq!(sim.run_until_drained(), DriveOutcome::Completed);
    let events = uninstall().expect("recorder installed").events();
    (sim.into_report(), events)
}

fn assert_serving_identical(
    (heap_report, heap_events): &(ServeReport, Vec<ObsEvent>),
    (scan_report, scan_events): &(ServeReport, Vec<ObsEvent>),
    label: &str,
) {
    assert_eq!(
        heap_events, scan_events,
        "{label}: observability streams diverged between event cores"
    );
    assert_eq!(heap_report.completed, scan_report.completed, "{label}");
    assert_eq!(heap_report.goodput_rps, scan_report.goodput_rps, "{label}");
    assert_eq!(
        heap_report.slo_attainment, scan_report.slo_attainment,
        "{label}"
    );
    assert_eq!(
        heap_report.throughput_tokens_per_s, scan_report.throughput_tokens_per_s,
        "{label}"
    );
    assert_eq!(heap_report.replicas, scan_report.replicas, "{label}");
}

#[test]
fn serving_is_bit_identical_across_cores() {
    for seed in [1u64, 17, 4242] {
        let arrivals = arrivals_for(seed);
        let config = replay_deployment(3);
        let heap = drive_serving(EventCore::IndexedHeap, &config, &arrivals, &[]);
        let scan = drive_serving(EventCore::LinearScan, &config, &arrivals, &[]);
        assert_serving_identical(&heap, &scan, &format!("seed {seed}"));
        assert!(!heap.1.is_empty(), "instrumentation must capture events");
    }
}

#[test]
fn serving_with_crash_and_restart_is_bit_identical_across_cores() {
    let arrivals = arrivals_for(99);
    let config = replay_deployment(3);
    let faults = [
        (2.0, Fault::Crash(1)),
        (3.5, Fault::Restart(1)),
        (5.0, Fault::Crash(0)),
    ];
    let heap = drive_serving(EventCore::IndexedHeap, &config, &arrivals, &faults);
    let scan = drive_serving(EventCore::LinearScan, &config, &arrivals, &faults);
    assert_serving_identical(&heap, &scan, "chaos");
    assert!(
        heap.1.iter().any(|e| e.kind == EventKind::Crash),
        "the fault schedule must actually crash replicas"
    );
}

#[test]
fn disagg_with_autoscaler_and_faults_is_bit_identical_across_cores() {
    let arrivals = arrivals_for(7);
    let config = || {
        DisaggConfig::new(replay_deployment(1), 2, 3)
            .with_autoscale(tlt_serve::AutoscaleConfig::default())
    };
    let faults = [(2.5, Fault::Crash(3)), (4.0, Fault::Restart(3))];
    let (heap_report, heap_events) =
        drive_disagg(EventCore::IndexedHeap, config(), &arrivals, &faults);
    let (scan_report, scan_events) =
        drive_disagg(EventCore::LinearScan, config(), &arrivals, &faults);
    assert_eq!(
        heap_events, scan_events,
        "disagg observability streams diverged between event cores"
    );
    assert_eq!(heap_report.serve.completed, scan_report.serve.completed);
    assert_eq!(heap_report.serve.goodput_rps, scan_report.serve.goodput_rps);
    assert_eq!(heap_report.migrations, scan_report.migrations);
    assert_eq!(heap_report.scale_ups, scan_report.scale_ups);
    assert_eq!(heap_report.scale_downs, scan_report.scale_downs);
    assert_eq!(heap_report.retires, scan_report.retires);
    assert_eq!(heap_report.migrated_blocks, scan_report.migrated_blocks);
    assert!(
        heap_events.iter().any(|e| e.track == Track::Autoscaler),
        "the autoscaler must tick during the run"
    );
}

#[test]
fn corpus_replay_is_bit_identical_across_cores() {
    for preset in [CorpusPreset::Chat, CorpusPreset::BurstyMobile] {
        let trace = preset.build();
        let arrivals = trace.arrivals().to_vec();
        let config = replay_deployment(2);
        let heap = drive_serving(EventCore::IndexedHeap, &config, &arrivals, &[]);
        let scan = drive_serving(EventCore::LinearScan, &config, &arrivals, &[]);
        assert_serving_identical(&heap, &scan, preset.name());
    }
}

/// The pinned tie-break: replicas completing steps at the *same* instant are
/// processed in ascending replica order, under both cores. Identical replicas
/// fed identical work at t=0 step in lockstep, so every step completion is an
/// N-way tie — any tie-break drift between the cores reorders the streams.
#[test]
fn simultaneous_completions_process_in_replica_order_under_both_cores() {
    let n = 6usize;
    let config = replay_deployment(n);
    let arrivals: Vec<RequestArrival> = (0..n as u64)
        .map(|id| RequestArrival {
            id,
            time_ns: 0,
            prompt_len: 256,
            output_len: 64,
            prefix_id: 0,
            prefix_len: 0,
        })
        .collect();
    let heap = drive_serving(EventCore::IndexedHeap, &config, &arrivals, &[]);
    let scan = drive_serving(EventCore::LinearScan, &config, &arrivals, &[]);
    assert_serving_identical(&heap, &scan, "all-ties");

    // Cross-check the order directly on the stream: within every run of
    // identical timestamps, per-replica step events appear in ascending
    // replica index (first occurrence per replica).
    let steps: Vec<(u64, u32)> = heap
        .1
        .iter()
        .filter_map(|e| match e.track {
            Track::Replica(i) if matches!(e.kind, EventKind::Decode | EventKind::SdRound) => {
                Some((e.ts_s.to_bits(), i))
            }
            _ => None,
        })
        .collect();
    assert!(!steps.is_empty());
    let mut ties_checked = 0usize;
    let mut i = 0;
    while i < steps.len() {
        let ts = steps[i].0;
        let mut seen = Vec::new();
        while i < steps.len() && steps[i].0 == ts {
            if !seen.contains(&steps[i].1) {
                seen.push(steps[i].1);
            }
            i += 1;
        }
        if seen.len() > 1 {
            ties_checked += 1;
            let mut sorted = seen.clone();
            sorted.sort_unstable();
            assert_eq!(seen, sorted, "tied completions processed out of order");
        }
    }
    assert!(
        ties_checked > 0,
        "the all-ties workload must actually produce simultaneous steps"
    );
}

#[test]
fn budget_exhaustion_is_typed_and_reported_once() {
    let arrivals = arrivals_for(3);
    let config = replay_deployment(2);
    for core in CORES {
        install(FlightRecorder::new(1 << 14));
        let mut sim = ServeSim::new(&config);
        sim.set_event_core(core);
        sim.set_event_budget(40);
        for a in &arrivals {
            sim.advance_before(a.time_s());
            sim.offer(ServeRequest::from_arrival(a));
        }
        let outcome = sim.run_until_drained();
        assert_eq!(outcome, DriveOutcome::BudgetExhausted, "{core:?}");
        assert!(outcome.budget_exhausted());
        assert!(sim.event_budget_exhausted(), "{core:?}");
        // Refusing further progress is stable and does not re-report.
        assert_eq!(sim.run_until_drained(), DriveOutcome::BudgetExhausted);
        let events = uninstall().expect("recorder installed").events();
        let reported: Vec<&ObsEvent> = events
            .iter()
            .filter(|e| e.kind == EventKind::BudgetExhausted)
            .collect();
        assert_eq!(
            reported.len(),
            1,
            "{core:?}: budget exhaustion must be reported exactly once"
        );
        assert_eq!(reported[0].b, 40.0, "{core:?}: the budget is the b arg");
    }
}

#[test]
fn cluster_budget_exhaustion_is_typed_and_identical_across_cores() {
    let arrivals = arrivals_for(5);
    let mut streams = Vec::new();
    for core in CORES {
        install(FlightRecorder::new(1 << 14));
        let mut sim = ClusterSim::new(DisaggConfig::new(replay_deployment(1), 1, 2));
        sim.set_event_core(core);
        sim.set_event_budget(60);
        for a in &arrivals {
            sim.advance_before(a.time_s());
            sim.offer(ServeRequest::from_arrival(a));
        }
        assert_eq!(
            sim.run_until_drained(),
            DriveOutcome::BudgetExhausted,
            "{core:?}"
        );
        assert!(sim.event_budget_exhausted(), "{core:?}");
        let events = uninstall().expect("recorder installed").events();
        assert_eq!(
            events
                .iter()
                .filter(|e| e.kind == EventKind::BudgetExhausted)
                .count(),
            1,
            "{core:?}"
        );
        streams.push(events);
    }
    assert_eq!(
        streams[0], streams[1],
        "both cores must classify and report exhaustion identically"
    );
}
