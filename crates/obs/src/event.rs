//! Event vocabulary for the flight recorder.
//!
//! Events are small `Copy` records stamped with **sim-time seconds**, never wall
//! clock, so a trace is a pure function of the seed and is bit-identical across
//! runs. Spans (prefill / decode / SD rounds) carry a duration and are recorded
//! at step *completion*; instants (arrival, crash, failover, ...) have zero
//! duration. Request-scoped events carry the request id in [`ObsEvent::req`];
//! step-scoped events use [`NO_REQ`].

/// Sentinel request id for events that are not tied to a single request.
pub const NO_REQ: u64 = u64::MAX;

/// Which timeline an event belongs to. Each track becomes one "process" row in
/// the Chrome trace export and one section of a chaos postmortem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// The serving frontend: arrivals, routing, failover delivery.
    Frontend,
    /// One serving replica, by index.
    Replica(u32),
    /// The training-side coordinator mirror (leader election, checkpoints).
    Coordinator,
    /// The standalone speculative rollout loop. It has no sim clock, so its
    /// events use the SD round index as the time axis.
    Rollout,
    /// The KV transfer link between the prefill and decode pools of a
    /// disaggregated cluster.
    TransferLink,
    /// The cluster autoscaler's decision timeline.
    Autoscaler,
    /// One prefill-pool replica of a disaggregated cluster, by index.
    PrefillReplica(u32),
    /// One decode-pool replica of a disaggregated cluster, by index.
    DecodeReplica(u32),
}

impl Track {
    /// Stable Chrome-trace `pid` for this track. Replicas start at 10 so the
    /// fixed tracks keep their ids as replica count grows; the disaggregated
    /// pools get disjoint ranges well above any realistic replica count.
    pub fn pid(&self) -> u64 {
        match self {
            Track::Frontend => 1,
            Track::Coordinator => 2,
            Track::Rollout => 3,
            Track::TransferLink => 4,
            Track::Autoscaler => 5,
            Track::Replica(i) => 10 + u64::from(*i),
            Track::PrefillReplica(i) => 1_000 + u64::from(*i),
            Track::DecodeReplica(i) => 2_000 + u64::from(*i),
        }
    }

    /// Human-readable track name used in trace metadata and postmortems.
    pub fn label(&self) -> String {
        match self {
            Track::Frontend => "frontend".to_string(),
            Track::Coordinator => "coordinator".to_string(),
            Track::Rollout => "rollout".to_string(),
            Track::TransferLink => "transfer_link".to_string(),
            Track::Autoscaler => "autoscaler".to_string(),
            Track::Replica(i) => format!("replica {i}"),
            Track::PrefillReplica(i) => format!("prefill {i}"),
            Track::DecodeReplica(i) => format!("decode {i}"),
        }
    }
}

/// What happened. The per-kind meaning of the two scalar args is documented on
/// each variant; [`EventKind::arg_names`] mirrors it for export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A request entered the frontend. `a` = routed replica (-1 if parked as an
    /// orphan), `b` = prompt tokens.
    Arrival,
    /// A replica admitted a request from its queue into the running batch.
    /// `a` = novel prompt tokens, `b` = prefix-cache hit tokens.
    Admission,
    /// A prefill batch step (span). `a` = batch size, `b` = queue depth after.
    Prefill,
    /// A plain decode batch step (span). `a` = batch size, `b` = tokens per
    /// sequence committed this step.
    Decode,
    /// A speculative decode batch step (span). `a` = batch size, `b` = accepted
    /// draft length for the step.
    SdRound,
    /// A request finished. `a` = output tokens, `b` = end-to-end seconds.
    Completion,
    /// A request was preempted back to the queue to free KV. `req` = victim.
    Preemption,
    /// A crash-drained request was re-enqueued on a surviving replica.
    /// `a` = tokens already generated before the crash.
    Failover,
    /// The replica crashed. `a` = running requests drained, `b` = queued
    /// requests drained.
    Crash,
    /// The replica came back up.
    Restart,
    /// One round of the standalone speculative loop (span over round index).
    /// `a` = accepted tokens, `b` = draft length offered.
    RolloutRound,
    /// A coordinator worker changed state. `a` = worker index, `b` = state code
    /// (0 idle, 1 busy, 2 training, 3 failed).
    WorkerState,
    /// A KV block migration over the transfer link (span over the simulated
    /// wire time). `a` = blocks moved, `b` = destination decode replica.
    Transfer,
    /// An in-flight migration was abandoned because its source or destination
    /// crashed. `a` = blocks in flight, `b` = 0 source crash / 1 dest crash.
    TransferAbort,
    /// The autoscaler spawned a replica. `a` = replica index, `b` = pool
    /// (0 prefill, 1 decode).
    ScaleUp,
    /// The autoscaler began draining a replica (no new work; retires when
    /// empty). `a` = replica index, `b` = pool (0 prefill, 1 decode).
    ScaleDown,
    /// A draining replica finished its work and left the pool. `a` = replica
    /// index, `b` = pool (0 prefill, 1 decode).
    Retire,
    /// Synthetic postmortem probe injected by `tlt-chaos` scenarios built with
    /// `forced_violation()` — a self-test of the alerting path.
    Probe,
    /// The frontend is being re-driven from a recorded workload trace
    /// (`tlt-trace`) rather than a live synthesiser. `a` = requests in the
    /// trace, `b` = trace tick in nanoseconds.
    Replay,
    /// A simulation hit its hard event budget and stopped making progress
    /// (a runaway-configuration guard, reported once per sim). `a` = events
    /// processed, `b` = the budget.
    BudgetExhausted,
}

impl EventKind {
    /// Stable event name used in trace export and postmortems.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Arrival => "arrival",
            EventKind::Admission => "admission",
            EventKind::Prefill => "prefill",
            EventKind::Decode => "decode",
            EventKind::SdRound => "sd_round",
            EventKind::Completion => "completion",
            EventKind::Preemption => "preemption",
            EventKind::Failover => "failover",
            EventKind::Crash => "crash",
            EventKind::Restart => "restart",
            EventKind::RolloutRound => "rollout_round",
            EventKind::WorkerState => "worker_state",
            EventKind::Transfer => "transfer",
            EventKind::TransferAbort => "transfer_abort",
            EventKind::ScaleUp => "scale_up",
            EventKind::ScaleDown => "scale_down",
            EventKind::Retire => "retire",
            EventKind::Probe => "probe",
            EventKind::Replay => "replay",
            EventKind::BudgetExhausted => "budget_exhausted",
        }
    }

    /// True for duration events (Chrome `ph:"X"`), false for instants (`"i"`).
    pub fn is_span(&self) -> bool {
        matches!(
            self,
            EventKind::Prefill
                | EventKind::Decode
                | EventKind::SdRound
                | EventKind::RolloutRound
                | EventKind::Transfer
        )
    }

    /// Names for the `a` / `b` args in exports; `""` means the arg is unused.
    pub fn arg_names(&self) -> (&'static str, &'static str) {
        match self {
            EventKind::Arrival => ("replica", "prompt_tokens"),
            EventKind::Admission => ("novel_tokens", "cached_tokens"),
            EventKind::Prefill => ("batch", "queue_depth"),
            EventKind::Decode => ("batch", "tokens_per_seq"),
            EventKind::SdRound => ("batch", "accept_len"),
            EventKind::Completion => ("output_tokens", "e2e_s"),
            EventKind::Preemption => ("", ""),
            EventKind::Failover => ("generated_tokens", ""),
            EventKind::Crash => ("running", "queued"),
            EventKind::Restart => ("", ""),
            EventKind::RolloutRound => ("accepted", "draft_len"),
            EventKind::WorkerState => ("worker", "state"),
            EventKind::Transfer => ("blocks", "dest"),
            EventKind::TransferAbort => ("blocks", "dest_crashed"),
            EventKind::ScaleUp => ("replica", "pool"),
            EventKind::ScaleDown => ("replica", "pool"),
            EventKind::Retire => ("replica", "pool"),
            EventKind::Probe => ("", ""),
            EventKind::Replay => ("requests", "tick_ns"),
            EventKind::BudgetExhausted => ("events", "budget"),
        }
    }
}

/// One recorded event. `seq` is a global monotone counter assigned by the
/// recorder at record time; it orders events across tracks in dumps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsEvent {
    /// Global record order (assigned by the recorder; 0 until recorded).
    pub seq: u64,
    /// Sim-time start of the event, seconds.
    pub ts_s: f64,
    /// Duration in sim seconds; 0 for instants.
    pub dur_s: f64,
    /// Timeline the event belongs to.
    pub track: Track,
    /// What happened.
    pub kind: EventKind,
    /// Request id, or [`NO_REQ`] for step/replica-scoped events.
    pub req: u64,
    /// First scalar arg; meaning per [`EventKind::arg_names`].
    pub a: f64,
    /// Second scalar arg; meaning per [`EventKind::arg_names`].
    pub b: f64,
}

impl ObsEvent {
    /// A zero-duration event at `ts_s`.
    pub fn instant(ts_s: f64, track: Track, kind: EventKind, req: u64) -> Self {
        ObsEvent {
            seq: 0,
            ts_s,
            dur_s: 0.0,
            track,
            kind,
            req,
            a: 0.0,
            b: 0.0,
        }
    }

    /// A duration event covering `[ts_s, ts_s + dur_s]`.
    pub fn span(ts_s: f64, dur_s: f64, track: Track, kind: EventKind, req: u64) -> Self {
        ObsEvent {
            dur_s,
            ..ObsEvent::instant(ts_s, track, kind, req)
        }
    }

    /// Attach the two scalar args.
    pub fn with_args(mut self, a: f64, b: f64) -> Self {
        self.a = a;
        self.b = b;
        self
    }
}
