//! Micro-autotuner for the shape-class kernel dispatch.
//!
//! [`autotune`] times every kernel variant in [`crate::dispatch`] on one
//! representative shape per (operation, shape class) pair and picks the
//! fastest, with a deterministic budget: a fixed number of warmup and timed
//! repetitions per candidate, fixed seeds for the operand data, and min-time
//! selection (ties keep the earlier candidate, so the default wins when
//! nothing beats it). Because every variant is bit-identical, tuning can never
//! change results — only speed — and installing the winning table is safe at
//! any point in a run.
//!
//! Tuned tables are persisted as per-target profiles
//! (`profiles/<arch>-<os>.json`, schema `tlt-dispatch-v1`) so CI and the perf
//! pipeline run with a *pinned* table instead of re-tuning on whatever
//! hardware they land on. The profile format is a tiny hand-rolled JSON
//! subset (objects and strings only) because the vendored serde shim carries
//! no serializer backend; [`save_profile`] and [`load_profile`] round-trip
//! through it exactly.

use crate::dispatch::{ColKernel, DispatchTable, DotKernel, KernelOp, RowKernel, ShapeClass};
use crate::tensor::Mat;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Deterministic tuning budget: repetition counts per candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutotuneConfig {
    /// Untimed repetitions per candidate before measurement starts.
    pub warmup_reps: usize,
    /// Timed repetitions per candidate; the minimum is the candidate's score.
    pub timed_reps: usize,
}

impl Default for AutotuneConfig {
    fn default() -> Self {
        AutotuneConfig {
            warmup_reps: 2,
            timed_reps: 7,
        }
    }
}

impl AutotuneConfig {
    /// A reduced budget for smoke tests and CI.
    pub fn quick() -> Self {
        AutotuneConfig {
            warmup_reps: 1,
            timed_reps: 3,
        }
    }
}

/// One timed candidate from an autotune run.
#[derive(Debug, Clone)]
pub struct AutotuneTiming {
    /// Which kernel family was timed.
    pub op: KernelOp,
    /// Which shape class the representative shape belongs to.
    pub class: ShapeClass,
    /// Profile-file name of the candidate variant.
    pub variant: &'static str,
    /// Best (minimum) time over the timed repetitions, in nanoseconds.
    pub best_nanos: u128,
    /// Whether this candidate won its (op, class) slot.
    pub selected: bool,
}

/// Result of an autotune run: the winning table plus every measurement.
#[derive(Debug, Clone)]
pub struct AutotuneReport {
    /// The fastest variant per (operation, shape class).
    pub table: DispatchTable,
    /// All candidate timings, in candidate order per slot.
    pub timings: Vec<AutotuneTiming>,
}

/// Representative `(rows, k, n)` per shape class, shared by all three kernel
/// families: the decode mat-vec, a drafter-sized small GEMM, a prefill-sized
/// large GEMM, and a long-context reduction. These mirror the pinned perf
/// workloads so the tuned table optimises what the benchmarks measure.
fn representative_shape(class: ShapeClass) -> (usize, usize, usize) {
    match class {
        ShapeClass::MatVec => (1, 32, 96),
        ShapeClass::SmallGemm => (20, 96, 32),
        ShapeClass::LargeGemm => (96, 64, 128),
        ShapeClass::LongK => (1, 2048, 96),
    }
}

/// Inner iterations per timed repetition, chosen so each repetition performs
/// roughly the same amount of arithmetic (~2 MFLOP) regardless of shape.
/// Timing a single ~200ns mat-vec call would be dominated by timer overhead
/// and the tuner would select noise; amortising over a deterministic,
/// shape-derived count keeps the budget fixed per target.
fn inner_reps(rows: usize, k: usize, n: usize) -> u32 {
    let flops = 2.0 * rows.max(1) as f64 * k.max(1) as f64 * n.max(1) as f64;
    (2.0e6 / flops).clamp(1.0, 1024.0) as u32
}

/// Times `inner` back-to-back calls of `f` per repetition over the configured
/// budget and returns the minimum per-call time in nanoseconds.
fn best_time<F: FnMut()>(config: &AutotuneConfig, inner: u32, mut f: F) -> u128 {
    for _ in 0..config.warmup_reps {
        f();
    }
    let mut best = u128::MAX;
    for _ in 0..config.timed_reps.max(1) {
        let start = Instant::now();
        for _ in 0..inner.max(1) {
            f();
        }
        best = best.min(start.elapsed().as_nanos() / u128::from(inner.max(1)));
    }
    best
}

/// Benchmarks every kernel variant per shape class with a deterministic budget
/// and returns the fastest table. Pure measurement: the caller decides whether
/// to [`DispatchTable::install`] the result.
pub fn autotune(config: &AutotuneConfig) -> AutotuneReport {
    let mut table = DispatchTable::default();
    let mut timings = Vec::new();

    for class in ShapeClass::all() {
        let (rows, k, n) = representative_shape(class);
        let inner = inner_reps(rows, k, n);
        let mut rng = StdRng::seed_from_u64(0x7a77 + class as u64);

        // Row product: rows x k times k x n.
        let a = Mat::random_uniform(rows, k, 1.0, &mut rng);
        let b = Mat::random_uniform(k, n, 1.0, &mut rng);
        let mut out = Mat::zeros(rows, n);
        let mut best = u128::MAX;
        for kernel in RowKernel::all() {
            let nanos = best_time(config, inner, || a.matmul_into_using(&b, &mut out, kernel));
            let selected = nanos < best;
            if selected {
                best = nanos;
                table.row[class as usize] = kernel;
            }
            timings.push(AutotuneTiming {
                op: KernelOp::RowProduct,
                class,
                variant: kernel.name(),
                best_nanos: nanos,
                selected,
            });
        }

        // Dot product: rows x k times (n x k)^T.
        let bt = Mat::random_uniform(n, k, 1.0, &mut rng);
        let mut out_t = Mat::zeros(rows, n);
        let mut best = u128::MAX;
        for kernel in DotKernel::all() {
            let nanos = best_time(config, inner, || {
                a.matmul_transposed_into_using(&bt, &mut out_t, kernel)
            });
            let selected = nanos < best;
            if selected {
                best = nanos;
                table.dot[class as usize] = kernel;
            }
            timings.push(AutotuneTiming {
                op: KernelOp::DotProduct,
                class,
                variant: kernel.name(),
                best_nanos: nanos,
                selected,
            });
        }

        // Column product: (k x rows)^T times k x n — the training backward
        // contraction, with `k` as the shared row dimension.
        let at = Mat::random_uniform(k, rows, 1.0, &mut rng);
        let bc = Mat::random_uniform(k, n, 1.0, &mut rng);
        let mut out_c = Mat::zeros(rows, n);
        let mut best = u128::MAX;
        for kernel in ColKernel::all() {
            let nanos = best_time(config, inner, || {
                at.transposed_matmul_into_using(&bc, &mut out_c, kernel)
            });
            let selected = nanos < best;
            if selected {
                best = nanos;
                table.col[class as usize] = kernel;
            }
            timings.push(AutotuneTiming {
                op: KernelOp::ColProduct,
                class,
                variant: kernel.name(),
                best_nanos: nanos,
                selected,
            });
        }
    }

    // `selected` above marks running winners; keep only the final winner per
    // (op, class) slot.
    for t in &mut timings {
        let winner = match t.op {
            KernelOp::RowProduct => table.row[t.class as usize].name(),
            KernelOp::DotProduct => table.dot[t.class as usize].name(),
            KernelOp::ColProduct => table.col[t.class as usize].name(),
        };
        t.selected = t.variant == winner;
    }

    AutotuneReport { table, timings }
}

/// Schema tag written to and required from every profile file.
pub const PROFILE_SCHEMA: &str = "tlt-dispatch-v1";

/// Canonical name of the machine this process runs on, e.g. `x86_64-linux`.
pub fn target_name() -> String {
    format!("{}-{}", std::env::consts::ARCH, std::env::consts::OS)
}

/// Default committed profile location for a target: `profiles/<target>.json`
/// relative to the working directory (the workspace root in CI).
pub fn default_profile_path() -> PathBuf {
    PathBuf::from("profiles").join(format!("{}.json", target_name()))
}

/// Renders a dispatch table as a `tlt-dispatch-v1` profile document.
pub fn profile_json(target: &str, table: &DispatchTable) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{PROFILE_SCHEMA}\",\n"));
    s.push_str(&format!("  \"target\": \"{}\",\n", escape(target)));
    s.push_str("  \"table\": {\n");
    for (oi, op) in KernelOp::all().into_iter().enumerate() {
        s.push_str(&format!("    \"{}\": {{\n", op.name()));
        for (ci, class) in ShapeClass::all().into_iter().enumerate() {
            let variant = match op {
                KernelOp::RowProduct => table.row[class as usize].name(),
                KernelOp::DotProduct => table.dot[class as usize].name(),
                KernelOp::ColProduct => table.col[class as usize].name(),
            };
            let comma = if ci + 1 < ShapeClass::all().len() {
                ","
            } else {
                ""
            };
            s.push_str(&format!(
                "      \"{}\": \"{variant}\"{comma}\n",
                class.name()
            ));
        }
        let comma = if oi + 1 < KernelOp::all().len() {
            ","
        } else {
            ""
        };
        s.push_str(&format!("    }}{comma}\n"));
    }
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Parses a `tlt-dispatch-v1` profile document, returning the target name and
/// the dispatch table. Strict: unknown schema tags, operations, shape classes,
/// or variant names are errors, and every (op, class) slot must be present, so
/// a stale committed profile fails loudly instead of half-applying.
pub fn parse_profile(text: &str) -> Result<(String, DispatchTable), String> {
    let root = JsonMini::parse(text)?;
    let schema = root.get_str("schema")?;
    if schema != PROFILE_SCHEMA {
        return Err(format!(
            "unsupported profile schema {schema:?} (expected {PROFILE_SCHEMA:?})"
        ));
    }
    let target = root.get_str("target")?.to_string();
    let table_obj = root.get_obj("table")?;
    let mut table = DispatchTable::default();
    let mut slots_seen = 0usize;
    for (op_name, op_val) in table_obj.entries()? {
        let op =
            KernelOp::from_name(op_name).ok_or_else(|| format!("unknown kernel op {op_name:?}"))?;
        let op_obj = op_val
            .as_obj()
            .ok_or_else(|| format!("op {op_name:?} is not an object"))?;
        for (class_name, variant_val) in op_obj.entries()? {
            let class = ShapeClass::from_name(class_name)
                .ok_or_else(|| format!("unknown shape class {class_name:?}"))?;
            let variant = variant_val
                .as_str()
                .ok_or_else(|| format!("variant for {op_name}/{class_name} is not a string"))?;
            if !table.set_by_name(op, class, variant) {
                return Err(format!(
                    "unknown variant {variant:?} for {op_name}/{class_name}"
                ));
            }
            slots_seen += 1;
        }
    }
    let expected = KernelOp::all().len() * ShapeClass::all().len();
    if slots_seen != expected {
        return Err(format!(
            "profile names {slots_seen} dispatch slots, expected {expected}"
        ));
    }
    Ok((target, table))
}

/// Writes `table` to `path` as a `tlt-dispatch-v1` profile, creating parent
/// directories as needed.
pub fn save_profile(path: &Path, target: &str, table: &DispatchTable) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, profile_json(target, table))
}

/// Loads a `tlt-dispatch-v1` profile from `path`, returning the recorded
/// target name and the table (not installed; the caller decides).
pub fn load_profile(path: &Path) -> io::Result<(String, DispatchTable)> {
    let text = std::fs::read_to_string(path)?;
    parse_profile(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

/// Minimal JSON value for the profile format: objects and strings only (all
/// profile leaves are variant names). The vendored serde shim has no
/// deserializer backend, and this ~60-line parser covers exactly the subset
/// [`profile_json`] emits.
enum JsonMini {
    Str(String),
    Obj(Vec<(String, JsonMini)>),
}

impl JsonMini {
    fn parse(text: &str) -> Result<JsonMini, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = Self::parse_value(bytes, &mut pos)?;
        Self::skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonMini, String> {
        Self::skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => Self::parse_obj(bytes, pos),
            Some(b'"') => Ok(JsonMini::Str(Self::parse_string(bytes, pos)?)),
            Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<JsonMini, String> {
        *pos += 1; // consume '{'
        let mut entries = Vec::new();
        Self::skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(JsonMini::Obj(entries));
        }
        loop {
            Self::skip_ws(bytes, pos);
            let key = Self::parse_string(bytes, pos)?;
            Self::skip_ws(bytes, pos);
            if bytes.get(*pos) != Some(&b':') {
                return Err(format!("expected ':' at byte {}", *pos));
            }
            *pos += 1;
            let value = Self::parse_value(bytes, pos)?;
            entries.push((key, value));
            Self::skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(JsonMini::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {}", *pos));
        }
        *pos += 1;
        let mut out = String::new();
        while let Some(&c) = bytes.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => match bytes.get(*pos) {
                    Some(&e @ (b'"' | b'\\' | b'/')) => {
                        out.push(e as char);
                        *pos += 1;
                    }
                    _ => return Err(format!("unsupported escape at byte {}", *pos)),
                },
                _ => out.push(c as char),
            }
        }
        Err("unterminated string".to_string())
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            JsonMini::Str(s) => Some(s),
            JsonMini::Obj(_) => None,
        }
    }

    fn as_obj(&self) -> Option<&JsonMini> {
        match self {
            JsonMini::Obj(_) => Some(self),
            JsonMini::Str(_) => None,
        }
    }

    fn entries(&self) -> Result<&[(String, JsonMini)], String> {
        match self {
            JsonMini::Obj(e) => Ok(e),
            JsonMini::Str(_) => Err("expected object".to_string()),
        }
    }

    fn get(&self, key: &str) -> Result<&JsonMini, String> {
        self.entries()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key {key:?}"))
    }

    fn get_str(&self, key: &str) -> Result<&str, String> {
        self.get(key)?
            .as_str()
            .ok_or_else(|| format!("key {key:?} is not a string"))
    }

    fn get_obj(&self, key: &str) -> Result<&JsonMini, String> {
        self.get(key)?
            .as_obj()
            .ok_or_else(|| format!("key {key:?} is not an object"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_round_trips_exactly() {
        let mut table = DispatchTable::default();
        table.row[ShapeClass::MatVec as usize] = RowKernel::Axpy;
        table.row[ShapeClass::LongK as usize] = RowKernel::KBlocked64;
        table.dot[ShapeClass::LargeGemm as usize] = DotKernel::Dot8;
        table.col[ShapeClass::SmallGemm as usize] = ColKernel::Tiled32;
        let text = profile_json("x86_64-linux", &table);
        let (target, parsed) = parse_profile(&text).expect("parse");
        assert_eq!(target, "x86_64-linux");
        assert_eq!(parsed, table);
        // Serialising the parsed table reproduces the document byte for byte.
        assert_eq!(profile_json(&target, &parsed), text);
    }

    #[test]
    fn parse_rejects_bad_profiles() {
        assert!(parse_profile("").is_err());
        assert!(parse_profile("{\"schema\": \"nope\"}").is_err());
        let missing_slots =
            format!("{{\"schema\": \"{PROFILE_SCHEMA}\", \"target\": \"t\", \"table\": {{}}}}");
        assert!(parse_profile(&missing_slots).is_err());
        let table = DispatchTable::default();
        let bad_variant = profile_json("t", &table).replace("tiled64", "tiled63");
        assert!(parse_profile(&bad_variant).is_err());
    }

    #[test]
    fn save_and_load_round_trip_through_disk() {
        let mut table = DispatchTable::default();
        table.row[ShapeClass::MatVec as usize] = RowKernel::Axpy;
        let dir = std::env::temp_dir().join("tlt-autotune-test");
        let path = dir.join("profile.json");
        save_profile(&path, "testbox", &table).expect("save");
        let (target, loaded) = load_profile(&path).expect("load");
        assert_eq!(target, "testbox");
        assert_eq!(loaded, table);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn autotune_runs_within_budget_and_returns_valid_table() {
        let report = autotune(&AutotuneConfig::quick());
        // Every (op, class) slot timed every candidate and selected exactly one.
        let slots = KernelOp::all().len() * ShapeClass::all().len();
        let candidates = (RowKernel::all().len() + DotKernel::all().len() + ColKernel::all().len())
            * ShapeClass::all().len();
        assert_eq!(report.timings.len(), candidates);
        let selected = report.timings.iter().filter(|t| t.selected).count();
        assert_eq!(selected, slots);
        // The report round-trips through the profile format.
        let text = profile_json(&target_name(), &report.table);
        let (_, parsed) = parse_profile(&text).expect("parse");
        assert_eq!(parsed, report.table);
    }
}
