//! Regenerates every table and figure of the TLT paper's evaluation section, plus
//! the online-serving study built on `tlt-serve`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p tlt-bench --release --bin experiments -- all [--quick]
//! cargo run -p tlt-bench --release --bin experiments -- fig11 table4 serving ...
//! cargo run -p tlt-bench --release --bin experiments -- serving --json out.json
//! cargo run -p tlt-bench --release --bin experiments -- serving --trace-out trace.json --metrics
//! cargo run -p tlt-bench --release --bin experiments -- perf [--quick] [--json BENCH_7.json] \
//!     [--autotune | --profile profiles/<target>.json] [--metrics]
//! cargo run -p tlt-bench --release --bin experiments -- chaos [--json chaos.json] \
//!     [--trace-out chaos_trace.json]
//! cargo run -p tlt-bench --release --bin experiments -- replay [--trace corpus/chat.tltr] \
//!     [--stream] [--rate-scale 2.0] [--write-corpus corpus] [--json replay.json]
//! cargo run -p tlt-bench --release --bin experiments -- replay --write-million trace.tltr
//! ```
//!
//! `--json <path>` additionally writes every produced table as machine-readable
//! JSON so the bench trajectory can be tracked across PRs. The `perf` subcommand
//! runs the pinned micro/e2e perf workloads instead and writes the repository's
//! `BENCH_<n>.json` trajectory point (see `tlt_bench::perf`).
//!
//! `--trace-out <path>` (serving, chaos, perf) installs a `tlt-obs` flight
//! recorder around the run and writes the retained events as Chrome
//! `trace_event` JSON — load it in `chrome://tracing` or Perfetto. Traces are
//! sim-time, so two runs with the same seed write byte-identical files.
//! `--metrics` prints an extra metrics summary table for those subcommands.
//!
//! Absolute numbers come from the simulated substrate (roofline GPU model + tiny
//! transformer), so they are not expected to match the paper's testbed; the *shape*
//! of every result (who wins, by roughly what factor, where crossovers fall) is the
//! reproduction target. See EXPERIMENTS.md for the paper-vs-measured comparison.

use tlt::{
    run_comparison, run_disagg_comparison, run_experiment, run_prefix_sharing_comparison,
    run_serving_comparison, run_token_experiment, ServingExperimentConfig, SystemKind,
    TokenExperimentConfig,
};
use tlt_bench::report::{Report, Table};
use tlt_bench::setups::{
    adaptive_acceptance, e2e_config, eagle_drafter_of, paper_testbed, qwen32b_h100_tp4, qwen7b_on,
    Scale,
};
use tlt_draft::{
    packing_stats, AcceptanceProfile, CheckpointMode, CheckpointStore, DataBuffer,
    DataBufferConfig, DrafterTrainer, FeatureSource, TrainerConfig, TrainingSample,
    TrainingStrategy,
};
use tlt_gpusim::{ClusterConfig, GpuType, LlmCostModel};
use tlt_model::{parallel_map, ModelConfig, ModelSpec, SamplingParams, TinyLm};
use tlt_rl::{PolicyTrainer, RlConfig, RolloutGroup};
use tlt_rollout::{
    default_batch_buckets, fixed_batch_speedup, measure_acceptance, simulate_rollout,
    single_request_throughput, vanilla_generate, CaptureMode, CudaGraphPool, SdManagerConfig,
    SdMode, SdStrategy, SimRolloutConfig, SpecDrafter,
};
use tlt_workload::{
    length_histogram, synthesize_bytedance_trace, LengthDistribution, LengthStats, TaskGenerator,
    TraceConfig, TraceSummary,
};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Selectors accepted on the command line, in presentation order.
const EXPERIMENTS: &[&str] = &[
    "fig1", "fig2", "fig11", "fig12", "fig13", "table1", "table2", "table3", "table4", "table5",
    "fig14", "fig15", "table6", "fig16", "fig17", "table7", "table8", "serving",
];

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let usage = || {
        eprintln!(
            "usage: experiments [--quick] [--json <path>] [--prefix-share <0..1>] [--disagg] \
             [--autotune] [--profile <path>] [--trace-out <path>] [--metrics] \
             [--trace <path>] [--stream] [--rate-scale <f>] [--write-corpus <dir>] \
             [--write-million <path>] [all | perf | chaos | replay | {}]",
            EXPERIMENTS.join(" | ")
        );
        std::process::exit(2);
    };
    // Extract value-carrying flags before selector parsing so their values are
    // not mistaken for experiment names.
    let mut args: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut prefix_share = 0.0f64;
    let mut autotune = false;
    let mut profile_path: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut metrics = false;
    let mut disagg = false;
    let mut replay_trace: Option<String> = None;
    let mut write_corpus: Option<String> = None;
    let mut write_million: Option<String> = None;
    let mut stream = false;
    let mut rate_scale: Option<f64> = None;
    let mut iter = raw.into_iter();
    while let Some(arg) = iter.next() {
        if arg == "--disagg" {
            disagg = true;
        } else if arg == "--trace" {
            match iter.next() {
                Some(path) if !path.starts_with("--") => replay_trace = Some(path),
                _ => {
                    eprintln!("error: --trace requires a path");
                    usage();
                }
            }
        } else if arg == "--write-corpus" {
            match iter.next() {
                Some(dir) if !dir.starts_with("--") => write_corpus = Some(dir),
                _ => {
                    eprintln!("error: --write-corpus requires a directory");
                    usage();
                }
            }
        } else if arg == "--stream" {
            stream = true;
        } else if arg == "--write-million" {
            match iter.next() {
                Some(path) if !path.starts_with("--") => write_million = Some(path),
                _ => {
                    eprintln!("error: --write-million requires a path");
                    usage();
                }
            }
        } else if arg == "--rate-scale" {
            match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v.is_finite() && v > 0.0 => rate_scale = Some(v),
                _ => {
                    eprintln!("error: --rate-scale requires a positive factor");
                    usage();
                }
            }
        } else if arg == "--trace-out" {
            match iter.next() {
                Some(path) if !path.starts_with("--") => trace_out = Some(path),
                _ => {
                    eprintln!("error: --trace-out requires a path");
                    usage();
                }
            }
        } else if arg == "--metrics" {
            metrics = true;
        } else if arg == "--json" {
            match iter.next() {
                Some(path) if !path.starts_with("--") => json_path = Some(path),
                _ => {
                    eprintln!("error: --json requires a path");
                    usage();
                }
            }
        } else if arg == "--prefix-share" {
            match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if (0.0..=1.0).contains(&v) => prefix_share = v,
                _ => {
                    eprintln!("error: --prefix-share requires a fraction in [0, 1]");
                    usage();
                }
            }
        } else if arg == "--autotune" {
            autotune = true;
        } else if arg == "--profile" {
            match iter.next() {
                Some(path) if !path.starts_with("--") => profile_path = Some(path),
                _ => {
                    eprintln!("error: --profile requires a path");
                    usage();
                }
            }
        } else {
            args.push(arg);
        }
    }
    if autotune && profile_path.is_some() {
        eprintln!("error: --autotune and --profile are mutually exclusive");
        usage();
    }
    let scale = Scale::from_args(&args);
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    for flag in args.iter().filter(|a| a.starts_with("--")) {
        if flag != "--quick" {
            eprintln!("error: unknown flag '{flag}'");
            usage();
        }
    }

    // `perf` is a standalone subcommand: it runs the pinned perf workloads and
    // writes the BENCH trajectory JSON (default BENCH_7.json, overridable with
    // --json) instead of regenerating paper tables. `--profile <path>` installs
    // a committed dispatch profile first (how CI runs with a pinned table);
    // `--autotune` re-tunes on this machine, installs the winners, and saves
    // them to the target's default profile path.
    if selected.iter().any(|s| s == "perf") {
        if selected.len() > 1 {
            eprintln!("error: 'perf' cannot be combined with other selectors");
            usage();
        }
        let dispatch_source = if let Some(profile) = &profile_path {
            match tlt_model::load_profile(std::path::Path::new(profile)) {
                Ok((target, table)) => {
                    table.install();
                    println!("installed dispatch profile {profile} (target {target})");
                }
                Err(e) => {
                    eprintln!("error: failed to load dispatch profile {profile}: {e}");
                    std::process::exit(1);
                }
            }
            format!("profile:{profile}")
        } else if autotune {
            let budget = if scale == Scale::Full {
                tlt_model::AutotuneConfig::default()
            } else {
                tlt_model::AutotuneConfig::quick()
            };
            let report = tlt_model::autotune(&budget);
            println!("autotune timings (best ns/call, * = selected):");
            for t in &report.timings {
                println!(
                    "  {:>3} / {:<10} {:<10} {:>9} ns{}",
                    t.op.name(),
                    t.class.name(),
                    t.variant,
                    t.best_nanos,
                    if t.selected { "  *" } else { "" }
                );
            }
            report.table.install();
            let path = tlt_model::autotune::default_profile_path();
            let target = tlt_model::autotune::target_name();
            if let Err(e) = tlt_model::save_profile(&path, &target, &report.table) {
                eprintln!("error: failed to save dispatch profile: {e}");
                std::process::exit(1);
            }
            println!(
                "autotuned dispatch for {target}, saved to {}",
                path.display()
            );
            "autotune".to_string()
        } else {
            "default".to_string()
        };
        let path = json_path.unwrap_or_else(|| "BENCH_7.json".to_string());
        // Both observability taps are strictly opt-in here: the committed perf
        // trajectory (and the CI overhead gate) measures the disabled paths.
        if metrics {
            tlt_obs::hooks::reset();
            tlt_obs::hooks::enable();
        }
        if trace_out.is_some() {
            tlt_obs::install(tlt_obs::FlightRecorder::new(TRACE_EVENTS_PER_TRACK));
        }
        let result = tlt_bench::run_perf(scale, &path, &dispatch_source);
        if let Some(trace_path) = &trace_out {
            let events = tlt_obs::uninstall().map(|r| r.events()).unwrap_or_default();
            write_trace(trace_path, &tlt_obs::chrome_trace(&events));
        }
        if metrics {
            tlt_obs::hooks::disable();
            perf_metrics_table().print();
        }
        match result {
            Ok(_) => return,
            Err(e) => {
                eprintln!("error: failed to write perf report to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if autotune || profile_path.is_some() {
        eprintln!("error: --autotune/--profile only apply to the 'perf' subcommand");
        usage();
    }

    // `chaos` is a standalone subcommand: it runs the pinned fault-injection
    // scenario matrix, prints (and optionally exports) the per-scenario
    // invariant verdicts, and exits non-zero if any invariant was violated —
    // the contract the `chaos-suite` CI job gates on.
    if selected.iter().any(|s| s == "chaos") {
        if selected.len() > 1 {
            eprintln!("error: 'chaos' cannot be combined with other selectors");
            usage();
        }
        let failures = chaos(json_path.as_deref(), trace_out.as_deref(), metrics);
        std::process::exit(if failures == 0 { 0 } else { 1 });
    }

    // `replay` is a standalone subcommand: it re-drives the pinned replay
    // deployment from recorded workload traces (a `.tltr` file via --trace, or
    // the whole in-memory corpus) and emits the cbp-style size/throughput
    // table. `--write-corpus <dir>` regenerates the committed corpus instead.
    if selected.iter().any(|s| s == "replay") {
        if selected.len() > 1 {
            eprintln!("error: 'replay' cannot be combined with other selectors");
            usage();
        }
        let code = replay_cmd(
            replay_trace.as_deref(),
            write_corpus.as_deref(),
            write_million.as_deref(),
            stream,
            rate_scale,
            json_path.as_deref(),
        );
        std::process::exit(code);
    }
    if replay_trace.is_some()
        || write_corpus.is_some()
        || write_million.is_some()
        || stream
        || rate_scale.is_some()
    {
        eprintln!(
            "error: --trace/--stream/--write-corpus/--write-million/--rate-scale only apply \
             to 'replay'"
        );
        usage();
    }

    for sel in &selected {
        if sel != "all" && !EXPERIMENTS.contains(&sel.as_str()) {
            eprintln!("error: unknown experiment '{sel}'");
            usage();
        }
    }
    let run_all = selected.is_empty() || selected.iter().any(|s| s == "all");
    let want = |name: &str| run_all || selected.iter().any(|s| s == name);
    // perf and chaos have already returned; of the table selectors only the
    // serving study is instrumented.
    if (trace_out.is_some() || metrics) && !want("serving") {
        eprintln!("error: --trace-out/--metrics apply to the serving, chaos and perf subcommands");
        usage();
    }
    if disagg && !want("serving") {
        eprintln!("error: --disagg applies to the serving subcommand");
        usage();
    }

    println!("TLT reproduction experiment harness (scale: {scale:?})");
    let mut report = Report::new();

    if want("fig1") {
        fig1(scale, &mut report);
    }
    if want("fig2") {
        fig2(scale, &mut report);
    }
    if want("fig11") {
        fig11(scale, &mut report);
    }
    if want("fig12") {
        fig12(scale, &mut report);
    }
    if want("fig13") {
        fig13(&mut report);
    }
    if want("table1") {
        table1(&mut report);
    }
    if want("table2") {
        table2(&mut report);
    }
    if want("table3") {
        table3(scale, &mut report);
    }
    if want("table4") {
        table4(&mut report);
    }
    if want("table5") {
        table5(&mut report);
    }
    if want("fig14") {
        fig14(&mut report);
    }
    if want("fig15") {
        fig15(scale, &mut report);
    }
    // Table 6 and Figure 16 come from the same token-level experiment; run it once
    // if either (or both) is selected.
    if want("table6") || want("fig16") {
        table6_fig16(scale, &mut report);
    }
    if want("fig17") {
        fig17(&mut report);
    }
    if want("table7") {
        table7(scale, &mut report);
    }
    if want("table8") {
        table8(scale, &mut report);
    }
    if want("serving") {
        serving(
            scale,
            &mut report,
            prefix_share,
            disagg,
            trace_out.as_deref(),
            metrics,
        );
    }

    if let Some(path) = json_path {
        match report.write_json(&path) {
            Ok(()) => println!("\nwrote {} tables as JSON to {path}", report.num_tables()),
            Err(e) => {
                eprintln!("error: failed to write JSON to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Figure 1(a): response-length distribution and RL step time breakdown.
fn fig1(scale: Scale, report: &mut Report) {
    let mut rng = StdRng::seed_from_u64(1);
    let dist = LengthDistribution::paper_fig1();
    let n = if scale == Scale::Full { 20_000 } else { 2_000 };
    let lengths = dist.sample_many(n, &mut rng);
    let stats = LengthStats::from_lengths(&lengths);
    let (edges, pdf) = length_histogram(&lengths, 30_000, 15);
    let mut t = Table::new(
        "Figure 1(a) — rollout response-length PDF (max 30K)",
        &["length <=", "fraction"],
    );
    for (e, f) in edges.iter().zip(pdf.iter()) {
        t.add_row(vec![format!("{e}"), format!("{f:.4}")]);
    }
    report.add(t);
    println!(
        "length stats: p50={:.0} p75={:.0} p95={:.0} max={} (under-utilised fraction {:.2})",
        stats.p50,
        stats.p75,
        stats.p95,
        stats.max,
        stats.underutilized_fraction()
    );

    let config = e2e_config(ModelSpec::qwen2_5_7b(), paper_testbed(), scale);
    let verl = run_experiment(SystemKind::Verl, &config);
    let ours = run_experiment(SystemKind::Tlt, &config);
    let mut t = Table::new(
        "Figure 1(a) — normalized RL step time breakdown",
        &["system", "rollout", "other", "rollout fraction"],
    );
    for r in [&verl, &ours] {
        let b = r.mean_breakdown();
        let total = b.total_s();
        t.add_row(vec![
            r.system.name().to_string(),
            format!("{:.2}", b.rollout_s / total),
            format!("{:.2}", (b.inference_s + b.training_s + b.other_s) / total),
            format!("{:.2}", b.rollout_fraction()),
        ]);
    }
    report.add(t);
}

/// Figure 2: ByteDance-style production trace.
fn fig2(scale: Scale, report: &mut Report) {
    let config = TraceConfig {
        num_steps: if scale == Scale::Full { 385 } else { 60 },
        responses_per_step: if scale == Scale::Full { 512 } else { 128 },
        length_cap: 20_480,
        seed: 2026,
    };
    let trace = synthesize_bytedance_trace(config);
    let summary = TraceSummary::from_trace(&trace, config.length_cap);
    let mut t = Table::new(
        "Figure 2 — synthesised production trace (per-step percentiles, every 32nd step)",
        &["step", "p50", "p75", "max"],
    );
    for s in trace.iter().step_by(32) {
        t.add_row(vec![
            format!("{}", s.step),
            format!("{:.0}", s.stats.p50),
            format!("{:.0}", s.stats.p75),
            format!("{}", s.stats.max),
        ]);
    }
    report.add(t);
    println!(
        "steps hitting the {}-token cap: {:.0}% | mean under-utilised fraction: {:.2}",
        config.length_cap,
        summary.steps_hitting_cap * 100.0,
        summary.mean_underutilized
    );
}

/// Figure 11: end-to-end training speed across systems, models and GPU types.
fn fig11(scale: Scale, report: &mut Report) {
    for gpu in [GpuType::H100, GpuType::A100] {
        let cluster = ClusterConfig {
            gpu_type: gpu,
            ..paper_testbed()
        };
        let mut t = Table::new(
            &format!(
                "Figure 11 — end-to-end training speed, {} x64",
                gpu.spec().name
            ),
            &[
                "model",
                "Open-R1",
                "VeRL",
                "TLT-Base",
                "TLT (Ours)",
                "TLT speedup vs VeRL",
            ],
        );
        let models = if scale == Scale::Full {
            ModelSpec::paper_targets()
        } else {
            vec![ModelSpec::qwen2_5_7b(), ModelSpec::qwen2_5_32b()]
        };
        for model in models {
            let mut config = e2e_config(model.clone(), cluster, scale);
            // Larger models use a larger TP degree, as in the paper.
            config.cluster.tp = if model.params > 5e10 {
                8
            } else if model.params > 2e10 {
                4
            } else {
                2
            };
            let results = run_comparison(&config);
            let verl = results
                .iter()
                .find(|r| r.system == SystemKind::Verl)
                .expect("verl present")
                .throughput_tokens_per_s;
            let norm = |k: SystemKind| {
                results
                    .iter()
                    .find(|r| r.system == k)
                    .map(|r| r.throughput_tokens_per_s / verl)
                    .unwrap_or(0.0)
            };
            t.add_row(vec![
                model.name.clone(),
                format!("{:.2}", norm(SystemKind::OpenR1)),
                format!("{:.2}", norm(SystemKind::Verl)),
                format!("{:.2}", norm(SystemKind::TltBase)),
                format!("{:.2}", norm(SystemKind::Tlt)),
                format!("{:.2}x", norm(SystemKind::Tlt)),
            ]);
        }
        report.add(t);
    }
}

/// Figure 12: reward curves of VeRL vs TLT (token-level tiny-model RL).
fn fig12(scale: Scale, report: &mut Report) {
    let steps = if scale == Scale::Full { 12 } else { 4 };
    let mut base = TokenExperimentConfig::small(false, false);
    base.num_steps = steps;
    base.prompts_per_step = 8;
    let (verl, _, _) = run_token_experiment(&base);
    let mut ours = TokenExperimentConfig::small(true, true);
    ours.num_steps = steps;
    ours.prompts_per_step = 8;
    let (tlt, _, _) = run_token_experiment(&ours);
    let mut t = Table::new(
        "Figure 12 — average reward per RL step (tiny-model substrate)",
        &[
            "step",
            "VeRL (vanilla rollouts)",
            "TLT (speculative rollouts)",
        ],
    );
    for (i, (a, b)) in verl
        .reward_curve
        .iter()
        .zip(tlt.reward_curve.iter())
        .enumerate()
    {
        t.add_row(vec![format!("{i}"), format!("{a:.3}"), format!("{b:.3}")]);
    }
    report.add(t);
    println!(
        "mean reward: VeRL {:.3} vs TLT {:.3} (losslessness: same learning signal)",
        verl.reward_curve.iter().sum::<f64>() / verl.reward_curve.len() as f64,
        tlt.reward_curve.iter().sum::<f64>() / tlt.reward_curve.len() as f64
    );
}

/// Figure 13: accept length and speedup vs draft depth and tokens-to-verify.
fn fig13(report: &mut Report) {
    let cost = qwen32b_h100_tp4();
    let drafter = eagle_drafter_of(&cost);
    let acceptance = adaptive_acceptance();
    let mut t = Table::new(
        "Figure 13 — effect of SD hyperparameters (Qwen-32B, TP=4, bs=1, topK=8)",
        &[
            "draft depth",
            "tokens to verify",
            "accept length",
            "speedup",
        ],
    );
    for &depth in &[2usize, 4, 6, 8, 10, 12] {
        for &verify in &[16usize, 32, 48, 64] {
            let strategy = SdStrategy {
                draft_depth: depth,
                top_k: 8,
                tokens_to_verify: verify,
            };
            let accept = acceptance.expected_accept_len_tree(depth, 8, verify);
            let speedup = fixed_batch_speedup(&cost, &drafter, &acceptance, 1, strategy, 4096);
            t.add_row(vec![
                format!("{depth}"),
                format!("{verify}"),
                format!("{accept:.2}"),
                format!("{speedup:.2}x"),
            ]);
        }
    }
    report.add(t);
}

/// Table 1: effect of topK.
fn table1(report: &mut Report) {
    let cost = qwen32b_h100_tp4();
    let drafter = eagle_drafter_of(&cost);
    let acceptance = adaptive_acceptance();
    let mut t = Table::new(
        "Table 1 — effect of topK (depth=12, verify=64, bs=1)",
        &["topK", "accept length", "speedup"],
    );
    for &k in &[4usize, 6, 8, 10, 12, 16] {
        let strategy = SdStrategy {
            draft_depth: 12,
            top_k: k,
            tokens_to_verify: 64,
        };
        let accept = acceptance.expected_accept_len_tree(12, k, 64);
        let speedup = fixed_batch_speedup(&cost, &drafter, &acceptance, 1, strategy, 4096);
        t.add_row(vec![
            format!("{k}"),
            format!("{accept:.2}"),
            format!("{speedup:.2}x"),
        ]);
    }
    report.add(t);
}

/// Table 2: rollout throughput with/without SD across GPU types.
fn table2(report: &mut Report) {
    let mut t = Table::new(
        "Table 2 — rollout throughput (tokens/s), Qwen2.5-7B, bs=1, TP=1",
        &["GPU", "w/ SD", "w/o SD", "speedup"],
    );
    let strategy = SdStrategy {
        draft_depth: 8,
        top_k: 8,
        tokens_to_verify: 48,
    };
    for gpu in GpuType::table2_set() {
        let cost = qwen7b_on(gpu);
        let drafter = eagle_drafter_of(&cost);
        let (with_sd, without) =
            single_request_throughput(&cost, &drafter, &adaptive_acceptance(), strategy, 256, 4096);
        t.add_row(vec![
            gpu.spec().name.to_string(),
            format!("{with_sd:.0}"),
            format!("{without:.0}"),
            format!("{:.2}x", with_sd / without),
        ]);
    }
    report.add(t);
}

/// Table 3: end-to-end speedup across cluster scales.
fn table3(scale: Scale, report: &mut Report) {
    let mut t = Table::new(
        "Table 3 — end-to-end TLT speedup over VeRL across cluster scales",
        &["model", "1 node", "2 nodes", "4 nodes", "8 nodes"],
    );
    for (model, tp) in [
        (ModelSpec::qwen2_5_7b(), 2usize),
        (ModelSpec::qwen2_5_32b(), 8),
    ] {
        let mut cells = vec![model.name.clone()];
        for nodes in [1usize, 2, 4, 8] {
            let cluster = ClusterConfig {
                num_nodes: nodes,
                gpus_per_node: 8,
                gpu_type: GpuType::H100,
                tp,
                internode_gbps: 50.0,
            };
            let config = e2e_config(model.clone(), cluster, scale);
            if !cluster.fits(&model, config.requests_per_step(), 32_768) {
                cells.push("OOM".to_string());
                continue;
            }
            let verl = run_experiment(SystemKind::Verl, &config);
            let ours = run_experiment(SystemKind::Tlt, &config);
            cells.push(format!("{:.2}x", ours.speedup_over(&verl)));
        }
        t.add_row(cells);
    }
    report.add(t);
}

/// Table 4: SD speedup vs batch size and tokens-to-verify.
fn table4(report: &mut Report) {
    let cost = qwen32b_h100_tp4();
    let drafter = eagle_drafter_of(&cost);
    let acceptance = adaptive_acceptance();
    let mut t = Table::new(
        "Table 4 — SD speedup vs batch size (Qwen-32B, TP=4, depth=10, topK=8)",
        &[
            "batch size",
            "verify=16",
            "verify=32",
            "verify=48",
            "verify=64",
        ],
    );
    for &batch in &[1usize, 2, 4, 8, 16, 32] {
        let mut cells = vec![format!("{batch}")];
        for &verify in &[16usize, 32, 48, 64] {
            let strategy = SdStrategy {
                draft_depth: 10,
                top_k: 8,
                tokens_to_verify: verify,
            };
            let speedup = fixed_batch_speedup(&cost, &drafter, &acceptance, batch, strategy, 4096);
            cells.push(format!("{speedup:.2}x"));
        }
        t.add_row(cells);
    }
    report.add(t);
}

/// Table 5: CUDAGraph memory footprint.
fn table5(report: &mut Report) {
    let cost = LlmCostModel::new(ModelSpec::llama3_8b(), GpuType::H100.spec(), 4);
    let drafter = cost.model.eagle_drafter();
    let strategies = SdStrategy::default_set();
    let buckets = default_batch_buckets();
    let mut t = Table::new(
        "Table 5 — CUDAGraph memory footprint (Llama-3-8B, TP=4, 4 strategies)",
        &["method", "memory (GB)", "captured graphs"],
    );
    for (name, mode) in [
        ("Single Strategy", CaptureMode::SingleStrategy),
        (
            "Vanilla Multiple Strategies",
            CaptureMode::VanillaMultiStrategy,
        ),
        ("Bucketed CUDAGraph", CaptureMode::Bucketed),
    ] {
        let pool = CudaGraphPool::plan(mode, &strategies, &buckets, &cost, &drafter);
        t.add_row(vec![
            name.to_string(),
            format!("{:.2}", pool.total_memory_gb()),
            format!("{}", pool.num_graphs()),
        ]);
    }
    report.add(t);
}

/// Figure 14: adaptive SD case study (running-request profile).
fn fig14(report: &mut Report) {
    let cost = qwen32b_h100_tp4();
    let mut rng = StdRng::seed_from_u64(14);
    let dist = LengthDistribution::LongTailMixture {
        mu: 7.0,
        sigma: 0.9,
        truncation_mass: 0.02,
        max_len: 16_384,
    };
    let lengths = dist.sample_many(128, &mut rng);
    let baseline = simulate_rollout(&SimRolloutConfig::vanilla(cost.clone()), &lengths);
    let adaptive = simulate_rollout(
        &SimRolloutConfig::vanilla(cost.clone()).with_sd_mode(SdMode::Adaptive {
            config: SdManagerConfig::default(),
        }),
        &lengths,
    );
    let no_elastic = simulate_rollout(
        &SimRolloutConfig::vanilla(cost).with_sd_mode(SdMode::Static {
            strategy: SdStrategy::default(),
            threshold: usize::MAX,
        }),
        &lengths,
    );
    let mut t = Table::new(
        "Figure 14 — rollout of 128 requests (Qwen-32B, TP=4)",
        &[
            "configuration",
            "rollout time (s)",
            "speedup",
            "SD activation (s)",
        ],
    );
    t.add_row(vec![
        "Baseline (no SD)".to_string(),
        format!("{:.0}", baseline.total_time_s),
        "1.00x".to_string(),
        "-".to_string(),
    ]);
    t.add_row(vec![
        "Always-on SD (ablation)".to_string(),
        format!("{:.0}", no_elastic.total_time_s),
        format!("{:.2}x", no_elastic.speedup_over(&baseline)),
        "0".to_string(),
    ]);
    t.add_row(vec![
        "Adaptive SD (Ours)".to_string(),
        format!("{:.0}", adaptive.total_time_s),
        format!("{:.2}x", adaptive.speedup_over(&baseline)),
        format!("{:.0}", adaptive.sd_activation_time_s.unwrap_or(0.0)),
    ]);
    report.add(t);
    let mut timeline = Table::new(
        "Figure 14 — running-request timeline (adaptive SD, sampled)",
        &["time (s)", "running requests", "SD active"],
    );
    for p in adaptive
        .timeline
        .iter()
        .step_by(adaptive.timeline.len().max(20) / 20)
    {
        timeline.add_row(vec![
            format!("{:.0}", p.time_s),
            format!("{}", p.running_requests),
            format!("{}", p.sd_active),
        ]);
    }
    report.add(timeline);
}

/// Figure 15: drafter accuracy during adaptive training.
fn fig15(scale: Scale, report: &mut Report) {
    let mut config = TokenExperimentConfig::small(true, true);
    config.num_steps = if scale == Scale::Full { 10 } else { 4 };
    config.drafter_iterations_per_step = if scale == Scale::Full { 12 } else { 6 };
    config.prompts_per_step = 8;
    let (token_report, _, _) = run_token_experiment(&config);
    let mut t = Table::new(
        "Figure 15 — drafter top-3 accuracy during adaptive training",
        &[
            "trainer iteration",
            "top-3 accuracy",
            "right after target update",
        ],
    );
    for p in &token_report.drafter_accuracy {
        t.add_row(vec![
            format!("{}", p.iteration),
            format!("{:.3}", p.top3_accuracy),
            format!("{}", p.after_target_update),
        ]);
    }
    report.add(t);
    let first = token_report
        .drafter_accuracy
        .first()
        .map(|p| p.top3_accuracy)
        .unwrap_or(0.0);
    let last = token_report
        .drafter_accuracy
        .last()
        .map(|p| p.top3_accuracy)
        .unwrap_or(0.0);
    println!("top-3 accuracy trend: {first:.3} -> {last:.3}");
}

/// Table 6 + Figure 16: adaptive vs vanilla drafter against the base and post-RL
/// targets (accept length and per-position accept rates).
fn table6_fig16(scale: Scale, report: &mut Report) {
    let model_config = ModelConfig::tiny();
    let mut target = TinyLm::new(model_config, 60);
    let mut task_gen = TaskGenerator::new(model_config.vocab_size);
    let mut rng = StdRng::seed_from_u64(61);
    let sampling = SamplingParams {
        temperature: 0.9,
        top_k: None,
    };
    let strategy = SdStrategy {
        draft_depth: 5,
        top_k: 1,
        tokens_to_verify: 5,
    };
    let warmup_iters = if scale == Scale::Full { 60 } else { 25 };
    let rl_steps = if scale == Scale::Full { 6 } else { 3 };

    // Warm up a drafter against the base target on its own rollouts.
    let mut drafter_trainer = DrafterTrainer::new(&target, TrainerConfig::default(), 62);
    let mut buffer = DataBuffer::new(DataBufferConfig::default());
    let build_samples = |target: &TinyLm,
                         task_gen: &mut TaskGenerator,
                         rng: &mut StdRng,
                         step: u64| {
        let tasks = task_gen.generate_batch(6, rng);
        tasks
            .iter()
            .enumerate()
            .filter_map(|(i, task)| {
                let prompt = task.prompt_tokens();
                let gen =
                    vanilla_generate(target, &prompt, 24, sampling, Some(task.vocab.eos()), rng);
                if gen.tokens.len() < 3 {
                    return None;
                }
                let mut tokens = prompt;
                tokens.extend_from_slice(&gen.tokens);
                Some(TrainingSample::from_rollout(
                    target,
                    FeatureSource::LastLayer,
                    &tokens,
                    gen.tokens.len(),
                    step,
                    i as u64,
                ))
            })
            .collect::<Vec<_>>()
    };
    for s in build_samples(&target, &mut task_gen, &mut rng, 0) {
        buffer.push(s);
    }
    for _ in 0..warmup_iters {
        let batch = buffer.sample_batch(4, &mut rng);
        drafter_trainer.train_iteration(&target, &batch);
    }
    let target_base = target.clone();
    let vanilla_drafter = drafter_trainer.drafter.clone();

    // RL-train the target; keep adapting the adaptive drafter on fresh rollouts.
    let mut policy_trainer = PolicyTrainer::new(target.reference_copy(), RlConfig::default());
    for step in 0..rl_steps {
        let tasks = task_gen.generate_batch(6, &mut rng);
        let mut groups = Vec::new();
        for task in &tasks {
            let prompt = task.prompt_tokens();
            let mut responses = Vec::new();
            let mut rewards = Vec::new();
            for _ in 0..4 {
                let gen = vanilla_generate(
                    &target,
                    &prompt,
                    24,
                    sampling,
                    Some(task.vocab.eos()),
                    &mut rng,
                );
                rewards.push(task.reward(&gen.tokens));
                responses.push(gen.tokens);
            }
            groups.push(RolloutGroup {
                prompt,
                responses,
                rewards,
            });
        }
        policy_trainer.train_step(&mut target, &groups);
        buffer.advance_step();
        for s in build_samples(&target, &mut task_gen, &mut rng, step as u64 + 1) {
            buffer.push(s);
        }
        for _ in 0..warmup_iters / 2 {
            let batch = buffer.sample_batch(4, &mut rng);
            drafter_trainer.train_iteration(&target, &batch);
        }
    }
    let target_r = target;
    let adaptive_drafter = drafter_trainer.drafter;

    // Measurement prompts: RL-training distribution and a harder "downstream" set.
    let rl_prompts: Vec<Vec<u32>> = task_gen
        .generate_batch(6, &mut rng)
        .iter()
        .map(|t| t.prompt_tokens())
        .collect();
    let mut downstream_gen = TaskGenerator::new(model_config.vocab_size).with_operand_range(4, 5);
    let downstream_prompts: Vec<Vec<u32>> = downstream_gen
        .generate_batch(6, &mut rng)
        .iter()
        .map(|t| t.prompt_tokens())
        .collect();

    let mut t = Table::new(
        "Table 6 — accept length of the adaptive drafter (tiny-model substrate)",
        &["data", "target", "vanilla drafter", "adaptive drafter"],
    );
    let mut fig16_rows: Vec<(String, Vec<f64>)> = Vec::new();
    for (data_name, prompts) in [
        ("RL training", &rl_prompts),
        ("Downstream", &downstream_prompts),
    ] {
        for (target_name, tgt) in [("Target-Base", &target_base), ("Target-R", &target_r)] {
            let mut rng_a = StdRng::seed_from_u64(99);
            let (rates_v, accept_v) = measure_acceptance(
                tgt,
                &SpecDrafter::Learned(&vanilla_drafter),
                prompts,
                24,
                strategy,
                SamplingParams::greedy(),
                &mut rng_a,
            );
            let mut rng_b = StdRng::seed_from_u64(99);
            let (rates_a, accept_a) = measure_acceptance(
                tgt,
                &SpecDrafter::Learned(&adaptive_drafter),
                prompts,
                24,
                strategy,
                SamplingParams::greedy(),
                &mut rng_b,
            );
            t.add_row(vec![
                data_name.to_string(),
                target_name.to_string(),
                format!("{accept_v:.2}"),
                format!("{accept_a:.2}"),
            ]);
            if data_name == "RL training" && target_name == "Target-R" {
                fig16_rows.push(("Vanilla drafter".to_string(), rates_v));
                fig16_rows.push(("Adaptive drafter".to_string(), rates_a));
            }
        }
    }
    report.add(t);

    let mut f = Table::new(
        "Figure 16 — accept rate by drafted position (vs Target-R)",
        &["drafter", "pos 1", "pos 2", "pos 3", "pos 4", "pos 5"],
    );
    for (name, rates) in fig16_rows {
        let mut cells = vec![name];
        for i in 0..5 {
            cells.push(format!("{:.2}", rates.get(i).copied().unwrap_or(0.0)));
        }
        f.add_row(cells);
    }
    report.add(f);
}

/// Figure 17: selective asynchronous checkpointing latency and sequence packing.
fn fig17(report: &mut Report) {
    let target = TinyLm::new(ModelConfig::tiny(), 70);
    let drafter = tlt_draft::DraftModel::new(&target, FeatureSource::LastLayer, 71);
    let mut store = CheckpointStore::new();
    let mut t = Table::new(
        "Figure 17(a) — drafter checkpoint cost (tiny-model substrate)",
        &[
            "mode",
            "training-thread blocking (us)",
            "bytes written",
            "async",
        ],
    );
    for mode in CheckpointMode::all() {
        // Take the median of several checkpoints to smooth out thread-spawn jitter.
        let mut blocking: Vec<u64> = (0..5)
            .map(|_| store.checkpoint(mode, &drafter, &target).blocking_us)
            .collect();
        blocking.sort_unstable();
        store.wait_for_pending();
        let report = store.checkpoint(mode, &drafter, &target);
        store.wait_for_pending();
        t.add_row(vec![
            mode.name().to_string(),
            format!("{}", blocking[blocking.len() / 2]),
            format!("{}", report.bytes_written),
            format!("{}", report.asynchronous),
        ]);
    }
    report.add(t);

    let mut rng = StdRng::seed_from_u64(72);
    let dist = LengthDistribution::LongTailMixture {
        mu: 5.5,
        sigma: 1.0,
        truncation_mass: 0.05,
        max_len: 4096,
    };
    let lengths = dist.sample_many(256, &mut rng);
    let stats = packing_stats(&lengths, 8, 4096);
    let mut p = Table::new(
        "Figure 17(b) — sequence packing vs padded batching",
        &["method", "tokens processed", "compute utilisation"],
    );
    p.add_row(vec![
        "Vanilla batching".to_string(),
        format!("{}", stats.padded_tokens),
        format!("{:.2}", stats.padded_efficiency),
    ]);
    p.add_row(vec![
        "Sequence packing".to_string(),
        format!("{}", stats.packed_tokens),
        format!("{:.2}", stats.packed_efficiency),
    ]);
    report.add(p);
    println!("packing throughput improvement: {:.2}x", stats.speedup());
}

/// Table 7: comparison of drafter training strategies.
fn table7(scale: Scale, report: &mut Report) {
    let model_config = ModelConfig::tiny();
    let target = TinyLm::new(model_config, 80);
    let mut task_gen = TaskGenerator::new(model_config.vocab_size);
    let mut rng = StdRng::seed_from_u64(81);
    let sampling = SamplingParams {
        temperature: 0.9,
        top_k: None,
    };
    let iters = if scale == Scale::Full { 50 } else { 20 };

    // Shared training data from target rollouts.
    let make_samples = |source: FeatureSource, rng: &mut StdRng, task_gen: &mut TaskGenerator| {
        task_gen
            .generate_batch(8, rng)
            .iter()
            .enumerate()
            .filter_map(|(i, task)| {
                let prompt = task.prompt_tokens();
                let gen =
                    vanilla_generate(&target, &prompt, 24, sampling, Some(task.vocab.eos()), rng);
                if gen.tokens.len() < 3 {
                    return None;
                }
                let mut tokens = prompt;
                tokens.extend_from_slice(&gen.tokens);
                Some(TrainingSample::from_rollout(
                    &target,
                    source,
                    &tokens,
                    gen.tokens.len(),
                    0,
                    i as u64,
                ))
            })
            .collect::<Vec<_>>()
    };

    let cost = qwen7b_on(GpuType::H100);
    let drafter_spec = eagle_drafter_of(&cost);
    let mut t = Table::new(
        "Table 7 — drafter training strategies (Qwen-7B cost model + tiny-model acceptance)",
        &[
            "method",
            "accept length",
            "est. throughput (tok/s)",
            "speedup",
            "training cost",
        ],
    );
    // Baseline: no SD.
    let base_throughput = 1.0 / cost.decode_step_time(1, 4096);
    t.add_row(vec![
        "Base (No-SD)".to_string(),
        "1.00".to_string(),
        format!("{base_throughput:.0}"),
        "1.00x".to_string(),
        "-".to_string(),
    ]);
    let strategies = [
        TrainingStrategy::Hass { ttt_steps: 3 },
        TrainingStrategy::Eagle3 { ttt_steps: 7 },
        TrainingStrategy::Eagle,
    ];
    for strategy in strategies {
        let config = TrainerConfig {
            strategy,
            ..TrainerConfig::default()
        };
        let mut trainer = DrafterTrainer::new(&target, config, 82);
        let samples = make_samples(strategy.feature_source(), &mut rng, &mut task_gen);
        let refs: Vec<&TrainingSample> = samples.iter().collect();
        for _ in 0..iters {
            trainer.train_iteration(&target, &refs);
        }
        // Acceptance measurement only supports last-layer drafters at token level;
        // for EAGLE-3 derive the profile from its top-3 accuracy instead.
        let accept = if strategy.feature_source() == FeatureSource::LastLayer {
            let prompts: Vec<Vec<u32>> = task_gen
                .generate_batch(4, &mut rng)
                .iter()
                .map(|t| t.prompt_tokens())
                .collect();
            let (_, accept) = measure_acceptance(
                &target,
                &SpecDrafter::Learned(&trainer.drafter),
                &prompts,
                24,
                SdStrategy {
                    draft_depth: 5,
                    top_k: 1,
                    tokens_to_verify: 5,
                },
                SamplingParams::greedy(),
                &mut rng,
            );
            accept
        } else {
            let (_, top3) = trainer.evaluate(&target, &refs);
            AcceptanceProfile::parametric(top3.max(0.05), 0.9, 8).expected_accept_len_linear(5)
        };
        let spec_step = cost.speculative_step_time(&drafter_spec, 1, 6, 48, 4096);
        let throughput = accept / spec_step;
        t.add_row(vec![
            strategy.name().to_string(),
            format!("{accept:.2}"),
            format!("{throughput:.0}"),
            format!("{:.2}x", throughput / base_throughput),
            format!("{:.0}x", strategy.relative_training_cost()),
        ]);
    }
    report.add(t);
}

/// Table 8: impact of OSD-style training on different draft models.
fn table8(scale: Scale, report: &mut Report) {
    let model_config = ModelConfig::tiny();
    let target = TinyLm::new(model_config, 90);
    let mut task_gen = TaskGenerator::new(model_config.vocab_size);
    let mut rng = StdRng::seed_from_u64(91);
    let sampling = SamplingParams {
        temperature: 0.9,
        top_k: None,
    };
    let iters = if scale == Scale::Full { 40 } else { 15 };

    let samples: Vec<TrainingSample> = task_gen
        .generate_batch(8, &mut rng)
        .iter()
        .enumerate()
        .filter_map(|(i, task)| {
            let prompt = task.prompt_tokens();
            let gen = vanilla_generate(
                &target,
                &prompt,
                24,
                sampling,
                Some(task.vocab.eos()),
                &mut rng,
            );
            if gen.tokens.len() < 3 {
                return None;
            }
            let mut tokens = prompt;
            tokens.extend_from_slice(&gen.tokens);
            Some(TrainingSample::from_rollout(
                &target,
                FeatureSource::LastLayer,
                &tokens,
                gen.tokens.len(),
                0,
                i as u64,
            ))
        })
        .collect();
    let refs: Vec<&TrainingSample> = samples.iter().collect();
    let prompts: Vec<Vec<u32>> = task_gen
        .generate_batch(4, &mut rng)
        .iter()
        .map(|t| t.prompt_tokens())
        .collect();
    let accept_of = |drafter: &tlt_draft::DraftModel, rng: &mut StdRng| {
        let (_, accept) = measure_acceptance(
            &target,
            &SpecDrafter::Learned(drafter),
            &prompts,
            24,
            SdStrategy {
                draft_depth: 5,
                top_k: 1,
                tokens_to_verify: 5,
            },
            SamplingParams::greedy(),
            rng,
        );
        accept
    };

    let mut t = Table::new(
        "Table 8 — impact of OSD-style training (tiny-model substrate)",
        &[
            "draft model",
            "original accept len",
            "trained accept len",
            "+OSD accept len",
        ],
    );
    for (name, base_strategy) in [
        ("SFT small-model style", TrainingStrategy::Sft),
        ("Eagle", TrainingStrategy::Eagle),
    ] {
        let untrained = tlt_draft::DraftModel::new(&target, FeatureSource::LastLayer, 92);
        let original = accept_of(&untrained, &mut rng);

        let mut trained = DrafterTrainer::new(
            &target,
            TrainerConfig {
                strategy: base_strategy,
                ..TrainerConfig::default()
            },
            92,
        );
        for _ in 0..iters {
            trained.train_iteration(&target, &refs);
        }
        let trained_accept = accept_of(&trained.drafter, &mut rng);

        let mut osd = DrafterTrainer::new(
            &target,
            TrainerConfig {
                strategy: base_strategy,
                ..TrainerConfig::default()
            },
            92,
        );
        for _ in 0..iters {
            osd.train_iteration(&target, &refs);
        }
        let mut osd_trainer = DrafterTrainer::with_drafter(
            osd.drafter.clone(),
            TrainerConfig {
                strategy: TrainingStrategy::Osd,
                ..TrainerConfig::default()
            },
        );
        for _ in 0..iters / 2 {
            osd_trainer.train_iteration(&target, &refs);
        }
        let osd_accept = accept_of(&osd_trainer.drafter, &mut rng);

        t.add_row(vec![
            name.to_string(),
            format!("{original:.2}"),
            format!("{trained_accept:.2}"),
            format!("{osd_accept:.2}"),
        ]);
    }
    report.add(t);
}

/// Chaos suite: runs the pinned fault-injection scenario matrix and reports the
/// invariant verdict per scenario. Any violated scenario prints its
/// flight-recorder postmortem; `--trace-out` exports every scenario's retained
/// events as one sectioned Chrome trace. Returns the number of failing
/// scenarios.
fn chaos(json_path: Option<&str>, trace_out: Option<&str>, metrics: bool) -> usize {
    use tlt::chaos::{
        chaos_summary_rows, disagg_summary_rows, run_chaos_matrix, run_disagg_chaos_matrix,
        CHAOS_SUMMARY_HEADER, DISAGG_SUMMARY_HEADER,
    };
    println!("TLT chaos suite: pinned fault-injection scenario matrix");
    let outcomes = run_chaos_matrix();
    let disagg_outcomes = run_disagg_chaos_matrix();
    let mut report = Report::new();
    let mut t = Table::new(
        "Chaos — pinned scenario matrix (invariants: conservation, KV block budget, \
         KV-pool conservation, coordinator, losslessness, checkpoint guard, \
         determinism, drain)",
        &CHAOS_SUMMARY_HEADER,
    );
    for row in chaos_summary_rows(&outcomes) {
        t.add_row(row);
    }
    report.add(t);
    let mut dt = Table::new(
        "Chaos — disaggregated cluster matrix (mid-transfer crashes, autoscale drain; \
         invariants: conservation, KV block budget, KV-pool conservation, \
         determinism, drain)",
        &DISAGG_SUMMARY_HEADER,
    );
    for row in disagg_summary_rows(&disagg_outcomes) {
        dt.add_row(row);
    }
    report.add(dt);
    if metrics {
        let mut m = Table::new(
            "Chaos — flight recorder (--metrics)",
            &["scenario", "trace events", "postmortem"],
        );
        for (name, trace, postmortem) in outcomes
            .iter()
            .map(|o| (&o.scenario.name, &o.trace, &o.postmortem))
            .chain(
                disagg_outcomes
                    .iter()
                    .map(|o| (&o.scenario.name, &o.trace, &o.postmortem)),
            )
        {
            m.add_row(vec![
                name.clone(),
                format!("{}", trace.len()),
                if postmortem.is_some() {
                    "dumped".to_string()
                } else {
                    "-".to_string()
                },
            ]);
        }
        report.add(m);
    }
    let mut failures = 0usize;
    let verdicts = outcomes
        .iter()
        .map(|o| (&o.scenario.name, &o.invariants, &o.postmortem))
        .chain(
            disagg_outcomes
                .iter()
                .map(|o| (&o.scenario.name, &o.invariants, &o.postmortem)),
        );
    for (name, invariants, postmortem) in verdicts {
        if !invariants.passed() {
            failures += 1;
            for v in &invariants.violations {
                eprintln!("FAIL {}: [{}] {}", name, v.invariant, v.detail);
            }
            if let Some(postmortem) = postmortem {
                eprint!("{postmortem}");
            }
        }
    }
    if let Some(path) = trace_out {
        let sections: Vec<(&str, &[tlt_obs::ObsEvent])> = outcomes
            .iter()
            .map(|o| (o.scenario.name.as_str(), o.trace.as_slice()))
            .chain(
                disagg_outcomes
                    .iter()
                    .map(|o| (o.scenario.name.as_str(), o.trace.as_slice())),
            )
            .collect();
        write_trace(path, &tlt_obs::chrome_trace_sections(&sections));
    }
    if let Some(path) = json_path {
        match report.write_json(path) {
            Ok(()) => println!("\nwrote the chaos matrix as JSON to {path}"),
            Err(e) => {
                eprintln!("error: failed to write JSON to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    let total = outcomes.len() + disagg_outcomes.len();
    println!(
        "\n{} scenarios ({} monolithic + {} disaggregated), {} passed, {} failed",
        total,
        outcomes.len(),
        disagg_outcomes.len(),
        total - failures,
        failures
    );
    failures
}

/// Replicas behind the pinned replay deployment (see [`tlt::replay_deployment`]).
const REPLAY_REPLICAS: usize = 2;

/// Trace-driven replay: re-drives the pinned deployment from recorded `.tltr`
/// workload traces and prints the cbp-style size/throughput table. The table
/// (and its `--json` export) contains only sim-deterministic numbers, so a
/// double run is byte-identical — wall-clock overhead goes to a separate
/// print-only table.
fn replay_cmd(
    trace_path: Option<&str>,
    write_corpus: Option<&str>,
    write_million: Option<&str>,
    stream: bool,
    rate_scale: Option<f64>,
    json_path: Option<&str>,
) -> i32 {
    use std::time::Instant;
    use tlt_trace::{CorpusPreset, Trace};

    // --write-million: derive the pinned million-request trace to a file,
    // verify it against the pinned checksum, and exit (CI regenerates it on
    // every run instead of committing the ~6.5 MB artifact).
    if let Some(path) = write_million {
        let file = match std::fs::File::create(path) {
            Ok(file) => file,
            Err(e) => {
                eprintln!("error: cannot create {path}: {e}");
                return 1;
            }
        };
        let t0 = Instant::now();
        let checksum = match tlt_trace::write_derived_trace(
            std::io::BufWriter::new(file),
            tlt_trace::MILLION_REQUESTS,
        ) {
            Ok(checksum) => checksum,
            Err(e) => {
                eprintln!("error: failed to derive the million-request trace: {e}");
                return 1;
            }
        };
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        println!(
            "wrote {path}: {} requests, {bytes} bytes ({:.2} B/req) in {:.2} s, \
             checksum {checksum:#018x}",
            tlt_trace::MILLION_REQUESTS,
            bytes as f64 / tlt_trace::MILLION_REQUESTS as f64,
            t0.elapsed().as_secs_f64(),
        );
        if checksum != tlt_trace::MILLION_CHECKSUM {
            eprintln!(
                "error: derived trace checksum {checksum:#018x} does not match the pinned \
                 {:#018x}",
                tlt_trace::MILLION_CHECKSUM
            );
            return 1;
        }
        return 0;
    }
    if stream {
        return replay_streamed_cmd(trace_path, rate_scale, json_path);
    }

    // --write-corpus: regenerate the committed corpus files and exit.
    if let Some(dir) = write_corpus {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {dir}: {e}");
            return 1;
        }
        for preset in CorpusPreset::all() {
            let trace = preset.build();
            let stats = trace.stats();
            let path = format!("{dir}/{}", preset.file_name());
            if let Err(e) = trace.write_file(&path) {
                eprintln!("error: failed to write {path}: {e}");
                return 1;
            }
            println!(
                "wrote {path}: {} requests, {} bytes ({:.2} B/req, budget {})",
                stats.requests,
                stats.total_bytes,
                stats.bytes_per_request(),
                preset.size_budget_bytes()
            );
        }
        return 0;
    }

    println!(
        "TLT trace replay (pinned deployment: {REPLAY_REPLICAS} replicas, adaptive SD, paged KV)"
    );
    // Workloads to replay: one trace file, or the whole in-memory corpus.
    // Each entry: (trace, decode seconds, synthesis seconds if known).
    let mut runs: Vec<(Trace, f64, Option<f64>)> = Vec::new();
    match trace_path {
        Some(path) => {
            let t0 = Instant::now();
            let trace = match Trace::read_file(path) {
                Ok(trace) => trace,
                Err(e) => {
                    eprintln!("error: failed to read {path}: {e}");
                    return 1;
                }
            };
            let decode_s = t0.elapsed().as_secs_f64();
            let synth_s = CorpusPreset::from_name(trace.name()).map(|preset| {
                let t0 = Instant::now();
                let _ = preset.build();
                t0.elapsed().as_secs_f64()
            });
            runs.push((trace, decode_s, synth_s));
        }
        None => {
            for preset in CorpusPreset::all() {
                let t0 = Instant::now();
                let trace = preset.build();
                let synth_s = t0.elapsed().as_secs_f64();
                let bytes = trace.to_bytes();
                let t0 = Instant::now();
                let trace = Trace::from_bytes(&bytes).expect("self-encoded trace decodes");
                let decode_s = t0.elapsed().as_secs_f64();
                runs.push((trace, decode_s, Some(synth_s)));
            }
        }
    }
    if let Some(factor) = rate_scale {
        runs = runs
            .into_iter()
            .map(|(trace, decode_s, _)| (trace.rate_scaled(factor), decode_s, None))
            .collect();
    }

    let mut report = Report::new();
    let mut table = Table::new(
        "Trace replay — recorded workloads on the pinned deployment",
        &[
            "workload",
            "requests",
            "size B",
            "B/req",
            "bits/event",
            "tok/s",
            "goodput rps",
            "SLO %",
            "makespan s",
        ],
    );
    let mut timing = Table::new(
        "Replay overhead vs synthesis (wall clock; print-only, not exported)",
        &[
            "workload",
            "synth ms",
            "decode ms",
            "replay ms",
            "decode/synth",
        ],
    );
    let mut total_bytes = 0usize;
    let mut total_requests = 0usize;
    for (trace, decode_s, synth_s) in &runs {
        let stats = trace.stats();
        let t0 = Instant::now();
        let result = tlt::run_replay(trace, REPLAY_REPLICAS);
        let replay_s = t0.elapsed().as_secs_f64();
        total_bytes += stats.total_bytes;
        total_requests += stats.requests;
        table.add_row(vec![
            trace.name().to_string(),
            format!("{}", stats.requests),
            format!("{}", stats.total_bytes),
            format!("{:.2}", stats.bytes_per_request()),
            format!("{:.2}", stats.bits_per_event()),
            format!("{:.1}", result.throughput_tokens_per_s),
            format!("{:.3}", result.goodput_rps),
            format!("{:.1}", result.slo_attainment * 100.0),
            format!("{:.2}", result.makespan_s),
        ]);
        timing.add_row(vec![
            trace.name().to_string(),
            synth_s.map_or_else(|| "-".to_string(), |s| format!("{:.3}", s * 1e3)),
            format!("{:.3}", decode_s * 1e3),
            format!("{:.1}", replay_s * 1e3),
            synth_s.map_or_else(|| "-".to_string(), |s| format!("{:.3}", decode_s / s)),
        ]);
    }
    if runs.len() > 1 {
        table.add_row(vec![
            "TOTAL".to_string(),
            format!("{total_requests}"),
            format!("{total_bytes}"),
            format!("{:.2}", total_bytes as f64 / total_requests.max(1) as f64),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    report.add(table);
    timing.print();

    if let Some(path) = json_path {
        match report.write_json(path) {
            Ok(()) => println!("\nwrote the replay report as JSON to {path}"),
            Err(e) => {
                eprintln!("error: failed to write JSON to {path}: {e}");
                return 1;
            }
        }
    }
    0
}

/// `replay --stream`: drives the pinned deployment from a chunked TLTR
/// decode ([`tlt_trace::TraceReader`]) instead of a materialised arrival
/// vector — constant decode memory regardless of trace length. The exported
/// table contains only sim-deterministic numbers (sizes, counts, report
/// metrics), so a double run is byte-identical; CI diffs two runs' JSON.
fn replay_streamed_cmd(
    trace_path: Option<&str>,
    rate_scale: Option<f64>,
    json_path: Option<&str>,
) -> i32 {
    use std::io::Cursor;
    use std::time::Instant;
    use tlt_trace::{CorpusPreset, TraceReader};

    if rate_scale.is_some() {
        // Transforms are whole-trace rewrites; apply them in-memory and
        // re-encode before streaming.
        eprintln!("error: --rate-scale requires the in-memory replay path");
        return 1;
    }
    println!(
        "TLT trace replay, streamed (pinned deployment: {REPLAY_REPLICAS} replicas, \
         adaptive SD, paged KV)"
    );
    // Workloads: one trace file, or the whole corpus re-encoded to bytes and
    // streamed back through the chunked reader.
    let mut report = Report::new();
    let mut table = Table::new(
        "Trace replay (streamed) — chunked decode on the pinned deployment",
        &[
            "workload",
            "requests",
            "size B",
            "B/req",
            "tok/s",
            "goodput rps",
            "SLO %",
            "makespan s",
        ],
    );
    let mut run_streamed =
        |label: &str,
         result: Result<(u64, u64, tlt_serve::ServeReport), tlt_trace::TraceError>|
         -> bool {
            match result {
                Ok((requests, bytes, report)) => {
                    table.add_row(vec![
                        label.to_string(),
                        format!("{requests}"),
                        format!("{bytes}"),
                        format!("{:.2}", bytes as f64 / requests.max(1) as f64),
                        format!("{:.1}", report.throughput_tokens_per_s),
                        format!("{:.3}", report.goodput_rps),
                        format!("{:.1}", report.slo_attainment * 100.0),
                        format!("{:.2}", report.makespan_s),
                    ]);
                    true
                }
                Err(e) => {
                    eprintln!("error: streamed replay of {label} failed: {e}");
                    false
                }
            }
        };
    match trace_path {
        Some(path) => {
            let t0 = Instant::now();
            let result = TraceReader::<std::fs::File>::open_file(path).and_then(|mut reader| {
                let report = tlt::run_replay_streamed(&mut reader, REPLAY_REPLICAS)?;
                let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                Ok((reader.decoded(), bytes, report))
            });
            let ok = run_streamed(path, result);
            println!(
                "streamed replay of {path} took {:.2} s",
                t0.elapsed().as_secs_f64()
            );
            if !ok {
                return 1;
            }
        }
        None => {
            for preset in CorpusPreset::all() {
                let bytes = preset.build().to_bytes();
                let size = bytes.len() as u64;
                let result = TraceReader::open(Cursor::new(bytes)).and_then(|mut reader| {
                    let report = tlt::run_replay_streamed(&mut reader, REPLAY_REPLICAS)?;
                    Ok((reader.decoded(), size, report))
                });
                if !run_streamed(preset.name(), result) {
                    return 1;
                }
            }
        }
    }
    report.add(table);

    if let Some(path) = json_path {
        match report.write_json(path) {
            Ok(()) => println!("\nwrote the streamed replay report as JSON to {path}"),
            Err(e) => {
                eprintln!("error: failed to write JSON to {path}: {e}");
                return 1;
            }
        }
    }
    0
}

/// Serving study: throughput-latency trade-off of SD policies across arrival
/// rates on the `tlt-serve` online subsystem (Qwen-7B replicas on H100, bursty
/// load, join-shortest-queue routing). With `--prefix-share > 0` the
/// deployment switches to paged block-granular KV accounting, that fraction of
/// requests carries a 512-token shared system prompt, and the table (and JSON
/// export) reports the prefix-hit rate and pool utilisation per run, plus a
/// paged-vs-token goodput comparison at the tight KV budget.
///
/// A per-replica stats table (completions, preemptions, failovers, crashes) is
/// always part of the report and JSON export. With `--trace-out` the whole
/// sweep runs under a flight recorder and the retained events are written as
/// Chrome `trace_event` JSON (byte-identical across same-seed runs);
/// `--metrics` adds an aggregate metrics summary table.
fn serving(
    scale: Scale,
    report: &mut Report,
    prefix_share: f64,
    disagg: bool,
    trace_out: Option<&str>,
    metrics: bool,
) {
    if trace_out.is_some() {
        tlt_obs::install(tlt_obs::FlightRecorder::new(TRACE_EVENTS_PER_TRACK));
    }
    let (replicas, rates): (usize, &[f64]) = if scale == Scale::Full {
        (2, &[2.0, 6.0, 10.0, 16.0, 24.0])
    } else {
        (2, &[4.0, 10.0])
    };
    let prefix_len = 512usize;
    let title = if prefix_share > 0.0 {
        format!(
            "Serving — SD policy sweep over arrival rate (Qwen-7B x2 H100 replicas, bursty load, \
             paged KV, prefix share {prefix_share:.2} x {prefix_len} tokens)"
        )
    } else {
        "Serving — SD policy sweep over arrival rate (Qwen-7B x2 H100 replicas, bursty load)"
            .to_string()
    };
    let mut t = Table::new(
        &title,
        &[
            "rate (req/s)",
            "policy",
            "tokens/s",
            "TTFT p50 (s)",
            "TTFT p99 (s)",
            "TPOT p99 (ms)",
            "E2E p99 (s)",
            "goodput (req/s)",
            "SLO %",
            "SD steps %",
            "mean util",
            "prefix hit %",
            "pool util",
        ],
    );
    let mut per_replica = Table::new(
        "Serving — per-replica stats (registry-backed)",
        &[
            "rate (req/s)",
            "policy",
            "replica",
            "completed",
            "dropped",
            "preemptions",
            "failovers",
            "crashes",
            "peak batch",
            "busy (s)",
            "util",
        ],
    );
    let mut totals = ServingTotals::default();
    // One independent, seeded simulation per arrival rate: the sweep fans out
    // across `TLT_NUM_THREADS` workers and merges back in input order, so the
    // tables (and any JSON export) are bit-identical at every thread count.
    // With `--trace-out` the sweep runs sequentially instead — the flight
    // recorder ring is installed on this thread only, and events emitted from
    // worker threads would bypass it.
    let run_rate = |rate: f64| {
        let mut config = ServingExperimentConfig::qwen7b_bursty(replicas, rate);
        if prefix_share > 0.0 {
            config = config.with_prefix_share(prefix_share, prefix_len);
        }
        run_serving_comparison(&config)
    };
    let sweep: Vec<(f64, _)> = if trace_out.is_some() {
        rates.iter().map(|&rate| (rate, run_rate(rate))).collect()
    } else {
        parallel_map(rates.to_vec(), |_, rate| (rate, run_rate(rate)))
    };
    for (rate, runs) in sweep {
        for (policy, r) in runs {
            for s in &r.replicas {
                per_replica.add_row(vec![
                    format!("{rate:.0}"),
                    policy.name().to_string(),
                    format!("{}", s.replica),
                    format!("{}", s.completed),
                    format!("{}", s.dropped),
                    format!("{}", s.preemptions),
                    format!("{}", s.failovers),
                    format!("{}", s.crashes),
                    format!("{}", s.peak_running),
                    format!("{:.2}", s.busy_s),
                    format!("{:.2}", s.utilization),
                ]);
                totals.absorb(s);
            }
            totals.runs += 1;
            t.add_row(vec![
                format!("{rate:.0}"),
                policy.name().to_string(),
                format!("{:.0}", r.throughput_tokens_per_s),
                format!("{:.3}", r.ttft.p50_s),
                format!("{:.3}", r.ttft.p99_s),
                format!("{:.2}", r.tpot.p99_s * 1e3),
                format!("{:.2}", r.e2e.p99_s),
                format!("{:.2}", r.goodput_rps),
                format!("{:.1}", r.slo_attainment * 100.0),
                format!("{:.1}", r.mean_sd_fraction() * 100.0),
                format!("{:.2}", r.mean_utilization()),
                format!("{:.1}", r.mean_prefix_hit_rate() * 100.0),
                format!("{:.3}", r.mean_pool_utilization()),
            ]);
        }
    }
    report.add(t);
    report.add(per_replica);
    if disagg {
        // Disaggregated prefill/decode cluster vs an equal-size monolithic
        // fleet at ~10x the SD-sweep rates: 3 prefill + 5 decode replicas
        // against 8 monolithic ones, prefill-heavy prompts, 60% sharing a
        // 768-token system prompt, and a fast-streaming TPOT SLO. Goodput is
        // normalised per *provisioned* replica (the autoscaler only retires,
        // so the cluster also wins by paying for less idle capacity).
        let (p, d) = (3usize, 5usize);
        let disagg_rates: &[f64] = if scale == Scale::Full {
            &[20.0, 60.0, 100.0, 160.0, 240.0]
        } else {
            &[20.0, 60.0]
        };
        let run_pair = |rate: f64| run_disagg_comparison(p, d, rate, 0.6, 768);
        let pairs: Vec<(f64, _)> = if trace_out.is_some() {
            disagg_rates
                .iter()
                .map(|&rate| (rate, run_pair(rate)))
                .collect()
        } else {
            parallel_map(disagg_rates.to_vec(), |_, rate| (rate, run_pair(rate)))
        };
        let mut dt = Table::new(
            "Serving — disaggregated prefill/decode (3P+5D, KV migration, prefix-affinity \
             routing, autoscaler) vs 8 monolithic replicas",
            &[
                "rate (req/s)",
                "disagg goodput/replica",
                "mono goodput/replica",
                "ratio",
                "migrations",
                "aborted",
                "mean transfer (ms)",
                "up/down/retire",
                "avg active",
                "disagg TPOT p99 (ms)",
                "mono TPOT p99 (ms)",
            ],
        );
        let mut log_ratio_sum = 0.0f64;
        for (rate, (cluster, mono)) in &pairs {
            let mono_per = mono.goodput_rps / (p + d) as f64;
            let ratio = cluster.goodput_per_replica / mono_per.max(1e-9);
            log_ratio_sum += ratio.max(1e-9).ln();
            dt.add_row(vec![
                format!("{rate:.0}"),
                format!("{:.3}", cluster.goodput_per_replica),
                format!("{:.3}", mono_per),
                format!("{ratio:.2}"),
                format!("{}", cluster.migrations),
                format!("{}", cluster.aborted_transfers),
                format!("{:.2}", cluster.mean_transfer_s * 1e3),
                format!(
                    "{}/{}/{}",
                    cluster.scale_ups, cluster.scale_downs, cluster.retires
                ),
                format!("{:.2}", cluster.avg_active_replicas),
                format!("{:.2}", cluster.serve.tpot.p99_s * 1e3),
                format!("{:.2}", mono.tpot.p99_s * 1e3),
            ]);
        }
        report.add(dt);
        println!(
            "disagg vs monolithic goodput-per-replica: geomean {:.2}x over {} rates",
            (log_ratio_sum / pairs.len() as f64).exp(),
            pairs.len()
        );
    }
    if prefix_share > 0.0 {
        let (paged, tokens) = run_prefix_sharing_comparison(1, 16.0, prefix_share, 768);
        let mut cmp = Table::new(
            "Serving — paged block admission vs flat token budget (tight KV, shared prompts)",
            &[
                "admission",
                "goodput (req/s)",
                "TTFT p99 (s)",
                "prefix hit %",
                "pool util",
            ],
        );
        for (name, r) in [("token budget", &tokens), ("paged blocks", &paged)] {
            cmp.add_row(vec![
                name.to_string(),
                format!("{:.2}", r.goodput_rps),
                format!("{:.3}", r.ttft.p99_s),
                format!("{:.1}", r.mean_prefix_hit_rate() * 100.0),
                format!("{:.3}", r.mean_pool_utilization()),
            ]);
        }
        report.add(cmp);
        println!(
            "paged vs token goodput: {:.2} vs {:.2} req/s",
            paged.goodput_rps, tokens.goodput_rps
        );
    }
    let recorder = trace_out.map(|path| {
        let recorder = tlt_obs::uninstall().expect("recorder installed for --trace-out");
        write_trace(path, &tlt_obs::chrome_trace(&recorder.events()));
        recorder
    });
    if metrics {
        let mut m = Table::new(
            "Serving — metrics summary (--metrics)",
            &["metric", "value"],
        );
        m.add_row(vec!["runs".to_string(), format!("{}", totals.runs)]);
        m.add_row(vec![
            "completed".to_string(),
            format!("{}", totals.completed),
        ]);
        m.add_row(vec!["dropped".to_string(), format!("{}", totals.dropped)]);
        m.add_row(vec![
            "preemptions".to_string(),
            format!("{}", totals.preemptions),
        ]);
        m.add_row(vec![
            "failovers".to_string(),
            format!("{}", totals.failovers),
        ]);
        m.add_row(vec!["crashes".to_string(), format!("{}", totals.crashes)]);
        m.add_row(vec!["busy_s".to_string(), format!("{:.2}", totals.busy_s)]);
        if let Some(recorder) = &recorder {
            m.add_row(vec![
                "trace events recorded".to_string(),
                format!("{}", recorder.recorded()),
            ]);
            m.add_row(vec![
                "trace events retained".to_string(),
                format!("{}", recorder.len()),
            ]);
        }
        report.add(m);
    }
    println!(
        "SLO: TTFT <= 1.0 s and TPOT <= 20 ms; goodput counts SLO-meeting completions per second."
    );
}

/// Sweep-wide accumulators behind the serving `--metrics` summary table.
#[derive(Default)]
struct ServingTotals {
    runs: usize,
    completed: usize,
    dropped: usize,
    preemptions: u64,
    failovers: u64,
    crashes: u64,
    busy_s: f64,
}

impl ServingTotals {
    fn absorb(&mut self, s: &tlt_serve::ReplicaStats) {
        self.completed += s.completed;
        self.dropped += s.dropped;
        self.preemptions += s.preemptions;
        self.failovers += s.failovers;
        self.crashes += s.crashes;
        self.busy_s += s.busy_s;
    }
}

/// Ring capacity per track for `--trace-out` exports: enough to retain a full
/// quick sweep while bounding a full-scale run's memory.
const TRACE_EVENTS_PER_TRACK: usize = 65_536;

/// Writes a Chrome trace document to `path`, exiting non-zero on I/O failure.
fn write_trace(path: &str, doc: &tlt_bench::JsonValue) {
    match std::fs::write(path, format!("{doc}\n")) {
        Ok(()) => println!(
            "wrote Chrome trace_event JSON to {path} (open in chrome://tracing or Perfetto)"
        ),
        Err(e) => {
            eprintln!("error: failed to write trace to {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// The `--metrics` table for `perf`: the process-global model decode hooks.
fn perf_metrics_table() -> Table {
    let c = tlt_obs::hooks::snapshot();
    let mut t = Table::new(
        "Perf — model decode-hook counters (--metrics)",
        &["metric", "value"],
    );
    t.add_row(vec![
        "decode_steps".to_string(),
        format!("{}", c.decode_steps),
    ]);
    t.add_row(vec![
        "prefill_tokens".to_string(),
        format!("{}", c.prefill_tokens),
    ]);
    t.add_row(vec!["sd_rounds".to_string(), format!("{}", c.sd_rounds)]);
    t.add_row(vec![
        "sd_accepted_tokens".to_string(),
        format!("{}", c.sd_accepted_tokens),
    ]);
    t.add_row(vec![
        "mean_accept_per_round".to_string(),
        format!("{:.3}", c.mean_accept_per_round()),
    ]);
    t.add_row(vec!["sim_events".to_string(), format!("{}", c.sim_events)]);
    t.add_row(vec![
        "sim_stale_events".to_string(),
        format!("{}", c.sim_stale_events),
    ]);
    t
}
