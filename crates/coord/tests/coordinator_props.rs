//! Property tests for the coordinator's session bookkeeping under arbitrary
//! event sequences: promotions never double-count a worker, preemption halts
//! every member, and the promotion counters conserve exactly.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tlt_coord::{Coordinator, CoordinatorCommand, CoordinatorConfig, WorkerEvent, WorkerState};

const WORKERS: usize = 5;

/// Decodes one fuzz opcode into a coordinator interaction and applies it.
/// Returns the issued commands.
fn apply(coord: &mut Coordinator, op: u64, now: f64) -> Vec<(usize, CoordinatorCommand)> {
    let worker = (op / 7) as usize % WORKERS;
    let state = match op % 7 {
        0 | 1 => WorkerState::Idle,
        2 => WorkerState::Busy,
        3 => WorkerState::Training,
        4 => WorkerState::Failed,
        5 => return coord.preempt_for_rollout(),
        _ => {
            return coord.handle_event(
                WorkerEvent::ActiveRequests {
                    worker,
                    running: (op % 13) as usize,
                },
                now,
            )
        }
    };
    coord.handle_event(
        WorkerEvent::StateChanged {
            worker,
            state,
            at: now,
        },
        now,
    )
}

fn members_of(coord: &Coordinator) -> Vec<usize> {
    coord
        .training_session()
        .map(|s| s.members.clone())
        .unwrap_or_default()
}

/// The session structure invariants that must hold after *every* event:
/// members are unique, the leader is a member, every member is TRAINING, and
/// every TRAINING worker is a member.
fn assert_session_consistent(coord: &Coordinator) {
    if let Some(session) = coord.training_session() {
        let set: BTreeSet<usize> = session.members.iter().copied().collect();
        assert_eq!(
            set.len(),
            session.members.len(),
            "duplicate session member: {:?}",
            session.members
        );
        assert!(
            session.members.contains(&session.leader),
            "leader {} not a member of {:?}",
            session.leader,
            session.members
        );
        for &m in &session.members {
            assert_eq!(
                coord.worker_state(m),
                WorkerState::Training,
                "member {m} not TRAINING"
            );
        }
    }
    for w in 0..coord.num_workers() {
        if coord.worker_state(w) == WorkerState::Training {
            assert!(
                coord
                    .training_session()
                    .is_some_and(|s| s.members.contains(&w)),
                "TRAINING worker {w} outside the session"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Random event sequences never double-promote: the session stays
    /// structurally consistent after every event, and a StartTraining command
    /// is never issued to a worker that is already training (except the
    /// leader-handover notification to an existing member).
    #[test]
    fn random_event_sequences_never_double_promote(
        ops in collection::vec(0u64..100_000, 1..80),
    ) {
        let mut coord = Coordinator::new(WORKERS, CoordinatorConfig::default());
        for (i, &op) in ops.iter().enumerate() {
            let members_before: BTreeSet<usize> = members_of(&coord).into_iter().collect();
            let commands = apply(&mut coord, op, i as f64);
            for (w, cmd) in &commands {
                if let CoordinatorCommand::StartTraining { leader } = cmd {
                    prop_assert!(
                        !members_before.contains(w) || *leader,
                        "double promotion of worker {w} (op {op})"
                    );
                }
            }
            assert_session_consistent(&coord);
        }
    }

    /// Preemption halts the whole session: afterwards no worker is TRAINING, the
    /// session is gone, every previous member received PreemptTraining, every
    /// live worker received StartRollout, and failed workers stay failed.
    #[test]
    fn every_preemption_halts_all_member_sessions(
        ops in collection::vec(0u64..100_000, 1..60),
    ) {
        let mut coord = Coordinator::new(WORKERS, CoordinatorConfig::default());
        for (i, &op) in ops.iter().enumerate() {
            apply(&mut coord, op, i as f64);
        }
        let members: BTreeSet<usize> = members_of(&coord).into_iter().collect();
        let failed: BTreeSet<usize> = (0..WORKERS)
            .filter(|&w| coord.worker_state(w) == WorkerState::Failed)
            .collect();
        let commands = coord.preempt_for_rollout();
        prop_assert!(coord.training_session().is_none());
        for w in 0..WORKERS {
            prop_assert!(coord.worker_state(w) != WorkerState::Training);
            let expected = if failed.contains(&w) {
                WorkerState::Failed
            } else {
                WorkerState::Busy
            };
            prop_assert_eq!(coord.worker_state(w), expected, "worker {}", w);
        }
        for &m in &members {
            prop_assert!(
                commands.contains(&(m, CoordinatorCommand::PreemptTraining)),
                "member {} not preempted", m
            );
        }
        for w in 0..WORKERS {
            let got_rollout = commands.contains(&(w, CoordinatorCommand::StartRollout));
            prop_assert_eq!(got_rollout, !failed.contains(&w), "worker {}", w);
        }
    }

    /// Conservation: every promotion is eventually accounted for — a promoted
    /// worker either departed its session early, was halted by a preemption, or
    /// is still a member. `workers_promoted` equals exactly the sum of those
    /// three buckets, and total member additions observed from outside match
    /// the counter.
    #[test]
    fn promotion_counters_conserve(
        ops in collection::vec(0u64..100_000, 1..100),
    ) {
        let mut coord = Coordinator::new(WORKERS, CoordinatorConfig::default());
        let mut observed_promotions = 0u64;
        let mut preempted_members = 0u64;
        for (i, &op) in ops.iter().enumerate() {
            let before: BTreeSet<usize> = members_of(&coord).into_iter().collect();
            let is_preempt = op % 7 == 5;
            if is_preempt {
                preempted_members += before.len() as u64;
            }
            apply(&mut coord, op, i as f64);
            let after: BTreeSet<usize> = members_of(&coord).into_iter().collect();
            observed_promotions += after.difference(&before).count() as u64;
        }
        let stats = coord.stats();
        prop_assert_eq!(stats.workers_promoted, observed_promotions);
        let current_members = members_of(&coord).len() as u64;
        prop_assert_eq!(
            stats.workers_promoted,
            stats.members_departed + preempted_members + current_members,
            "promoted must equal departed + preempted + still-member"
        );
        prop_assert_eq!(stats.events_processed, ops.iter().filter(|&&op| op % 7 != 5).count() as u64);
    }
}
