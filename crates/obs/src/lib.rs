//! # tlt-obs — structured tracing, metrics, and a flight recorder
//!
//! Observability substrate for the TLT stack. Everything here is keyed to
//! **sim time, not wall clock**, so traces and metrics are a pure function of
//! the seed: two runs with the same configuration produce byte-identical
//! trace exports. The crate sits at the bottom of the workspace DAG (it
//! depends only on `std`) so every layer — model, serve, rollout, chaos,
//! bench — can emit into the same recorder without dependency cycles.
//!
//! ## Pieces
//!
//! - [`event`] — the span/instant vocabulary: [`Track`] timelines (frontend,
//!   per-replica, coordinator, rollout) and [`EventKind`]s covering the
//!   request lifecycle (arrival → admission → prefill → decode / SD rounds →
//!   completion / preemption / failover / crash / restart).
//! - [`recorder`] — the fixed-capacity [`FlightRecorder`] (last-N events per
//!   track, oldest evicted on wraparound) behind a thread-local install
//!   point. A disabled [`record`] call is a single relaxed atomic load.
//! - [`metrics`] — the single-owner [`MetricsRegistry`]: counters, running
//!   sums, high-watermark gauges, fixed-bucket histograms. Backing store for
//!   `tlt-serve`'s `ReplicaStats` without changing its public shape.
//! - [`trace`] — exporters: Chrome `trace_event` JSON (open in
//!   `chrome://tracing` or Perfetto) and readable crash postmortems, both
//!   rendered through the deterministic [`JsonValue`] writer.
//! - [`hooks`] — allocation-free global counters for the model decode hot
//!   path (enforced by `tests/alloc_free_decode.rs`).
//! - [`json`] — the workspace's one hand-rolled JSON emitter (moved here from
//!   `tlt-bench` so trace export and bench reports share it).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod hooks;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod trace;

pub use event::{EventKind, ObsEvent, Track, NO_REQ};
pub use json::JsonValue;
pub use metrics::{
    CounterHandle, Histogram, HistogramHandle, MaxGaugeHandle, MetricSample, MetricsRegistry,
    SumHandle,
};
pub use recorder::{
    install, record, recording_enabled, uninstall, FlightRecorder, DEFAULT_CAPACITY_PER_TRACK,
};
pub use trace::{chrome_trace, chrome_trace_sections, render_postmortem};
