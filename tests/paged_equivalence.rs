//! Property-based equivalence suite for the paged KV backend: random prompt
//! forests (a shared prefix with divergent suffixes) must decode **bit
//! identically** on the paged and contiguous backends — through plain
//! decoding, prefix-index reuse across sequences, and full speculative rounds
//! with incremental drafter KV (`resume_draft`) — and the block pool must
//! come back empty (no leaks) with conserved refcounts.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tlt_draft::{DraftModel, FeatureSource};
use tlt_model::{ModelConfig, PagedKv, PrefixIndex, SamplingParams, TinyLm};
use tlt_rollout::{
    batch_seed, generate_group, speculative_generate, vanilla_generate, SdStrategy, SpecDrafter,
};

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    /// Chunked prefill on the paged backend reproduces the contiguous
    /// backend's logits bit for bit at every position, including chunks that
    /// straddle block boundaries and rollback/redo cycles.
    #[test]
    fn chunked_paged_prefill_is_bit_identical_to_contiguous(
        prompt in proptest::collection::vec(0u32..32, 2..20),
        chunk in 1usize..7,
        rollback in 1usize..8,
    ) {
        let target = TinyLm::new(ModelConfig::micro(), 4242);
        let mut contiguous = target.new_cache();
        let reference = target.forward(&prompt, &mut contiguous, false);

        let mut pool = target.new_paged_pool(4, 512);
        let mut cache = target.new_paged_cache();
        let mut kv = PagedKv { pool: &mut pool, cache: &mut cache };
        let mut rows: Vec<Vec<f32>> = Vec::new();
        for piece in prompt.chunks(chunk) {
            let out = target.forward(piece, &mut kv, false);
            for r in 0..out.logits.rows() {
                rows.push(out.logits.row(r).to_vec());
            }
        }
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(row.as_slice(), reference.logits.row(i), "position {}", i);
        }

        // Roll back a suffix and redo it: still bit-identical.
        use tlt_model::KvStore;
        let keep = prompt.len() - rollback.min(prompt.len() - 1);
        kv.kv_truncate(keep);
        contiguous.truncate(keep);
        let redo_paged = target.forward(&prompt[keep..], &mut kv, false);
        let redo_contiguous = target.forward(&prompt[keep..], &mut contiguous, false);
        prop_assert_eq!(redo_paged.logits.as_slice(), redo_contiguous.logits.as_slice());

        cache.release(&mut pool);
        prop_assert_eq!(pool.blocks_in_use(), 0);
        prop_assert!(pool.check_conservation().is_ok());
    }

    /// A random prompt forest — one shared prefix, several divergent suffixes
    /// — decoded as paged rollout groups with prefix-index reuse emits exactly
    /// the tokens per-sequence contiguous generation emits, seed for seed.
    #[test]
    fn prompt_forest_decodes_bit_identically_with_prefix_reuse(
        prefix in proptest::collection::vec(0u32..32, 0..12),
        suffixes in proptest::collection::vec(
            proptest::collection::vec(0u32..32, 1..6), 1..5),
        max_new in 1usize..24,
        seed in 0u64..1000,
    ) {
        let target = TinyLm::new(ModelConfig::micro(), 777);
        let params = SamplingParams { temperature: 0.8, top_k: None };
        let mut pool = target.new_paged_pool(4, 4096);
        let mut index = PrefixIndex::new(4);
        for suffix in &suffixes {
            let mut prompt = prefix.clone();
            prompt.extend_from_slice(suffix);
            let group = generate_group(
                &target, None, &prompt, 2, max_new, SdStrategy::default(),
                params, None, seed, &mut pool, Some(&mut index),
            );
            for (i, result) in group.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(batch_seed(seed, i));
                let solo = vanilla_generate(&target, &prompt, max_new, params, None, &mut rng);
                prop_assert_eq!(result, &solo);
            }
        }
        // Everything beyond the resident index blocks was released.
        prop_assert_eq!(pool.blocks_in_use(), index.resident_blocks());
        index.release_all(&mut pool);
        prop_assert_eq!(pool.blocks_in_use(), 0);
        prop_assert!(pool.check_conservation().is_ok());
    }

    /// Speculative rollout groups on the paged backend — forked prompt KV,
    /// multiple speculative rounds, incremental drafter KV via `resume_draft`
    /// — are bit-identical to per-sequence contiguous speculative decoding.
    #[test]
    fn speculative_paged_groups_match_contiguous_through_draft_rounds(
        prompt in proptest::collection::vec(0u32..32, 1..8),
        depth in 1usize..6,
        drafter_seed in 0u64..50,
        max_new in 8usize..28,
        seed in 0u64..1000,
    ) {
        let target = TinyLm::new(ModelConfig::micro(), 777);
        let drafter = DraftModel::new(&target, FeatureSource::LastLayer, drafter_seed);
        let params = SamplingParams { temperature: 0.8, top_k: None };
        let strategy = SdStrategy { draft_depth: depth, top_k: 1, tokens_to_verify: depth };
        let mut pool = target.new_paged_pool(4, 4096);
        let group = generate_group(
            &target,
            Some(&SpecDrafter::Learned(&drafter)),
            &prompt, 3, max_new, strategy, params, None, seed, &mut pool, None,
        );
        for (i, result) in group.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(batch_seed(seed, i));
            let solo = speculative_generate(
                &target,
                &SpecDrafter::Learned(&drafter),
                &prompt, max_new, strategy, params, None, &mut rng,
            );
            prop_assert_eq!(result, &solo);
            // Several speculative rounds ran, so the drafter's incremental KV
            // path (resume_draft) was genuinely exercised.
            prop_assert!(!result.accept_lengths.is_empty());
        }
        prop_assert_eq!(pool.blocks_in_use(), 0);
        prop_assert!(pool.check_conservation().is_ok());
    }
}
