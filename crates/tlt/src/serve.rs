//! Online serving pipeline: wires `tlt-workload` arrival streams into the
//! `tlt-serve` subsystem and compares speculative-decoding policies under
//! time-varying open-loop load.
//!
//! This is the serving-side counterpart of [`crate::pipeline`]: instead of
//! simulating closed-loop RL steps it drives a multi-replica deployment with
//! Poisson arrivals and reports SLO metrics (TTFT / TPOT / E2E percentiles,
//! goodput, utilisation) per SD policy. The elastic-SD insight of the paper — SD
//! only pays off below a batch-size threshold — becomes a load-dependent serving
//! policy here, so the adaptive manager is expected to dominate both "never
//! speculate" and "always speculate" across a rate sweep.

use serde::Serialize;
use tlt_gpusim::{GpuType, LlmCostModel};
use tlt_model::ModelSpec;
use tlt_rollout::{SdManagerConfig, SdMode, SdStrategy};
use tlt_serve::{
    simulate_disagg, simulate_serving, AutoscaleConfig, BalancerPolicy, ClusterReport,
    DisaggConfig, KvAccounting, ServeConfig, ServeReport, SloSpec,
};
use tlt_workload::{
    generate_arrivals, ArrivalConfig, LengthDistribution, RateCurve, SharedPrefixSpec,
};

/// Speculative-decoding policy compared by the serving experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ServingSdPolicy {
    /// Vanilla decoding on every step (the no-SD baseline).
    Disabled,
    /// The default SD strategy forced on for every decode step.
    StaticAlwaysOn,
    /// The adaptive manager: elastic activation on live load + BEG-MAB strategy
    /// selection.
    Adaptive,
}

impl ServingSdPolicy {
    /// All policies, in presentation order.
    pub fn all() -> [ServingSdPolicy; 3] {
        [
            ServingSdPolicy::Disabled,
            ServingSdPolicy::StaticAlwaysOn,
            ServingSdPolicy::Adaptive,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ServingSdPolicy::Disabled => "No SD",
            ServingSdPolicy::StaticAlwaysOn => "Static SD (always on)",
            ServingSdPolicy::Adaptive => "Adaptive SD (ours)",
        }
    }

    /// The `tlt-serve` SD mode implementing this policy.
    pub fn sd_mode(&self) -> SdMode {
        match self {
            ServingSdPolicy::Disabled => SdMode::Disabled,
            ServingSdPolicy::StaticAlwaysOn => SdMode::Static {
                strategy: SdStrategy::default(),
                threshold: usize::MAX,
            },
            ServingSdPolicy::Adaptive => SdMode::Adaptive {
                config: SdManagerConfig::default(),
            },
        }
    }
}

/// Configuration of one serving experiment: a deployment plus an arrival stream.
#[derive(Debug, Clone, Serialize)]
pub struct ServingExperimentConfig {
    /// Target model geometry.
    pub model: ModelSpec,
    /// GPU each replica runs on.
    pub gpu: GpuType,
    /// Tensor-parallel degree per replica.
    pub tp: usize,
    /// Number of replicas behind the frontend.
    pub replicas: usize,
    /// Request routing policy.
    pub balancer: BalancerPolicy,
    /// Time-varying arrival rate.
    pub curve: RateCurve,
    /// Arrival horizon in simulated seconds.
    pub horizon_s: f64,
    /// Prompt lengths (uniform, inclusive).
    pub prompt_len_range: (usize, usize),
    /// Long-tail output-length distribution.
    pub output_lengths: LengthDistribution,
    /// Per-request output cap (drives conservative KV admission).
    pub max_output_tokens: usize,
    /// KV accounting granularity on every replica (flat tokens or paged
    /// blocks with prefix sharing).
    pub kv_accounting: KvAccounting,
    /// Shared system prompt carried by a fraction of the requests.
    pub prefix: Option<SharedPrefixSpec>,
    /// Latency SLO for goodput accounting.
    pub slo: SloSpec,
    /// Seed for the arrival stream and the replicas' tuners.
    pub seed: u64,
    /// Per-replica GPU overrides for heterogeneous fleets, as
    /// `(replica_index, gpu)` pairs; replicas not listed run on `gpu`.
    pub replica_gpus: Vec<(usize, GpuType)>,
}

impl ServingExperimentConfig {
    /// A Qwen-7B / H100 deployment under bursty load at the given mean rate: the
    /// burst phase pushes replicas above the elastic threshold while the quiet
    /// phase drains below it, which is exactly where adaptive SD shines.
    pub fn qwen7b_bursty(replicas: usize, mean_rps: f64) -> Self {
        ServingExperimentConfig {
            model: ModelSpec::qwen2_5_7b(),
            gpu: GpuType::H100,
            tp: 1,
            replicas,
            balancer: BalancerPolicy::JoinShortestQueue,
            // 25% of each period at 3x the base rate (mean = base * 1.5).
            curve: RateCurve::Bursty {
                base_rps: mean_rps / 1.5,
                burst_rps: mean_rps * 2.0,
                burst_fraction: 0.25,
                period_s: 20.0,
            },
            horizon_s: 60.0,
            prompt_len_range: (256, 768),
            output_lengths: LengthDistribution::LongTailMixture {
                mu: 5.3,
                sigma: 0.9,
                truncation_mass: 0.02,
                max_len: 2048,
            },
            max_output_tokens: 2048,
            kv_accounting: KvAccounting::Tokens,
            prefix: None,
            slo: SloSpec {
                ttft_s: 1.0,
                tpot_s: 0.02,
            },
            seed: 2026,
            replica_gpus: Vec::new(),
        }
    }

    /// Runs replica `index` on a different GPU (heterogeneous fleet); the
    /// model geometry and TP degree stay fleet-wide.
    pub fn with_replica_gpu(mut self, index: usize, gpu: GpuType) -> Self {
        assert!(index < self.replicas, "replica index out of range");
        self.replica_gpus.push((index, gpu));
        self
    }

    /// Switches the deployment to paged (block-granular) KV accounting and
    /// gives `share` of the requests a shared system prompt of `prefix_len`
    /// tokens — the configuration behind `experiments -- serving
    /// --prefix-share`.
    pub fn with_prefix_share(mut self, share: f64, prefix_len: usize) -> Self {
        assert!((0.0..=1.0).contains(&share), "share must be in [0, 1]");
        self.kv_accounting = KvAccounting::Paged { block_size: 16 };
        self.prefix = Some(SharedPrefixSpec {
            share,
            len: prefix_len,
        });
        self
    }

    /// The arrival stream this experiment serves.
    pub fn arrivals(&self) -> Vec<tlt_workload::RequestArrival> {
        generate_arrivals(&ArrivalConfig {
            curve: self.curve,
            horizon_s: self.horizon_s,
            prompt_len_range: self.prompt_len_range,
            output_lengths: self.output_lengths.clone(),
            prefix: self.prefix,
            seed: self.seed,
        })
    }

    /// The `tlt-serve` deployment config under the given SD policy.
    pub fn serve_config(&self, policy: ServingSdPolicy) -> ServeConfig {
        let cost = LlmCostModel::new(self.model.clone(), self.gpu.spec(), self.tp);
        let mut config = ServeConfig::new(cost, self.replicas)
            .with_balancer(self.balancer)
            .with_sd_mode(policy.sd_mode());
        config.max_output_tokens = self.max_output_tokens;
        config.kv_accounting = self.kv_accounting;
        config.slo = self.slo;
        config.seed = self.seed;
        for &(index, gpu) in &self.replica_gpus {
            config = config.with_replica_cost(
                index,
                LlmCostModel::new(self.model.clone(), gpu.spec(), self.tp),
            );
        }
        config
    }
}

/// Runs one serving experiment under one SD policy.
pub fn run_serving(config: &ServingExperimentConfig, policy: ServingSdPolicy) -> ServeReport {
    let arrivals = config.arrivals();
    simulate_serving(&config.serve_config(policy), &arrivals)
}

/// The pinned deployment every trace replay runs against: the Qwen-7B bursty
/// testbed with adaptive SD and paged KV. Replay compares *workloads* under
/// one fixed scheduler, so the deployment must not drift with the workload —
/// only `replicas` is a knob.
pub fn replay_deployment(replicas: usize) -> ServeConfig {
    let mut config = ServingExperimentConfig::qwen7b_bursty(replicas, 8.0)
        .serve_config(ServingSdPolicy::Adaptive);
    config.kv_accounting = KvAccounting::Paged { block_size: 16 };
    config
}

/// Replays a recorded workload trace against [`replay_deployment`],
/// bit-deterministically: the same trace and replica count always produce the
/// same report.
pub fn run_replay(trace: &tlt_trace::Trace, replicas: usize) -> ServeReport {
    tlt_trace::replay_serving(trace, &replay_deployment(replicas))
}

/// Streamed counterpart of [`run_replay`]: drives the same pinned deployment
/// straight from a chunked TLTR decode, so the arrival vector is never held
/// in memory. Bit-identical to [`run_replay`] on the same trace bytes.
pub fn run_replay_streamed<R: std::io::Read>(
    reader: &mut tlt_trace::TraceReader<R>,
    replicas: usize,
) -> Result<ServeReport, tlt_trace::TraceError> {
    tlt_trace::replay_serving_streamed(reader, &replay_deployment(replicas))
}

/// Runs the same arrival stream under all three SD policies.
pub fn run_serving_comparison(
    config: &ServingExperimentConfig,
) -> Vec<(ServingSdPolicy, ServeReport)> {
    let arrivals = config.arrivals();
    ServingSdPolicy::all()
        .into_iter()
        .map(|policy| {
            (
                policy,
                simulate_serving(&config.serve_config(policy), &arrivals),
            )
        })
        .collect()
}

/// Serves one arrival stream — `share` of the requests carrying a
/// `prefix_len`-token system prompt — twice at a deliberately tight KV
/// budget: once with paged block accounting (shared blocks charged once,
/// prefill only for novel tokens) and once with the legacy flat token budget.
/// Returns `(paged, tokens)` reports; with meaningful sharing the paged run
/// admits more concurrent requests and posts the higher goodput.
pub fn run_prefix_sharing_comparison(
    replicas: usize,
    mean_rps: f64,
    share: f64,
    prefix_len: usize,
) -> (ServeReport, ServeReport) {
    let config = ServingExperimentConfig::qwen7b_bursty(replicas, mean_rps)
        .with_prefix_share(share, prefix_len);
    let arrivals = config.arrivals();
    let tighten = |mut c: ServeConfig| {
        // A quarter of the GPU for weights+KV makes memory the binding
        // resource, which is exactly where admission policy matters.
        c.kv_memory_fraction = 0.25;
        c
    };
    let paged = simulate_serving(
        &tighten(config.serve_config(ServingSdPolicy::Disabled)),
        &arrivals,
    );
    let mut token_config = config.clone();
    token_config.kv_accounting = KvAccounting::Tokens;
    let tokens = simulate_serving(
        &tighten(token_config.serve_config(ServingSdPolicy::Disabled)),
        &arrivals,
    );
    (paged, tokens)
}

/// Serves the same arrival stream — `share` of the requests carrying a
/// `prefix_len`-token system prompt, at a deliberately tight KV budget — on
/// two deployments of **equal replica count**: a disaggregated cluster of
/// `prefill_replicas` + `decode_replicas` (prefix-affinity prefill routing,
/// KV block migration over the default NVLink-class link, least-outstanding
/// decode placement) and a monolithic frontend over the same total. Returns
/// `(disagg, monolithic)`; the headline comparison is goodput **per replica**
/// (`ClusterReport::goodput_per_replica` vs `goodput_rps / total`): at high
/// rates the monolithic replicas' prefills head-of-line-block their decode
/// steps and blow the TPOT SLO, while the disaggregated decode pool never
/// runs a prefill and the prefill pool concentrates the shared prefix.
pub fn run_disagg_comparison(
    prefill_replicas: usize,
    decode_replicas: usize,
    mean_rps: f64,
    share: f64,
    prefix_len: usize,
) -> (ClusterReport, ServeReport) {
    let total = prefill_replicas + decode_replicas;
    let mut config = ServingExperimentConfig::qwen7b_bursty(total, mean_rps)
        .with_prefix_share(share, prefix_len);
    // Prefill-heavy prompts (document / RAG contexts) and a fast-streaming
    // TPOT target: the regime disaggregation was designed for. On a
    // monolithic replica every packed prefill of a 1-3k-token prompt stalls
    // the co-located decode batch for tens of milliseconds, which at load
    // pushes the per-request mean TPOT over the 10 ms streaming SLO.
    config.prompt_len_range = (1024, 3072);
    config.slo = SloSpec {
        ttft_s: 2.0,
        tpot_s: 0.010,
    };
    let arrivals = config.arrivals();
    let mut base = config.serve_config(ServingSdPolicy::Disabled);
    // Memory-tight replicas, as in the prefix-sharing experiment: admission
    // policy (and migration accounting) is what is being measured.
    base.kv_memory_fraction = 0.25;
    // Same peak fleet as the monolithic baseline — the autoscaler can only
    // shed idle replicas (and re-add them for bursts), never exceed the
    // monolithic provisioning, so goodput-per-replica is an apples-to-apples
    // pay-for-what-you-use comparison.
    let autoscale = AutoscaleConfig {
        interval_s: 1.0,
        min_prefill: 1,
        max_prefill: prefill_replicas,
        min_decode: 1,
        max_decode: decode_replicas,
        prefill_queue_high: 4.0,
        prefill_queue_low: 0.5,
        decode_tokens_high: 12_000.0,
        decode_tokens_low: 2_500.0,
        spawn_delay_s: 0.5,
    };
    let disagg = simulate_disagg(
        DisaggConfig::new(base.clone(), prefill_replicas, decode_replicas)
            .with_autoscale(autoscale),
        &arrivals,
    );
    let monolithic = simulate_serving(&base, &arrivals);
    (disagg, monolithic)
}

/// Serves one arrival stream on a heterogeneous fleet — replica `i` running on
/// `fleet[i]` — once per balancer policy. Queue-aware routing sees the slow
/// parts through their longer queues and shifts load toward the fast parts,
/// while round-robin splits arrivals evenly regardless of hardware; the
/// returned reports expose the resulting goodput and per-replica completion
/// split. Returns `(policy, report)` pairs in [`BalancerPolicy`] comparison
/// order (round-robin first).
pub fn run_heterogeneous_comparison(
    fleet: &[GpuType],
    mean_rps: f64,
) -> Vec<(BalancerPolicy, ServeReport)> {
    assert!(!fleet.is_empty(), "need at least one replica");
    let mut config = ServingExperimentConfig::qwen7b_bursty(fleet.len(), mean_rps);
    for (i, &gpu) in fleet.iter().enumerate() {
        if gpu != config.gpu {
            config = config.with_replica_gpu(i, gpu);
        }
    }
    let arrivals = config.arrivals();
    [
        BalancerPolicy::RoundRobin,
        BalancerPolicy::JoinShortestQueue,
        BalancerPolicy::LeastOutstandingTokens,
    ]
    .into_iter()
    .map(|balancer| {
        let mut c = config.clone();
        c.balancer = balancer;
        (
            balancer,
            simulate_serving(&c.serve_config(ServingSdPolicy::Disabled), &arrivals),
        )
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_serves_every_request_under_all_policies() {
        let config = ServingExperimentConfig::qwen7b_bursty(2, 4.0);
        let n = config.arrivals().len();
        assert!(n > 50, "stream too small: {n}");
        for (policy, report) in run_serving_comparison(&config) {
            assert_eq!(
                report.completed.len(),
                n,
                "{}: lost requests",
                policy.name()
            );
        }
    }

    #[test]
    fn adaptive_policy_dominates_at_a_moderate_rate() {
        // The acceptance-shape claim: at a rate oscillating around the elastic
        // threshold, adaptive SD beats No-SD *and* always-on SD on tail TTFT
        // or goodput.
        let config = ServingExperimentConfig::qwen7b_bursty(2, 10.0);
        let results = run_serving_comparison(&config);
        let get = |p: ServingSdPolicy| {
            results
                .iter()
                .find(|(q, _)| *q == p)
                .map(|(_, r)| r)
                .expect("policy present")
        };
        let disabled = get(ServingSdPolicy::Disabled);
        let always = get(ServingSdPolicy::StaticAlwaysOn);
        let adaptive = get(ServingSdPolicy::Adaptive);
        let beats_on_ttft =
            adaptive.ttft.p99_s < disabled.ttft.p99_s && adaptive.ttft.p99_s < always.ttft.p99_s;
        let beats_on_goodput = adaptive.goodput_rps > disabled.goodput_rps
            && adaptive.goodput_rps > always.goodput_rps;
        assert!(
            beats_on_ttft || beats_on_goodput,
            "adaptive must win on p99 TTFT or goodput: ttft {a:.3}/{d:.3}/{s:.3}, goodput {ag:.3}/{dg:.3}/{sg:.3}",
            a = adaptive.ttft.p99_s,
            d = disabled.ttft.p99_s,
            s = always.ttft.p99_s,
            ag = adaptive.goodput_rps,
            dg = disabled.goodput_rps,
            sg = always.goodput_rps,
        );
    }

    #[test]
    fn paged_prefix_sharing_beats_token_admission_on_goodput() {
        // The acceptance criterion of the paged-KV refactor: at a fixed KV
        // budget with >= 50% of requests sharing a system prompt, block
        // admission with prefix sharing completes the same work with higher
        // goodput than the flat token budget.
        let (paged, tokens) = run_prefix_sharing_comparison(1, 16.0, 0.6, 768);
        assert_eq!(
            paged.completed.len(),
            tokens.completed.len(),
            "both policies must serve every request"
        );
        assert!(
            paged.goodput_rps > tokens.goodput_rps,
            "paged sharing must win on goodput: {pg} vs {tg}",
            pg = paged.goodput_rps,
            tg = tokens.goodput_rps
        );
        assert!(paged.mean_prefix_hit_rate() > 0.0, "prefix cache never hit");
        let util = paged.mean_pool_utilization();
        assert!(util > 0.0 && util <= 1.0, "pool utilisation {util}");
        assert_eq!(
            tokens.mean_pool_utilization(),
            0.0,
            "token mode has no pool"
        );
    }

    #[test]
    fn queue_aware_routing_beats_round_robin_on_a_heterogeneous_fleet() {
        // The pinned heterogeneity assertion: with one H100, one A100, and one
        // RTX 4090 behind the frontend, queue-aware routing must match every
        // request served by round-robin and post at least its goodput, and it
        // must shift completions toward the fast part (the H100 replica
        // finishing at least as many requests as the 4090 replica).
        let fleet = [GpuType::H100, GpuType::A100, GpuType::Rtx4090];
        let results = run_heterogeneous_comparison(&fleet, 12.0);
        let get = |p: BalancerPolicy| {
            results
                .iter()
                .find(|(q, _)| *q == p)
                .map(|(_, r)| r)
                .expect("policy present")
        };
        let rr = get(BalancerPolicy::RoundRobin);
        let jsq = get(BalancerPolicy::JoinShortestQueue);
        assert_eq!(rr.completed.len(), jsq.completed.len(), "lost requests");
        assert!(
            jsq.goodput_rps >= rr.goodput_rps,
            "queue-aware routing must not lose to round-robin: {j} vs {r}",
            j = jsq.goodput_rps,
            r = rr.goodput_rps
        );
        assert!(
            jsq.replicas[0].completed >= jsq.replicas[2].completed,
            "H100 replica should complete at least as much as the RTX 4090: {} vs {}",
            jsq.replicas[0].completed,
            jsq.replicas[2].completed
        );
        // Round-robin ignores hardware, so its split stays near-even.
        let rr_split: Vec<usize> = rr.replicas.iter().map(|r| r.completed).collect();
        let max = *rr_split.iter().max().expect("non-empty");
        let min = *rr_split.iter().min().expect("non-empty");
        assert!(
            max - min <= rr.completed.len() / 3,
            "round-robin split unexpectedly skewed: {rr_split:?}"
        );
    }

    #[test]
    fn heterogeneous_replicas_get_hardware_specific_budgets() {
        let config =
            ServingExperimentConfig::qwen7b_bursty(2, 4.0).with_replica_gpu(1, GpuType::Rtx4090);
        let serve = config.serve_config(ServingSdPolicy::Disabled);
        assert_eq!(serve.cost_for(0).gpu.gpu_type, GpuType::H100);
        assert_eq!(serve.cost_for(1).gpu.gpu_type, GpuType::Rtx4090);
        // The 24 GB part admits against a far smaller KV budget than the H100.
        let mut small = serve.clone();
        small.cost = serve.cost_for(1).clone();
        assert!(small.kv_token_budget() < serve.kv_token_budget() / 2);
    }

    #[test]
    fn disaggregation_beats_monolithic_on_goodput_per_replica() {
        // The headline disaggregation claim, pinned at the middle of the
        // BENCH_6 sweep (10x the monolithic serving experiment's rates): a
        // 3-prefill + 5-decode cluster with prefix-affinity routing, KV block
        // migration, and a scale-to-fit autoscaler strictly beats a
        // monolithic 8-replica frontend on goodput per provisioned replica
        // under the fast-streaming SLO.
        let (disagg, mono) = run_disagg_comparison(3, 5, 60.0, 0.6, 768);
        assert_eq!(
            disagg.serve.completed.len(),
            mono.completed.len(),
            "both deployments must serve every request"
        );
        assert_eq!(disagg.serve.dropped, 0, "disagg dropped requests");
        let mono_per_replica = mono.goodput_rps / 8.0;
        assert!(
            disagg.goodput_per_replica > mono_per_replica,
            "disaggregation must win on goodput-per-replica: {d:.4} vs {m:.4}",
            d = disagg.goodput_per_replica,
            m = mono_per_replica,
        );
        // The win is mechanically real: every request was migrated over the
        // link exactly once (no recompute, no failovers in a fault-free run),
        // and the decode pool's p99 TPOT holds the 10 ms streaming SLO that
        // monolithic prefill interference breaks.
        assert_eq!(disagg.migrations as usize, disagg.serve.completed.len());
        assert_eq!(disagg.aborted_transfers, 0);
        assert!(
            disagg.serve.tpot.p99_s < 0.010,
            "disagg decode TPOT p99 {:.4}",
            disagg.serve.tpot.p99_s
        );
        assert!(
            mono.tpot.p99_s > 0.010,
            "monolithic TPOT p99 {:.4} should break the streaming SLO",
            mono.tpot.p99_s
        );
        // Prefix-affinity routing actually engaged on the prefill pool.
        let hit = disagg
            .serve
            .replicas
            .iter()
            .map(|r| r.prefix_hit_rate)
            .fold(0.0f64, f64::max);
        assert!(hit > 0.2, "prefill prefix hit rate {hit:.3}");
    }

    #[test]
    fn disagg_comparison_is_deterministic() {
        let (a_disagg, a_mono) = run_disagg_comparison(2, 3, 20.0, 0.6, 768);
        let (b_disagg, b_mono) = run_disagg_comparison(2, 3, 20.0, 0.6, 768);
        assert_eq!(a_disagg.serve.completed, b_disagg.serve.completed);
        assert_eq!(a_disagg.goodput_per_replica, b_disagg.goodput_per_replica);
        assert_eq!(a_disagg.migrations, b_disagg.migrations);
        assert_eq!(a_disagg.scale_ups, b_disagg.scale_ups);
        assert_eq!(a_disagg.scale_downs, b_disagg.scale_downs);
        assert_eq!(a_disagg.retires, b_disagg.retires);
        assert_eq!(a_disagg.avg_active_replicas, b_disagg.avg_active_replicas);
        assert_eq!(a_mono.completed, b_mono.completed);
    }

    #[test]
    fn serving_pipeline_is_deterministic() {
        let config = ServingExperimentConfig::qwen7b_bursty(2, 6.0);
        let a = run_serving(&config, ServingSdPolicy::Adaptive);
        let b = run_serving(&config, ServingSdPolicy::Adaptive);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.throughput_tokens_per_s, b.throughput_tokens_per_s);
    }
}
