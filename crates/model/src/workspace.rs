//! Reusable scratch buffers for allocation-free forward passes.
//!
//! Every per-op temporary of a decoder forward pass (normed activations, Q/K/V,
//! attention scores, MLP intermediates, logits) lives in a [`DecodeWorkspace`]
//! that is created once per generation loop and reused across steps. Buffers are
//! resized with [`Mat::set_rows`], which reuses capacity, so a steady-state decode
//! step performs **zero heap allocations** (asserted by the counting-allocator
//! suite in `tests/alloc_free_decode.rs`).
//!
//! The workspace kernels and the allocating convenience API (`TinyLm::forward`,
//! `DecoderLayer::forward_cached`) share the same code path, so their outputs are
//! bit-identical — using a workspace is purely a performance decision.

use crate::tensor::Mat;
use crate::transformer::ModelConfig;

/// Scratch buffers for one decoder-layer forward pass
/// ([`crate::layers::DecoderLayer::forward_cached_into`]).
///
/// One instance serves every layer of a model in turn (all layers share the same
/// geometry), which is how [`DecodeWorkspace`] uses it.
#[derive(Debug, Clone)]
pub struct LayerScratch {
    pub(crate) normed: Mat,
    pub(crate) q: Mat,
    pub(crate) k: Mat,
    pub(crate) v: Mat,
    pub(crate) attn_out: Mat,
    pub(crate) attn_proj: Mat,
    pub(crate) resid1: Mat,
    pub(crate) mlp_normed: Mat,
    pub(crate) gate: Mat,
    pub(crate) up: Mat,
    pub(crate) mlp_hidden: Mat,
    pub(crate) mlp_out: Mat,
    /// Attention-score buffer, sized to the longest attendable context.
    pub(crate) scores: Vec<f32>,
    hidden: usize,
    ffn_hidden: usize,
}

impl LayerScratch {
    /// Creates scratch for layers of width `hidden` / `ffn_hidden` with room for
    /// `max_score_slots` attention-score entries (`num_heads * max context length`)
    /// before any reallocation.
    pub fn new(hidden: usize, ffn_hidden: usize, max_score_slots: usize) -> Self {
        LayerScratch {
            normed: Mat::zeros(0, hidden),
            q: Mat::zeros(0, hidden),
            k: Mat::zeros(0, hidden),
            v: Mat::zeros(0, hidden),
            attn_out: Mat::zeros(0, hidden),
            attn_proj: Mat::zeros(0, hidden),
            resid1: Mat::zeros(0, hidden),
            mlp_normed: Mat::zeros(0, hidden),
            gate: Mat::zeros(0, ffn_hidden),
            up: Mat::zeros(0, ffn_hidden),
            mlp_hidden: Mat::zeros(0, ffn_hidden),
            mlp_out: Mat::zeros(0, hidden),
            scores: vec![0.0; max_score_slots],
            hidden,
            ffn_hidden,
        }
    }

    /// Resizes every buffer for a forward pass over `rows` new positions needing
    /// up to `score_slots` attention-score entries. Reuses capacity; only grows
    /// allocations the first time a larger shape is seen.
    pub(crate) fn prepare(&mut self, rows: usize, score_slots: usize) {
        self.normed.set_rows(rows, self.hidden);
        self.q.set_rows(rows, self.hidden);
        self.k.set_rows(rows, self.hidden);
        self.v.set_rows(rows, self.hidden);
        self.attn_out.set_rows(rows, self.hidden);
        self.attn_proj.set_rows(rows, self.hidden);
        self.resid1.set_rows(rows, self.hidden);
        self.mlp_normed.set_rows(rows, self.hidden);
        self.gate.set_rows(rows, self.ffn_hidden);
        self.up.set_rows(rows, self.ffn_hidden);
        self.mlp_hidden.set_rows(rows, self.ffn_hidden);
        self.mlp_out.set_rows(rows, self.hidden);
        if self.scores.len() < score_slots {
            self.scores.resize(score_slots, 0.0);
        }
    }
}

/// Workspace for full-model incremental forward passes
/// ([`crate::transformer::TinyLm::forward_into`] /
/// [`crate::transformer::TinyLm::decode_step`]).
///
/// Create one per generation loop and reuse it across steps; after each forward
/// call [`DecodeWorkspace::logits`] and [`DecodeWorkspace::last_hidden`] expose
/// the results for the new positions.
#[derive(Debug, Clone)]
pub struct DecodeWorkspace {
    pub(crate) hidden: Mat,
    pub(crate) next_hidden: Mat,
    pub(crate) norm_out: Mat,
    pub(crate) logits: Mat,
    pub(crate) scratch: LayerScratch,
    hidden_dim: usize,
    vocab: usize,
}

impl DecodeWorkspace {
    /// Creates a workspace for models with `config`'s geometry. The attention
    /// score buffer is pre-sized to `config.max_seq_len`, so no forward pass
    /// within the model's context window ever grows it.
    pub fn new(config: &ModelConfig) -> Self {
        DecodeWorkspace {
            hidden: Mat::zeros(0, config.hidden),
            next_hidden: Mat::zeros(0, config.hidden),
            norm_out: Mat::zeros(0, config.hidden),
            logits: Mat::zeros(0, config.vocab_size),
            scratch: LayerScratch::new(
                config.hidden,
                config.ffn_hidden,
                config.max_seq_len * config.num_heads,
            ),
            hidden_dim: config.hidden,
            vocab: config.vocab_size,
        }
    }

    /// Prepares the model-level buffers for a forward pass over `rows` positions.
    pub(crate) fn prepare(&mut self, rows: usize) {
        self.hidden.set_rows(rows, self.hidden_dim);
        self.norm_out.set_rows(rows, self.hidden_dim);
        self.logits.set_rows(rows, self.vocab);
    }

    /// Logits of the most recent forward pass (`rows x vocab`).
    pub fn logits(&self) -> &Mat {
        &self.logits
    }

    /// Last-layer hidden states (pre final norm) of the most recent forward pass
    /// (`rows x hidden`) — the drafter's `FeatureSource::LastLayer` features.
    pub fn last_hidden(&self) -> &Mat {
        &self.hidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_reuses_capacity() {
        let config = ModelConfig::micro();
        let mut ws = DecodeWorkspace::new(&config);
        ws.prepare(8);
        ws.scratch.prepare(8, 16);
        let logits_ptr = ws.logits.as_slice().as_ptr();
        let q_ptr = ws.scratch.q.as_slice().as_ptr();
        ws.prepare(1);
        ws.scratch.prepare(1, 16);
        assert_eq!(ws.logits.as_slice().as_ptr(), logits_ptr);
        assert_eq!(ws.scratch.q.as_slice().as_ptr(), q_ptr);
        assert_eq!(ws.logits().shape(), (1, config.vocab_size));
    }

    #[test]
    fn scores_presized_to_full_context() {
        let config = ModelConfig::micro();
        let ws = DecodeWorkspace::new(&config);
        assert_eq!(
            ws.scratch.scores.len(),
            config.max_seq_len * config.num_heads
        );
    }
}
