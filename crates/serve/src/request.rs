//! Request lifecycle types shared by the frontend and the replica engines.

use serde::Serialize;
use tlt_workload::RequestArrival;

/// A request as tracked by the serving subsystem: what arrived, plus the oracle
/// output length the simulation decodes towards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ServeRequest {
    /// Frontend-assigned request id (arrival order).
    pub id: u64,
    /// Arrival time at the frontend, in simulated seconds.
    pub arrival_s: f64,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Number of output tokens this request will generate.
    pub output_len: usize,
    /// Shared-prefix group the prompt starts with (0 = none). Requests with
    /// the same non-zero id share one resident block group under paged KV
    /// accounting.
    pub prefix_id: u64,
    /// Tokens of the prompt belonging to the shared prefix.
    pub prefix_len: usize,
}

impl ServeRequest {
    /// Builds a request from a workload arrival record.
    pub fn from_arrival(a: &RequestArrival) -> Self {
        ServeRequest {
            id: a.id,
            arrival_s: a.time_s(),
            prompt_len: a.prompt_len.max(1),
            output_len: a.output_len.max(1),
            prefix_id: a.prefix_id,
            prefix_len: a.prefix_len.min(a.prompt_len.max(1)),
        }
    }
}

/// Full latency record of one completed request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CompletedRequest {
    /// Request id.
    pub id: u64,
    /// Replica that served it.
    pub replica: usize,
    /// Arrival time at the frontend (seconds).
    pub arrival_s: f64,
    /// Time the request was first admitted into a prefill batch (seconds).
    pub admitted_s: f64,
    /// Time the first output token was produced (end of prefill, seconds).
    pub first_token_s: f64,
    /// Time the last output token was produced (seconds).
    pub finish_s: f64,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Output tokens generated.
    pub output_len: usize,
    /// How many times the request was preempted and re-prefilled.
    pub preemptions: u32,
}

impl CompletedRequest {
    /// Time to first token: arrival to first output token.
    pub fn ttft_s(&self) -> f64 {
        self.first_token_s - self.arrival_s
    }

    /// Time per output token over the decode phase (first token excluded).
    pub fn tpot_s(&self) -> f64 {
        (self.finish_s - self.first_token_s) / (self.output_len.saturating_sub(1).max(1)) as f64
    }

    /// End-to-end latency: arrival to last token.
    pub fn e2e_s(&self) -> f64 {
        self.finish_s - self.arrival_s
    }

    /// Time spent waiting in the admission queue before prefill started.
    pub fn queueing_s(&self) -> f64 {
        self.admitted_s - self.arrival_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_accessors_are_consistent() {
        let r = CompletedRequest {
            id: 3,
            replica: 1,
            arrival_s: 10.0,
            admitted_s: 10.5,
            first_token_s: 11.0,
            finish_s: 15.0,
            prompt_len: 128,
            output_len: 5,
            preemptions: 0,
        };
        assert!((r.ttft_s() - 1.0).abs() < 1e-12);
        assert!((r.tpot_s() - 1.0).abs() < 1e-12);
        assert!((r.e2e_s() - 5.0).abs() < 1e-12);
        assert!((r.queueing_s() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_token_tpot_does_not_divide_by_zero() {
        let r = CompletedRequest {
            id: 0,
            replica: 0,
            arrival_s: 0.0,
            admitted_s: 0.0,
            first_token_s: 1.0,
            finish_s: 1.0,
            prompt_len: 8,
            output_len: 1,
            preemptions: 0,
        };
        assert_eq!(r.tpot_s(), 0.0);
    }

    #[test]
    fn from_arrival_clamps_to_at_least_one_token() {
        let a = RequestArrival {
            id: 7,
            time_ns: 1_500_000_000,
            prompt_len: 0,
            output_len: 0,
            prefix_id: 3,
            prefix_len: 40,
        };
        let r = ServeRequest::from_arrival(&a);
        assert_eq!(r.prompt_len, 1);
        assert_eq!(r.output_len, 1);
        assert_eq!(r.prefix_id, 3);
        assert_eq!(r.prefix_len, 1, "prefix clamped to the prompt");
        assert!((r.arrival_s - 1.5).abs() < 1e-12);
    }
}
