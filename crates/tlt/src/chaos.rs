//! Chaos pipeline: runs the pinned fault-injection scenario matrix from
//! [`tlt_chaos`] and summarises per-scenario outcomes for the experiments
//! harness (`experiments -- chaos [--json <path>]`) and the `chaos-suite` CI
//! job.

pub use tlt_chaos::{
    disagg_matrix, pinned_matrix, run_disagg_scenario, run_scenario, ChaosOutcome,
    DisaggChaosOutcome, DisaggScenario, DisaggScenarioBuilder, FaultKind, InvariantReport,
    Scenario, ScenarioBuilder, INVARIANTS,
};

/// Runs every scenario in the pinned matrix and returns the outcomes in matrix
/// order.
pub fn run_chaos_matrix() -> Vec<ChaosOutcome> {
    tlt_chaos::run_pinned_matrix()
}

/// Runs every scenario in the pinned disaggregated-cluster matrix and returns
/// the outcomes in matrix order.
pub fn run_disagg_chaos_matrix() -> Vec<DisaggChaosOutcome> {
    tlt_chaos::run_disagg_matrix()
}

/// One summary row per scenario: name, schedule, request accounting, fault
/// accounting, and the invariant verdict — the `verdict` cell is literally
/// `PASS` or `FAIL(n)` so downstream tooling can gate on it.
pub fn chaos_summary_rows(outcomes: &[ChaosOutcome]) -> Vec<Vec<String>> {
    outcomes
        .iter()
        .map(|o| {
            vec![
                o.scenario.name.clone(),
                o.scenario.schedule_label(),
                format!("{}", o.arrivals),
                format!("{}", o.completed),
                format!("{}", o.dropped),
                format!("{}", o.requeued),
                format!("{}", o.crashes),
                format!("{}", o.restarts),
                format!(
                    "{}/{}/{}",
                    o.drafter.swaps, o.drafter.rejected_corrupt, o.drafter.rejected_stale
                ),
                format!("{:.3}", o.report.mean_pool_utilization()),
                format!("{:.3}", o.report.mean_prefix_hit_rate()),
                o.invariants.verdict(),
            ]
        })
        .collect()
}

/// Column headers matching [`chaos_summary_rows`].
pub const CHAOS_SUMMARY_HEADER: [&str; 12] = [
    "scenario",
    "schedule",
    "arrivals",
    "completed",
    "dropped",
    "requeued",
    "crashes",
    "restarts",
    "ckpt s/c/s",
    "pool util",
    "prefix hit",
    "verdict",
];

/// One summary row per disaggregated-cluster scenario: name, schedule, pool
/// shape, request and fault accounting, migration/transfer counters, the
/// autoscaler decision log, and the invariant verdict.
pub fn disagg_summary_rows(outcomes: &[DisaggChaosOutcome]) -> Vec<Vec<String>> {
    outcomes
        .iter()
        .map(|o| {
            vec![
                o.scenario.name.clone(),
                o.scenario.schedule_label(),
                format!(
                    "{}P+{}D",
                    o.scenario.prefill_replicas, o.scenario.decode_replicas
                ),
                format!("{}", o.arrivals),
                format!("{}", o.completed),
                format!("{}", o.dropped),
                format!("{}", o.requeued),
                format!("{}/{}", o.crashes, o.restarts),
                format!("{}", o.report.migrations),
                format!("{}", o.report.aborted_transfers),
                format!(
                    "{}/{}/{}",
                    o.report.scale_ups, o.report.scale_downs, o.report.retires
                ),
                o.invariants.verdict(),
            ]
        })
        .collect()
}

/// Column headers matching [`disagg_summary_rows`].
pub const DISAGG_SUMMARY_HEADER: [&str; 12] = [
    "scenario",
    "schedule",
    "pools",
    "arrivals",
    "completed",
    "dropped",
    "requeued",
    "crash/restart",
    "migrations",
    "aborted",
    "up/down/retire",
    "verdict",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_rows_carry_a_verdict_per_scenario() {
        let outcome = run_scenario(
            &Scenario::builder("summary-probe")
                .seed(5)
                .arrivals(4.0, 4.0)
                .build(),
        );
        let rows = chaos_summary_rows(&[outcome]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), CHAOS_SUMMARY_HEADER.len());
        assert_eq!(rows[0][0], "summary-probe");
        assert_eq!(rows[0].last().unwrap(), "PASS");
    }

    #[test]
    fn disagg_summary_rows_carry_a_verdict_per_scenario() {
        let outcome = run_disagg_scenario(
            &DisaggScenario::builder("disagg-summary-probe")
                .seed(6)
                .pools(1, 1)
                .arrivals(4.0, 4.0)
                .build(),
        );
        let rows = disagg_summary_rows(&[outcome]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), DISAGG_SUMMARY_HEADER.len());
        assert_eq!(rows[0][0], "disagg-summary-probe");
        assert_eq!(rows[0][2], "1P+1D");
        assert_eq!(rows[0].last().unwrap(), "PASS");
    }
}
