//! Parametric catalog of the *real* model geometries evaluated in the paper.
//!
//! The tiny transformer in [`crate::transformer`] produces token-level behaviour;
//! the [`ModelSpec`]s here carry the true parameter counts, layer counts, and KV
//! geometry of Qwen2.5-7B/32B, DeepSeek-R1-Distill-7B, Llama-3.3-70B, Llama-3-8B
//! and Qwen2.5-0.5B so that the GPU cost model (`tlt-gpusim`) can estimate realistic
//! kernel times, memory footprints, and FLOP counts for every experiment.

use serde::{Deserialize, Serialize};

/// Bytes per parameter / activation element for BF16 weights.
pub const BF16_BYTES: f64 = 2.0;

/// Architecture geometry of a (full-size) transformer model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Human-readable name as used in the paper.
    pub name: String,
    /// Total parameter count.
    pub params: f64,
    /// Number of decoder layers.
    pub num_layers: usize,
    /// Hidden (residual stream) size.
    pub hidden: usize,
    /// Number of attention heads.
    pub num_heads: usize,
    /// Number of KV heads (grouped-query attention).
    pub num_kv_heads: usize,
    /// MLP intermediate size.
    pub ffn_hidden: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
}

impl ModelSpec {
    /// Qwen2.5-7B geometry (paper model "Qwen-7B").
    pub fn qwen2_5_7b() -> Self {
        ModelSpec {
            name: "Qwen2.5-7B".to_string(),
            params: 7.6e9,
            num_layers: 28,
            hidden: 3584,
            num_heads: 28,
            num_kv_heads: 4,
            ffn_hidden: 18944,
            vocab_size: 152_064,
        }
    }

    /// DeepSeek-R1-Distill-Qwen-7B geometry (paper model "DeepSeek-7B"); identical
    /// architecture to Qwen2.5-7B (it is a distilled fine-tune of it).
    pub fn deepseek_r1_7b() -> Self {
        ModelSpec {
            name: "DeepSeek-R1-Distill-Qwen-7B".to_string(),
            ..ModelSpec::qwen2_5_7b()
        }
    }

    /// Qwen2.5-32B geometry (paper model "Qwen-32B").
    pub fn qwen2_5_32b() -> Self {
        ModelSpec {
            name: "Qwen2.5-32B".to_string(),
            params: 32.8e9,
            num_layers: 64,
            hidden: 5120,
            num_heads: 40,
            num_kv_heads: 8,
            ffn_hidden: 27648,
            vocab_size: 152_064,
        }
    }

    /// Llama-3.3-70B-Instruct geometry (paper model "Llama-70B").
    pub fn llama3_70b() -> Self {
        ModelSpec {
            name: "Llama-3.3-70B-Instruct".to_string(),
            params: 70.6e9,
            num_layers: 80,
            hidden: 8192,
            num_heads: 64,
            num_kv_heads: 8,
            ffn_hidden: 28672,
            vocab_size: 128_256,
        }
    }

    /// Llama-3-8B geometry (used by the paper's CUDAGraph memory study, Table 5).
    pub fn llama3_8b() -> Self {
        ModelSpec {
            name: "Llama-3-8B".to_string(),
            params: 8.0e9,
            num_layers: 32,
            hidden: 4096,
            num_heads: 32,
            num_kv_heads: 8,
            ffn_hidden: 14336,
            vocab_size: 128_256,
        }
    }

    /// Qwen2.5-0.5B geometry (the vanilla small-model drafter baseline).
    pub fn qwen2_5_0_5b() -> Self {
        ModelSpec {
            name: "Qwen2.5-0.5B".to_string(),
            params: 0.49e9,
            num_layers: 24,
            hidden: 896,
            num_heads: 14,
            num_kv_heads: 2,
            ffn_hidden: 4864,
            vocab_size: 151_936,
        }
    }

    /// All target models evaluated end-to-end in the paper (Figure 11).
    pub fn paper_targets() -> Vec<ModelSpec> {
        vec![
            ModelSpec::qwen2_5_7b(),
            ModelSpec::deepseek_r1_7b(),
            ModelSpec::qwen2_5_32b(),
            ModelSpec::llama3_70b(),
        ]
    }

    /// Looks a spec up by its paper short-name (case-insensitive substring match).
    pub fn by_name(name: &str) -> Option<ModelSpec> {
        let lower = name.to_ascii_lowercase();
        let all = [
            ModelSpec::qwen2_5_7b(),
            ModelSpec::deepseek_r1_7b(),
            ModelSpec::qwen2_5_32b(),
            ModelSpec::llama3_70b(),
            ModelSpec::llama3_8b(),
            ModelSpec::qwen2_5_0_5b(),
        ];
        all.into_iter().find(|s| {
            s.name.to_ascii_lowercase().contains(&lower)
                || lower.contains(&s.name.to_ascii_lowercase())
        })
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.num_heads
    }

    /// Weight footprint in bytes for BF16 weights.
    pub fn weight_bytes(&self) -> f64 {
        self.params * BF16_BYTES
    }

    /// KV-cache bytes per token (both K and V across all layers, BF16, GQA-aware).
    pub fn kv_bytes_per_token(&self) -> f64 {
        let kv_dim = self.num_kv_heads * self.head_dim();
        2.0 * self.num_layers as f64 * kv_dim as f64 * BF16_BYTES
    }

    /// Approximate FLOPs per token of a forward pass (the standard `2 * params`
    /// estimate, which is what roofline-style analyses use).
    pub fn flops_per_token(&self) -> f64 {
        2.0 * self.params
    }

    /// Parameter count of a single decoder layer (attention + MLP + norms), used to
    /// size single-layer EAGLE-style drafters.
    pub fn params_per_layer(&self) -> f64 {
        let h = self.hidden as f64;
        let f = self.ffn_hidden as f64;
        let kv_dim = (self.num_kv_heads * self.head_dim()) as f64;
        // q + o projections are h*h, k/v are h*kv_dim; MLP is 3 * h * f; norms ~ 2h.
        2.0 * h * h + 2.0 * h * kv_dim + 3.0 * h * f + 2.0 * h
    }

    /// Builds the EAGLE-style single-layer drafter spec for this target: one decoder
    /// layer plus the fusion projection, with embeddings/LM-head *shared* (tied) with
    /// the target and therefore not counted as extra resident weights.
    pub fn eagle_drafter(&self) -> DraftModelSpec {
        DraftModelSpec {
            name: format!("{}-EAGLE-drafter", self.name),
            params: self.params_per_layer() + 2.0 * (self.hidden * self.hidden) as f64,
            num_layers: 1,
            hidden: self.hidden,
            flops_per_token: 2.0
                * (self.params_per_layer() + 2.0 * (self.hidden * self.hidden) as f64),
        }
    }

    /// Builds a vanilla small-LM drafter spec (e.g. Qwen2.5-0.5B for Qwen targets).
    pub fn small_lm_drafter(small: &ModelSpec) -> DraftModelSpec {
        DraftModelSpec {
            name: format!("{}-drafter", small.name),
            params: small.params,
            num_layers: small.num_layers,
            hidden: small.hidden,
            flops_per_token: small.flops_per_token(),
        }
    }
}

/// Geometry of a draft model (either a single-layer EAGLE drafter or a small LM).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DraftModelSpec {
    /// Human-readable name.
    pub name: String,
    /// Parameter count of the *drafter-specific* weights.
    pub params: f64,
    /// Number of sequential decoder layers (dominates drafting latency).
    pub num_layers: usize,
    /// Hidden size.
    pub hidden: usize,
    /// FLOPs per drafted token.
    pub flops_per_token: f64,
}

impl DraftModelSpec {
    /// Weight footprint in bytes (BF16).
    pub fn weight_bytes(&self) -> f64 {
        self.params * BF16_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_parameter_counts_are_sane() {
        assert!(ModelSpec::qwen2_5_7b().params > 6e9);
        assert!(ModelSpec::qwen2_5_32b().params > 30e9);
        assert!(ModelSpec::llama3_70b().params > 65e9);
        assert!(ModelSpec::qwen2_5_0_5b().params < 1e9);
    }

    #[test]
    fn per_layer_params_roughly_params_over_layers() {
        // The paper notes the single-layer drafter is ~1/layer_num of the target.
        for spec in ModelSpec::paper_targets() {
            let approx = spec.params / spec.num_layers as f64;
            let per_layer = spec.params_per_layer();
            let ratio = per_layer / approx;
            assert!(
                (0.4..2.0).contains(&ratio),
                "{}: per-layer {per_layer:.2e} vs params/layers {approx:.2e}",
                spec.name
            );
        }
    }

    #[test]
    fn eagle_drafter_much_smaller_than_target() {
        let target = ModelSpec::qwen2_5_32b();
        let drafter = target.eagle_drafter();
        assert!(drafter.params * 20.0 < target.params);
        assert_eq!(drafter.num_layers, 1);
    }

    #[test]
    fn eagle_drafter_fewer_layers_than_small_lm() {
        // The paper's argument: a 0.5B drafter still has 24 sequential layers while
        // the EAGLE drafter has 1, so its drafting latency is far higher.
        let small = ModelSpec::qwen2_5_0_5b();
        let eagle = ModelSpec::qwen2_5_32b().eagle_drafter();
        let small_drafter = ModelSpec::small_lm_drafter(&small);
        assert!(small_drafter.num_layers > 20 * eagle.num_layers);
    }

    #[test]
    fn kv_bytes_per_token_accounts_for_gqa() {
        let spec = ModelSpec::llama3_8b();
        // 8 KV heads * 128 head_dim * 2 (K and V) * 32 layers * 2 bytes = 256 KiB/token.
        let expected = 2.0 * 32.0 * (8 * 128) as f64 * 2.0;
        assert!((spec.kv_bytes_per_token() - expected).abs() < 1.0);
    }

    #[test]
    fn lookup_by_name_matches_paper_labels() {
        assert_eq!(
            ModelSpec::by_name("Qwen2.5-32B").unwrap().name,
            "Qwen2.5-32B"
        );
        assert!(ModelSpec::by_name("DeepSeek").is_some());
        assert!(ModelSpec::by_name("no-such-model").is_none());
    }

    #[test]
    fn deepseek_shares_qwen_architecture() {
        let qwen = ModelSpec::qwen2_5_7b();
        let ds = ModelSpec::deepseek_r1_7b();
        assert_eq!(qwen.num_layers, ds.num_layers);
        assert_eq!(qwen.hidden, ds.hidden);
        assert_ne!(qwen.name, ds.name);
    }
}
