//! Offline API-compatible shim for the subset of `rand` 0.8 used by this
//! workspace. See `vendor/README.md` for the design rules.
//!
//! The generator behind [`rngs::StdRng`] is SplitMix64: tiny, fast, and —
//! crucially for the test suites — fully determined by the `seed_from_u64`
//! seed. The stream differs from the real `rand::StdRng` (ChaCha12), which
//! rand's own portability policy allows across versions.

#![forbid(unsafe_code)]

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed deterministically from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Samples a value from the "standard" distribution of `T`
    /// (uniform `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t>::standard_sample(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + <$t>::standard_sample(rng) * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension trait providing random slice operations.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Fisher–Yates shuffle, in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly chooses one element, or `None` if the slice is empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
