//! Draft-model training strategies.
//!
//! The paper's training framework is drafter-agnostic (§4.1, Figure 7): EAGLE, HASS,
//! EAGLE-3 and OSD-style distillation differ only in which hidden states they consume,
//! which losses they combine, and how many forward passes one training step costs
//! ("training-time test"). This module encodes those differences so the spot trainer
//! and the Table 7/8 experiments can swap strategies without touching the trainer.

use crate::model::FeatureSource;
use serde::{Deserialize, Serialize};

/// A draft-model training strategy.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum TrainingStrategy {
    /// EAGLE: last-layer features, L1 + CE loss, single forward per step.
    /// The paper's default for its cost/quality balance (§6.5).
    #[default]
    Eagle,
    /// HASS: EAGLE plus training-time-test — the drafter's own output feature is fed
    /// back as input for `ttt_steps` extra passes, mitigating train/infer mismatch.
    Hass {
        /// Number of training-time-test steps (the paper uses 3).
        ttt_steps: usize,
    },
    /// EAGLE-3: multi-layer feature fusion, CE loss only, longer training-time test.
    Eagle3 {
        /// Number of training-time-test steps (the paper uses 7).
        ttt_steps: usize,
    },
    /// OSD-style online knowledge distillation (reverse KL on the sampled rollout
    /// distribution) layered on top of the base EAGLE losses.
    Osd,
    /// Plain supervised fine-tuning of an independent small LM drafter (the vanilla
    /// baseline of Table 8); uses CE only and last-layer features.
    Sft,
}

impl TrainingStrategy {
    /// The strategies compared in the paper's Table 7.
    pub fn table7_set() -> [TrainingStrategy; 3] {
        [
            TrainingStrategy::Hass { ttt_steps: 3 },
            TrainingStrategy::Eagle3 { ttt_steps: 7 },
            TrainingStrategy::Eagle,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            TrainingStrategy::Eagle => "Eagle",
            TrainingStrategy::Hass { .. } => "HASS",
            TrainingStrategy::Eagle3 { .. } => "Eagle-3",
            TrainingStrategy::Osd => "OSD",
            TrainingStrategy::Sft => "SFT",
        }
    }

    /// Which target hidden states the drafter consumes.
    pub fn feature_source(&self) -> FeatureSource {
        match self {
            TrainingStrategy::Eagle3 { .. } => FeatureSource::MultiLayer,
            _ => FeatureSource::LastLayer,
        }
    }

    /// Weight of the feature-alignment (smooth-L1) loss.
    pub fn l1_weight(&self) -> f32 {
        match self {
            TrainingStrategy::Eagle | TrainingStrategy::Hass { .. } | TrainingStrategy::Osd => 0.2,
            TrainingStrategy::Eagle3 { .. } | TrainingStrategy::Sft => 0.0,
        }
    }

    /// Weight of the token cross-entropy loss.
    pub fn ce_weight(&self) -> f32 {
        1.0
    }

    /// Weight of the reverse-KL distillation loss toward the target's sampled
    /// distribution (only OSD uses it).
    pub fn reverse_kl_weight(&self) -> f32 {
        match self {
            TrainingStrategy::Osd => 0.5,
            _ => 0.0,
        }
    }

    /// Number of training-time-test feedback passes.
    pub fn ttt_steps(&self) -> usize {
        match self {
            TrainingStrategy::Hass { ttt_steps } | TrainingStrategy::Eagle3 { ttt_steps } => {
                *ttt_steps
            }
            _ => 0,
        }
    }

    /// Relative per-step training cost, normalised to EAGLE = 1 (paper Table 7's
    /// "Training Cost" column). One extra forward/backward per training-time-test
    /// step plus the multi-layer fusion overhead for EAGLE-3.
    pub fn relative_training_cost(&self) -> f64 {
        match self {
            TrainingStrategy::Eagle | TrainingStrategy::Sft => 1.0,
            TrainingStrategy::Osd => 1.5,
            TrainingStrategy::Hass { ttt_steps } => *ttt_steps as f64,
            TrainingStrategy::Eagle3 { ttt_steps } => *ttt_steps as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_eagle() {
        assert_eq!(TrainingStrategy::default(), TrainingStrategy::Eagle);
    }

    #[test]
    fn table7_costs_match_paper_ordering() {
        // Paper Table 7: HASS = 3x, Eagle-3 = 7x, Eagle = 1x.
        let [hass, eagle3, eagle] = TrainingStrategy::table7_set();
        assert_eq!(hass.relative_training_cost(), 3.0);
        assert_eq!(eagle3.relative_training_cost(), 7.0);
        assert_eq!(eagle.relative_training_cost(), 1.0);
    }

    #[test]
    fn eagle3_uses_multilayer_features_and_no_l1() {
        let s = TrainingStrategy::Eagle3 { ttt_steps: 7 };
        assert_eq!(s.feature_source(), FeatureSource::MultiLayer);
        assert_eq!(s.l1_weight(), 0.0);
        assert_eq!(s.ttt_steps(), 7);
    }

    #[test]
    fn eagle_uses_last_layer_with_l1() {
        assert_eq!(
            TrainingStrategy::Eagle.feature_source(),
            FeatureSource::LastLayer
        );
        assert!(TrainingStrategy::Eagle.l1_weight() > 0.0);
        assert_eq!(TrainingStrategy::Eagle.ttt_steps(), 0);
    }

    #[test]
    fn only_osd_uses_reverse_kl() {
        assert!(TrainingStrategy::Osd.reverse_kl_weight() > 0.0);
        assert_eq!(TrainingStrategy::Eagle.reverse_kl_weight(), 0.0);
        assert_eq!(TrainingStrategy::Sft.reverse_kl_weight(), 0.0);
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(TrainingStrategy::Hass { ttt_steps: 3 }.name(), "HASS");
        assert_eq!(TrainingStrategy::Eagle3 { ttt_steps: 7 }.name(), "Eagle-3");
    }
}
