//! The committed workload-trace corpus.
//!
//! Four pinned serving workloads, each a pure function of hard-coded seeds, so
//! the `.tltr` files committed under `corpus/` can be regenerated bit for bit
//! (CI checks exactly that). Corpus traces are pure *workload* traces — no SD
//! section — so scheduler comparisons across PRs replay identical arrivals
//! while each scheduler makes its own speculation decisions.

use crate::format::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tlt_workload::{
    generate_arrivals, ArrivalConfig, LengthDistribution, RateCurve, RequestArrival,
    SharedPrefixSpec,
};

/// Time quantum of every corpus trace: 1 ms. Coarse enough that arrival
/// deltas fit in 1–2 varint bytes, fine enough that scheduling behaviour is
/// indistinguishable from the nanosecond stream.
pub const CORPUS_TICK_NS: u64 = 1_000_000;

/// One pinned corpus workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusPreset {
    /// Interactive chat: steady 8 rps, short prompts, half the requests share
    /// a system prompt.
    Chat,
    /// Agentic long-context sessions: low rate, multi-thousand-token prompts,
    /// almost all sharing a long scaffold prefix.
    AgenticLongContext,
    /// Batch-RL rollouts from the Figure-2 synthesiser: 8 generation steps of
    /// 96 simultaneous requests, lengths following the ByteDance-style
    /// long-tail at increasing training progress.
    BatchRl,
    /// Bursty mobile traffic: short prompts/outputs with 15x rate spikes.
    BurstyMobile,
}

impl CorpusPreset {
    /// All corpus presets, in corpus order.
    pub fn all() -> [CorpusPreset; 4] {
        [
            CorpusPreset::Chat,
            CorpusPreset::AgenticLongContext,
            CorpusPreset::BatchRl,
            CorpusPreset::BurstyMobile,
        ]
    }

    /// The workload name stored in the trace header.
    pub fn name(&self) -> &'static str {
        match self {
            CorpusPreset::Chat => "chat",
            CorpusPreset::AgenticLongContext => "agentic",
            CorpusPreset::BatchRl => "batch_rl",
            CorpusPreset::BurstyMobile => "bursty_mobile",
        }
    }

    /// File name of the committed trace under `corpus/`.
    pub fn file_name(&self) -> String {
        format!("{}.tltr", self.name())
    }

    /// The preset whose trace header carries `name`, if any.
    pub fn from_name(name: &str) -> Option<CorpusPreset> {
        CorpusPreset::all().into_iter().find(|p| p.name() == name)
    }

    /// Pinned on-disk size budget in bytes; CI fails if the committed trace
    /// ever exceeds it. Budgets sit ~15% above the current encoded size so
    /// accidental format regressions trip the gate while intentional corpus
    /// changes have headroom.
    pub fn size_budget_bytes(&self) -> usize {
        match self {
            CorpusPreset::Chat => 3_600,
            CorpusPreset::AgenticLongContext => 2_150,
            CorpusPreset::BatchRl => 6_250,
            CorpusPreset::BurstyMobile => 4_400,
        }
    }

    /// Synthesises the preset's trace (deterministic, no SD section).
    pub fn build(&self) -> Trace {
        match self {
            CorpusPreset::Chat => {
                let config = ArrivalConfig {
                    curve: RateCurve::Constant { rps: 8.0 },
                    horizon_s: 60.0,
                    prompt_len_range: (256, 768),
                    output_lengths: LengthDistribution::LongTailMixture {
                        mu: 5.3,
                        sigma: 0.9,
                        truncation_mass: 0.02,
                        max_len: 2048,
                    },
                    prefix: Some(SharedPrefixSpec {
                        share: 0.5,
                        len: 256,
                    }),
                    seed: 42,
                };
                Trace::from_arrivals(self.name(), CORPUS_TICK_NS, &generate_arrivals(&config))
            }
            CorpusPreset::AgenticLongContext => {
                let config = ArrivalConfig {
                    curve: RateCurve::Constant { rps: 2.0 },
                    horizon_s: 120.0,
                    prompt_len_range: (2048, 6144),
                    output_lengths: LengthDistribution::LongTailMixture {
                        mu: 5.8,
                        sigma: 0.8,
                        truncation_mass: 0.03,
                        max_len: 4096,
                    },
                    prefix: Some(SharedPrefixSpec {
                        share: 0.85,
                        len: 1024,
                    }),
                    seed: 43,
                };
                Trace::from_arrivals(self.name(), CORPUS_TICK_NS, &generate_arrivals(&config))
            }
            CorpusPreset::BatchRl => {
                // 8 rollout generation steps, 30 s apart, of 96 simultaneous
                // requests each: the serving-side view of the Figure-2 trace.
                let mut rng = StdRng::seed_from_u64(44);
                let mut arrivals = Vec::new();
                for step in 0..8u64 {
                    let progress = step as f64 / 7.0;
                    let dist = LengthDistribution::bytedance_step(progress).with_max_len(2048);
                    for _ in 0..96 {
                        let prompt_len = rng.gen_range(512..=1024);
                        arrivals.push(RequestArrival {
                            id: arrivals.len() as u64,
                            time_ns: step * 30_000_000_000,
                            prompt_len,
                            output_len: dist.sample(&mut rng),
                            // Every request of a step shares that step's
                            // prompt-template prefix.
                            prefix_id: step + 1,
                            prefix_len: 256,
                        });
                    }
                }
                Trace::from_arrivals(self.name(), CORPUS_TICK_NS, &arrivals)
            }
            CorpusPreset::BurstyMobile => {
                let config = ArrivalConfig {
                    curve: RateCurve::Bursty {
                        base_rps: 2.0,
                        burst_rps: 30.0,
                        burst_fraction: 0.2,
                        period_s: 15.0,
                    },
                    horizon_s: 90.0,
                    prompt_len_range: (64, 256),
                    output_lengths: LengthDistribution::LongTailMixture {
                        mu: 4.5,
                        sigma: 0.7,
                        truncation_mass: 0.01,
                        max_len: 512,
                    },
                    prefix: None,
                    seed: 45,
                };
                Trace::from_arrivals(self.name(), CORPUS_TICK_NS, &generate_arrivals(&config))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_builds_are_deterministic_and_round_trip() {
        for preset in CorpusPreset::all() {
            let a = preset.build();
            let b = preset.build();
            assert_eq!(a, b, "{} must be deterministic", preset.name());
            assert_eq!(a.to_bytes(), b.to_bytes());
            let decoded = Trace::from_bytes(&a.to_bytes()).unwrap();
            assert_eq!(decoded, a);
            assert!(!a.arrivals().is_empty());
            assert!(a.sd_accepts().is_none(), "corpus traces are workload-only");
            assert_eq!(CorpusPreset::from_name(a.name()), Some(preset));
        }
    }

    #[test]
    fn corpus_traces_fit_their_size_budgets_and_average_under_8_bytes_per_request() {
        let mut total_bytes = 0usize;
        let mut total_requests = 0usize;
        for preset in CorpusPreset::all() {
            let stats = preset.build().stats();
            eprintln!(
                "{}: {} bytes / {} requests = {:.2} B/req ({:.2} bits/event)",
                preset.name(),
                stats.total_bytes,
                stats.requests,
                stats.bytes_per_request(),
                stats.bits_per_event()
            );
            assert!(
                stats.total_bytes <= preset.size_budget_bytes(),
                "{}: {} bytes exceeds budget {}",
                preset.name(),
                stats.total_bytes,
                preset.size_budget_bytes()
            );
            total_bytes += stats.total_bytes;
            total_requests += stats.requests;
        }
        let avg = total_bytes as f64 / total_requests as f64;
        assert!(avg <= 8.0, "corpus averages {avg:.2} bytes/request");
    }
}
