//! Drafter training loop shared by the spot trainer and the offline experiments.
//!
//! Implements the unified training workflow of Figure 7: fusion inputs are built from
//! cached target hidden states + token embeddings, the drafter's single decoder layer
//! is trained with a weighted combination of token cross-entropy, feature-alignment
//! smooth-L1, and (for OSD) reverse-KL distillation, with optional training-time-test
//! feedback passes (HASS / EAGLE-3). Only drafter parameters are updated; the target
//! stays frozen.

use crate::data_buffer::TrainingSample;
use crate::model::{DraftGrads, DraftModel};
use crate::strategy::TrainingStrategy;
use serde::{Deserialize, Serialize};
use tlt_model::ops::{cross_entropy, smooth_l1, top_k_accuracy_multi};
use tlt_model::{Adam, AdamConfig, Mat, TinyLm};

/// Configuration of the drafter trainer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Training strategy (EAGLE by default).
    pub strategy: TrainingStrategy,
    /// Adam hyperparameters.
    pub adam: AdamConfig,
    /// Global-norm gradient clipping threshold (`0` disables clipping).
    pub grad_clip: f32,
    /// Maximum training positions consumed from one sample per iteration (long
    /// sequences are truncated to bound iteration latency).
    pub max_positions_per_sample: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            strategy: TrainingStrategy::default(),
            adam: AdamConfig::drafter(),
            grad_clip: 1.0,
            max_positions_per_sample: 256,
        }
    }
}

/// Metrics of one training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainMetrics {
    /// Trainer iteration index.
    pub iteration: u64,
    /// Total weighted loss.
    pub loss: f32,
    /// Cross-entropy component.
    pub ce_loss: f32,
    /// Feature-alignment component.
    pub l1_loss: f32,
    /// Top-1 next-token accuracy against the target's sampled tokens.
    pub top1_accuracy: f64,
    /// Top-3 next-token accuracy (the quantity plotted in Figure 15).
    pub top3_accuracy: f64,
    /// Number of supervised token positions in the iteration.
    pub positions: usize,
}

/// Drafter trainer: owns the draft model, its optimizer, and the metric history.
#[derive(Debug)]
pub struct DrafterTrainer {
    /// The draft model being trained.
    pub drafter: DraftModel,
    config: TrainerConfig,
    adam: Adam,
    iteration: u64,
    history: Vec<TrainMetrics>,
}

impl DrafterTrainer {
    /// Creates a trainer with a freshly initialised drafter for `target`.
    pub fn new(target: &TinyLm, config: TrainerConfig, seed: u64) -> Self {
        let drafter = DraftModel::new(target, config.strategy.feature_source(), seed);
        DrafterTrainer {
            drafter,
            config,
            adam: Adam::new(config.adam),
            iteration: 0,
            history: Vec::new(),
        }
    }

    /// Wraps an existing drafter (e.g. restored from a checkpoint).
    pub fn with_drafter(drafter: DraftModel, config: TrainerConfig) -> Self {
        DrafterTrainer {
            drafter,
            config,
            adam: Adam::new(config.adam),
            iteration: 0,
            history: Vec::new(),
        }
    }

    /// Trainer configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Number of optimisation iterations performed.
    pub fn iterations(&self) -> u64 {
        self.iteration
    }

    /// Metric history, one entry per iteration.
    pub fn history(&self) -> &[TrainMetrics] {
        &self.history
    }

    fn sample_positions(&self, sample: &TrainingSample) -> usize {
        sample
            .num_training_positions()
            .min(self.config.max_positions_per_sample)
    }

    /// Builds `(fusion_input, target_tokens, next_features)` for one sample: position
    /// `t` consumes `(feature[t], embed(token[t+1]))` and predicts `token[t+2]`,
    /// aligning its output feature with `feature[t+1]`.
    fn build_training_tensors(
        &self,
        target: &TinyLm,
        sample: &TrainingSample,
    ) -> (Mat, Vec<usize>, Mat) {
        let positions = self.sample_positions(sample);
        let usable = sample.features.slice_rows(0, positions);
        let fusion_input = self
            .drafter
            .build_fusion_input(target, &usable, &sample.tokens);
        let targets: Vec<usize> = sample.tokens[2..2 + positions]
            .iter()
            .map(|&t| t as usize)
            .collect();
        let next_features = sample.features.slice_rows(1, positions + 1);
        (fusion_input, targets, next_features)
    }

    /// Runs one forward/backward pass over a single sample and returns the gradients
    /// plus the metric contributions.
    fn grads_for_sample(
        &self,
        target: &TinyLm,
        sample: &TrainingSample,
    ) -> Option<(DraftGrads, f32, f32, f64, f64, usize)> {
        let positions = self.sample_positions(sample);
        if positions == 0 {
            return None;
        }
        let strategy = self.config.strategy;
        let (fusion_input, targets, next_features) = self.build_training_tensors(target, sample);
        let cache = self.drafter.forward_train(target, &fusion_input);

        // Token cross-entropy through the frozen head (scaling by a weight of
        // exactly 1.0 is skipped — x * 1.0 is bitwise x).
        let (ce, d_logits_ce) = cross_entropy(&cache.logits, &targets);
        let mut d_logits = if strategy.ce_weight() == 1.0 {
            d_logits_ce
        } else {
            d_logits_ce.scale(strategy.ce_weight())
        };

        // OSD reverse-KL distillation toward the target's own next-token
        // distribution at the same positions.
        if strategy.reverse_kl_weight() > 0.0 {
            let feature_width = target.config.hidden;
            let last_layer_next = if next_features.cols() == feature_width {
                next_features.clone()
            } else {
                // Multi-layer source: the top-layer block is the last `hidden` columns.
                let mut top = Mat::zeros(next_features.rows(), feature_width);
                for r in 0..next_features.rows() {
                    let row = next_features.row(r);
                    top.set_row(r, &row[row.len() - feature_width..]);
                }
                top
            };
            let target_logits = target.project_hidden(&last_layer_next);
            let mut d_kl = Mat::zeros(cache.logits.rows(), cache.logits.cols());
            for r in 0..cache.logits.rows() {
                let draft_probs = tlt_model::probs_from_logits(
                    cache.logits.row(r),
                    tlt_model::SamplingParams {
                        temperature: 1.0,
                        top_k: None,
                    },
                );
                let target_probs = tlt_model::probs_from_logits(
                    target_logits.row(r),
                    tlt_model::SamplingParams {
                        temperature: 1.0,
                        top_k: None,
                    },
                );
                let grad = tlt_model::kl::kl_grad_wrt_logits(&draft_probs, &target_probs);
                d_kl.set_row(r, &grad);
            }
            d_logits.add_assign(&d_kl.scale(strategy.reverse_kl_weight() / positions as f32));
        }

        let mut d_features = self
            .drafter
            .logits_grad_to_features(target, &cache, &d_logits);

        // Feature-alignment loss (only meaningful for last-layer features).
        let mut l1 = 0.0;
        if strategy.l1_weight() > 0.0 && cache.features.shape() == next_features.shape() {
            let (l1_loss, d_l1) = smooth_l1(&cache.features, &next_features);
            l1 = l1_loss;
            d_features.add_assign(&d_l1.scale(strategy.l1_weight()));
        }

        let mut grads = self.drafter.backward(&cache, &d_features);

        // Training-time test (HASS / EAGLE-3): feed the drafter's own output features
        // back as the context features for additional passes so it learns to correct
        // its own drift. Each extra pass contributes scaled-down gradients.
        let ttt_steps = strategy.ttt_steps();
        if ttt_steps > 0 {
            let mut synth_features = cache.features.clone();
            for step in 0..ttt_steps.min(3) {
                let synth_source = if sample.features.cols() == synth_features.cols() {
                    synth_features.clone()
                } else {
                    // Multi-layer drafter: replicate its feature into all slots.
                    Mat::hconcat(&[&synth_features, &synth_features, &synth_features])
                };
                let synth_input =
                    self.drafter
                        .build_fusion_input(target, &synth_source, &sample.tokens);
                let synth_cache = self.drafter.forward_train(target, &synth_input);
                let (_, d_logits_ttt) = cross_entropy(&synth_cache.logits, &targets);
                let d_feat_ttt =
                    self.drafter
                        .logits_grad_to_features(target, &synth_cache, &d_logits_ttt);
                let scale = 0.5f32.powi(step as i32 + 1);
                let extra = self
                    .drafter
                    .backward(&synth_cache, &d_feat_ttt.scale(scale));
                grads.fusion.add_assign(&extra.fusion);
                grads.layer.accumulate(&extra.layer);
                synth_features = synth_cache.features;
            }
        }

        let topk = top_k_accuracy_multi(&cache.logits, &targets, &[1, 3]);
        Some((grads, ce, l1, topk[0], topk[1], positions))
    }

    /// Evaluates drafter next-token accuracy on `samples` without updating weights.
    pub fn evaluate(&self, target: &TinyLm, samples: &[&TrainingSample]) -> (f64, f64) {
        let mut top1_sum = 0.0;
        let mut top3_sum = 0.0;
        let mut total = 0usize;
        for sample in samples {
            let positions = self.sample_positions(sample);
            if positions == 0 {
                continue;
            }
            let (fusion_input, targets, _) = self.build_training_tensors(target, sample);
            let cache = self.drafter.forward_train(target, &fusion_input);
            let topk = top_k_accuracy_multi(&cache.logits, &targets, &[1, 3]);
            top1_sum += topk[0] * positions as f64;
            top3_sum += topk[1] * positions as f64;
            total += positions;
        }
        if total == 0 {
            (0.0, 0.0)
        } else {
            (top1_sum / total as f64, top3_sum / total as f64)
        }
    }

    /// Performs one optimisation iteration over a batch of samples.
    ///
    /// Per-sample forward/backward passes (the microbatches) are fanned out over
    /// the shared worker pool ([`tlt_model::parallel_map`]) and their gradients
    /// merged back in sample order, so the update is bit-identical to a sequential
    /// pass regardless of worker count.
    ///
    /// Returns `None` when the batch contributes no usable positions.
    pub fn train_iteration(
        &mut self,
        target: &TinyLm,
        samples: &[&TrainingSample],
    ) -> Option<TrainMetrics> {
        let mut accumulated: Option<DraftGrads> = None;
        let mut ce_sum = 0.0f32;
        let mut l1_sum = 0.0f32;
        let mut top1_sum = 0.0f64;
        let mut top3_sum = 0.0f64;
        let mut total_positions = 0usize;
        let mut used_samples = 0usize;

        let per_sample = tlt_model::parallel_map(samples.to_vec(), |_, sample| {
            self.grads_for_sample(target, sample)
        });
        for result in per_sample {
            let Some((grads, ce, l1, top1, top3, positions)) = result else {
                continue;
            };
            ce_sum += ce;
            l1_sum += l1;
            top1_sum += top1 * positions as f64;
            top3_sum += top3 * positions as f64;
            total_positions += positions;
            used_samples += 1;
            match accumulated.as_mut() {
                Some(acc) => {
                    acc.fusion.add_assign(&grads.fusion);
                    acc.layer.accumulate(&grads.layer);
                }
                None => accumulated = Some(grads),
            }
        }

        let mut grads = accumulated?;
        if used_samples > 1 {
            let scale = 1.0 / used_samples as f32;
            grads.fusion.scale_assign(scale);
            grads.layer.scale(scale);
        }
        if self.config.grad_clip > 0.0 {
            let norm = grads.global_norm();
            if norm > self.config.grad_clip {
                let scale = self.config.grad_clip / norm;
                grads.fusion.scale_assign(scale);
                grads.layer.scale(scale);
            }
        }

        self.adam.begin_step();
        self.adam.update_mat(
            "drafter.fusion",
            &mut self.drafter.fusion.weight,
            &grads.fusion,
        );
        self.adam
            .update_decoder_layer("drafter.layer", &mut self.drafter.layer, &grads.layer);
        self.drafter.bump_version();
        self.iteration += 1;

        let metrics = TrainMetrics {
            iteration: self.iteration,
            loss: ce_sum / used_samples as f32
                + self.config.strategy.l1_weight() * l1_sum / used_samples as f32,
            ce_loss: ce_sum / used_samples as f32,
            l1_loss: l1_sum / used_samples as f32,
            top1_accuracy: top1_sum / total_positions.max(1) as f64,
            top3_accuracy: top3_sum / total_positions.max(1) as f64,
            positions: total_positions,
        };
        self.history.push(metrics);
        Some(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_buffer::TrainingSample;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tlt_model::{ModelConfig, TokenId};

    fn make_samples(target: &TinyLm, strategy: TrainingStrategy, n: usize) -> Vec<TrainingSample> {
        let mut rng = StdRng::seed_from_u64(5);
        (0..n)
            .map(|i| {
                let len = 12 + (i % 5) * 3;
                let tokens: Vec<TokenId> = (0..len)
                    .map(|_| rng.gen_range(0..target.config.vocab_size as u32))
                    .collect();
                TrainingSample::from_rollout(
                    target,
                    strategy.feature_source(),
                    &tokens,
                    len - 4,
                    0,
                    i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn eagle_training_improves_top3_accuracy() {
        let target = TinyLm::new(ModelConfig::micro(), 21);
        let config = TrainerConfig::default();
        let mut trainer = DrafterTrainer::new(&target, config, 3);
        let samples = make_samples(&target, config.strategy, 6);
        let refs: Vec<&TrainingSample> = samples.iter().collect();
        let (_, before) = trainer.evaluate(&target, &refs);
        for _ in 0..25 {
            trainer.train_iteration(&target, &refs).expect("metrics");
        }
        let (_, after) = trainer.evaluate(&target, &refs);
        assert!(
            after > before,
            "top-3 accuracy did not improve: {before:.3} -> {after:.3}"
        );
        assert_eq!(trainer.iterations(), 25);
        assert_eq!(trainer.history().len(), 25);
    }

    #[test]
    fn loss_decreases_over_training() {
        let target = TinyLm::new(ModelConfig::micro(), 22);
        let config = TrainerConfig::default();
        let mut trainer = DrafterTrainer::new(&target, config, 4);
        let samples = make_samples(&target, config.strategy, 4);
        let refs: Vec<&TrainingSample> = samples.iter().collect();
        let mut losses = Vec::new();
        for _ in 0..30 {
            losses.push(trainer.train_iteration(&target, &refs).unwrap().ce_loss);
        }
        let early: f32 = losses[..5].iter().sum::<f32>() / 5.0;
        let late: f32 = losses[25..].iter().sum::<f32>() / 5.0;
        assert!(late < early, "CE loss did not decrease: {early} -> {late}");
    }

    #[test]
    fn hass_strategy_trains_with_ttt_passes() {
        let target = TinyLm::new(ModelConfig::micro(), 23);
        let config = TrainerConfig {
            strategy: TrainingStrategy::Hass { ttt_steps: 3 },
            ..TrainerConfig::default()
        };
        let mut trainer = DrafterTrainer::new(&target, config, 5);
        let samples = make_samples(&target, config.strategy, 3);
        let refs: Vec<&TrainingSample> = samples.iter().collect();
        let metrics = trainer.train_iteration(&target, &refs).expect("metrics");
        assert!(metrics.positions > 0);
        assert!(metrics.loss.is_finite());
    }

    #[test]
    fn eagle3_strategy_uses_multilayer_features() {
        let target = TinyLm::new(ModelConfig::micro(), 24);
        let config = TrainerConfig {
            strategy: TrainingStrategy::Eagle3 { ttt_steps: 2 },
            ..TrainerConfig::default()
        };
        let mut trainer = DrafterTrainer::new(&target, config, 6);
        let samples = make_samples(&target, config.strategy, 3);
        let refs: Vec<&TrainingSample> = samples.iter().collect();
        let metrics = trainer.train_iteration(&target, &refs).expect("metrics");
        assert!(metrics.l1_loss == 0.0, "EAGLE-3 uses CE only");
        assert!(metrics.top3_accuracy >= 0.0);
    }

    #[test]
    fn osd_strategy_trains_without_panicking() {
        let target = TinyLm::new(ModelConfig::micro(), 25);
        let config = TrainerConfig {
            strategy: TrainingStrategy::Osd,
            ..TrainerConfig::default()
        };
        let mut trainer = DrafterTrainer::new(&target, config, 7);
        let samples = make_samples(&target, config.strategy, 3);
        let refs: Vec<&TrainingSample> = samples.iter().collect();
        for _ in 0..3 {
            assert!(trainer.train_iteration(&target, &refs).is_some());
        }
    }

    #[test]
    fn empty_batch_returns_none() {
        let target = TinyLm::new(ModelConfig::micro(), 26);
        let mut trainer = DrafterTrainer::new(&target, TrainerConfig::default(), 8);
        assert!(trainer.train_iteration(&target, &[]).is_none());
        assert_eq!(trainer.iterations(), 0);
    }

    #[test]
    fn drafter_version_advances_with_training() {
        let target = TinyLm::new(ModelConfig::micro(), 27);
        let config = TrainerConfig::default();
        let mut trainer = DrafterTrainer::new(&target, config, 9);
        let samples = make_samples(&target, config.strategy, 2);
        let refs: Vec<&TrainingSample> = samples.iter().collect();
        let v0 = trainer.drafter.version;
        trainer.train_iteration(&target, &refs);
        assert!(trainer.drafter.version > v0);
    }
}
