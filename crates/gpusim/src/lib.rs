//! # tlt-gpusim
//!
//! Roofline GPU cost model, cluster topology, and discrete-event primitives for the
//! TLT reproduction.
//!
//! The paper's evaluation runs on DGX-H100/A100 clusters and a spread of consumer
//! GPUs; none of that hardware is required here. Instead, every kernel the system
//! would launch (prefill, decode, speculative verification, drafter steps, training)
//! is mapped to FLOPs + bytes and timed with a roofline model parameterised by the
//! real GPUs' bandwidth/compute specifications. The first-order effects the paper
//! relies on — memory-bound decode, compute-bound verification, CUDAGraph launch
//! savings, TP communication, OOM limits — all emerge from this model.
//!
//! ```
//! use tlt_gpusim::{GpuType, LlmCostModel};
//! use tlt_model::ModelSpec;
//!
//! let cost = LlmCostModel::new(ModelSpec::qwen2_5_7b(), GpuType::H100.spec(), 1);
//! let decode = cost.decode_step_time(1, 2048);
//! let verify = cost.verify_step_time(1, 48, 2048);
//! // Verifying 48 drafted tokens costs about the same as decoding one token:
//! assert!(verify < 2.0 * decode);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod cost;
pub mod event;
pub mod roofline;
pub mod specs;

pub use cluster::{ClusterConfig, MemoryEstimate, WorkerId};
pub use cost::LlmCostModel;
pub use event::{EventQueue, SimTime};
pub use roofline::{achieved_tflops, estimate_time, ExecutionMode, KernelWork, TimeBreakdown};
pub use specs::{GpuSpec, GpuType};
