//! The tiny autoregressive language model used as the *token-level* substrate of the
//! TLT reproduction.
//!
//! The paper trains 7B–70B parameter LLMs; this repository replaces them with a small
//! but *real* decoder-only transformer (sinusoidal positions, RMSNorm, causal MHA,
//! SwiGLU MLP, tied-vocabulary LM head). All token-level phenomena the paper relies
//! on — lossless speculative verification, acceptance-length dynamics, drafter
//! staleness after policy updates, drafter recovery under continued training — are
//! produced by this model rather than being hard-coded.

use crate::kv_cache::{KvCache, KvStore};
use crate::layers::{DecoderLayer, DecoderLayerGrads, LayerConfig, LayerTrainCache};
use crate::ops::{rmsnorm_backward, rmsnorm_forward, RmsNormCache};
use crate::tensor::Mat;
use crate::workspace::DecodeWorkspace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Token identifier in the synthetic vocabulary.
pub type TokenId = u32;

/// Hyperparameters of the tiny transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Residual-stream width.
    pub hidden: usize,
    /// Number of decoder layers.
    pub num_layers: usize,
    /// Attention heads per layer.
    pub num_heads: usize,
    /// MLP intermediate width.
    pub ffn_hidden: usize,
    /// Maximum sequence length supported by the positional table.
    pub max_seq_len: usize,
}

impl ModelConfig {
    /// A small default configuration suitable for tests and examples.
    pub fn tiny() -> Self {
        ModelConfig {
            vocab_size: 96,
            hidden: 32,
            num_layers: 4,
            num_heads: 4,
            ffn_hidden: 64,
            max_seq_len: 512,
        }
    }

    /// An even smaller configuration for fast unit tests.
    pub fn micro() -> Self {
        ModelConfig {
            vocab_size: 32,
            hidden: 16,
            num_layers: 2,
            num_heads: 2,
            ffn_hidden: 24,
            max_seq_len: 128,
        }
    }

    /// Layer-level configuration.
    pub fn layer_config(&self) -> LayerConfig {
        LayerConfig {
            hidden: self.hidden,
            num_heads: self.num_heads,
            ffn_hidden: self.ffn_hidden,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.vocab_size == 0 {
            return Err("vocab size must be non-zero".to_string());
        }
        if self.num_layers == 0 {
            return Err("model must have at least one layer".to_string());
        }
        if self.max_seq_len == 0 {
            return Err("max sequence length must be non-zero".to_string());
        }
        self.layer_config().validate()
    }
}

/// Output of a forward pass over one or more new token positions.
#[derive(Debug, Clone)]
pub struct ForwardOutput {
    /// Logits for each new position (`n_new x vocab`).
    pub logits: Mat,
    /// Last-layer hidden states (pre final norm) for each new position.
    pub last_hidden: Mat,
    /// Per-layer outputs (`num_layers + 1` entries: embedding output followed by each
    /// layer's output), populated only when hidden collection is requested.
    pub layer_outputs: Option<Vec<Mat>>,
}

/// Recorded state for the trainable portion of the model (last decoder layer,
/// final norm, LM head), produced by [`TinyLm::forward_for_update`].
#[derive(Debug, Clone)]
pub struct TrainableForward {
    /// Input hidden states entering the last decoder layer (from frozen layers).
    pub last_layer_input: Mat,
    last_layer_cache: LayerTrainCache,
    final_norm_cache: RmsNormCache,
    normed: Mat,
    /// Logits for every position of the sequence.
    pub logits: Mat,
}

/// Gradients for the trainable portion of the model.
#[derive(Debug, Clone)]
pub struct PolicyGrads {
    /// Gradients of the last decoder layer.
    pub last_layer: DecoderLayerGrads,
    /// Gradient of the final RMSNorm gain.
    pub final_norm: Vec<f32>,
    /// Gradient of the LM head (`hidden x vocab`).
    pub lm_head: Mat,
}

impl PolicyGrads {
    /// Global L2 norm across all trainable-parameter gradients.
    pub fn global_norm(&self) -> f32 {
        let mut sq = self.last_layer.global_norm().powi(2);
        sq += self.final_norm.iter().map(|v| v * v).sum::<f32>();
        sq += self.lm_head.as_slice().iter().map(|v| v * v).sum::<f32>();
        sq.sqrt()
    }

    /// Scales every gradient by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        self.last_layer.scale(alpha);
        for v in &mut self.final_norm {
            *v *= alpha;
        }
        self.lm_head.scale_assign(alpha);
    }
}

/// The tiny decoder-only language model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TinyLm {
    /// Model hyperparameters.
    pub config: ModelConfig,
    /// Token embedding table (`vocab x hidden`).
    pub embedding: Mat,
    /// Sinusoidal positional table (`max_seq_len x hidden`); not trained.
    pub pos_table: Mat,
    /// Decoder layers.
    pub layers: Vec<DecoderLayer>,
    /// Final RMSNorm gain.
    pub final_norm: Vec<f32>,
    /// LM head projection (`hidden x vocab`).
    pub lm_head: Mat,
}

impl TinyLm {
    /// Creates a randomly initialised model with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: ModelConfig, seed: u64) -> Self {
        config.validate().expect("invalid model config");
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = 1.0 / (config.hidden as f32).sqrt();
        let embedding = Mat::random_uniform(config.vocab_size, config.hidden, scale, &mut rng);
        let lm_head = Mat::random_uniform(config.hidden, config.vocab_size, scale, &mut rng);
        let layers = (0..config.num_layers)
            .map(|_| DecoderLayer::random(config.layer_config(), &mut rng))
            .collect();
        let pos_table = Self::build_pos_table(config.max_seq_len, config.hidden);
        TinyLm {
            config,
            embedding,
            pos_table,
            layers,
            final_norm: vec![1.0; config.hidden],
            lm_head,
        }
    }

    fn build_pos_table(max_len: usize, hidden: usize) -> Mat {
        let mut table = Mat::zeros(max_len, hidden);
        for pos in 0..max_len {
            let row = table.row_mut(pos);
            for (i, value) in row.iter_mut().enumerate() {
                let pair = (i / 2) as f32;
                let freq = 1.0 / 10_000f32.powf(2.0 * pair / hidden as f32);
                let angle = pos as f32 * freq;
                *value = if i % 2 == 0 { angle.sin() } else { angle.cos() } * 0.1;
            }
        }
        table
    }

    /// Total number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.embedding.len()
            + self.lm_head.len()
            + self.final_norm.len()
            + self
                .layers
                .iter()
                .map(DecoderLayer::num_parameters)
                .sum::<usize>()
    }

    /// Creates an empty KV cache sized for this model, with capacity reserved for
    /// the full context window so steady-state decode appends never reallocate.
    pub fn new_cache(&self) -> KvCache {
        let mut cache = KvCache::new(self.config.num_layers, self.config.hidden);
        cache.reserve(self.config.max_seq_len);
        cache
    }

    /// Creates an empty KV cache whose up-front reservation is capped at
    /// `budget_positions` instead of the full context window. Use this when the
    /// contiguous backend runs under a paged pool budget
    /// ([`crate::paged_kv::PagedKvPool::capacity_positions`]): reserving the
    /// whole `max_seq_len` would silently over-reserve past the pool size.
    pub fn new_cache_budgeted(&self, budget_positions: usize) -> KvCache {
        let mut cache = KvCache::new(self.config.num_layers, self.config.hidden);
        cache.reserve(self.config.max_seq_len.min(budget_positions));
        cache
    }

    /// Creates a paged KV pool sized for `capacity_positions` positions of this
    /// model's geometry (shared across every sequence decoding from it).
    pub fn new_paged_pool(
        &self,
        block_size: usize,
        capacity_positions: usize,
    ) -> crate::paged_kv::PagedKvPool {
        crate::paged_kv::PagedKvPool::with_position_capacity(
            self.config.num_layers,
            self.config.hidden,
            block_size,
            capacity_positions,
        )
    }

    /// Creates an empty paged per-sequence cache for this model.
    pub fn new_paged_cache(&self) -> crate::paged_kv::PagedKvCache {
        crate::paged_kv::PagedKvCache::new(self.config.num_layers)
    }

    /// Embeds tokens starting at absolute position `start_pos`.
    ///
    /// # Panics
    ///
    /// Panics if any token id is out of range or the positions exceed
    /// `max_seq_len`.
    pub fn embed(&self, tokens: &[TokenId], start_pos: usize) -> Mat {
        let mut out = Mat::zeros(tokens.len(), self.config.hidden);
        self.embed_into(tokens, start_pos, &mut out);
        out
    }

    /// Allocation-free embedding into a pre-shaped matrix.
    fn embed_into(&self, tokens: &[TokenId], start_pos: usize, out: &mut Mat) {
        assert!(
            start_pos + tokens.len() <= self.config.max_seq_len,
            "sequence length {} exceeds max_seq_len {}",
            start_pos + tokens.len(),
            self.config.max_seq_len
        );
        debug_assert_eq!(out.shape(), (tokens.len(), self.config.hidden));
        for (i, &tok) in tokens.iter().enumerate() {
            assert!(
                (tok as usize) < self.config.vocab_size,
                "token id {tok} out of range"
            );
            let emb = self.embedding.row(tok as usize);
            let pos = self.pos_table.row(start_pos + i);
            let row = out.row_mut(i);
            for d in 0..row.len() {
                row[d] = emb[d] + pos[d];
            }
        }
    }

    /// Runs the model over `tokens` (new positions), using and extending `cache`.
    ///
    /// The cache determines the starting position: `cache.kv_seq_len()` positions
    /// are assumed to have been processed already. When `collect_hidden` is true
    /// the per-layer outputs are returned (needed to build drafter training
    /// features). Generic over the KV backend; the contiguous and paged stores
    /// produce bit-identical output.
    pub fn forward<K: KvStore>(
        &self,
        tokens: &[TokenId],
        cache: &mut K,
        collect_hidden: bool,
    ) -> ForwardOutput {
        let start_pos = cache.kv_seq_len();
        let mut hidden = self.embed(tokens, start_pos);
        let mut layer_outputs = if collect_hidden {
            Some(vec![hidden.clone()])
        } else {
            None
        };
        for (idx, layer) in self.layers.iter().enumerate() {
            hidden = layer.forward_cached(&hidden, cache, idx);
            if let Some(outs) = layer_outputs.as_mut() {
                outs.push(hidden.clone());
            }
        }
        let last_hidden = hidden.clone();
        let (normed, _) = rmsnorm_forward(&hidden, &self.final_norm);
        let logits = normed.matmul(&self.lm_head);
        ForwardOutput {
            logits,
            last_hidden,
            layer_outputs,
        }
    }

    /// Allocation-free incremental forward pass into a [`DecodeWorkspace`].
    ///
    /// Numerically identical to [`TinyLm::forward`] (the two share every kernel),
    /// but every temporary lives in `ws`: after the call `ws.logits()` holds the
    /// logits for the new positions and `ws.last_hidden()` the last-layer hidden
    /// states. Keys/values for the new positions are appended to `cache`.
    pub fn forward_into<K: KvStore>(
        &self,
        tokens: &[TokenId],
        cache: &mut K,
        ws: &mut DecodeWorkspace,
    ) {
        let start_pos = cache.kv_seq_len();
        ws.prepare(tokens.len());
        self.embed_into(tokens, start_pos, &mut ws.hidden);
        for (idx, layer) in self.layers.iter().enumerate() {
            layer.forward_cached_into(&ws.hidden, cache, idx, &mut ws.scratch, &mut ws.next_hidden);
            std::mem::swap(&mut ws.hidden, &mut ws.next_hidden);
        }
        crate::ops::rmsnorm_into(&ws.hidden, &self.final_norm, &mut ws.norm_out);
        ws.norm_out.matmul_into(&self.lm_head, &mut ws.logits);
    }

    /// Zero-allocation single-token decode step: forwards `token` through the
    /// model and returns the logits row (`1 x vocab`) held in the workspace.
    pub fn decode_step<'ws, K: KvStore>(
        &self,
        token: TokenId,
        cache: &mut K,
        ws: &'ws mut DecodeWorkspace,
    ) -> &'ws Mat {
        tlt_obs::hooks::on_decode_step();
        self.forward_into(&[token], cache, ws);
        ws.logits()
    }

    /// Convenience wrapper: full forward over a prompt with a fresh cache.
    pub fn prefill(&self, tokens: &[TokenId], collect_hidden: bool) -> (ForwardOutput, KvCache) {
        tlt_obs::hooks::on_prefill_tokens(tokens.len());
        let mut cache = self.new_cache();
        let out = self.forward(tokens, &mut cache, collect_hidden);
        (out, cache)
    }

    /// Computes logits from externally produced last-layer hidden states (used by
    /// the drafter, which reuses the target's frozen final norm and LM head).
    pub fn project_hidden(&self, hidden: &Mat) -> Mat {
        let (normed, _) = rmsnorm_forward(hidden, &self.final_norm);
        normed.matmul(&self.lm_head)
    }

    /// Log-probability of each next token in `tokens` given its prefix.
    ///
    /// Returns a vector of length `tokens.len() - 1`; entry `i` is
    /// `log p(tokens[i+1] | tokens[..=i])`.
    pub fn sequence_logprobs(&self, tokens: &[TokenId]) -> Vec<f32> {
        if tokens.len() < 2 {
            return Vec::new();
        }
        let mut cache = self.new_cache();
        let out = self.forward(&tokens[..tokens.len() - 1], &mut cache, false);
        let mut result = Vec::with_capacity(tokens.len() - 1);
        for i in 0..tokens.len() - 1 {
            let logp = crate::ops::log_softmax(out.logits.row(i));
            result.push(logp[tokens[i + 1] as usize]);
        }
        result
    }

    /// Forward pass exposing the trainable tail of the model (frozen layers →
    /// last layer → final norm → LM head) with recorded intermediates, over a full
    /// sequence. Used by the GRPO policy update.
    pub fn forward_for_update(&self, tokens: &[TokenId]) -> TrainableForward {
        assert!(
            self.config.num_layers >= 1,
            "model must have at least one layer"
        );
        let mut hidden = self.embed(tokens, 0);
        // Frozen layers: everything except the last one, run in cached mode with a
        // throwaway cache (full causal forward).
        let mut scratch = self.new_cache();
        for (idx, layer) in self.layers[..self.layers.len() - 1].iter().enumerate() {
            hidden = layer.forward_cached(&hidden, &mut scratch, idx);
        }
        let last_layer_input = hidden.clone();
        let last = self.layers.last().expect("at least one layer");
        let (last_out, last_layer_cache) = last.forward_train(&hidden);
        let (normed, final_norm_cache) = rmsnorm_forward(&last_out, &self.final_norm);
        let logits = normed.matmul(&self.lm_head);
        TrainableForward {
            last_layer_input,
            last_layer_cache,
            final_norm_cache,
            normed,
            logits,
        }
    }

    /// Backward pass matching [`TinyLm::forward_for_update`], given the gradient of
    /// the loss with respect to the logits.
    pub fn backward_for_update(&self, fwd: &TrainableForward, d_logits: &Mat) -> PolicyGrads {
        // logits = normed @ lm_head
        let d_lm_head = fwd.normed.transposed_matmul(d_logits);
        let d_normed = d_logits.matmul_transposed(&self.lm_head);
        let (d_last_out, d_final_norm) =
            rmsnorm_backward(&fwd.final_norm_cache, &self.final_norm, &d_normed);
        let last = self.layers.last().expect("at least one layer");
        let (_, last_layer_grads) = last.backward(&fwd.last_layer_cache, &d_last_out);
        PolicyGrads {
            last_layer: last_layer_grads,
            final_norm: d_final_norm,
            lm_head: d_lm_head,
        }
    }

    /// Applies an SGD update to the trainable tail (last layer, final norm, LM head).
    pub fn apply_update(&mut self, grads: &PolicyGrads, lr: f32) {
        let last = self.layers.last_mut().expect("at least one layer");
        last.apply_sgd(&grads.last_layer, lr);
        for (w, g) in self.final_norm.iter_mut().zip(&grads.final_norm) {
            *w -= lr * g;
        }
        self.lm_head.add_scaled(&grads.lm_head, -lr);
    }

    /// Returns a frozen copy to serve as the reference model for KL regularisation.
    pub fn reference_copy(&self) -> TinyLm {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::cross_entropy_weighted;
    use crate::workspace::DecodeWorkspace;

    fn small_model() -> TinyLm {
        TinyLm::new(ModelConfig::micro(), 99)
    }

    #[test]
    fn config_validation_catches_bad_configs() {
        let mut cfg = ModelConfig::micro();
        cfg.vocab_size = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = ModelConfig::micro();
        cfg.num_heads = 3;
        assert!(cfg.validate().is_err());
        assert!(ModelConfig::tiny().validate().is_ok());
    }

    #[test]
    fn forward_shapes_are_consistent() {
        let model = small_model();
        let tokens: Vec<TokenId> = vec![1, 2, 3, 4, 5];
        let (out, cache) = model.prefill(&tokens, true);
        assert_eq!(out.logits.shape(), (5, model.config.vocab_size));
        assert_eq!(out.last_hidden.shape(), (5, model.config.hidden));
        let layer_outputs = out.layer_outputs.expect("hidden collection requested");
        assert_eq!(layer_outputs.len(), model.config.num_layers + 1);
        assert_eq!(cache.seq_len(), 5);
    }

    #[test]
    fn incremental_decode_matches_prefill() {
        let model = small_model();
        let tokens: Vec<TokenId> = vec![3, 9, 1, 7, 2, 8];
        let (full, _) = model.prefill(&tokens, false);

        let mut cache = model.new_cache();
        let mut last_logits = Vec::new();
        for &t in &tokens {
            let out = model.forward(&[t], &mut cache, false);
            last_logits.push(out.logits);
        }
        for (i, logits) in last_logits.iter().enumerate() {
            for c in 0..model.config.vocab_size {
                assert!(
                    (logits.get(0, c) - full.logits.get(i, c)).abs() < 1e-3,
                    "position {i} vocab {c} mismatch"
                );
            }
        }
    }

    #[test]
    fn workspace_forward_is_bit_identical_to_allocating_forward() {
        // The allocation-free decode path and the convenience API must agree bit
        // for bit: speculative verification depends on it.
        let model = small_model();
        let tokens: Vec<TokenId> = vec![4, 1, 9, 2, 6];

        let (full, _) = model.prefill(&tokens, false);
        let mut cache = model.new_cache();
        let mut ws = DecodeWorkspace::new(&model.config);
        model.forward_into(&tokens, &mut cache, &mut ws);
        assert_eq!(ws.logits().as_slice(), full.logits.as_slice());
        assert_eq!(ws.last_hidden().as_slice(), full.last_hidden.as_slice());

        // Single-token decode steps also match the allocating path exactly.
        let mut cache_a = model.new_cache();
        let _ = model.forward(&tokens, &mut cache_a, false);
        let mut cache_b = model.new_cache();
        model.forward_into(&tokens, &mut cache_b, &mut ws);
        let a = model.forward(&[7], &mut cache_a, false);
        let b = model.decode_step(7, &mut cache_b, &mut ws);
        assert_eq!(a.logits.as_slice(), b.as_slice());
    }

    #[test]
    fn paged_forward_is_bit_identical_to_contiguous() {
        use crate::paged_kv::PagedKv;
        let model = small_model();
        let tokens: Vec<TokenId> = vec![3, 9, 1, 7, 2, 8, 4];

        let mut contiguous = model.new_cache();
        let full = model.forward(&tokens, &mut contiguous, false);

        // Block size 4 forces the 7-token prompt to straddle a block boundary.
        let mut pool = model.new_paged_pool(4, 64);
        let mut cache = model.new_paged_cache();
        let mut kv = PagedKv {
            pool: &mut pool,
            cache: &mut cache,
        };
        let paged = model.forward(&tokens, &mut kv, false);
        assert_eq!(paged.logits.as_slice(), full.logits.as_slice());
        assert_eq!(paged.last_hidden.as_slice(), full.last_hidden.as_slice());

        // Incremental decode steps agree bit for bit too, through a rollback.
        let a = model.forward(&[5], &mut contiguous, false);
        let b = model.forward(&[5], &mut kv, false);
        assert_eq!(a.logits.as_slice(), b.logits.as_slice());
        contiguous.truncate(tokens.len());
        kv.kv_truncate(tokens.len());
        let a = model.forward(&[6, 2], &mut contiguous, false);
        let b = model.forward(&[6, 2], &mut kv, false);
        assert_eq!(a.logits.as_slice(), b.logits.as_slice());

        cache.release(&mut pool);
        assert_eq!(pool.blocks_in_use(), 0);
        assert!(pool.check_conservation().is_ok());
    }

    #[test]
    fn budgeted_cache_reserves_at_most_the_pool_capacity() {
        let model = small_model();
        let pool = model.new_paged_pool(8, 40);
        let cache = model.new_cache_budgeted(pool.capacity_positions());
        for layer in 0..model.config.num_layers {
            let got = cache.layer(layer).capacity_positions();
            assert!(
                got >= pool.capacity_positions() && got < model.config.max_seq_len,
                "layer {layer} reserved {got} positions"
            );
        }
        // The unbudgeted constructor still reserves the full context window.
        let full = model.new_cache();
        assert!(full.layer(0).capacity_positions() >= model.config.max_seq_len);
    }

    #[test]
    fn cache_rollback_reproduces_logits() {
        // After truncating the KV cache, re-running a token must give identical
        // logits — this is what speculative rejection relies on.
        let model = small_model();
        let prompt: Vec<TokenId> = vec![1, 2, 3];
        let (_, mut cache) = model.prefill(&prompt, false);
        let baseline = model.forward(&[7], &mut cache, false);
        // Speculatively append some garbage tokens, then roll back.
        let _ = model.forward(&[9, 11, 13], &mut cache, false);
        cache.truncate(4);
        let _rerun_guard = cache.seq_len();
        cache.truncate(3);
        let rerun = model.forward(&[7], &mut cache, false);
        for c in 0..model.config.vocab_size {
            assert!((baseline.logits.get(0, c) - rerun.logits.get(0, c)).abs() < 1e-4);
        }
    }

    #[test]
    fn sequence_logprobs_are_finite_and_negative() {
        let model = small_model();
        let tokens: Vec<TokenId> = vec![0, 5, 10, 15, 20];
        let lps = model.sequence_logprobs(&tokens);
        assert_eq!(lps.len(), 4);
        for lp in lps {
            assert!(lp.is_finite());
            assert!(lp <= 0.0);
        }
    }

    #[test]
    fn policy_update_increases_logprob_of_rewarded_tokens() {
        let mut model = small_model();
        let tokens: Vec<TokenId> = vec![1, 2, 3, 4, 5, 6];
        let targets: Vec<usize> = tokens[1..].iter().map(|&t| t as usize).collect();

        let before: f32 = model.sequence_logprobs(&tokens).iter().sum();
        for _ in 0..10 {
            let fwd = model.forward_for_update(&tokens[..tokens.len() - 1]);
            // Positive-advantage policy gradient == cross-entropy toward the taken actions.
            let (_, d_logits) = cross_entropy_weighted(&fwd.logits, &targets, None);
            let grads = model.backward_for_update(&fwd, &d_logits);
            model.apply_update(&grads, 0.5);
        }
        let after: f32 = model.sequence_logprobs(&tokens).iter().sum();
        assert!(
            after > before,
            "policy update failed to raise sequence log-prob: {before} -> {after}"
        );
    }

    #[test]
    fn policy_update_changes_output_distribution() {
        // This is the "evolving target model" phenomenon (paper challenge C1): after
        // an RL update the output distribution must drift.
        let mut model = small_model();
        let reference = model.reference_copy();
        let tokens: Vec<TokenId> = vec![2, 4, 6, 8, 10];
        let targets: Vec<usize> = tokens[1..].iter().map(|&t| t as usize).collect();
        for _ in 0..5 {
            let fwd = model.forward_for_update(&tokens[..tokens.len() - 1]);
            let (_, d_logits) = cross_entropy_weighted(&fwd.logits, &targets, None);
            let grads = model.backward_for_update(&fwd, &d_logits);
            model.apply_update(&grads, 0.5);
        }
        let drift: f32 = model
            .sequence_logprobs(&tokens)
            .iter()
            .zip(reference.sequence_logprobs(&tokens).iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            drift > 1e-3,
            "expected output distribution drift, got {drift}"
        );
    }

    #[test]
    fn project_hidden_matches_forward_logits() {
        let model = small_model();
        let tokens: Vec<TokenId> = vec![1, 3, 5];
        let (out, _) = model.prefill(&tokens, false);
        let projected = model.project_hidden(&out.last_hidden);
        for r in 0..projected.rows() {
            for c in 0..projected.cols() {
                assert!((projected.get(r, c) - out.logits.get(r, c)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn embed_rejects_out_of_range_tokens() {
        let model = small_model();
        let result = std::panic::catch_unwind(|| model.embed(&[10_000], 0));
        assert!(result.is_err());
    }

    #[test]
    fn parameter_count_positive_and_stable() {
        let model = small_model();
        let n = model.num_parameters();
        assert!(n > 0);
        assert_eq!(n, small_model().num_parameters());
    }
}
