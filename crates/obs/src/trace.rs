//! Trace export: Chrome `trace_event` JSON and readable postmortems.
//!
//! The Chrome exporter emits the stable subset of the trace-event format that
//! `chrome://tracing` and Perfetto both accept: `"X"` complete events for
//! spans, `"i"` instants, and `"M"` metadata records naming each track.
//! Timestamps are sim-time microseconds. Rendering goes through
//! [`JsonValue`], whose output is deterministic, so a trace is byte-identical
//! across runs with the same seed.

use crate::event::{ObsEvent, Track, NO_REQ};
use crate::json::JsonValue;

/// Export one run's events as a Chrome trace document.
pub fn chrome_trace(events: &[ObsEvent]) -> JsonValue {
    chrome_trace_sections(&[("", events)])
}

/// Export several labelled runs (e.g. chaos scenarios) into one trace.
/// Each section's tracks get a disjoint `pid` range and the section label is
/// prefixed onto the process names so timelines stay distinguishable.
pub fn chrome_trace_sections(sections: &[(&str, &[ObsEvent])]) -> JsonValue {
    let mut out = Vec::new();
    for (index, (label, events)) in sections.iter().enumerate() {
        let pid_base = index as u64 * 1000;
        let mut tracks: Vec<Track> = Vec::new();
        for event in events.iter() {
            if !tracks.contains(&event.track) {
                tracks.push(event.track);
            }
        }
        tracks.sort_by_key(|t| t.pid());
        for track in &tracks {
            let name = if label.is_empty() {
                track.label()
            } else {
                format!("{label}: {}", track.label())
            };
            out.push(JsonValue::object(vec![
                ("name", JsonValue::string("process_name")),
                ("ph", JsonValue::string("M")),
                ("ts", JsonValue::Number(0.0)),
                ("pid", JsonValue::Number((pid_base + track.pid()) as f64)),
                ("tid", JsonValue::Number(0.0)),
                (
                    "args",
                    JsonValue::object(vec![("name", JsonValue::string(name))]),
                ),
            ]));
        }
        for event in events.iter() {
            out.push(render_event(event, pid_base));
        }
    }
    JsonValue::object(vec![
        ("traceEvents", JsonValue::Array(out)),
        ("displayTimeUnit", JsonValue::string("ms")),
    ])
}

fn render_event(event: &ObsEvent, pid_base: u64) -> JsonValue {
    let mut args = vec![("seq", JsonValue::Number(event.seq as f64))];
    if event.req != NO_REQ {
        args.push(("req", JsonValue::Number(event.req as f64)));
    }
    let (a_name, b_name) = event.kind.arg_names();
    if !a_name.is_empty() {
        args.push((a_name, JsonValue::Number(event.a)));
    }
    if !b_name.is_empty() {
        args.push((b_name, JsonValue::Number(event.b)));
    }
    let mut fields = vec![
        ("name", JsonValue::string(event.kind.name())),
        ("cat", JsonValue::string("tlt")),
        (
            "ph",
            JsonValue::string(if event.kind.is_span() { "X" } else { "i" }),
        ),
        ("ts", JsonValue::Number(event.ts_s * 1e6)),
    ];
    if event.kind.is_span() {
        fields.push(("dur", JsonValue::Number(event.dur_s * 1e6)));
    } else {
        fields.push(("s", JsonValue::string("t")));
    }
    fields.push((
        "pid",
        JsonValue::Number((pid_base + event.track.pid()) as f64),
    ));
    fields.push(("tid", JsonValue::Number(0.0)));
    fields.push(("args", JsonValue::object(args)));
    JsonValue::object(fields)
}

/// Render retained events as a readable postmortem: a header block followed by
/// one section per track, events in record order with decoded args.
pub fn render_postmortem(header: &str, events: &[ObsEvent]) -> String {
    let mut out = String::new();
    out.push_str("==== flight recorder postmortem ====\n");
    for line in header.lines() {
        out.push_str(line);
        out.push('\n');
    }
    let mut tracks: Vec<Track> = Vec::new();
    for event in events {
        if !tracks.contains(&event.track) {
            tracks.push(event.track);
        }
    }
    tracks.sort_by_key(|t| t.pid());
    for track in tracks {
        let on_track: Vec<&ObsEvent> = events.iter().filter(|e| e.track == track).collect();
        out.push_str(&format!(
            "-- {} (last {} events) --\n",
            track.label(),
            on_track.len()
        ));
        for event in on_track {
            out.push_str(&render_postmortem_line(event));
            out.push('\n');
        }
    }
    out
}

fn render_postmortem_line(event: &ObsEvent) -> String {
    let mut line = format!("  [{:>12.6}s] {:<13}", event.ts_s, event.kind.name());
    if event.req != NO_REQ {
        line.push_str(&format!(" req={}", event.req));
    }
    let (a_name, b_name) = event.kind.arg_names();
    if !a_name.is_empty() {
        line.push_str(&format!(" {}={}", a_name, event.a));
    }
    if !b_name.is_empty() {
        line.push_str(&format!(" {}={}", b_name, event.b));
    }
    if event.dur_s > 0.0 {
        line.push_str(&format!(" dur={:.6}s", event.dur_s));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn sample_events() -> Vec<ObsEvent> {
        let mut events = vec![
            ObsEvent::instant(0.25, Track::Frontend, EventKind::Arrival, 7).with_args(1.0, 96.0),
            ObsEvent::span(0.5, 0.125, Track::Replica(1), EventKind::Prefill, NO_REQ)
                .with_args(2.0, 3.0),
            ObsEvent::instant(2.5, Track::Replica(1), EventKind::Crash, NO_REQ).with_args(2.0, 1.0),
        ];
        for (i, e) in events.iter_mut().enumerate() {
            e.seq = i as u64;
        }
        events
    }

    #[test]
    fn chrome_trace_emits_metadata_then_typed_events() {
        let doc = chrome_trace(&sample_events()).to_string();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"process_name\""));
        assert!(doc.contains("\"frontend\""));
        assert!(doc.contains("\"replica 1\""));
        // Prefill is a complete span with a duration in microseconds.
        assert!(doc.contains("\"name\":\"prefill\",\"cat\":\"tlt\",\"ph\":\"X\""));
        assert!(doc.contains("\"dur\":125000"));
        // Arrival is a thread-scoped instant carrying the request id.
        assert!(doc.contains("\"name\":\"arrival\",\"cat\":\"tlt\",\"ph\":\"i\""));
        assert!(doc.contains("\"req\":7"));
        assert!(doc.ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn chrome_trace_sections_separate_pid_ranges() {
        let events = sample_events();
        let doc = chrome_trace_sections(&[("a", &events), ("b", &events)]).to_string();
        assert!(doc.contains("\"a: replica 1\""));
        assert!(doc.contains("\"b: replica 1\""));
        assert!(doc.contains("\"pid\":11"));
        assert!(doc.contains("\"pid\":1011"));
    }

    #[test]
    fn postmortem_groups_by_track_and_decodes_args() {
        let text = render_postmortem("invariant: kv-budget\n", &sample_events());
        assert!(text.contains("==== flight recorder postmortem ===="));
        assert!(text.contains("invariant: kv-budget"));
        assert!(text.contains("-- frontend (last 1 events) --"));
        assert!(text.contains("-- replica 1 (last 2 events) --"));
        assert!(text.contains("arrival"));
        assert!(text.contains("req=7"));
        assert!(text.contains("crash"));
        assert!(text.contains("running=2 queued=1"));
    }
}
