//! Per-replica continuous-batching engine.
//!
//! Each replica owns an admission queue and a running batch and alternates
//! **prefill** steps (packed admission of queued requests, bounded by the KV token
//! budget and a chunking limit) with **decode** steps (one committed token per
//! sequence vanilla, or an expected accept length speculatively). Step durations
//! come from [`tlt_gpusim::LlmCostModel`]; the per-step SD decision is delegated to the existing
//! [`AdaptiveSdManager`], with the elastic threshold driven by the *live load*
//! (running batch plus queue depth), so speculation switches itself off exactly when
//! a backlog guarantees large batches — the paper's elastic-SD insight applied to
//! online serving.
//!
//! Replicas also model production failures: [`Replica::crash`] takes the engine
//! down, aborts the in-flight step (its work is lost — commits only happen at step
//! completion) and drains every held request into [`FailoverRequest`] records the
//! frontend re-queues onto survivors; [`Replica::restart`] brings the engine back
//! (resuming any work queued meanwhile) and [`Replica::set_slow_factor`] degrades
//! step durations to model a straggler.

use crate::balancer::ReplicaLoad;
use crate::config::{KvAccounting, ServeConfig};
use crate::metrics::{ReplicaMetrics, ReplicaStats};
use crate::request::{CompletedRequest, ServeRequest};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use tlt_model::paged_kv::{BlockLedger, PoolStats};
use tlt_obs::{record, EventKind, ObsEvent, Track, NO_REQ};
use tlt_rollout::{AdaptiveSdManager, DrafterChoice, SdDecision, SdMode, StepObservation};

/// A request waiting in the admission queue (possibly preempted mid-decode).
#[derive(Debug, Clone)]
struct QueuedEntry {
    req: ServeRequest,
    generated: f64,
    first_token_s: Option<f64>,
    admitted_s: Option<f64>,
    preemptions: u32,
}

impl QueuedEntry {
    fn fresh(req: ServeRequest) -> Self {
        QueuedEntry {
            req,
            generated: 0.0,
            first_token_s: None,
            admitted_s: None,
            preemptions: 0,
        }
    }

    /// Tokens a prefill step must process to (re)start this request: the prompt
    /// plus any previously generated tokens lost to preemption (recompute).
    fn prefill_tokens(&self) -> usize {
        self.req.prompt_len + self.generated.ceil() as usize
    }
}

/// A request drained from a crashed replica, carrying enough lifecycle state to
/// resume on a survivor without losing latency accounting: tokens already
/// streamed to the client keep their `generated` credit (the surviving replica
/// recomputes the KV for them in one prefill, like a preemption restore) and the
/// original arrival / first-token timestamps are preserved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailoverRequest {
    /// The original request.
    pub req: ServeRequest,
    /// Output tokens already produced (and delivered) before the crash.
    pub generated: f64,
    /// When the first output token was produced, if it was.
    pub first_token_s: Option<f64>,
    /// When the request was first admitted into a prefill batch, if it was.
    pub admitted_s: Option<f64>,
    /// Preemption count, already incremented for the crash-forced recompute.
    pub preemptions: u32,
}

/// A prefilled sequence handed off by a prefill-pool replica, to be migrated
/// over the KV transfer link and resumed on a decode-pool replica with zero
/// recompute. The source replica keeps `source_blocks` charged as outbound
/// until the transfer lands (or aborts); `wire_blocks` is the full block
/// footprint that physically crosses the link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigratedEntry {
    /// The original request.
    pub req: ServeRequest,
    /// Output tokens already produced (normally 0 at a post-prefill handoff).
    pub generated: f64,
    /// When the request was first admitted into a prefill batch.
    pub admitted_s: f64,
    /// Preemption count carried across the handoff.
    pub preemptions: u32,
    /// Private blocks the source keeps charged as outbound while in flight.
    pub source_blocks: usize,
    /// Blocks transferred over the link (the sequence's whole footprint).
    pub wire_blocks: usize,
}

/// A request in the running batch.
#[derive(Debug, Clone)]
struct RunningEntry {
    req: ServeRequest,
    generated: f64,
    first_token_s: Option<f64>,
    admitted_s: f64,
    preemptions: u32,
    /// Set while the admitting prefill step is still in flight.
    prefill_pending: bool,
    /// Admission sequence number; preemption evicts the most recent first.
    admit_seq: u64,
    /// Full-block shared-prefix tokens this entry references under paged
    /// accounting (charged once per replica, not per entry).
    shared_tokens: usize,
}

impl RunningEntry {
    /// Current KV footprint in tokens (per-sequence attention context).
    fn kv_tokens(&self) -> usize {
        self.req.prompt_len + self.generated.ceil() as usize
    }

    /// Tokens this entry stores privately under paged accounting (everything
    /// beyond the shared full-block prefix).
    fn private_tokens(&self) -> usize {
        self.kv_tokens() - self.shared_tokens
    }

    fn remaining(&self) -> f64 {
        self.req.output_len as f64 - self.generated
    }
}

/// Outcome of planning one paged admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PagedAdmission {
    /// Can never fit an empty replica: drop.
    Impossible,
    /// Does not fit the blocks left right now: stop admitting.
    OverBudget,
    /// Fits; `cached` prompt tokens come from resident prefix blocks.
    Admit {
        /// Prompt tokens served from the resident prefix cache.
        cached: usize,
        /// Private blocks the entry reserves.
        private_blocks: usize,
        /// Full shared-prefix blocks (charged once per replica).
        shared_blocks: usize,
    },
}

/// What the in-flight step will do when it completes.
#[derive(Debug, Clone)]
enum StepWork {
    /// A packed prefill over all `prefill_pending` running entries.
    Prefill,
    /// A decode step committing `tokens_per_seq` tokens to every running sequence
    /// (`speculative` marks an SD round, for the flight recorder).
    Decode {
        tokens_per_seq: f64,
        speculative: bool,
    },
}

#[derive(Debug, Clone)]
struct PendingStep {
    work: StepWork,
    finish_s: f64,
    duration_s: f64,
}

/// One continuous-batching replica.
#[derive(Debug, Clone)]
pub struct Replica {
    index: usize,
    config: ServeConfig,
    kv_budget: usize,
    /// Block-granular accounting under [`KvAccounting::Paged`]; `None` keeps
    /// the legacy flat-token behaviour bit for bit.
    ledger: Option<BlockLedger>,
    manager: Option<AdaptiveSdManager>,
    rng: StdRng,
    queue: VecDeque<QueuedEntry>,
    running: Vec<RunningEntry>,
    step: Option<PendingStep>,
    admit_seq: u64,
    /// Whether the engine is serving (false between `crash` and `restart`).
    up: bool,
    /// Step-duration multiplier (> 1.0 models a straggler replica).
    slow_factor: f64,
    /// Accounting: every scalar tally lives in the per-replica metrics
    /// registry ([`ReplicaStats`] is materialised from it at report time).
    metrics: ReplicaMetrics,
    dropped_ids: Vec<u64>,
    completed: Vec<CompletedRequest>,
    /// Per-step expected accept lengths of every speculative decode step, in
    /// step order, quantised to whole tokens. This is the raw material for the
    /// trace recorder's SD bitstream (`tlt-trace`); it stays empty on replicas
    /// that never speculate.
    sd_accepts: Vec<u8>,
    /// Prefill-pool member of a disaggregated cluster: sequences are handed
    /// off for migration when their prefill completes instead of decoding here.
    prefill_only: bool,
    /// Relabels the flight-recorder track for disaggregated pool replicas.
    track_override: Option<Track>,
    /// Prefilled sequences awaiting migration (drained by the cluster).
    handoffs: Vec<MigratedEntry>,
    /// Landed migrations waiting to join the batch at the next step boundary,
    /// each with the inbound block reservation it converts on merge.
    arriving: Vec<(RunningEntry, usize)>,
}

impl Replica {
    /// Creates replica `index` of a deployment. When the deployment registers
    /// a per-replica cost override for this index (heterogeneous fleet), the
    /// replica's own config copy carries that cost model, so its step times
    /// and KV budget reflect the hardware it actually runs on.
    pub fn new(config: &ServeConfig, index: usize) -> Self {
        let mut config = config.clone();
        config.cost = config.cost_for(index).clone();
        let config = &config;
        let manager = match &config.sd_mode {
            SdMode::Adaptive { config: mc } => Some(AdaptiveSdManager::new(*mc)),
            _ => None,
        };
        let kv_budget = config.kv_token_budget();
        let ledger = match config.kv_accounting {
            KvAccounting::Tokens => None,
            KvAccounting::Paged { block_size } => {
                assert!(block_size > 0, "paged KV block size must be non-zero");
                Some(BlockLedger::new(block_size, kv_budget / block_size))
            }
        };
        Replica {
            index,
            kv_budget,
            ledger,
            manager,
            rng: StdRng::seed_from_u64(
                config
                    .seed
                    .wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ),
            config: config.clone(),
            queue: VecDeque::new(),
            running: Vec::new(),
            step: None,
            admit_seq: 0,
            up: true,
            slow_factor: 1.0,
            metrics: ReplicaMetrics::new(),
            dropped_ids: Vec::new(),
            completed: Vec::new(),
            sd_accepts: Vec::new(),
            prefill_only: false,
            track_override: None,
            handoffs: Vec::new(),
            arriving: Vec::new(),
        }
    }

    /// The flight-recorder track for this replica.
    fn track(&self) -> Track {
        self.track_override
            .unwrap_or(Track::Replica(self.index as u32))
    }

    /// Overrides the flight-recorder track (disaggregated pools relabel their
    /// replicas as `prefill {i}` / `decode {j}`).
    pub fn set_track(&mut self, track: Track) {
        self.track_override = Some(track);
    }

    /// Marks this replica as a prefill-pool member: every sequence is handed
    /// off for migration the moment its prefill completes, and admission
    /// reserves only the prefill footprint (no decode-output reservation).
    pub fn set_prefill_only(&mut self, prefill_only: bool) {
        self.prefill_only = prefill_only;
    }

    /// Whether the replica is serving (false between [`Replica::crash`] and
    /// [`Replica::restart`]).
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// The KV-token budget this replica admits against.
    pub fn kv_budget(&self) -> usize {
        self.kv_budget
    }

    /// Sets the step-duration multiplier (a straggler runs at `factor > 1.0`).
    /// Takes effect from the next scheduled step; the in-flight step keeps the
    /// duration it was scheduled with.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive.
    pub fn set_slow_factor(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "slow factor must be finite and positive"
        );
        self.slow_factor = factor;
    }

    /// Crashes the replica at time `now`: the in-flight step is aborted (its
    /// uncommitted work is lost), and every held request — running batch first in
    /// admission order, then the queue front-to-back — is drained into
    /// [`FailoverRequest`] records for the frontend to re-queue on survivors.
    /// Requests keep their arrival / first-token timestamps and `generated`
    /// credit (already-delivered tokens are not re-produced; a survivor
    /// recomputes their KV in one prefill, exactly like a preemption restore).
    pub fn crash(&mut self, now: f64) -> Vec<FailoverRequest> {
        self.up = false;
        self.step = None;
        self.metrics.inc_crashes();
        record(
            ObsEvent::instant(now, self.track(), EventKind::Crash, NO_REQ)
                .with_args(self.running.len() as f64, self.queue.len() as f64),
        );
        // The crash wipes the replica's KV pool: every block — private
        // footprints and the resident prefix cache alike — is freed.
        if let Some(ledger) = self.ledger.as_mut() {
            ledger.reset();
        }
        let mut drained = Vec::with_capacity(self.running.len() + self.queue.len());
        for entry in self.running.drain(..) {
            drained.push(FailoverRequest {
                req: entry.req,
                generated: entry.generated,
                first_token_s: entry.first_token_s,
                admitted_s: Some(entry.admitted_s),
                preemptions: entry.preemptions + 1,
            });
        }
        for entry in self.queue.drain(..) {
            drained.push(FailoverRequest {
                req: entry.req,
                generated: entry.generated,
                first_token_s: entry.first_token_s,
                admitted_s: entry.admitted_s,
                // A queued request holds no KV, so the crash costs it nothing.
                preemptions: entry.preemptions,
            });
        }
        // Disaggregated state is lost with the pool: landed-but-unmerged
        // migrations and prefilled sequences still awaiting handoff both need
        // a fresh prefill elsewhere.
        for (entry, _reserved) in std::mem::take(&mut self.arriving) {
            drained.push(FailoverRequest {
                req: entry.req,
                generated: entry.generated,
                first_token_s: entry.first_token_s,
                admitted_s: Some(entry.admitted_s),
                preemptions: entry.preemptions + 1,
            });
        }
        for m in std::mem::take(&mut self.handoffs) {
            drained.push(FailoverRequest {
                req: m.req,
                generated: m.generated,
                first_token_s: None,
                admitted_s: Some(m.admitted_s),
                preemptions: m.preemptions + 1,
            });
        }
        drained
    }

    /// Restarts a crashed replica at time `now`. Any work enqueued while the
    /// replica was down (or re-delivered orphans) starts immediately.
    ///
    /// # Panics
    ///
    /// Panics if the replica is already up.
    pub fn restart(&mut self, now: f64) {
        assert!(!self.up, "restart requires a crashed replica");
        self.up = true;
        record(ObsEvent::instant(
            now,
            self.track(),
            EventKind::Restart,
            NO_REQ,
        ));
        debug_assert!(self.step.is_none(), "a crashed replica holds no step");
        if !self.queue.is_empty() {
            self.start_step(now);
        }
    }

    /// Re-queues a request drained from a crashed replica, preserving its
    /// lifecycle state. Starts a step immediately if the replica is idle.
    pub fn enqueue_failover(&mut self, fo: FailoverRequest, now: f64) {
        self.metrics.inc_failovers();
        record(
            ObsEvent::instant(now, self.track(), EventKind::Failover, fo.req.id)
                .with_args(fo.generated, 0.0),
        );
        self.queue.push_back(QueuedEntry {
            req: fo.req,
            generated: fo.generated,
            first_token_s: fo.first_token_s,
            admitted_s: fo.admitted_s,
            preemptions: fo.preemptions,
        });
        if self.up && self.step.is_none() {
            self.start_step(now);
        }
    }

    /// Simulated time at which the in-flight step finishes (infinite when idle).
    pub fn next_event_s(&self) -> f64 {
        self.step.as_ref().map(|s| s.finish_s).unwrap_or(f64::MAX)
    }

    /// Load snapshot for the balancer.
    pub fn load(&self) -> ReplicaLoad {
        if self.prefill_only {
            // A prefill-pool replica only owes prefill compute: the decode
            // tokens belong to whichever decode replica the sequence lands on.
            let queued: u64 = self.queue.iter().map(|e| e.prefill_tokens() as u64).sum();
            let running: u64 = self
                .running
                .iter()
                .filter(|e| e.prefill_pending)
                .map(|e| e.req.prompt_len as u64)
                .sum();
            return ReplicaLoad {
                queued: self.queue.len(),
                running: self.running.len(),
                outstanding_tokens: queued + running,
            };
        }
        let queued_tokens: u64 = self
            .queue
            .iter()
            .map(|e| {
                // Work still owed: the (re)prefill plus the decode tokens not yet
                // produced (preempted entries keep their `generated` credit).
                e.prefill_tokens() as u64 + (e.req.output_len as f64 - e.generated).max(0.0) as u64
            })
            .sum();
        let running_tokens: u64 = self
            .running
            .iter()
            .map(|e| {
                let prefill = if e.prefill_pending {
                    e.req.prompt_len
                } else {
                    0
                };
                (prefill as f64 + e.remaining()).max(0.0) as u64
            })
            .sum();
        ReplicaLoad {
            queued: self.queue.len(),
            running: self.running.len(),
            outstanding_tokens: queued_tokens + running_tokens,
        }
    }

    /// Whether any work (queued, running, in flight, or awaiting a
    /// disaggregated handoff / merge) remains.
    pub fn has_work(&self) -> bool {
        self.step.is_some()
            || !self.queue.is_empty()
            || !self.running.is_empty()
            || !self.arriving.is_empty()
            || !self.handoffs.is_empty()
    }

    /// Accepts a request at time `now`, starting a step immediately if idle (and
    /// up — a down replica holds the request until [`Replica::restart`]). The
    /// request's output length is clamped to the deployment's per-request cap so
    /// conservative KV admission's worst-case reservation really is a worst case,
    /// and a zero-token prompt is clamped to one token so every admitted request
    /// goes through a real prefill (its first token has a well-defined time).
    pub fn enqueue(&mut self, mut req: ServeRequest, now: f64) {
        req.prompt_len = req.prompt_len.max(1);
        req.output_len = req.output_len.min(self.config.max_output_tokens).max(1);
        req.prefix_len = req.prefix_len.min(req.prompt_len);
        self.queue.push_back(QueuedEntry::fresh(req));
        if self.up && self.step.is_none() {
            self.start_step(now);
        }
    }

    /// Completes the in-flight step (must be called at exactly `next_event_s`) and
    /// immediately starts the next one if work remains.
    pub fn on_step_complete(&mut self, now: f64) {
        let step = self.step.take().expect("a step is in flight");
        self.metrics.observe_step(step.duration_s);
        let track = self.track();
        let batch = self.running.len();
        match step.work {
            StepWork::Prefill => {
                record(
                    ObsEvent::span(
                        now - step.duration_s,
                        step.duration_s,
                        track,
                        EventKind::Prefill,
                        NO_REQ,
                    )
                    .with_args(batch as f64, self.queue.len() as f64),
                );
                let prefill_only = self.prefill_only;
                for entry in &mut self.running {
                    if entry.prefill_pending {
                        entry.prefill_pending = false;
                        // A prefill-pool replica never produces an output
                        // token: the first token arrives on the decode side,
                        // after the migration.
                        if !prefill_only && entry.first_token_s.is_none() {
                            entry.first_token_s = Some(now);
                        }
                    }
                }
                if self.prefill_only {
                    // Every running entry has now completed its prefill: hand
                    // the whole batch off for migration. The shared-prefix
                    // reference drops (the blocks stay resident as the
                    // affinity cache) and the private footprint converts into
                    // an outbound charge held until the transfer lands.
                    for entry in std::mem::take(&mut self.running) {
                        let (source_blocks, wire_blocks) = match self.ledger.as_mut() {
                            Some(ledger) => {
                                if entry.shared_tokens > 0 {
                                    ledger.release_shared(entry.req.prefix_id);
                                }
                                let src = ledger.blocks_for(entry.private_tokens());
                                ledger.begin_outbound(src);
                                (src, ledger.blocks_for(entry.kv_tokens()))
                            }
                            None => (0, 0),
                        };
                        self.metrics.inc_migrations_out();
                        self.handoffs.push(MigratedEntry {
                            req: entry.req,
                            generated: entry.generated,
                            admitted_s: entry.admitted_s,
                            preemptions: entry.preemptions,
                            source_blocks,
                            wire_blocks,
                        });
                    }
                }
            }
            StepWork::Decode {
                tokens_per_seq,
                speculative,
            } => {
                record(
                    ObsEvent::span(
                        now - step.duration_s,
                        step.duration_s,
                        track,
                        if speculative {
                            EventKind::SdRound
                        } else {
                            EventKind::Decode
                        },
                        NO_REQ,
                    )
                    .with_args(batch as f64, tokens_per_seq),
                );
                // Single in-order pass: finished entries drain straight into the
                // completed log (in admission order) and survivors keep their
                // batch order — no per-removal swap_remove shuffling. Finished
                // entries drop their shared-prefix reference; the blocks stay
                // resident for future admissions until pool pressure reclaims
                // them.
                let replica_index = self.index;
                let completed = &mut self.completed;
                let metrics = &mut self.metrics;
                let ledger = &mut self.ledger;
                self.running.retain_mut(|entry| {
                    let committed = tokens_per_seq.min(entry.remaining());
                    entry.generated += committed;
                    // Migrated entries skip the local prefill, so their first
                    // token is produced by their first decode commit here.
                    if entry.first_token_s.is_none() {
                        entry.first_token_s = Some(now);
                    }
                    if entry.remaining() <= 1e-9 {
                        metrics.inc_completed();
                        record(
                            ObsEvent::instant(now, track, EventKind::Completion, entry.req.id)
                                .with_args(entry.req.output_len as f64, now - entry.req.arrival_s),
                        );
                        if entry.shared_tokens > 0 {
                            ledger
                                .as_mut()
                                .expect("shared tokens imply paged accounting")
                                .release_shared(entry.req.prefix_id);
                        }
                        completed.push(CompletedRequest {
                            id: entry.req.id,
                            replica: replica_index,
                            arrival_s: entry.req.arrival_s,
                            admitted_s: entry.admitted_s,
                            first_token_s: entry.first_token_s.unwrap_or(now),
                            finish_s: now,
                            prompt_len: entry.req.prompt_len,
                            output_len: entry.req.output_len,
                            preemptions: entry.preemptions,
                        });
                        false
                    } else {
                        true
                    }
                });
            }
        }
        self.start_step(now);
    }

    /// Refreshes the ledger's view of the running batch's private footprint
    /// (and with it the pool-utilisation peak).
    fn sync_ledger(&mut self) {
        let Some(ledger) = self.ledger.as_ref() else {
            return;
        };
        let private = self.private_blocks_in_use(ledger);
        if let Some(ledger) = self.ledger.as_mut() {
            ledger.sync_private(private);
        }
    }

    /// Actual private (unshared) blocks the running batch occupies.
    fn private_blocks_in_use(&self, ledger: &BlockLedger) -> usize {
        self.running
            .iter()
            .map(|e| ledger.blocks_for(e.private_tokens()))
            .sum()
    }

    /// Full-block tokens of `req`'s shared prefix under paged accounting
    /// (partial blocks stay private; 0 under token accounting or without a
    /// prefix).
    fn shared_prefix_tokens(&self, req: &ServeRequest) -> usize {
        match &self.ledger {
            Some(ledger) if req.prefix_id != 0 => {
                let bs = ledger.block_size();
                (req.prefix_len.min(req.prompt_len) / bs) * bs
            }
            _ => 0,
        }
    }

    /// KV tokens a queued entry needs at admission time: its current footprint under
    /// optimistic admission, or the worst case under conservative admission.
    fn admission_need(&self, entry: &QueuedEntry) -> usize {
        if self.prefill_only || self.config.preemption {
            entry.prefill_tokens()
        } else {
            entry.req.prompt_len + self.config.max_output_tokens
        }
    }

    /// KV tokens currently reserved by the running batch under the active policy.
    fn reserved_tokens(&self) -> usize {
        self.running
            .iter()
            .map(|e| {
                if self.prefill_only || self.config.preemption {
                    e.kv_tokens()
                } else {
                    e.req.prompt_len + self.config.max_output_tokens
                }
            })
            .sum()
    }

    /// Current KV footprint of the running batch (actual tokens resident,
    /// counting shared prefixes once per referencing entry — the per-sequence
    /// attention context the cost model sees).
    fn kv_in_use(&self) -> usize {
        self.running.iter().map(RunningEntry::kv_tokens).sum()
    }

    /// Private blocks reserved by the running batch under paged accounting
    /// (worst case under conservative admission, actual footprint under
    /// optimistic admission). Shared groups are charged by the ledger.
    fn reserved_private_blocks(&self, ledger: &BlockLedger) -> usize {
        self.running
            .iter()
            .map(|e| {
                let tokens = if self.prefill_only || self.config.preemption {
                    e.private_tokens()
                } else {
                    e.req.prompt_len - e.shared_tokens + self.config.max_output_tokens
                };
                ledger.blocks_for(tokens)
            })
            .sum()
    }

    /// Actual blocks charged right now: per-entry private footprints (rounded
    /// up to whole blocks) plus the resident shared groups, charged once.
    fn blocks_in_use(&self, ledger: &BlockLedger) -> usize {
        self.private_blocks_in_use(ledger)
            + ledger.shared_blocks()
            + ledger.inbound_blocks()
            + ledger.outbound_blocks()
    }

    /// Plans the paged admission of `entry` against the current reservations
    /// without mutating anything.
    fn plan_paged_admission(
        &self,
        entry: &QueuedEntry,
        reserved_private_blocks: usize,
    ) -> PagedAdmission {
        let ledger = self.ledger.as_ref().expect("paged accounting");
        let budget = ledger.capacity_blocks();
        let shared = self.shared_prefix_tokens(&entry.req);
        let shared_blocks = shared / ledger.block_size();
        // A request that cannot fit even an otherwise-empty replica will never
        // be admittable: drop it instead of wedging the queue (the paged
        // analogue of the token-mode impossibility rule, with the shared
        // prefix charged once).
        let lone_private = if self.prefill_only {
            entry.prefill_tokens() - shared
        } else if self.config.preemption {
            entry.req.prompt_len - shared + entry.req.output_len
        } else {
            entry.req.prompt_len - shared + self.config.max_output_tokens
        };
        if ledger.blocks_for(lone_private) + shared_blocks > budget {
            return PagedAdmission::Impossible;
        }
        // Only the blocks already resident hold materialised KV a prefill can
        // reuse; a longer clamped prefix must compute — and charge — the
        // extension blocks itself (the group grows at admission).
        let reused_blocks = if shared_blocks > 0 {
            shared_blocks.min(ledger.resident_blocks_of(entry.req.prefix_id))
        } else {
            0
        };
        let private_need = if self.prefill_only || self.config.preemption {
            entry.prefill_tokens() - shared
        } else {
            entry.req.prompt_len - shared + self.config.max_output_tokens
        };
        let private_blocks = ledger.blocks_for(private_need);
        let need = private_blocks + (shared_blocks - reused_blocks);
        // In-flight migrations hold real blocks: inbound reservations must not
        // be handed out twice (a transfer landing mid-step would over-commit
        // the pool) and outbound charges keep the source's KV pinned until the
        // wire copy finishes.
        if reserved_private_blocks
            + ledger.shared_blocks()
            + ledger.inbound_blocks()
            + ledger.outbound_blocks()
            + need
            > budget
        {
            return PagedAdmission::OverBudget;
        }
        // Reused resident blocks mean their KV is already materialised: the
        // prefill skips those tokens (keeping at least one novel token so the
        // step still produces first-token logits). The first request of a
        // group pays the full prefill and leaves the blocks resident.
        let cached =
            (reused_blocks * ledger.block_size()).min(entry.prefill_tokens().saturating_sub(1));
        PagedAdmission::Admit {
            cached,
            private_blocks,
            shared_blocks,
        }
    }

    /// Moves admittable queued requests into the running batch; returns the
    /// packed `(novel, cached)` prompt tokens of the admitted set — `novel`
    /// tokens must be computed by the prefill step, `cached` tokens are served
    /// from resident prefix blocks and only re-read by attention.
    fn try_admit(&mut self, now: f64) -> (usize, usize) {
        let mut reserved_tokens = if self.ledger.is_none() {
            self.reserved_tokens()
        } else {
            0
        };
        let mut reserved_private_blocks = match &self.ledger {
            Some(ledger) => self.reserved_private_blocks(ledger),
            None => 0,
        };
        let mut prefill_tokens = 0usize;
        let mut cached_tokens = 0usize;
        let mut admitted = 0usize;
        loop {
            if self.running.len() >= self.config.max_running_requests {
                break;
            }
            let Some(front) = self.queue.front().cloned() else {
                break;
            };
            // Decide admissibility under the active accounting mode.
            let paged = self.ledger.is_some();
            let (entry_cached, entry_private_blocks, entry_shared_blocks) = if paged {
                let mut plan = self.plan_paged_admission(&front, reserved_private_blocks);
                if plan == PagedAdmission::OverBudget {
                    // Reclaim prefix-cache groups nothing references — except
                    // the front request's own group, whose eviction would buy
                    // no headroom (its blocks move straight back into `need`)
                    // while destroying the cache hit — and retry once.
                    let keep = (front.req.prefix_id != 0).then_some(front.req.prefix_id);
                    let freed = match self.ledger.as_mut() {
                        Some(ledger) => ledger.evict_unreferenced_except(keep),
                        None => 0,
                    };
                    if freed > 0 {
                        plan = self.plan_paged_admission(&front, reserved_private_blocks);
                    }
                }
                match plan {
                    PagedAdmission::Impossible => {
                        let entry = self.queue.pop_front().expect("front exists");
                        self.metrics.inc_dropped();
                        self.dropped_ids.push(entry.req.id);
                        continue;
                    }
                    PagedAdmission::OverBudget => break,
                    PagedAdmission::Admit {
                        cached,
                        private_blocks,
                        shared_blocks,
                    } => (cached, private_blocks, shared_blocks),
                }
            } else {
                let need = self.admission_need(&front);
                // A request that cannot fit even an otherwise-empty replica will never
                // be admittable: drop it instead of wedging the queue. Under
                // optimistic admission the prefill may fit today but the request's
                // full footprint (prompt + clamped output) can still exceed the whole
                // budget — running it alone would overflow KV with nothing left to
                // preempt, so it is just as impossible.
                let impossible = need > self.kv_budget
                    || (self.config.preemption
                        && front.req.prompt_len + front.req.output_len > self.kv_budget);
                if impossible {
                    let entry = self.queue.pop_front().expect("front exists");
                    self.metrics.inc_dropped();
                    self.dropped_ids.push(entry.req.id);
                    continue;
                }
                if reserved_tokens + need > self.kv_budget {
                    break;
                }
                reserved_tokens += need;
                (0, 0, 0)
            };
            let chunk = front.prefill_tokens() - entry_cached;
            if admitted > 0 && prefill_tokens + chunk > self.config.max_prefill_tokens {
                break;
            }
            let entry = self.queue.pop_front().expect("front exists");
            let shared = self.shared_prefix_tokens(&entry.req);
            if let Some(ledger) = self.ledger.as_mut() {
                reserved_private_blocks += entry_private_blocks;
                if entry_shared_blocks > 0 {
                    ledger.admit_shared(entry.req.prefix_id, entry_shared_blocks);
                }
            }
            prefill_tokens += chunk;
            cached_tokens += entry_cached;
            // Hit-rate accounting is over *prompt* tokens: preemption-lost
            // output tokens are recomputed by the prefill but can never come
            // from the prefix cache, so they stay out of the denominator.
            self.metrics.observe_admission(
                entry.req.prompt_len as u64,
                entry_cached.min(entry.req.prompt_len) as u64,
            );
            record(
                ObsEvent::instant(now, self.track(), EventKind::Admission, entry.req.id)
                    .with_args(chunk as f64, entry_cached as f64),
            );
            admitted += 1;
            self.running.push(RunningEntry {
                admitted_s: entry.admitted_s.unwrap_or(now),
                req: entry.req,
                generated: entry.generated,
                first_token_s: entry.first_token_s,
                preemptions: entry.preemptions,
                prefill_pending: true,
                admit_seq: self.admit_seq,
                shared_tokens: shared,
            });
            self.admit_seq += 1;
        }
        (prefill_tokens, cached_tokens)
    }

    /// Evicts most-recently-admitted requests back to the queue front until the
    /// actual KV footprint fits the budget again (optimistic admission only).
    ///
    /// Victims are chosen in a single pass — indices sorted once by descending
    /// admission sequence — instead of an O(n) max scan per eviction, and removed
    /// with one order-preserving retain pass. Eviction order (most recently
    /// admitted first) and the resulting queue-front order (victims ascending by
    /// admission sequence, ahead of everything already queued) are pinned by the
    /// `preemption_evicts_most_recent_first` test.
    fn preempt_until_fitting(&mut self, now: f64) {
        // Under paged accounting the fitting check runs in block units against
        // the ledger. Unreferenced prefix-cache groups stay resident until
        // there is actual pressure; when the batch is over budget they are
        // reclaimed before any running work is evicted.
        let (budget, mut kv_in_use) = match &self.ledger {
            Some(ledger) => (ledger.capacity_blocks(), self.blocks_in_use(ledger)),
            None => (self.kv_budget, self.kv_in_use()),
        };
        if kv_in_use > budget {
            if let Some(ledger) = self.ledger.as_mut() {
                ledger.evict_unreferenced();
            }
            if let Some(ledger) = &self.ledger {
                kv_in_use = self.blocks_in_use(ledger);
            }
        }
        if kv_in_use <= budget || self.running.len() <= 1 {
            return;
        }
        let footprint = |replica: &Replica, i: usize| -> usize {
            match &replica.ledger {
                Some(ledger) => ledger.blocks_for(replica.running[i].private_tokens()),
                None => replica.running[i].kv_tokens(),
            }
        };
        // Remaining running references per shared group: evicting a group's
        // last referencing victim frees the group's blocks too (reclaimed by
        // the trailing sweep), so the loop credits them and stops earlier.
        let mut group_refs: Vec<(u64, usize)> = Vec::new();
        if self.ledger.is_some() {
            for e in self.running.iter().filter(|e| e.shared_tokens > 0) {
                match group_refs.iter_mut().find(|(id, _)| *id == e.req.prefix_id) {
                    Some((_, refs)) => *refs += 1,
                    None => group_refs.push((e.req.prefix_id, 1)),
                }
            }
        }
        let mut order: Vec<usize> = (0..self.running.len()).collect();
        order.sort_unstable_by_key(|&i| std::cmp::Reverse(self.running[i].admit_seq));
        let mut evicted = vec![false; self.running.len()];
        let mut evicted_count = 0usize;
        for &i in &order {
            if kv_in_use <= budget || self.running.len() - evicted_count <= 1 {
                break;
            }
            kv_in_use -= footprint(self, i);
            if self.running[i].shared_tokens > 0 {
                if let Some((_, refs)) = group_refs
                    .iter_mut()
                    .find(|(id, _)| *id == self.running[i].req.prefix_id)
                {
                    *refs -= 1;
                    if *refs == 0 {
                        if let Some(ledger) = &self.ledger {
                            kv_in_use = kv_in_use.saturating_sub(
                                ledger.resident_blocks_of(self.running[i].req.prefix_id),
                            );
                        }
                    }
                }
            }
            evicted[i] = true;
            evicted_count += 1;
        }
        if evicted_count == 0 {
            return;
        }
        // One pass rebuilds the surviving batch in order; victims move (no
        // clones) into slots addressed by their original index. The first
        // `evicted_count` entries of `order` are exactly the victims in eviction
        // order (most recently admitted first), so pushing them to the queue
        // front in that sequence leaves the front ascending by admission order.
        let mut slots: Vec<Option<RunningEntry>> = self.running.drain(..).map(Some).collect();
        for (slot, &was_evicted) in slots.iter_mut().zip(evicted.iter()) {
            if !was_evicted {
                self.running.push(slot.take().expect("unconsumed slot"));
            }
        }
        for &i in &order[..evicted_count] {
            let victim = slots[i].take().expect("victim slot");
            self.metrics.inc_preemptions();
            record(ObsEvent::instant(
                now,
                self.track(),
                EventKind::Preemption,
                victim.req.id,
            ));
            if let Some(ledger) = self.ledger.as_mut() {
                if victim.shared_tokens > 0 {
                    ledger.release_shared(victim.req.prefix_id);
                }
            }
            self.queue.push_front(QueuedEntry {
                req: victim.req,
                generated: victim.generated,
                first_token_s: victim.first_token_s,
                admitted_s: Some(victim.admitted_s),
                preemptions: victim.preemptions + 1,
            });
        }
        // Eviction may have orphaned a shared group; if the batch still does
        // not fit, reclaim those blocks too.
        if let Some(ledger) = self.ledger.as_mut() {
            ledger.evict_unreferenced();
        }
    }

    /// Chooses and schedules the next step at time `now` (idle if no work).
    fn start_step(&mut self, now: f64) {
        debug_assert!(self.step.is_none());
        // Landed migrations join the batch at a step boundary: the inbound
        // reservation converts into a regular private footprint (picked up by
        // `sync_ledger` below) the moment the entry starts decoding.
        for (entry, reserved) in std::mem::take(&mut self.arriving) {
            if let Some(ledger) = self.ledger.as_mut() {
                ledger.commit_inbound(reserved);
            }
            self.running.push(entry);
        }
        if self.config.preemption {
            self.preempt_until_fitting(now);
        }
        let (prefill_tokens, cached_tokens) = self.try_admit(now);
        let (running, kv_in_use) = (self.running.len(), self.kv_in_use());
        self.metrics.observe_peaks(running, kv_in_use);
        self.sync_ledger();
        if prefill_tokens > 0 {
            // The prefill computes only the novel tokens; resident prefix
            // blocks are re-read by attention but never recomputed.
            let duration = self
                .config
                .cost
                .prefill_time_cached(1, prefill_tokens, cached_tokens)
                * self.slow_factor;
            self.step = Some(PendingStep {
                work: StepWork::Prefill,
                finish_s: now + duration,
                duration_s: duration,
            });
            return;
        }
        if self.running.is_empty() {
            return; // Idle until the next arrival.
        }

        let batch = self.running.len();
        let avg_context = (self.kv_in_use() / batch).max(1);
        // The elastic decision sees the *live load*: requests already decoding plus
        // the backlog that will join the batch as soon as capacity frees up.
        let live_load = batch + self.queue.len();
        let decision = match &self.config.sd_mode {
            SdMode::Disabled => SdDecision::Vanilla,
            SdMode::Static {
                strategy,
                threshold,
            } => {
                if live_load <= *threshold {
                    SdDecision::Speculative {
                        drafter: DrafterChoice::Learned,
                        strategy: *strategy,
                    }
                } else {
                    SdDecision::Vanilla
                }
            }
            SdMode::Adaptive { .. } => self
                .manager
                .as_mut()
                .expect("manager present in adaptive mode")
                .decide(live_load, &mut self.rng),
        };

        self.metrics.inc_decode_steps();
        let (duration, tokens_per_seq, speculative) = match decision {
            SdDecision::Vanilla => (
                self.config.cost.decode_step_time(batch, avg_context) * self.slow_factor,
                1.0,
                false,
            ),
            SdDecision::Speculative { drafter, strategy } => {
                let profile = match drafter {
                    DrafterChoice::Learned => &self.config.acceptance,
                    DrafterChoice::ModelFree => &self.config.model_free_acceptance,
                };
                let accept = profile.expected_accept_len_tree(
                    strategy.draft_depth,
                    strategy.top_k,
                    strategy.tokens_to_verify,
                );
                let t = self.config.cost.speculative_step_time(
                    &self.config.drafter,
                    batch,
                    strategy.draft_depth,
                    strategy.tokens_to_verify,
                    avg_context,
                ) * self.slow_factor;
                if let Some(m) = self.manager.as_mut() {
                    m.record(
                        &strategy,
                        StepObservation {
                            elapsed_s: t,
                            accepted_tokens: (accept - 1.0) * batch as f64,
                            batch_size: batch,
                        },
                    );
                }
                self.metrics.observe_sd_step(accept);
                // Quantise for the trace recorder: at least the bonus token is
                // always produced, and the unary SD bitstream caps one step's
                // accept length at 63 tokens.
                self.sd_accepts.push(accept.round().clamp(1.0, 63.0) as u8);
                (t, accept, true)
            }
        };
        self.step = Some(PendingStep {
            work: StepWork::Decode {
                tokens_per_seq,
                speculative,
            },
            finish_s: now + duration,
            duration_s: duration,
        });
    }

    /// Drains the completed-request records accumulated so far.
    pub fn take_completed(&mut self) -> Vec<CompletedRequest> {
        std::mem::take(&mut self.completed)
    }

    /// Expected accept length (whole tokens, clamped to `1..=63`) of every
    /// speculative decode step this replica has executed, in step order.
    pub fn sd_accept_trace(&self) -> &[u8] {
        &self.sd_accepts
    }

    /// Requests dropped at admission.
    pub fn dropped(&self) -> usize {
        self.metrics.dropped() as usize
    }

    /// Ids of the requests dropped at admission (in drop order).
    pub fn dropped_ids(&self) -> &[u64] {
        &self.dropped_ids
    }

    /// Times this replica has crashed.
    pub fn crashes(&self) -> u64 {
        self.metrics.crashes()
    }

    /// Crash-drained requests re-delivered to this replica by the frontend.
    pub fn failovers(&self) -> u64 {
        self.metrics.failovers()
    }

    /// Largest KV-token footprint observed at a step start (post-preemption).
    pub fn peak_kv_tokens(&self) -> usize {
        self.metrics.peak_kv_tokens()
    }

    /// The metrics registry backing this replica's accounting.
    pub fn metrics(&self) -> &ReplicaMetrics {
        &self.metrics
    }

    /// KV capacity in blocks (0 under token accounting).
    pub fn kv_block_budget(&self) -> usize {
        self.ledger.as_ref().map_or(0, BlockLedger::capacity_blocks)
    }

    /// Largest number of KV blocks charged at a step start (0 under token
    /// accounting).
    pub fn peak_kv_blocks(&self) -> usize {
        self.ledger
            .as_ref()
            .map_or(0, BlockLedger::peak_in_use_blocks)
    }

    /// Pool accounting snapshot under paged accounting.
    pub fn pool_stats(&self) -> Option<PoolStats> {
        self.ledger.as_ref().map(BlockLedger::stats)
    }

    /// Fraction of admitted prompt tokens served from resident prefix blocks.
    pub fn prefix_hit_rate(&self) -> f64 {
        self.metrics.prefix_hit_rate()
    }

    /// Structural check of the block ledger: shared refcounts must equal the
    /// running entries referencing each prefix, charges must stay within
    /// capacity. `Ok` under token accounting.
    pub fn kv_pool_check(&self) -> Result<(), String> {
        match &self.ledger {
            Some(ledger) => {
                let expected_refs = self.running.iter().filter(|e| e.shared_tokens > 0).count();
                ledger.check_conservation(expected_refs)
            }
            None => Ok(()),
        }
    }

    /// Blocks that are neither free nor reclaimable: private footprints of
    /// running work plus shared groups still referenced. Zero after a full
    /// drain — the pool-leak assertion the chaos matrix enforces.
    pub fn kv_pool_leaked(&self) -> usize {
        match &self.ledger {
            Some(ledger) => {
                let referenced: usize = ledger
                    .shared_groups()
                    .iter()
                    .filter(|g| g.refs > 0)
                    .map(|g| g.blocks)
                    .sum();
                self.private_blocks_in_use(ledger)
                    + referenced
                    + ledger.inbound_blocks()
                    + ledger.outbound_blocks()
            }
            None => 0,
        }
    }

    /// Drains the prefilled sequences awaiting migration to the decode pool.
    pub fn take_handoffs(&mut self) -> Vec<MigratedEntry> {
        std::mem::take(&mut self.handoffs)
    }

    /// Blocks of `prefix_id` resident in this replica's prefix cache (0 under
    /// token accounting) — the affinity signal the cluster router uses.
    pub fn resident_prefix_blocks(&self, prefix_id: u64) -> usize {
        match &self.ledger {
            Some(ledger) if prefix_id != 0 => ledger.resident_blocks_of(prefix_id),
            _ => 0,
        }
    }

    /// Plans the landing of a migrated sequence on this replica without
    /// mutating anything: `Some(blocks)` is the inbound reservation to charge
    /// via [`Replica::reserve_inbound`], `None` means the migration does not
    /// fit right now. `pending_entries` counts migrations already bound for
    /// this replica (reserved or on the wire) so the running-batch cap holds.
    /// Mirrors the paged-admission arithmetic: worst case under conservative
    /// admission, actual footprint under optimistic admission.
    pub fn plan_inbound(&self, entry: &MigratedEntry, pending_entries: usize) -> Option<usize> {
        if !self.up {
            return None;
        }
        let ledger = self.ledger.as_ref()?;
        if self.running.len() + self.arriving.len() + pending_entries
            >= self.config.max_running_requests
        {
            return None;
        }
        let need_tokens = if self.config.preemption {
            entry.req.prompt_len + entry.generated.ceil() as usize
        } else {
            entry.req.prompt_len + self.config.max_output_tokens
        };
        let blocks = ledger.blocks_for(need_tokens);
        let charged = self.reserved_private_blocks(ledger)
            + ledger.shared_blocks()
            + ledger.inbound_blocks()
            + ledger.outbound_blocks();
        (charged + blocks <= ledger.capacity_blocks()).then_some(blocks)
    }

    /// Charges an inbound migration reservation (from [`Replica::plan_inbound`])
    /// while the transfer is on the wire.
    pub fn reserve_inbound(&mut self, blocks: usize) {
        self.ledger
            .as_mut()
            .expect("paged accounting")
            .reserve_inbound(blocks);
    }

    /// Releases an inbound reservation whose transfer was aborted. A crash
    /// already wiped the ledger, so this is only for a live destination losing
    /// its *source* mid-transfer.
    pub fn cancel_inbound(&mut self, blocks: usize) {
        self.ledger
            .as_mut()
            .expect("paged accounting")
            .cancel_inbound(blocks);
    }

    /// Releases the source-side outbound charge once its transfer lands.
    pub fn complete_outbound(&mut self, blocks: usize) {
        self.ledger
            .as_mut()
            .expect("paged accounting")
            .complete_outbound(blocks);
    }

    /// Restarts the step loop if the replica sits idle with work. A prefill
    /// replica that handed off its whole batch can go idle with a non-empty
    /// queue when admission is blocked by its own outbound charges; the
    /// cluster kicks it when a landed transfer (or an autoscaler undrain)
    /// frees that capacity, since no step-completion event would.
    pub fn kick(&mut self, now: f64) {
        if self.up && self.step.is_none() && self.has_work() {
            self.start_step(now);
        }
    }

    /// Lands a migrated sequence: it joins the batch at the next step boundary
    /// with zero recompute (`prefill_pending` stays false), converting the
    /// `reserved_blocks` charged at transfer start into its private footprint.
    pub fn deliver_migrated(&mut self, entry: MigratedEntry, reserved_blocks: usize, now: f64) {
        debug_assert!(self.up, "migrations only land on live replicas");
        let kv_tokens = entry.req.prompt_len + entry.generated.ceil() as usize;
        self.metrics.inc_migrations_in();
        // The admission event of a migrated sequence: zero novel tokens to
        // compute, the whole context arrives materialised over the wire.
        record(
            ObsEvent::instant(now, self.track(), EventKind::Admission, entry.req.id)
                .with_args(0.0, kv_tokens as f64),
        );
        let running = RunningEntry {
            req: entry.req,
            generated: entry.generated,
            first_token_s: None,
            admitted_s: entry.admitted_s,
            preemptions: entry.preemptions,
            prefill_pending: false,
            admit_seq: self.admit_seq,
            shared_tokens: 0,
        };
        self.admit_seq += 1;
        self.arriving.push((running, reserved_blocks));
        if self.step.is_none() {
            self.start_step(now);
        }
    }

    /// Final accounting for this replica; `makespan_s` normalises utilisation.
    pub fn stats(&self, makespan_s: f64) -> ReplicaStats {
        let busy_s = self.metrics.busy_s();
        ReplicaStats {
            replica: self.index,
            completed: self.metrics.completed() as usize,
            dropped: self.metrics.dropped() as usize,
            busy_s,
            utilization: if makespan_s > 0.0 {
                (busy_s / makespan_s).min(1.0)
            } else {
                0.0
            },
            sd_step_fraction: self.metrics.sd_step_fraction(),
            mean_accept_length: self.metrics.mean_accept_length_or(1.0),
            preemptions: self.metrics.preemptions(),
            failovers: self.metrics.failovers(),
            crashes: self.metrics.crashes(),
            peak_running: self.metrics.peak_running(),
            peak_kv_tokens: self.metrics.peak_kv_tokens(),
            kv_block_budget: self.kv_block_budget(),
            peak_kv_blocks: self.peak_kv_blocks(),
            pool_utilization: self.ledger.as_ref().map_or(0.0, BlockLedger::utilization),
            prefix_hit_rate: self.prefix_hit_rate(),
            migrations_out: self.metrics.migrations_out(),
            migrations_in: self.metrics.migrations_in(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlt_gpusim::{GpuType, LlmCostModel};
    use tlt_model::ModelSpec;

    fn config() -> ServeConfig {
        ServeConfig::new(
            LlmCostModel::new(ModelSpec::qwen2_5_7b(), GpuType::H100.spec(), 1),
            1,
        )
    }

    fn request(id: u64, arrival_s: f64, prompt: usize, output: usize) -> ServeRequest {
        ServeRequest {
            id,
            arrival_s,
            prompt_len: prompt,
            output_len: output,
            prefix_id: 0,
            prefix_len: 0,
        }
    }

    fn drain(replica: &mut Replica) -> f64 {
        let mut now = 0.0;
        let mut guard = 0;
        while replica.has_work() {
            now = replica.next_event_s();
            replica.on_step_complete(now);
            guard += 1;
            assert!(guard < 1_000_000, "runaway replica simulation");
        }
        now
    }

    #[test]
    fn single_request_runs_prefill_then_decode_to_completion() {
        let mut replica = Replica::new(&config(), 0);
        replica.enqueue(request(0, 0.0, 512, 16), 0.0);
        let end = drain(&mut replica);
        let completed = replica.take_completed();
        assert_eq!(completed.len(), 1);
        let r = completed[0];
        assert_eq!(r.output_len, 16);
        assert!(r.first_token_s > 0.0, "prefill takes time");
        assert!(r.finish_s > r.first_token_s);
        assert!((r.finish_s - end).abs() < 1e-12);
        // 16 vanilla decode steps at ~5 ms each: finish within a second.
        assert!(r.finish_s < 1.0, "finish at {}", r.finish_s);
    }

    #[test]
    fn ttft_includes_queueing_behind_the_running_batch() {
        let mut replica = Replica::new(&config(), 0);
        replica.enqueue(request(0, 0.0, 512, 64), 0.0);
        // Second request arrives while the first is mid-flight.
        let t1 = replica.next_event_s();
        replica.on_step_complete(t1);
        replica.enqueue(request(1, t1, 512, 8), t1);
        drain(&mut replica);
        let completed = replica.take_completed();
        assert_eq!(completed.len(), 2);
        let second = completed.iter().find(|r| r.id == 1).expect("request 1");
        assert!(second.ttft_s() > 0.0);
        assert!(second.admitted_s >= t1);
    }

    #[test]
    fn conservative_admission_respects_kv_budget() {
        let mut cfg = config();
        // Shrink the budget so only a handful of worst-case requests fit at once.
        cfg.kv_memory_fraction = 0.25;
        cfg.max_output_tokens = 16_384;
        let per_request = 512 + cfg.max_output_tokens;
        let fit = cfg.kv_token_budget() / per_request;
        assert!(
            (1..64).contains(&fit),
            "test needs a tight budget, fit={fit}"
        );
        let mut replica = Replica::new(&cfg, 0);
        for i in 0..(fit + 8) as u64 {
            replica.enqueue(request(i, 0.0, 512, 4), 0.0);
        }
        // After the first admission round, at most `fit` requests run at once.
        assert!(replica.running.len() <= fit);
        drain(&mut replica);
        assert_eq!(replica.take_completed().len(), fit + 8);
        assert!(replica.metrics().peak_running() <= fit);
    }

    #[test]
    fn output_len_is_clamped_to_the_deployment_cap() {
        let mut cfg = config();
        cfg.max_output_tokens = 32;
        let mut replica = Replica::new(&cfg, 0);
        // Asks for far more tokens than the cap allows.
        replica.enqueue(request(0, 0.0, 128, 10_000), 0.0);
        drain(&mut replica);
        let completed = replica.take_completed();
        assert_eq!(completed.len(), 1);
        assert_eq!(completed[0].output_len, 32);
        assert!(replica.peak_kv_tokens() <= 128 + 32);
    }

    #[test]
    fn impossible_request_is_dropped_not_wedged() {
        let mut cfg = config();
        cfg.kv_memory_fraction = 0.25;
        cfg.max_output_tokens = 16_384;
        let budget = cfg.kv_token_budget();
        let mut replica = Replica::new(&cfg, 0);
        // A prompt larger than the whole budget can never be admitted.
        replica.enqueue(request(0, 0.0, budget + 1, 4), 0.0);
        replica.enqueue(request(1, 0.0, 512, 4), 0.0);
        drain(&mut replica);
        assert_eq!(replica.dropped(), 1);
        let completed = replica.take_completed();
        assert_eq!(completed.len(), 1);
        assert_eq!(completed[0].id, 1);
    }

    #[test]
    fn preemption_evicts_most_recent_first() {
        // Pins the eviction policy: victims are chosen by descending admission
        // sequence, survivors keep their batch order, and the queue front holds
        // the victims in ascending admission order (so the earliest-admitted
        // victim is re-admitted first).
        let mut replica = Replica::new(&config().with_preemption(), 0);
        replica.kv_budget = 3_000;
        for (seq, id) in [(0u64, 10u64), (1, 11), (2, 12), (3, 13)] {
            replica.running.push(RunningEntry {
                req: request(id, 0.0, 1_000, 64),
                generated: 0.0,
                first_token_s: Some(0.5),
                admitted_s: 0.1,
                preemptions: 0,
                prefill_pending: false,
                admit_seq: seq,
                shared_tokens: 0,
            });
        }
        // 4 x 1000 KV tokens against a 3000 budget: exactly one eviction, and it
        // must be the most recently admitted entry.
        replica.preempt_until_fitting(0.0);
        assert_eq!(replica.running.len(), 3);
        let seqs: Vec<u64> = replica.running.iter().map(|e| e.admit_seq).collect();
        assert_eq!(seqs, vec![0, 1, 2], "survivors keep batch order");
        assert_eq!(replica.queue.len(), 1);
        assert_eq!(replica.queue[0].req.id, 13);
        assert_eq!(replica.queue[0].preemptions, 1);

        // Tighten the budget: two more evictions (seq 2 then seq 1); the queue
        // front ends up ascending by admission sequence, ahead of request 13.
        replica.kv_budget = 1_000;
        replica.preempt_until_fitting(0.0);
        assert_eq!(replica.running.len(), 1);
        assert_eq!(replica.running[0].admit_seq, 0);
        let ids: Vec<u64> = replica.queue.iter().map(|e| e.req.id).collect();
        assert_eq!(ids, vec![11, 12, 13]);
        assert_eq!(replica.metrics().preemptions(), 3);
    }

    #[test]
    fn preemption_evicts_and_resumes_under_kv_pressure() {
        let mut cfg = config().with_preemption();
        cfg.kv_memory_fraction = 0.25;
        // Optimistic admission: everything fits at prompt size, but decoding to
        // 16K tokens each must overflow the budget and trigger evictions.
        cfg.max_output_tokens = 16_384;
        let budget = cfg.kv_token_budget();
        let n = (budget / 5_000).max(4) as u64;
        let mut replica = Replica::new(&cfg, 0);
        for i in 0..n {
            replica.enqueue(request(i, 0.0, 1_024, 16_384), 0.0);
        }
        drain(&mut replica);
        let completed = replica.take_completed();
        assert_eq!(
            completed.len(),
            n as usize,
            "all requests finish eventually"
        );
        assert!(
            replica.metrics().preemptions() > 0,
            "KV pressure must trigger preemption"
        );
        assert!(completed.iter().any(|r| r.preemptions > 0));
    }

    #[test]
    fn adaptive_sd_speeds_up_a_small_batch() {
        use tlt_rollout::SdManagerConfig;
        let requests: Vec<ServeRequest> = (0..4).map(|i| request(i, 0.0, 512, 256)).collect();
        let run = |cfg: &ServeConfig| {
            let mut replica = Replica::new(cfg, 0);
            for r in &requests {
                replica.enqueue(*r, 0.0);
            }
            drain(&mut replica)
        };
        let vanilla_end = run(&config());
        let sd_end = run(&config().with_sd_mode(SdMode::Adaptive {
            config: SdManagerConfig::default(),
        }));
        assert!(
            sd_end < vanilla_end * 0.7,
            "SD should speed up small batches: {sd_end} vs {vanilla_end}"
        );
    }

    #[test]
    fn zero_token_request_is_clamped_and_still_prefills() {
        // Regression: a zero-length prompt used to be admitted with a 0-token
        // prefill, skipping the prefill step entirely and leaving the entry
        // `prefill_pending` through its whole decode. Both dimensions now clamp
        // to one token, so the request goes through a real prefill and completes
        // exactly once.
        let mut replica = Replica::new(&config(), 0);
        replica.enqueue(request(0, 0.0, 0, 0), 0.0);
        drain(&mut replica);
        let completed = replica.take_completed();
        assert_eq!(completed.len(), 1);
        assert_eq!(completed[0].prompt_len, 1);
        assert_eq!(completed[0].output_len, 1);
        assert!(completed[0].first_token_s > 0.0, "a prefill step ran");
        assert!(completed[0].finish_s >= completed[0].first_token_s);
    }

    #[test]
    fn preemption_during_prefill_returns_victim_to_queue_cleanly() {
        // Regression: a victim evicted while its admitting prefill is still
        // pending must go back to the queue with no first-token timestamp (it
        // never produced one) and its original admission time preserved, so it
        // re-prefills from scratch on re-admission.
        let mut replica = Replica::new(&config().with_preemption(), 0);
        replica.kv_budget = 1_500;
        for (seq, id) in [(0u64, 20u64), (1, 21)] {
            replica.running.push(RunningEntry {
                req: request(id, 0.0, 1_000, 64),
                generated: 0.0,
                first_token_s: None,
                admitted_s: 0.25,
                preemptions: 0,
                prefill_pending: seq == 1,
                admit_seq: seq,
                shared_tokens: 0,
            });
        }
        replica.preempt_until_fitting(0.0);
        assert_eq!(replica.running.len(), 1);
        assert_eq!(replica.running[0].req.id, 20);
        assert_eq!(replica.queue.len(), 1);
        let victim = &replica.queue[0];
        assert_eq!(victim.req.id, 21);
        assert_eq!(victim.first_token_s, None);
        assert_eq!(victim.admitted_s, Some(0.25));
        assert_eq!(victim.preemptions, 1);
        assert_eq!(victim.prefill_tokens(), 1_000, "re-prefills from scratch");
    }

    #[test]
    fn restart_with_a_non_empty_queue_starts_work_immediately() {
        // Regression: requests enqueued while the replica is down must start as
        // soon as the replica restarts, not wait for the next enqueue.
        let mut replica = Replica::new(&config(), 0);
        let drained = replica.crash(0.0);
        assert!(drained.is_empty());
        replica.enqueue(request(0, 0.5, 256, 8), 0.5);
        assert_eq!(
            replica.next_event_s(),
            f64::MAX,
            "down replica schedules nothing"
        );
        replica.restart(1.0);
        assert!(
            replica.next_event_s() < f64::MAX,
            "restart kicks the queued work"
        );
        drain(&mut replica);
        let completed = replica.take_completed();
        assert_eq!(completed.len(), 1);
        assert!(completed[0].admitted_s >= 1.0);
    }

    #[test]
    fn crash_drains_everything_preserving_progress_and_order() {
        let mut replica = Replica::new(&config(), 0);
        replica.enqueue(request(0, 0.0, 256, 64), 0.0);
        replica.enqueue(request(1, 0.0, 256, 64), 0.0);
        // Three events: prefill of request 0, prefill of request 1 (admitted
        // after the first prefill), then one decode step committing a token to
        // both.
        let t1 = replica.next_event_s();
        replica.on_step_complete(t1);
        let t2 = replica.next_event_s();
        replica.on_step_complete(t2);
        let t3 = replica.next_event_s();
        replica.on_step_complete(t3);
        let drained = replica.crash(t3 + 0.001);
        assert!(!replica.is_up());
        assert_eq!(replica.crashes(), 1);
        assert_eq!(drained.len(), 2);
        assert_eq!(
            drained.iter().map(|f| f.req.id).collect::<Vec<_>>(),
            vec![0, 1],
            "running batch drains in admission order"
        );
        let first_tokens = [Some(t1), Some(t2)];
        for (fo, expected_first) in drained.iter().zip(first_tokens) {
            assert_eq!(fo.generated, 1.0, "streamed tokens keep their credit");
            assert_eq!(fo.first_token_s, expected_first);
            assert_eq!(fo.preemptions, 1, "crash counts as a forced recompute");
        }
        // Failover onto a fresh replica completes both with original timestamps.
        let mut survivor = Replica::new(&config(), 1);
        for fo in drained {
            survivor.enqueue_failover(fo, t3 + 0.001);
        }
        drain(&mut survivor);
        let completed = survivor.take_completed();
        assert_eq!(completed.len(), 2);
        for (r, expected_first) in completed.iter().zip(first_tokens) {
            assert_eq!(
                Some(r.first_token_s),
                expected_first,
                "original first-token time preserved"
            );
            assert_eq!(r.output_len, 64);
            assert_eq!(r.preemptions, 1);
        }
    }

    #[test]
    fn crash_during_prefill_drains_pending_entries_without_first_token() {
        let mut replica = Replica::new(&config(), 0);
        replica.enqueue(request(7, 0.0, 512, 16), 0.0);
        // The prefill step is in flight; crash before it completes.
        assert!(replica.next_event_s() < f64::MAX);
        let drained = replica.crash(0.001);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].first_token_s, None);
        assert_eq!(drained[0].generated, 0.0);
        assert_eq!(replica.next_event_s(), f64::MAX, "in-flight step aborted");
    }

    #[test]
    fn slow_factor_stretches_the_whole_run_proportionally() {
        let run = |factor: f64| {
            let mut replica = Replica::new(&config(), 0);
            replica.set_slow_factor(factor);
            replica.enqueue(request(0, 0.0, 512, 32), 0.0);
            drain(&mut replica)
        };
        let normal = run(1.0);
        let slowed = run(3.0);
        assert!(
            (slowed - 3.0 * normal).abs() < 1e-9 * slowed.max(1.0),
            "3x straggler: {slowed} vs 3 x {normal}"
        );
    }

    #[test]
    fn optimistic_admission_drops_requests_that_can_never_fit_alone() {
        // Regression: under optimistic admission a request whose prompt fits but
        // whose full footprint exceeds the entire budget used to be admitted and
        // then grow past the KV budget with nothing left to preempt.
        let mut cfg = config().with_preemption();
        cfg.kv_memory_fraction = 0.25;
        cfg.max_output_tokens = usize::MAX >> 1;
        let budget = cfg.kv_token_budget();
        let mut replica = Replica::new(&cfg, 0);
        replica.enqueue(request(0, 0.0, 512, budget + 1), 0.0);
        replica.enqueue(request(1, 0.0, 512, 128), 0.0);
        drain(&mut replica);
        assert_eq!(replica.dropped(), 1);
        assert_eq!(replica.dropped_ids(), &[0]);
        let completed = replica.take_completed();
        assert_eq!(completed.len(), 1);
        assert_eq!(completed[0].id, 1);
        assert!(replica.peak_kv_tokens() <= budget);
    }

    fn prefixed_request(id: u64, prompt: usize, prefix: usize, output: usize) -> ServeRequest {
        ServeRequest {
            id,
            arrival_s: 0.0,
            prompt_len: prompt,
            output_len: output,
            prefix_id: 1,
            prefix_len: prefix,
        }
    }

    #[test]
    fn shared_prefix_admits_strictly_more_at_a_fixed_block_budget() {
        // The capacity win, pinned: at the same block budget, a workload whose
        // requests share a system prompt admits strictly more concurrent
        // requests than one with disjoint prompts — and never exceeds the
        // pool. (Conservative admission; shared blocks charged once.)
        let mut cfg = config().with_paged_kv(16);
        cfg.kv_memory_fraction = 0.25;
        cfg.max_output_tokens = 2048;
        let budget = cfg.kv_block_budget();
        assert!(
            budget > 256,
            "test needs a budget over 256 blocks: {budget}"
        );

        let run = |shared: bool| {
            let mut replica = Replica::new(&cfg, 0);
            let n = (budget / 64 + 16) as u64;
            for i in 0..n {
                let req = if shared {
                    prefixed_request(i, 2048, 2048, 64)
                } else {
                    request(i, 0.0, 2048, 64)
                };
                replica.enqueue(req, 0.0);
            }
            drain(&mut replica);
            assert_eq!(replica.take_completed().len(), n as usize);
            assert!(
                replica.peak_kv_blocks() <= replica.kv_block_budget(),
                "pool exceeded: {} > {}",
                replica.peak_kv_blocks(),
                replica.kv_block_budget()
            );
            assert!(replica.kv_pool_check().is_ok());
            assert_eq!(replica.kv_pool_leaked(), 0, "blocks leaked after drain");
            (replica.metrics().peak_running(), replica.prefix_hit_rate())
        };
        let (disjoint_admitted, disjoint_hits) = run(false);
        let (shared_admitted, shared_hits) = run(true);
        assert!(
            shared_admitted > disjoint_admitted,
            "sharing must admit strictly more: {shared_admitted} vs {disjoint_admitted}"
        );
        assert_eq!(disjoint_hits, 0.0);
        assert!(
            shared_hits > 0.0,
            "later admissions hit the resident prefix"
        );
    }

    #[test]
    fn resident_prefix_shortens_the_second_requests_prefill() {
        // First request of a prefix group pays the full prefill and leaves the
        // blocks resident; the next request prefills only its novel tokens.
        let cfg = config().with_paged_kv(16);
        let mut replica = Replica::new(&cfg, 0);
        replica.enqueue(prefixed_request(0, 1024, 1024, 4), 0.0);
        let t_first_prefill = replica.next_event_s();
        drain(&mut replica);
        let cold = replica.take_completed();
        assert_eq!(cold.len(), 1);

        // Same replica, same prompt shape: the prefix is now resident.
        let arrive = replica.next_event_s().min(10.0);
        replica.enqueue(prefixed_request(1, 1024, 1024, 4), arrive);
        let warm_prefill = replica.next_event_s() - arrive;
        drain(&mut replica);
        let warm = replica.take_completed();
        assert_eq!(warm.len(), 1);
        assert!(
            warm_prefill < (t_first_prefill - 0.0) * 0.5,
            "warm prefill {warm_prefill} should be far below cold {t_first_prefill}"
        );
        assert!(replica.prefix_hit_rate() > 0.0);
        let stats = replica.stats(10.0);
        assert!(stats.pool_utilization > 0.0 && stats.pool_utilization <= 1.0);
        assert!(stats.prefix_hit_rate > 0.0);
    }

    #[test]
    fn growing_prefix_charges_the_extension_and_reuses_only_resident_blocks() {
        // Regression: prefix lengths are clamped per request, so one group id
        // can carry different full-block counts. A longer prefix must charge
        // (and prefill) the blocks beyond what is resident — reusing only the
        // materialised part — instead of treating the whole prefix as cached.
        let cfg = config().with_paged_kv(16);
        let mut replica = Replica::new(&cfg, 0);
        replica.enqueue(prefixed_request(0, 256, 256, 4), 0.0);
        drain(&mut replica);
        assert_eq!(replica.take_completed().len(), 1);
        assert_eq!(
            replica.pool_stats().expect("paged").in_use_blocks,
            16,
            "short prefix leaves 16 blocks resident"
        );

        replica.enqueue(prefixed_request(1, 768, 768, 4), 100.0);
        drain(&mut replica);
        assert_eq!(replica.take_completed().len(), 1);
        // Only the resident 256 tokens were reusable; the 512-token extension
        // was computed by the second request's own prefill.
        let expected_hit = 256.0 / (256.0 + 768.0);
        assert!(
            (replica.prefix_hit_rate() - expected_hit).abs() < 1e-9,
            "hit rate {} should count only resident blocks ({expected_hit})",
            replica.prefix_hit_rate()
        );
        assert_eq!(
            replica.pool_stats().expect("paged").in_use_blocks,
            48,
            "the group grew to the longer prefix"
        );
        assert!(replica.kv_pool_check().is_ok());
    }

    #[test]
    fn prefix_cache_survives_steps_without_pressure_under_preemption() {
        // Regression: the resident prefix cache is reclaimed only under
        // actual pool pressure — an idle, nearly empty replica must not wipe
        // it at every step start just because preemption is enabled.
        let cfg = config().with_preemption().with_paged_kv(16);
        let mut replica = Replica::new(&cfg, 0);
        replica.enqueue(prefixed_request(0, 256, 256, 4), 0.0);
        drain(&mut replica);
        assert_eq!(
            replica.pool_stats().expect("paged").in_use_blocks,
            16,
            "group stays resident with no pressure"
        );
        replica.enqueue(prefixed_request(1, 256, 256, 4), 50.0);
        drain(&mut replica);
        assert!(
            replica.prefix_hit_rate() > 0.0,
            "the second request hits the surviving cache"
        );
    }

    #[test]
    fn paged_preemption_under_pressure_completes_everything_within_the_pool() {
        let mut cfg = config().with_preemption().with_paged_kv(16);
        cfg.kv_memory_fraction = 0.25;
        cfg.max_output_tokens = 16_384;
        let budget = cfg.kv_block_budget();
        let n = ((budget * 16) / 5_000).max(4) as u64;
        let mut replica = Replica::new(&cfg, 0);
        for i in 0..n {
            let mut req = prefixed_request(i, 1_024, 512, 16_384);
            req.arrival_s = 0.0;
            replica.enqueue(req, 0.0);
        }
        drain(&mut replica);
        let completed = replica.take_completed();
        assert_eq!(completed.len(), n as usize, "all requests finish");
        assert!(
            replica.metrics().preemptions() > 0,
            "KV pressure must preempt"
        );
        assert!(replica.peak_kv_blocks() <= replica.kv_block_budget());
        assert!(replica.kv_pool_check().is_ok());
        assert_eq!(replica.kv_pool_leaked(), 0);
    }

    #[test]
    fn crash_frees_every_block_including_the_prefix_cache() {
        let cfg = config().with_paged_kv(16);
        let mut replica = Replica::new(&cfg, 0);
        replica.enqueue(prefixed_request(0, 1024, 1024, 64), 0.0);
        replica.enqueue(prefixed_request(1, 1024, 1024, 64), 0.0);
        let t = replica.next_event_s();
        replica.on_step_complete(t);
        assert!(replica.pool_stats().expect("paged").in_use_blocks > 0);
        let drained = replica.crash(t + 0.01);
        assert_eq!(drained.len(), 2);
        assert_eq!(
            replica.pool_stats().expect("paged").in_use_blocks,
            0,
            "crash frees private and resident blocks alike"
        );
        assert_eq!(replica.kv_pool_leaked(), 0);
        assert!(replica.kv_pool_check().is_ok());
    }

    #[test]
    fn replica_is_deterministic() {
        use tlt_rollout::SdManagerConfig;
        let cfg = config().with_sd_mode(SdMode::Adaptive {
            config: SdManagerConfig::default(),
        });
        let run = || {
            let mut replica = Replica::new(&cfg, 3);
            for i in 0..16 {
                replica.enqueue(request(i, i as f64 * 0.01, 256, 64), i as f64 * 0.01);
                while replica.next_event_s() < (i + 1) as f64 * 0.01 {
                    let t = replica.next_event_s();
                    replica.on_step_complete(t);
                }
            }
            let end = drain(&mut replica);
            (end, replica.take_completed())
        };
        let (end_a, completed_a) = run();
        let (end_b, completed_b) = run();
        assert_eq!(end_a, end_b);
        assert_eq!(completed_a, completed_b);
    }

    #[test]
    fn inbound_migration_reservation_blocks_admission_until_released() {
        // Pinned regression for in-flight-migration-aware admission: blocks
        // reserved for a transfer still on the wire must be invisible to the
        // admission planner, so a landing mid-step can never over-commit the
        // pool. Before the fix, `plan_paged_admission` ignored the inbound
        // charge and handed the same blocks to a queued request.
        let cfg = config().with_paged_kv(16).with_preemption();
        let mut replica = Replica::new(&cfg, 0);
        let budget = replica.kv_block_budget();
        assert!(budget > 8, "test needs a few blocks of headroom");
        // A migration big enough to leave fewer blocks than the next request
        // needs (under optimistic admission a 64+16 request takes 5 blocks).
        let inbound = MigratedEntry {
            req: request(100, 0.0, (budget - 2) * 16, 16),
            generated: 0.0,
            admitted_s: 0.0,
            preemptions: 0,
            source_blocks: budget - 2,
            wire_blocks: budget - 2,
        };
        let reserved = replica
            .plan_inbound(&inbound, 0)
            .expect("migration fits an empty replica");
        assert_eq!(reserved, budget - 2);
        replica.reserve_inbound(reserved);
        replica.enqueue(request(0, 0.0, 64, 16), 0.0);
        let load = replica.load();
        assert_eq!(
            (load.running, load.queued),
            (0, 1),
            "the reservation must block admission"
        );
        // A second migration that would overflow must be refused outright.
        assert_eq!(replica.plan_inbound(&inbound, 0), None);
        // Releasing the reservation (the transfer aborted) frees the blocks.
        replica.cancel_inbound(reserved);
        replica.enqueue(request(1, 0.1, 64, 16), 0.1);
        let load = replica.load();
        assert_eq!((load.running, load.queued), (2, 0));
        drain(&mut replica);
        assert_eq!(replica.kv_pool_leaked(), 0);
        assert_eq!(replica.take_completed().len(), 2);
    }

    #[test]
    fn prefill_only_replica_hands_off_after_prefill() {
        let cfg = config().with_paged_kv(16);
        let mut replica = Replica::new(&cfg, 0);
        replica.set_prefill_only(true);
        replica.enqueue(request(0, 0.0, 256, 64), 0.0);
        let t = replica.next_event_s();
        assert!(t.is_finite());
        replica.on_step_complete(t);
        let handoffs = replica.take_handoffs();
        assert_eq!(handoffs.len(), 1);
        let m = &handoffs[0];
        assert_eq!(m.req.id, 0);
        assert_eq!(m.wire_blocks, 256usize.div_ceil(16));
        assert_eq!(m.source_blocks, m.wire_blocks, "no shared prefix");
        // The handed-off KV stays charged as outbound until the wire copy
        // lands; completing the transfer frees it.
        let stats = replica.pool_stats().expect("paged");
        assert_eq!(stats.in_use_blocks, m.source_blocks);
        assert!(replica.take_completed().is_empty(), "prefill never decodes");
        replica.complete_outbound(m.source_blocks);
        assert_eq!(replica.pool_stats().expect("paged").in_use_blocks, 0);
        assert_eq!(replica.kv_pool_leaked(), 0);
    }

    #[test]
    fn migrated_entry_decodes_with_zero_recompute() {
        let cfg = config().with_paged_kv(16);
        let mut replica = Replica::new(&cfg, 0);
        let entry = MigratedEntry {
            req: request(7, 0.0, 256, 32),
            generated: 0.0,
            admitted_s: 0.05,
            preemptions: 0,
            source_blocks: 16,
            wire_blocks: 16,
        };
        let reserved = replica.plan_inbound(&entry, 0).expect("fits");
        replica.reserve_inbound(reserved);
        replica.deliver_migrated(entry, reserved, 0.2);
        // The first step is a decode, not a prefill: zero recompute.
        let t1 = replica.next_event_s();
        assert!(t1.is_finite());
        let end = drain(&mut replica);
        let completed = replica.take_completed();
        assert_eq!(completed.len(), 1);
        let r = &completed[0];
        assert_eq!(r.preemptions, 0);
        assert_eq!(r.admitted_s, 0.05, "prefill-side admission time is kept");
        assert_eq!(
            r.first_token_s, t1,
            "first token at the first decode commit"
        );
        assert!(end > 0.2);
        assert_eq!(replica.kv_pool_leaked(), 0);
        assert!(replica.kv_pool_check().is_ok());
    }
}
