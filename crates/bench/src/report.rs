//! Minimal text-table reporter used by the experiments binary and benches, plus
//! the [`Report`] collector that exports every table as machine-readable JSON so
//! the bench trajectory can be tracked across PRs.

use crate::json::JsonValue;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are already formatted strings).
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n=== {} ===\n", self.title));
        let format_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    format!(
                        "{:width$}",
                        c,
                        width = widths.get(i).copied().unwrap_or(c.len())
                    )
                })
                .collect::<Vec<_>>()
                .join(" | ")
        };
        out.push_str(&format_row(&self.header));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders and prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Exports the table as JSON: `{title, header, rows}` with cells typed as
    /// numbers when they parse as one.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("title", JsonValue::string(&self.title)),
            (
                "header",
                JsonValue::Array(self.header.iter().map(JsonValue::string).collect()),
            ),
            (
                "rows",
                JsonValue::Array(
                    self.rows
                        .iter()
                        .map(|row| {
                            JsonValue::Array(row.iter().map(|c| JsonValue::cell(c)).collect())
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Collects every table an experiments run produces: prints each one as it
/// arrives and can export the whole run as a JSON document afterwards.
#[derive(Debug, Clone, Default)]
pub struct Report {
    tables: Vec<Table>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Prints the table and records it for JSON export.
    pub fn add(&mut self, table: Table) {
        table.print();
        self.tables.push(table);
    }

    /// Number of recorded tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Exports the run as `{"tables": [...]}`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![(
            "tables",
            JsonValue::Array(self.tables.iter().map(Table::to_json).collect()),
        )])
    }

    /// Writes the JSON document to `path` (with a trailing newline).
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, format!("{}\n", self.to_json()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_exports_typed_json() {
        let mut t = Table::new("T", &["name", "value"]);
        t.add_row(vec!["alpha".into(), "1.5".into()]);
        t.add_row(vec!["beta".into(), "2.00x".into()]);
        let json = t.to_json().to_string();
        assert_eq!(
            json,
            "{\"title\":\"T\",\"header\":[\"name\",\"value\"],\
             \"rows\":[[\"alpha\",1.5],[\"beta\",\"2.00x\"]]}"
        );
    }

    #[test]
    fn report_collects_tables_and_exports() {
        let mut report = Report::new();
        let mut t = Table::new("only", &["a"]);
        t.add_row(vec!["7".into()]);
        report.add(t);
        assert_eq!(report.num_tables(), 1);
        let json = report.to_json().to_string();
        assert!(json.starts_with("{\"tables\":["));
        assert!(json.contains("\"only\""));
    }

    #[test]
    fn table_renders_all_rows_and_headers() {
        let mut t = Table::new("Demo", &["a", "long header", "c"]);
        t.add_row(vec!["1".into(), "2".into(), "3".into()]);
        t.add_row(vec!["x".into(), "y".into(), "zzzz".into()]);
        let rendered = t.render();
        assert!(rendered.contains("Demo"));
        assert!(rendered.contains("long header"));
        assert!(rendered.contains("zzzz"));
        assert_eq!(t.num_rows(), 2);
    }
}
