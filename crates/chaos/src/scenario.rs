//! The scenario DSL: composable fault schedules over a serving deployment.
//!
//! A [`Scenario`] is a pure value — a workload (seeded Poisson arrivals), a
//! deployment shape, and a time-ordered list of [`FaultEvent`]s — built through
//! [`ScenarioBuilder`]. Identical scenarios replay identically; the pinned
//! [`pinned_matrix`] is the repository's standing chaos suite.

use serde::Serialize;
use tlt_serve::BalancerPolicy;
use tlt_workload::{
    generate_arrivals, merge_arrival_streams, shift_arrivals, ArrivalConfig, LengthDistribution,
    RateCurve, RequestArrival, SharedPrefixSpec,
};

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FaultKind {
    /// Kill a replica: its in-flight step is lost and every held request fails
    /// over to the survivors (or the orphan buffer if none are up).
    ReplicaCrash {
        /// Which replica dies.
        replica: usize,
    },
    /// Bring a crashed replica back; orphaned requests are re-delivered.
    ReplicaRestart {
        /// Which replica restarts.
        replica: usize,
    },
    /// Degrade a replica's step durations by a multiplicative factor.
    SlowReplica {
        /// Which replica becomes a straggler.
        replica: usize,
        /// Step-duration multiplier (> 1.0 is slower).
        factor: f64,
    },
    /// Preempt any ongoing drafter-training session for rollout work; the
    /// training side commits a fresh drafter checkpoint on the way out.
    TrainingPreempt,
    /// Deliver a corrupt drafter checkpoint (bit-flipped and truncated
    /// variants); the serving drafter must reject it and keep the last good.
    CheckpointCorrupt,
    /// Deliver a stale drafter checkpoint (not newer than the live drafter);
    /// it must be rejected as stale.
    CheckpointStale,
    /// Inject a burst of extra arrivals at this point in the timeline.
    ArrivalStorm {
        /// Burst arrival rate (requests per second).
        burst_rps: f64,
        /// Burst duration in seconds.
        duration_s: f64,
    },
}

impl FaultKind {
    /// Short display label.
    pub fn label(&self) -> String {
        match self {
            FaultKind::ReplicaCrash { replica } => format!("crash(r{replica})"),
            FaultKind::ReplicaRestart { replica } => format!("restart(r{replica})"),
            FaultKind::SlowReplica { replica, factor } => {
                format!("slow(r{replica},x{factor})")
            }
            FaultKind::TrainingPreempt => "preempt-training".to_string(),
            FaultKind::CheckpointCorrupt => "ckpt-corrupt".to_string(),
            FaultKind::CheckpointStale => "ckpt-stale".to_string(),
            FaultKind::ArrivalStorm {
                burst_rps,
                duration_s,
            } => format!("storm({burst_rps}rps,{duration_s}s)"),
        }
    }
}

/// A fault scheduled at a point on the simulated timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultEvent {
    /// Simulated time the fault fires, in seconds.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A complete chaos scenario: deployment, workload, and fault schedule.
#[derive(Debug, Clone, Serialize)]
pub struct Scenario {
    /// Scenario name (unique within a matrix).
    pub name: String,
    /// Seed for the arrival stream, replica tuners, and the token-level
    /// losslessness probe.
    pub seed: u64,
    /// Number of replicas behind the frontend.
    pub replicas: usize,
    /// Base arrival rate in requests per second.
    pub rps: f64,
    /// Arrival horizon in simulated seconds.
    pub horizon_s: f64,
    /// Request routing policy.
    pub balancer: BalancerPolicy,
    /// Whether the replicas run the adaptive SD manager (vanilla decoding
    /// otherwise).
    pub adaptive_sd: bool,
    /// Optimistic KV admission with preemption (conservative otherwise).
    pub preemption: bool,
    /// Shared system prompt carried by a fraction of the arrivals (exercises
    /// shared-block accounting on the paged KV pool under faults).
    pub prefix: Option<SharedPrefixSpec>,
    /// Fault schedule, sorted by time.
    pub faults: Vec<FaultEvent>,
    /// Inject a synthetic `postmortem-probe` invariant violation at the end of
    /// the run (self-test of the flight-recorder postmortem path; never set in
    /// the pinned matrix).
    pub probe_violation: bool,
}

impl Scenario {
    /// Starts building a scenario with sane defaults: 2 replicas,
    /// join-shortest-queue, 6 req/s over 10 s, vanilla decoding, conservative
    /// admission, no faults.
    pub fn builder(name: &str) -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Scenario {
                name: name.to_string(),
                seed: 2026,
                replicas: 2,
                rps: 6.0,
                horizon_s: 10.0,
                balancer: BalancerPolicy::JoinShortestQueue,
                adaptive_sd: false,
                preemption: false,
                prefix: None,
                faults: Vec::new(),
                probe_violation: false,
            },
        }
    }

    /// The complete arrival stream: the base Poisson stream merged with every
    /// scheduled storm burst, re-indexed into one timeline.
    pub fn arrival_stream(&self) -> Vec<RequestArrival> {
        let lengths = LengthDistribution::LongTailMixture {
            mu: 4.0,
            sigma: 0.8,
            truncation_mass: 0.02,
            max_len: 256,
        };
        let base = generate_arrivals(&ArrivalConfig {
            curve: RateCurve::Constant { rps: self.rps },
            horizon_s: self.horizon_s,
            prompt_len_range: (64, 192),
            output_lengths: lengths.clone(),
            prefix: self.prefix,
            seed: self.seed,
        });
        let mut streams = vec![base];
        for (i, fault) in self.faults.iter().enumerate() {
            if let FaultKind::ArrivalStorm {
                burst_rps,
                duration_s,
            } = fault.kind
            {
                let mut burst = generate_arrivals(&ArrivalConfig {
                    curve: RateCurve::Constant { rps: burst_rps },
                    horizon_s: duration_s,
                    prompt_len_range: (64, 192),
                    output_lengths: lengths.clone(),
                    prefix: self.prefix,
                    seed: self.seed ^ (0x0057_0412 + i as u64),
                });
                shift_arrivals(&mut burst, fault.at_s);
                streams.push(burst);
            }
        }
        merge_arrival_streams(streams)
    }

    /// The faults in schedule order, storms excluded (storms are folded into
    /// the arrival stream, not replayed at runtime).
    pub fn runtime_faults(&self) -> Vec<FaultEvent> {
        self.faults
            .iter()
            .filter(|f| !matches!(f.kind, FaultKind::ArrivalStorm { .. }))
            .copied()
            .collect()
    }

    /// Compact schedule description, e.g. `crash(r1)@3 restart(r1)@6`.
    pub fn schedule_label(&self) -> String {
        if self.faults.is_empty() {
            return "none".to_string();
        }
        self.faults
            .iter()
            .map(|f| format!("{}@{}", f.kind.label(), f.at_s))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Fluent builder for [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Sets the scenario seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.seed = seed;
        self
    }

    /// Sets the number of replicas.
    pub fn replicas(mut self, replicas: usize) -> Self {
        assert!(replicas > 0, "need at least one replica");
        self.scenario.replicas = replicas;
        self
    }

    /// Sets the base arrival rate and horizon.
    pub fn arrivals(mut self, rps: f64, horizon_s: f64) -> Self {
        assert!(
            rps > 0.0 && horizon_s > 0.0,
            "rate and horizon must be positive"
        );
        self.scenario.rps = rps;
        self.scenario.horizon_s = horizon_s;
        self
    }

    /// Sets the routing policy.
    pub fn balancer(mut self, policy: BalancerPolicy) -> Self {
        self.scenario.balancer = policy;
        self
    }

    /// Enables the adaptive speculative-decoding manager on every replica.
    pub fn adaptive_sd(mut self) -> Self {
        self.scenario.adaptive_sd = true;
        self
    }

    /// Enables optimistic KV admission with preemption.
    pub fn preemption(mut self) -> Self {
        self.scenario.preemption = true;
        self
    }

    /// Gives `share` of the arrivals a shared system prompt of `len` tokens.
    pub fn prefix_share(mut self, share: f64, len: usize) -> Self {
        assert!((0.0..=1.0).contains(&share), "share must be in [0, 1]");
        self.scenario.prefix = Some(SharedPrefixSpec { share, len });
        self
    }

    /// Schedules an arbitrary fault.
    pub fn fault(mut self, at_s: f64, kind: FaultKind) -> Self {
        assert!(at_s >= 0.0, "fault time must be non-negative");
        self.scenario.faults.push(FaultEvent { at_s, kind });
        self
    }

    /// Schedules a replica crash.
    pub fn crash(self, at_s: f64, replica: usize) -> Self {
        self.fault(at_s, FaultKind::ReplicaCrash { replica })
    }

    /// Schedules a replica restart.
    pub fn restart(self, at_s: f64, replica: usize) -> Self {
        self.fault(at_s, FaultKind::ReplicaRestart { replica })
    }

    /// Schedules a slow-down (or, with `factor = 1.0`, a speed restore).
    pub fn slow(self, at_s: f64, replica: usize, factor: f64) -> Self {
        self.fault(at_s, FaultKind::SlowReplica { replica, factor })
    }

    /// Schedules a training preemption (commits a fresh drafter checkpoint).
    pub fn preempt_training(self, at_s: f64) -> Self {
        self.fault(at_s, FaultKind::TrainingPreempt)
    }

    /// Schedules delivery of a corrupt drafter checkpoint.
    pub fn corrupt_checkpoint(self, at_s: f64) -> Self {
        self.fault(at_s, FaultKind::CheckpointCorrupt)
    }

    /// Schedules delivery of a stale drafter checkpoint.
    pub fn stale_checkpoint(self, at_s: f64) -> Self {
        self.fault(at_s, FaultKind::CheckpointStale)
    }

    /// Forces a synthetic `postmortem-probe` invariant violation at the end of
    /// the run. The scenario is otherwise unchanged; the harness must respond
    /// by dumping the flight recorder, so this is a self-test of the whole
    /// alerting path (violation → postmortem → operator-readable dump).
    pub fn forced_violation(mut self) -> Self {
        self.scenario.probe_violation = true;
        self
    }

    /// Schedules an arrival storm.
    pub fn storm(self, at_s: f64, burst_rps: f64, duration_s: f64) -> Self {
        self.fault(
            at_s,
            FaultKind::ArrivalStorm {
                burst_rps,
                duration_s,
            },
        )
    }

    /// Finalises the scenario: validates replica indices, sorts the fault
    /// schedule by time (stable, so same-time faults keep insertion order), and
    /// rejects impossible schedules (crashing a replica that is already down,
    /// restarting one that never crashed) so authoring mistakes fail loudly at
    /// build time instead of panicking deep inside the harness.
    pub fn build(mut self) -> Scenario {
        for fault in &self.scenario.faults {
            let replica = match fault.kind {
                FaultKind::ReplicaCrash { replica }
                | FaultKind::ReplicaRestart { replica }
                | FaultKind::SlowReplica { replica, .. } => replica,
                _ => 0,
            };
            assert!(
                replica < self.scenario.replicas,
                "fault targets replica {replica} but the deployment has {}",
                self.scenario.replicas
            );
        }
        self.scenario
            .faults
            .sort_by(|a, b| a.at_s.partial_cmp(&b.at_s).expect("finite fault times"));
        let mut up = vec![true; self.scenario.replicas];
        for fault in &self.scenario.faults {
            match fault.kind {
                FaultKind::ReplicaCrash { replica } => {
                    assert!(
                        up[replica],
                        "crash of replica {replica} at t={}: it is already down",
                        fault.at_s
                    );
                    up[replica] = false;
                }
                FaultKind::ReplicaRestart { replica } => {
                    assert!(
                        !up[replica],
                        "restart of replica {replica} at t={}: it never crashed",
                        fault.at_s
                    );
                    up[replica] = true;
                }
                _ => {}
            }
        }
        self.scenario
    }
}

/// The pinned scenario matrix: the standing chaos suite every PR must keep
/// green (run by `experiments -- chaos` and the `chaos-suite` CI job). Each
/// scenario is deliberately small — the whole matrix (with its double-run
/// determinism check) finishes in seconds.
pub fn pinned_matrix() -> Vec<Scenario> {
    vec![
        Scenario::builder("baseline-no-faults")
            .seed(11)
            .replicas(2)
            .arrivals(6.0, 8.0)
            .build(),
        Scenario::builder("crash-failover")
            .seed(12)
            .replicas(3)
            .arrivals(8.0, 8.0)
            .crash(3.0, 1)
            .build(),
        Scenario::builder("crash-then-restart")
            .seed(13)
            .replicas(2)
            .arrivals(14.0, 10.0)
            .prefix_share(0.6, 96)
            .crash(3.0, 0)
            .restart(6.0, 0)
            .build(),
        Scenario::builder("rolling-crashes")
            .seed(14)
            .replicas(3)
            .arrivals(7.0, 12.0)
            .crash(2.0, 0)
            .restart(4.5, 0)
            .crash(6.0, 1)
            .restart(8.5, 1)
            .crash(9.0, 2)
            .restart(10.5, 2)
            .build(),
        Scenario::builder("lone-replica-crash-recovers")
            .seed(15)
            .replicas(1)
            .arrivals(6.0, 4.0)
            .crash(2.0, 0)
            .restart(3.5, 0)
            .build(),
        Scenario::builder("slow-replica-straggler")
            .seed(16)
            .replicas(2)
            .arrivals(6.0, 10.0)
            .slow(2.0, 1, 4.0)
            .slow(7.0, 1, 1.0)
            .build(),
        Scenario::builder("training-preempt-churn")
            .seed(17)
            .replicas(3)
            .arrivals(2.0, 10.0)
            .preempt_training(2.5)
            .preempt_training(5.0)
            .preempt_training(7.5)
            .build(),
        Scenario::builder("checkpoint-corrupt")
            .seed(18)
            .replicas(2)
            .arrivals(5.0, 8.0)
            .adaptive_sd()
            .preempt_training(2.0)
            .corrupt_checkpoint(4.0)
            .build(),
        Scenario::builder("checkpoint-stale")
            .seed(19)
            .replicas(2)
            .arrivals(5.0, 8.0)
            .adaptive_sd()
            .preempt_training(2.0)
            .stale_checkpoint(4.0)
            .build(),
        Scenario::builder("arrival-storm")
            .seed(20)
            .replicas(2)
            .arrivals(4.0, 12.0)
            .adaptive_sd()
            .storm(4.0, 30.0, 2.0)
            .build(),
        Scenario::builder("storm-under-preemption")
            .seed(21)
            .replicas(2)
            .arrivals(4.0, 12.0)
            .preemption()
            .prefix_share(0.5, 128)
            .storm(3.0, 40.0, 2.0)
            .build(),
        Scenario::builder("kitchen-sink")
            .seed(22)
            .replicas(3)
            .arrivals(12.0, 14.0)
            .adaptive_sd()
            .slow(1.0, 2, 3.0)
            .preempt_training(2.0)
            .crash(3.0, 1)
            .storm(4.0, 25.0, 2.0)
            .corrupt_checkpoint(5.0)
            .restart(6.5, 1)
            .stale_checkpoint(7.0)
            .crash(8.0, 0)
            .preempt_training(9.0)
            .restart(10.0, 0)
            .slow(11.0, 2, 1.0)
            .build(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sorts_faults_and_validates_targets() {
        let s = Scenario::builder("t")
            .replicas(3)
            .restart(6.0, 1)
            .crash(3.0, 1)
            .build();
        assert_eq!(s.faults[0].kind, FaultKind::ReplicaCrash { replica: 1 });
        assert_eq!(s.faults[1].kind, FaultKind::ReplicaRestart { replica: 1 });
        assert!(s.schedule_label().contains("crash(r1)@3"));
    }

    #[test]
    #[should_panic(expected = "fault targets replica")]
    fn out_of_range_fault_target_panics() {
        let _ = Scenario::builder("t").replicas(2).crash(1.0, 5).build();
    }

    #[test]
    #[should_panic(expected = "never crashed")]
    fn restart_without_a_crash_is_rejected_at_build_time() {
        let _ = Scenario::builder("t").replicas(1).restart(1.0, 0).build();
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn double_crash_is_rejected_at_build_time() {
        let _ = Scenario::builder("t")
            .replicas(2)
            .crash(1.0, 0)
            .crash(2.0, 0)
            .build();
    }

    #[test]
    fn storms_extend_the_arrival_stream_deterministically() {
        let base = Scenario::builder("b").seed(7).arrivals(5.0, 10.0).build();
        let stormy = Scenario::builder("s")
            .seed(7)
            .arrivals(5.0, 10.0)
            .storm(4.0, 40.0, 1.5)
            .build();
        let plain = base.arrival_stream();
        let with_storm = stormy.arrival_stream();
        assert!(with_storm.len() > plain.len() + 20);
        assert_eq!(with_storm, stormy.arrival_stream());
        for (i, a) in with_storm.iter().enumerate() {
            assert_eq!(a.id, i as u64);
        }
        assert!(
            stormy.runtime_faults().is_empty(),
            "storms are not runtime faults"
        );
    }

    #[test]
    fn pinned_matrix_has_unique_names_and_covers_every_fault_kind() {
        let matrix = pinned_matrix();
        let mut names: Vec<&str> = matrix.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate scenario names");
        let has = |pred: &dyn Fn(&FaultKind) -> bool| {
            matrix
                .iter()
                .flat_map(|s| s.faults.iter())
                .any(|f| pred(&f.kind))
        };
        assert!(has(&|k| matches!(k, FaultKind::ReplicaCrash { .. })));
        assert!(has(&|k| matches!(k, FaultKind::ReplicaRestart { .. })));
        assert!(has(&|k| matches!(k, FaultKind::SlowReplica { .. })));
        assert!(has(&|k| matches!(k, FaultKind::TrainingPreempt)));
        assert!(has(&|k| matches!(k, FaultKind::CheckpointCorrupt)));
        assert!(has(&|k| matches!(k, FaultKind::CheckpointStale)));
        assert!(has(&|k| matches!(k, FaultKind::ArrivalStorm { .. })));
    }
}
