//! Token-level reasoning-RL training on verifiable arithmetic tasks: the tiny-model
//! analogue of the paper's GRPO training runs, comparing vanilla (VeRL-style) and
//! speculative (TLT-style) rollouts.
//!
//! Run with `cargo run -p tlt --release --example math_rl_training`.

use tlt::{run_token_experiment, TokenExperimentConfig};

fn main() {
    let mut verl_cfg = TokenExperimentConfig::small(false, false);
    verl_cfg.num_steps = 6;
    verl_cfg.prompts_per_step = 8;
    let mut tlt_cfg = TokenExperimentConfig::small(true, true);
    tlt_cfg.num_steps = 6;
    tlt_cfg.prompts_per_step = 8;

    println!("running VeRL-style training (vanilla rollouts)...");
    let (verl, _, _) = run_token_experiment(&verl_cfg);
    println!("running TLT-style training (speculative rollouts + adaptive drafter)...");
    let (tlt, _, _) = run_token_experiment(&tlt_cfg);

    println!("\nstep | reward (VeRL) | reward (TLT) | accept len (TLT)");
    for i in 0..verl.reward_curve.len() {
        println!(
            "{:4} | {:13.3} | {:12.3} | {:16.2}",
            i, verl.reward_curve[i], tlt.reward_curve[i], tlt.accept_length_curve[i]
        );
    }
    println!(
        "\nrollout cost (target forward passes per generated token): VeRL {:.3} vs TLT {:.3}",
        verl.rollout_target_steps as f64 / verl.generated_tokens as f64,
        tlt.rollout_target_steps as f64 / tlt.generated_tokens as f64
    );
    println!(
        "drafter trained for {} iterations as a free by-product",
        tlt.drafter_accuracy.len()
    );
}
