//! Heterogeneous serving: one arrival stream over a mixed fleet — an H100, an
//! A100, and an RTX 4090 behind the same frontend — compared across balancer
//! policies. Round-robin splits arrivals evenly regardless of hardware, so the
//! consumer part becomes the bottleneck; queue-aware routing observes the slow
//! replica through its longer queue and shifts load toward the fast parts.
//!
//! Run with `cargo run -p tlt --release --example heterogeneous_serving`.

use tlt::run_heterogeneous_comparison;
use tlt_gpusim::GpuType;

fn main() {
    let fleet = [GpuType::H100, GpuType::A100, GpuType::Rtx4090];
    println!("fleet:");
    for (i, gpu) in fleet.iter().enumerate() {
        let spec = gpu.spec();
        println!(
            "  replica {i}: {:<22} {:>5.0} GB | {:>6.0} GB/s | {:>6.0} BF16 TFLOP/s",
            spec.name, spec.memory_gb, spec.memory_bandwidth_gbps, spec.bf16_tflops
        );
    }

    for &rate in &[6.0f64, 12.0] {
        println!("\n=== bursty load, mean {rate:.0} req/s ===");
        let results = run_heterogeneous_comparison(&fleet, rate);
        for (policy, report) in &results {
            let split: Vec<usize> = report.replicas.iter().map(|r| r.completed).collect();
            println!(
                "  {:<24} goodput {:>5.2} req/s | TTFT p99 {:>7.0} ms | SLO {:>5.1}% | \
                 completions per replica {:?}",
                format!("{policy:?}"),
                report.goodput_rps,
                report.ttft.p99_s * 1e3,
                report.slo_attainment * 100.0,
                split,
            );
        }
        let rr = &results[0].1;
        let jsq = &results[1].1;
        assert!(
            jsq.goodput_rps >= rr.goodput_rps,
            "queue-aware routing lost to round-robin"
        );
    }

    println!(
        "\nQueue-aware balancers route around the slow consumer part without being told \
         about the\nhardware: the RTX 4090's longer queue is signal enough. This is the \
         serving-side payoff of\nper-replica spec overrides — fleets need not be uniform \
         for the scheduler to stay efficient."
    );
}
