//! System-level chaos guarantees, asserted by tests (not logs): the pinned
//! scenario matrix passes every invariant, and killing any single replica
//! mid-run completes every in-flight request on the survivors with zero lost
//! or duplicated requests.

use std::collections::BTreeSet;
use tlt::chaos::{run_chaos_matrix, run_scenario, Scenario};

#[test]
fn pinned_matrix_passes_every_invariant() {
    let outcomes = run_chaos_matrix();
    assert!(outcomes.len() >= 10, "matrix shrank to {}", outcomes.len());
    for outcome in &outcomes {
        assert!(
            outcome.invariants.passed(),
            "{}: {:?}",
            outcome.scenario.name,
            outcome.invariants.violations
        );
        assert_eq!(
            outcome.completed + outcome.dropped,
            outcome.arrivals,
            "{}: request accounting broken",
            outcome.scenario.name
        );
    }
}

#[test]
fn killing_any_single_replica_mid_run_loses_and_duplicates_nothing() {
    // The acceptance-shape claim: whichever replica dies, the survivors absorb
    // its queued and running requests and every arrival completes exactly once.
    for victim in 0..3 {
        let scenario = Scenario::builder(&format!("kill-replica-{victim}"))
            .seed(400 + victim as u64)
            .replicas(3)
            .arrivals(18.0, 6.0)
            .crash(2.5, victim)
            .build();
        let arrivals = scenario.arrival_stream();
        let outcome = run_scenario(&scenario);
        assert!(
            outcome.invariants.passed(),
            "victim {victim}: {:?}",
            outcome.invariants.violations
        );
        assert!(
            outcome.requeued > 0,
            "victim {victim}: the crash must drain live requests onto survivors"
        );
        assert_eq!(outcome.dropped, 0, "victim {victim}");
        // Exactly-once completion, cross-checked from the raw records.
        let ids: BTreeSet<u64> = outcome.report.completed.iter().map(|r| r.id).collect();
        assert_eq!(ids.len(), outcome.report.completed.len(), "duplicated ids");
        assert_eq!(ids.len(), arrivals.len(), "victim {victim}: lost requests");
        // The victim served nothing after the crash: every post-crash
        // completion landed on a survivor.
        for r in &outcome.report.completed {
            if r.replica == victim {
                assert!(
                    r.finish_s <= 2.5 + 1e-9,
                    "victim {victim} completed request {} after its crash",
                    r.id
                );
            }
        }
    }
}

#[test]
fn invariant_violation_dumps_a_postmortem_naming_the_killed_replica() {
    // A clean run must not dump; a violated run must produce a readable
    // postmortem that names the violated invariant and replays the last-N
    // events per track — including the victim's crash and the failover
    // re-queues, with request ids attached.
    let clean = Scenario::builder("postmortem-clean")
        .seed(500)
        .replicas(3)
        .arrivals(18.0, 6.0)
        .crash(2.5, 1)
        .build();
    let outcome = run_scenario(&clean);
    assert!(outcome.invariants.passed());
    assert!(
        outcome.postmortem.is_none(),
        "clean runs must not dump a postmortem"
    );
    assert!(!outcome.trace.is_empty(), "clean runs still record a trace");

    // Crash late in the horizon so the failover re-queues land inside the
    // survivors' last-N ring windows (the recorder keeps the most recent
    // events per track; a crash hours before the dump would age out).
    let broken = Scenario::builder("postmortem-crash")
        .seed(501)
        .replicas(3)
        .arrivals(18.0, 6.0)
        .crash(5.0, 1)
        .forced_violation()
        .build();
    let outcome = run_scenario(&broken);
    assert!(!outcome.invariants.passed());
    let dump = outcome.postmortem.as_deref().expect("violation must dump");
    assert!(dump.contains("==== flight recorder postmortem ===="));
    assert!(dump.contains("scenario 'postmortem-crash' (seed 501)"));
    assert!(dump.contains("violated postmortem-probe"));
    // The killed replica's track is present and its last event is the crash.
    assert!(
        dump.contains("-- replica 1 "),
        "victim track missing:\n{dump}"
    );
    assert!(dump.contains("crash"), "crash event missing:\n{dump}");
    assert!(
        dump.contains("failover"),
        "failover events missing:\n{dump}"
    );
    assert!(dump.contains("req="), "request ids missing:\n{dump}");
}

#[test]
fn failover_preserves_latency_accounting_across_the_crash() {
    // Requests that streamed tokens before the crash keep their original
    // first-token timestamps: TTFT is measured from arrival, not from the
    // failover re-queue.
    let scenario = Scenario::builder("latency-across-crash")
        .seed(77)
        .replicas(2)
        .arrivals(14.0, 6.0)
        .crash(3.0, 0)
        .build();
    let outcome = run_scenario(&scenario);
    assert!(
        outcome.invariants.passed(),
        "{:?}",
        outcome.invariants.violations
    );
    let recomputed: Vec<_> = outcome
        .report
        .completed
        .iter()
        .filter(|r| r.preemptions > 0)
        .collect();
    assert!(!recomputed.is_empty(), "the crash must force recomputes");
    for r in &outcome.report.completed {
        assert!(r.first_token_s >= r.arrival_s, "request {}", r.id);
        assert!(r.finish_s >= r.first_token_s, "request {}", r.id);
    }
}

#[test]
fn disagg_matrix_passes_every_invariant() {
    let outcomes = tlt::run_disagg_chaos_matrix();
    assert!(
        outcomes.len() >= 5,
        "disagg matrix shrank to {}",
        outcomes.len()
    );
    for outcome in &outcomes {
        assert!(
            outcome.invariants.passed(),
            "{}: {:?}",
            outcome.scenario.name,
            outcome.invariants.violations
        );
        assert_eq!(
            outcome.completed + outcome.dropped,
            outcome.arrivals,
            "{}: request accounting broken",
            outcome.scenario.name
        );
    }
    // The matrix must actually exercise the migration fault surface: at least
    // one scenario aborts an in-flight KV transfer, and the autoscaled storm
    // both grows the pools and drains them back down.
    assert!(
        outcomes.iter().any(|o| o.report.aborted_transfers > 0),
        "no scenario aborted a mid-flight transfer"
    );
    assert!(
        outcomes
            .iter()
            .any(|o| o.report.scale_ups > 0 && o.report.retires > 0),
        "no scenario scaled up and retired"
    );
}

#[test]
fn committed_bench_trajectory_pins_the_disagg_win() {
    // The committed BENCH_7.json is the current headline artifact: the
    // recorded goodput-per-replica ratio must show the cluster strictly
    // beating the monolithic fleet.
    let num = committed_bench_value("disagg_vs_monolithic_goodput_ratio");
    assert!(
        num > 1.0,
        "committed disagg/monolithic goodput-per-replica ratio {num} must beat 1.0"
    );
}

#[test]
fn committed_bench_trajectory_pins_the_event_core_win() {
    // The indexed-heap event core must never regress below the linear scan it
    // replaced: the committed speedup ratio stays >= 1.0 (the full-scale run
    // that produced BENCH_7.json measured well above the 1.3x target).
    let num = committed_bench_value("sim_event_core_speedup");
    assert!(
        num >= 1.0,
        "committed event-core speedup {num} must not regress below the scan"
    );
}

/// Extracts a workload's recorded value from the committed `BENCH_7.json`.
fn committed_bench_value(workload: &str) -> f64 {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_7.json");
    let doc = std::fs::read_to_string(path).expect("BENCH_7.json is committed at the repo root");
    let needle = format!("\"{workload}\"");
    let at = doc
        .find(&needle)
        .unwrap_or_else(|| panic!("BENCH_7.json records the {workload} workload"));
    let tail = &doc[at..];
    let value_key = "\"value\":";
    let v = tail
        .find(value_key)
        .map(|i| &tail[i + value_key.len()..])
        .expect("workload entry carries a value");
    v.chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect::<String>()
        .parse()
        .expect("value parses as a number")
}
