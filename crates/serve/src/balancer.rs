//! Pluggable load balancers for the multi-replica frontend.

use serde::{Deserialize, Serialize};

/// Which policy the frontend uses to route an arriving request to a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BalancerPolicy {
    /// Cycle through replicas in arrival order.
    RoundRobin,
    /// Route to the replica with the fewest requests (queued + running).
    JoinShortestQueue,
    /// Route to the replica with the fewest outstanding tokens (prompt tokens still
    /// to prefill plus output tokens still to decode).
    LeastOutstandingTokens,
}

impl BalancerPolicy {
    /// All policies, in presentation order.
    pub fn all() -> [BalancerPolicy; 3] {
        [
            BalancerPolicy::RoundRobin,
            BalancerPolicy::JoinShortestQueue,
            BalancerPolicy::LeastOutstandingTokens,
        ]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            BalancerPolicy::RoundRobin => "round-robin",
            BalancerPolicy::JoinShortestQueue => "join-shortest-queue",
            BalancerPolicy::LeastOutstandingTokens => "least-outstanding-tokens",
        }
    }
}

/// A replica's load as observed by the balancer at dispatch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct ReplicaLoad {
    /// Requests waiting in the admission queue.
    pub queued: usize,
    /// Requests currently running (prefilled or prefilling).
    pub running: usize,
    /// Prompt tokens still to prefill plus output tokens still to decode.
    pub outstanding_tokens: u64,
}

impl ReplicaLoad {
    /// Total requests on the replica.
    pub fn total_requests(&self) -> usize {
        self.queued + self.running
    }
}

/// Stateful dispatcher implementing a [`BalancerPolicy`].
#[derive(Debug, Clone)]
pub struct LoadBalancer {
    policy: BalancerPolicy,
    rr_next: usize,
}

impl LoadBalancer {
    /// Creates a balancer with the given policy.
    pub fn new(policy: BalancerPolicy) -> Self {
        LoadBalancer { policy, rr_next: 0 }
    }

    /// The policy in use.
    pub fn policy(&self) -> BalancerPolicy {
        self.policy
    }

    /// Picks the replica index for the next request. Ties are broken by the lowest
    /// index so routing is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `loads` is empty.
    pub fn pick(&mut self, loads: &[ReplicaLoad]) -> usize {
        self.pick_among(loads, None)
    }

    /// Picks among the eligible (up) replicas only: `eligible[i] == false` makes
    /// replica `i` invisible to this dispatch, so crashed replicas receive no
    /// traffic. Round-robin advances past ineligible slots (and keeps its cursor
    /// moving, so routing stays deterministic across crash/restart sequences);
    /// the load-based policies filter before taking their minimum. `None` means
    /// every replica is eligible.
    ///
    /// # Panics
    ///
    /// Panics if `loads` is empty, if `eligible` has a different length, or if no
    /// replica is eligible.
    pub fn pick_among(&mut self, loads: &[ReplicaLoad], eligible: Option<&[bool]>) -> usize {
        assert!(!loads.is_empty(), "need at least one replica");
        if let Some(e) = eligible {
            assert_eq!(e.len(), loads.len(), "eligibility mask length mismatch");
            assert!(e.iter().any(|&up| up), "no eligible replica to route to");
        }
        let is_eligible = |i: usize| eligible.map(|e| e[i]).unwrap_or(true);
        match self.policy {
            BalancerPolicy::RoundRobin => {
                for _ in 0..loads.len() {
                    let idx = self.rr_next % loads.len();
                    self.rr_next = (self.rr_next + 1) % loads.len();
                    if is_eligible(idx) {
                        return idx;
                    }
                }
                unreachable!("an eligible replica exists");
            }
            BalancerPolicy::JoinShortestQueue => loads
                .iter()
                .enumerate()
                .filter(|(i, _)| is_eligible(*i))
                .min_by_key(|(i, l)| (l.total_requests(), *i))
                .map(|(i, _)| i)
                .expect("non-empty"),
            BalancerPolicy::LeastOutstandingTokens => loads
                .iter()
                .enumerate()
                .filter(|(i, _)| is_eligible(*i))
                .min_by_key(|(i, l)| (l.outstanding_tokens, *i))
                .map(|(i, _)| i)
                .expect("non-empty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(queued: usize, running: usize, tokens: u64) -> ReplicaLoad {
        ReplicaLoad {
            queued,
            running,
            outstanding_tokens: tokens,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut lb = LoadBalancer::new(BalancerPolicy::RoundRobin);
        let loads = vec![ReplicaLoad::default(); 3];
        assert_eq!(
            (0..6).map(|_| lb.pick(&loads)).collect::<Vec<_>>(),
            vec![0, 1, 2, 0, 1, 2]
        );
    }

    #[test]
    fn jsq_picks_fewest_requests_with_low_index_ties() {
        let mut lb = LoadBalancer::new(BalancerPolicy::JoinShortestQueue);
        assert_eq!(lb.pick(&[load(2, 2, 0), load(0, 3, 0), load(4, 0, 0)]), 1);
        // Tie between 0 and 2 resolves to 0.
        assert_eq!(lb.pick(&[load(1, 1, 0), load(2, 1, 0), load(0, 2, 0)]), 0);
    }

    #[test]
    fn least_outstanding_tokens_ignores_request_counts() {
        let mut lb = LoadBalancer::new(BalancerPolicy::LeastOutstandingTokens);
        // Replica 1 has many small requests; replica 0 one huge request.
        assert_eq!(lb.pick(&[load(0, 1, 50_000), load(5, 5, 2_000)]), 1);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_loads_panic() {
        LoadBalancer::new(BalancerPolicy::RoundRobin).pick(&[]);
    }

    #[test]
    fn pick_among_skips_ineligible_replicas() {
        let loads = vec![ReplicaLoad::default(); 3];
        // Round-robin keeps cycling but never lands on the down replica, and
        // resumes including it once it is back.
        let mut rr = LoadBalancer::new(BalancerPolicy::RoundRobin);
        let up = [true, false, true];
        let picks: Vec<usize> = (0..4).map(|_| rr.pick_among(&loads, Some(&up))).collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
        let resumed: Vec<usize> = (0..3).map(|_| rr.pick(&loads)).collect();
        assert_eq!(resumed, vec![0, 1, 2], "restart rejoins the rotation");

        // Load-based policies filter before taking their minimum.
        let mut jsq = LoadBalancer::new(BalancerPolicy::JoinShortestQueue);
        let skewed = vec![load(0, 0, 0), load(5, 5, 0), load(1, 1, 0)];
        assert_eq!(jsq.pick_among(&skewed, Some(&[false, true, true])), 2);
        let mut lot = LoadBalancer::new(BalancerPolicy::LeastOutstandingTokens);
        let tokens = vec![load(0, 0, 10), load(0, 0, 50), load(0, 0, 90)];
        assert_eq!(lot.pick_among(&tokens, Some(&[false, true, true])), 1);
    }

    #[test]
    #[should_panic(expected = "no eligible replica")]
    fn all_ineligible_panics() {
        let loads = vec![ReplicaLoad::default(); 2];
        LoadBalancer::new(BalancerPolicy::RoundRobin).pick_among(&loads, Some(&[false, false]));
    }
}
