//! Online DataBuffer for drafter spot-training (§4.2).
//!
//! The buffer caches the target-model hidden states and tokens produced during the
//! RL inference/rollout stages so drafter training never has to re-prefill them. It
//! persists across RL steps and supports the paper's *one-step-offset* sampling: the
//! longest sequences of the previous step are retained and mixed into the current
//! step's (partial, short-biased) data to cover the long-tail length range.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tlt_model::{Mat, TinyLm, TokenId};

use crate::model::FeatureSource;

/// One cached rollout response ready for drafter training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingSample {
    /// RL step the response was generated in.
    pub rl_step: u64,
    /// Request identifier within the step.
    pub request_id: u64,
    /// Full token sequence (prompt + response).
    pub tokens: Vec<TokenId>,
    /// Target hidden features per position (width depends on the feature source).
    pub features: Mat,
    /// Response length in tokens (excludes the prompt).
    pub response_len: usize,
}

impl TrainingSample {
    /// Builds a sample by running the target's prefill over `tokens` and extracting
    /// the hidden states required by `source`. In the real system these hidden states
    /// are free by-products of the RL inference stage; here they are recomputed.
    pub fn from_rollout(
        target: &TinyLm,
        source: FeatureSource,
        tokens: &[TokenId],
        response_len: usize,
        rl_step: u64,
        request_id: u64,
    ) -> Self {
        assert!(tokens.len() >= 3, "sample too short for drafter training");
        let (out, _) = target.prefill(tokens, true);
        let features = source.extract(&out.layer_outputs.expect("hidden collection requested"));
        TrainingSample {
            rl_step,
            request_id,
            tokens: tokens.to_vec(),
            features,
            response_len,
        }
    }

    /// Number of supervised positions this sample contributes
    /// (position `t` predicts token `t + 2`).
    pub fn num_training_positions(&self) -> usize {
        self.tokens.len().saturating_sub(2)
    }

    /// Approximate host-memory footprint of the cached sample in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.tokens.len() * std::mem::size_of::<TokenId>()
            + self.features.len() * std::mem::size_of::<f32>()
    }
}

/// Configuration of the [`DataBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataBufferConfig {
    /// Host-memory budget for cached samples, in bytes.
    pub capacity_bytes: usize,
    /// Fraction of each training batch drawn from the previous step's long sequences
    /// (the one-step-offset mechanism). `0.0` disables the offset sampling.
    pub offset_fraction: f64,
    /// How many of the longest previous-step samples to retain across steps.
    pub retained_long_samples: usize,
}

impl Default for DataBufferConfig {
    fn default() -> Self {
        DataBufferConfig {
            capacity_bytes: 256 * 1024 * 1024,
            offset_fraction: 0.3,
            retained_long_samples: 64,
        }
    }
}

/// The online DataBuffer.
#[derive(Debug, Clone)]
pub struct DataBuffer {
    config: DataBufferConfig,
    current: Vec<TrainingSample>,
    previous_long: Vec<TrainingSample>,
    bytes: usize,
    evicted: u64,
}

impl DataBuffer {
    /// Creates an empty buffer.
    pub fn new(config: DataBufferConfig) -> Self {
        DataBuffer {
            config,
            current: Vec::new(),
            previous_long: Vec::new(),
            bytes: 0,
            evicted: 0,
        }
    }

    /// Number of samples currently cached (current step + retained previous).
    pub fn len(&self) -> usize {
        self.current.len() + self.previous_long.len()
    }

    /// Whether the buffer holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total cached bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of samples evicted so far due to the capacity limit.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Adds a sample produced during the current RL step, evicting the oldest
    /// current-step samples if the capacity would be exceeded (previous-step long
    /// samples are never evicted by pushes — they are the scarce resource).
    pub fn push(&mut self, sample: TrainingSample) {
        self.bytes += sample.memory_bytes();
        self.current.push(sample);
        while self.bytes > self.config.capacity_bytes && self.current.len() > 1 {
            let removed = self.current.remove(0);
            self.bytes -= removed.memory_bytes();
            self.evicted += 1;
        }
    }

    /// Longest response length currently represented in the buffer.
    pub fn max_response_len(&self) -> usize {
        self.current
            .iter()
            .chain(self.previous_long.iter())
            .map(|s| s.response_len)
            .max()
            .unwrap_or(0)
    }

    /// Advances to the next RL step: the longest `retained_long_samples` of the
    /// current step replace the previous-step retention set and the current set is
    /// cleared (one-step-offset persistence).
    pub fn advance_step(&mut self) {
        let mut all = std::mem::take(&mut self.current);
        all.sort_by_key(|s| std::cmp::Reverse(s.response_len));
        all.truncate(self.config.retained_long_samples);
        self.previous_long = all;
        self.bytes = self
            .previous_long
            .iter()
            .map(TrainingSample::memory_bytes)
            .sum();
    }

    /// Samples a training batch of up to `n` samples: a `offset_fraction` share of
    /// long sequences from the previous step and the remainder from the current
    /// step's partial data.
    pub fn sample_batch<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<&TrainingSample> {
        if self.is_empty() || n == 0 {
            return Vec::new();
        }
        let want_long = ((n as f64) * self.config.offset_fraction).round() as usize;
        let want_long = want_long.min(self.previous_long.len());
        let want_current = (n - want_long).min(self.current.len());

        let mut batch: Vec<&TrainingSample> = Vec::with_capacity(want_long + want_current);
        let mut long_refs: Vec<&TrainingSample> = self.previous_long.iter().collect();
        long_refs.shuffle(rng);
        batch.extend(long_refs.into_iter().take(want_long));
        let mut cur_refs: Vec<&TrainingSample> = self.current.iter().collect();
        cur_refs.shuffle(rng);
        batch.extend(cur_refs.into_iter().take(want_current));
        // Top up from whichever pool has leftovers if the batch is still short.
        if batch.len() < n {
            let have: Vec<*const TrainingSample> = batch.iter().map(|s| *s as *const _).collect();
            for s in self.previous_long.iter().chain(self.current.iter()) {
                if batch.len() >= n {
                    break;
                }
                if !have.contains(&(s as *const _)) {
                    batch.push(s);
                }
            }
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tlt_model::ModelConfig;

    fn sample_with_len(step: u64, id: u64, response_len: usize) -> TrainingSample {
        // Lightweight synthetic sample (no model needed for buffer-management tests).
        TrainingSample {
            rl_step: step,
            request_id: id,
            tokens: vec![1; response_len + 4],
            features: Mat::zeros(response_len + 4, 8),
            response_len,
        }
    }

    #[test]
    fn from_rollout_extracts_features() {
        let target = TinyLm::new(ModelConfig::micro(), 3);
        let tokens: Vec<TokenId> = vec![1, 2, 3, 4, 5, 6];
        let s = TrainingSample::from_rollout(&target, FeatureSource::LastLayer, &tokens, 3, 0, 0);
        assert_eq!(s.features.shape(), (6, target.config.hidden));
        assert_eq!(s.num_training_positions(), 4);
        assert!(s.memory_bytes() > 0);
    }

    #[test]
    fn push_and_eviction_respect_capacity() {
        let config = DataBufferConfig {
            capacity_bytes: 6000,
            ..DataBufferConfig::default()
        };
        let mut buf = DataBuffer::new(config);
        for i in 0..50 {
            buf.push(sample_with_len(0, i, 20));
        }
        assert!(buf.bytes() <= config.capacity_bytes || buf.len() == 1);
        assert!(buf.evicted() > 0);
    }

    #[test]
    fn advance_step_retains_longest_sequences() {
        let config = DataBufferConfig {
            retained_long_samples: 3,
            ..DataBufferConfig::default()
        };
        let mut buf = DataBuffer::new(config);
        for (i, len) in [10, 500, 20, 900, 30, 700].iter().enumerate() {
            buf.push(sample_with_len(0, i as u64, *len));
        }
        buf.advance_step();
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.max_response_len(), 900);
        // All retained samples are long ones.
        let mut rng = StdRng::seed_from_u64(0);
        for s in buf.sample_batch(3, &mut rng) {
            assert!(s.response_len >= 500);
        }
    }

    #[test]
    fn one_step_offset_mixes_long_previous_sequences() {
        let config = DataBufferConfig {
            offset_fraction: 0.5,
            retained_long_samples: 8,
            ..DataBufferConfig::default()
        };
        let mut buf = DataBuffer::new(config);
        // Previous step had long sequences.
        for i in 0..8 {
            buf.push(sample_with_len(0, i, 1000 + i as usize));
        }
        buf.advance_step();
        // Current step so far only has short, early-finishing sequences.
        for i in 0..8 {
            buf.push(sample_with_len(1, 100 + i, 50));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let batch = buf.sample_batch(8, &mut rng);
        let long_count = batch.iter().filter(|s| s.response_len >= 1000).count();
        let short_count = batch.iter().filter(|s| s.response_len < 100).count();
        assert!(
            long_count >= 3,
            "expected long-tail coverage, got {long_count}"
        );
        assert!(
            short_count >= 3,
            "expected current-step coverage, got {short_count}"
        );
    }

    #[test]
    fn without_offset_only_current_step_is_sampled() {
        let config = DataBufferConfig {
            offset_fraction: 0.0,
            ..DataBufferConfig::default()
        };
        let mut buf = DataBuffer::new(config);
        for i in 0..4 {
            buf.push(sample_with_len(0, i, 2000));
        }
        buf.advance_step();
        for i in 0..4 {
            buf.push(sample_with_len(1, 10 + i, 10));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let batch = buf.sample_batch(4, &mut rng);
        assert!(batch.iter().all(|s| s.rl_step == 1));
    }

    #[test]
    fn empty_buffer_returns_empty_batch() {
        let buf = DataBuffer::new(DataBufferConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        assert!(buf.sample_batch(8, &mut rng).is_empty());
        assert!(buf.is_empty());
    }
}
