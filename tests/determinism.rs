//! Deterministic-seeding guarantees: the whole stack is a pure function of its
//! seeds. Two runs with identical seeds must produce bit-identical outputs, at
//! the timing level (`run_experiment`), at the token level
//! (`speculative_generate`), at the serving level (`run_serving`), and under
//! injected faults (`tlt::chaos`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tlt::{
    run_experiment, run_serving, ExperimentConfig, ServingExperimentConfig, ServingSdPolicy,
    SystemKind,
};
use tlt_draft::{DraftModel, FeatureSource};
use tlt_gpusim::{ClusterConfig, GpuType};
use tlt_model::{ModelConfig, ModelSpec, SamplingParams, TinyLm};
use tlt_rollout::{speculative_generate, SdStrategy, SpecDrafter};
use tlt_workload::{generate_arrivals, ArrivalConfig};

fn quick_config() -> ExperimentConfig {
    ExperimentConfig::paper_default(
        ModelSpec::qwen2_5_7b(),
        ClusterConfig::single_node(GpuType::H100, 2),
    )
    .scaled_down()
}

#[test]
fn run_experiment_is_deterministic_across_runs() {
    let config = quick_config();
    for system in [SystemKind::Verl, SystemKind::Tlt] {
        let first = run_experiment(system, &config);
        let second = run_experiment(system, &config);
        assert_eq!(
            first.throughput_tokens_per_s, second.throughput_tokens_per_s,
            "{system:?}: throughput must be identical for identical seeds"
        );
        let (a, b) = (first.mean_breakdown(), second.mean_breakdown());
        assert_eq!(a.rollout_s, b.rollout_s);
        assert_eq!(a.training_s, b.training_s);
        assert_eq!(
            first.drafter_updates_per_step,
            second.drafter_updates_per_step
        );
    }
}

#[test]
fn speculative_generate_is_deterministic_across_runs() {
    let target = TinyLm::new(ModelConfig::micro(), 42);
    let drafter = DraftModel::new(&target, FeatureSource::LastLayer, 7);
    let prompt = [1u32, 4, 2, 8];
    let strategy = SdStrategy {
        draft_depth: 4,
        top_k: 1,
        tokens_to_verify: 4,
    };
    let run = |seed: u64, params: SamplingParams| {
        let mut rng = StdRng::seed_from_u64(seed);
        speculative_generate(
            &target,
            &SpecDrafter::Learned(&drafter),
            &prompt,
            32,
            strategy,
            params,
            None,
            &mut rng,
        )
    };
    // Identical seeds: identical token streams, greedy and sampled alike.
    for params in [SamplingParams::greedy(), SamplingParams::default()] {
        let first = run(3, params);
        let second = run(3, params);
        assert_eq!(first.tokens, second.tokens);
    }
}

#[test]
fn serving_runs_are_bit_identical_across_runs() {
    let mut config = ServingExperimentConfig::qwen7b_bursty(2, 8.0);
    config.horizon_s = 20.0;
    for policy in ServingSdPolicy::all() {
        let first = run_serving(&config, policy);
        let second = run_serving(&config, policy);
        assert_eq!(
            first.completed, second.completed,
            "{policy:?}: per-request records must be identical for identical seeds"
        );
        assert_eq!(first.makespan_s, second.makespan_s);
        assert_eq!(
            first.throughput_tokens_per_s,
            second.throughput_tokens_per_s
        );
        assert_eq!(first.goodput_rps, second.goodput_rps);
        assert_eq!(first.ttft, second.ttft);
        assert_eq!(first.tpot, second.tpot);
        assert_eq!(first.e2e, second.e2e);
        assert_eq!(first.replicas, second.replicas);
    }
}

#[test]
fn serving_traces_are_byte_identical_across_runs() {
    // The flight recorder observes the serving run without perturbing it, and
    // the Chrome trace rendered from it is a pure function of the seed: two
    // identically-seeded runs must serialize to byte-identical JSON.
    let mut config = ServingExperimentConfig::qwen7b_bursty(2, 8.0);
    config.horizon_s = 20.0;
    let trace_bytes = || {
        tlt::obs::install(tlt::obs::FlightRecorder::new(8192));
        let report = run_serving(&config, ServingSdPolicy::Adaptive);
        let recorder = tlt::obs::uninstall().expect("recorder installed above");
        let events = recorder.events();
        assert!(!events.is_empty(), "serving run recorded no events");
        (report, tlt::obs::chrome_trace(&events).to_string())
    };
    let (report_a, bytes_a) = trace_bytes();
    let (report_b, bytes_b) = trace_bytes();
    // The recorder must not have changed the simulation itself either.
    assert_eq!(report_a.completed, report_b.completed);
    assert_eq!(
        bytes_a, bytes_b,
        "trace bytes differ between identical runs"
    );
}

#[test]
fn arrival_streams_are_bit_identical_across_runs() {
    let config = ArrivalConfig::constant(12.0, 60.0, 2026);
    assert_eq!(generate_arrivals(&config), generate_arrivals(&config));
}

#[test]
fn different_serving_seeds_change_the_arrival_stream() {
    let mut a = ServingExperimentConfig::qwen7b_bursty(2, 8.0);
    a.horizon_s = 20.0;
    let mut b = a.clone();
    b.seed = a.seed + 1;
    let ra = run_serving(&a, ServingSdPolicy::Adaptive);
    let rb = run_serving(&b, ServingSdPolicy::Adaptive);
    assert_ne!(ra.completed.len(), 0);
    assert_ne!(ra.completed, rb.completed);
}

#[test]
fn chaos_runs_are_bit_identical_per_seed_and_scenario() {
    // Same seed + same fault schedule => bit-identical per-request records and
    // metrics, even across crashes, failover re-queues, storms and checkpoint
    // faults. (run_scenario additionally self-checks this as the
    // seed-determinism invariant; here we assert it from the outside.)
    let scenario = tlt::chaos::Scenario::builder("determinism-probe")
        .seed(31)
        .replicas(3)
        .arrivals(12.0, 8.0)
        .adaptive_sd()
        .crash(2.0, 1)
        .storm(3.0, 30.0, 1.0)
        .restart(4.5, 1)
        .corrupt_checkpoint(5.0)
        .build();
    let a = tlt::chaos::run_scenario(&scenario);
    let b = tlt::chaos::run_scenario(&scenario);
    assert!(a.invariants.passed(), "{:?}", a.invariants.violations);
    assert!(b.invariants.passed());
    assert_eq!(a.report.completed, b.report.completed);
    assert_eq!(a.report.makespan_s, b.report.makespan_s);
    assert_eq!(
        a.report.throughput_tokens_per_s,
        b.report.throughput_tokens_per_s
    );
    assert_eq!(a.requeued, b.requeued);
    assert_eq!(a.coordinator, b.coordinator);
    assert_eq!(a.drafter, b.drafter);

    // A different seed genuinely changes the run.
    let mut other = scenario.clone();
    other.seed += 1;
    let c = tlt::chaos::run_scenario(&other);
    assert_ne!(a.report.completed, c.report.completed);
}

#[test]
fn different_seeds_change_sampled_outputs() {
    // Sanity check that the determinism above is not vacuous (i.e. the rng is
    // actually consulted): sampled generation with different seeds diverges
    // for at least one of a handful of seed pairs.
    let target = TinyLm::new(ModelConfig::micro(), 42);
    let prompt = [1u32, 4, 2, 8];
    let mut diverged = false;
    for seed in 0..4u64 {
        let gen = |s: u64| {
            let mut rng = StdRng::seed_from_u64(s);
            tlt_rollout::vanilla_generate(
                &target,
                &prompt,
                32,
                SamplingParams::default(),
                None,
                &mut rng,
            )
        };
        if gen(seed).tokens != gen(seed + 100).tokens {
            diverged = true;
            break;
        }
    }
    assert!(diverged, "sampled generation never consulted the rng");
}
