//! Offline shim for the subset of `serde` this workspace uses: the
//! `Serialize` / `Deserialize` traits as marker bounds plus the re-exported
//! no-op derives. No serializer backend exists in the build environment, so
//! the traits carry no methods.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
