//! KL-divergence utilities for the RL inference stage.
//!
//! GRPO regularises the policy toward a frozen reference model with a KL penalty.
//! The paper follows the common practice (Schulman's approximations) of estimating
//! the per-token KL from the log-probabilities of the *sampled* token only, because
//! materialising full distributions for every position of a 32K-token rollout is
//! too expensive. Both the exact full-distribution KL and the sampled estimators
//! are provided here so tests can check the estimators against the exact value.

use serde::{Deserialize, Serialize};

/// Which per-token KL estimator to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KlEstimator {
    /// `k1 = logp - logq` (unbiased, high variance, can be negative).
    K1,
    /// `k2 = 0.5 * (logp - logq)^2` (biased, low variance, non-negative).
    K2,
    /// `k3 = (r - 1) - log r` with `r = q/p` (unbiased, non-negative in expectation).
    K3,
}

/// Exact KL divergence `KL(p || q)` between two discrete distributions.
///
/// # Panics
///
/// Panics if the distributions have different lengths.
pub fn kl_divergence(p: &[f32], q: &[f32]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let mut kl = 0.0f64;
    for (&pi, &qi) in p.iter().zip(q.iter()) {
        if pi <= 0.0 {
            continue;
        }
        let qi = qi.max(1e-12);
        kl += pi as f64 * ((pi as f64).ln() - (qi as f64).ln());
    }
    kl.max(0.0)
}

/// Per-token KL estimate from the log-probabilities of the *sampled* token under
/// the policy (`logp`) and the reference model (`logq`).
pub fn sampled_kl(logp: f32, logq: f32, estimator: KlEstimator) -> f32 {
    match estimator {
        KlEstimator::K1 => logp - logq,
        KlEstimator::K2 => 0.5 * (logp - logq).powi(2),
        KlEstimator::K3 => {
            let log_ratio = logq - logp;
            (log_ratio.exp() - 1.0) - log_ratio
        }
    }
}

/// Mean per-token KL estimate over a response, given aligned per-token
/// log-probabilities under the policy and the reference model.
///
/// Returns `0.0` for empty inputs.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn mean_sampled_kl(policy_logps: &[f32], ref_logps: &[f32], estimator: KlEstimator) -> f32 {
    assert_eq!(
        policy_logps.len(),
        ref_logps.len(),
        "log-probability length mismatch"
    );
    if policy_logps.is_empty() {
        return 0.0;
    }
    let sum: f32 = policy_logps
        .iter()
        .zip(ref_logps.iter())
        .map(|(&lp, &lq)| sampled_kl(lp, lq, estimator))
        .sum();
    sum / policy_logps.len() as f32
}

/// Gradient of the exact `KL(p || q)` with respect to the policy logits, where
/// `p = softmax(logits)` and `q` is fixed.
///
/// `dKL/dz_j = p_j * (log p_j - log q_j - KL)`.
pub fn kl_grad_wrt_logits(p: &[f32], q: &[f32]) -> Vec<f32> {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let kl = kl_divergence(p, q) as f32;
    p.iter()
        .zip(q.iter())
        .map(|(&pi, &qi)| {
            if pi <= 0.0 {
                0.0
            } else {
                pi * ((pi.max(1e-12)).ln() - (qi.max(1e-12)).ln() - kl)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_zero_for_identical_distributions() {
        let p = [0.2f32, 0.3, 0.5];
        assert!(kl_divergence(&p, &p) < 1e-9);
    }

    #[test]
    fn kl_positive_for_different_distributions() {
        let p = [0.9f32, 0.05, 0.05];
        let q = [0.1f32, 0.45, 0.45];
        assert!(kl_divergence(&p, &q) > 0.5);
    }

    #[test]
    fn kl_asymmetric() {
        let p = [0.9f32, 0.1];
        let q = [0.5f32, 0.5];
        assert!((kl_divergence(&p, &q) - kl_divergence(&q, &p)).abs() > 1e-3);
    }

    #[test]
    fn k2_and_k3_are_non_negative() {
        for (lp, lq) in [(-1.0f32, -2.0f32), (-2.0, -1.0), (-0.5, -0.5)] {
            assert!(sampled_kl(lp, lq, KlEstimator::K2) >= 0.0);
            assert!(sampled_kl(lp, lq, KlEstimator::K3) >= -1e-6);
        }
    }

    #[test]
    fn k1_estimator_unbiased_in_expectation() {
        // E_{x~p}[log p(x) - log q(x)] == KL(p || q); check by exhaustive expectation.
        let p = [0.6f32, 0.3, 0.1];
        let q = [0.2f32, 0.5, 0.3];
        let exact = kl_divergence(&p, &q);
        let estimate: f64 = p
            .iter()
            .zip(q.iter())
            .map(|(&pi, &qi)| pi as f64 * sampled_kl(pi.ln(), qi.ln(), KlEstimator::K1) as f64)
            .sum();
        assert!((exact - estimate).abs() < 1e-6);
    }

    #[test]
    fn k3_estimator_unbiased_in_expectation() {
        let p = [0.5f32, 0.25, 0.25];
        let q = [0.25f32, 0.5, 0.25];
        let exact = kl_divergence(&p, &q);
        let estimate: f64 = p
            .iter()
            .zip(q.iter())
            .map(|(&pi, &qi)| pi as f64 * sampled_kl(pi.ln(), qi.ln(), KlEstimator::K3) as f64)
            .sum();
        assert!((exact - estimate).abs() < 1e-4);
    }

    #[test]
    fn mean_sampled_kl_empty_is_zero() {
        assert_eq!(mean_sampled_kl(&[], &[], KlEstimator::K3), 0.0);
    }

    #[test]
    fn kl_grad_points_away_from_reference() {
        // Gradient should be ~zero when p == q.
        let p = [0.25f32, 0.25, 0.25, 0.25];
        let grad = kl_grad_wrt_logits(&p, &p);
        for g in grad {
            assert!(g.abs() < 1e-6);
        }
        // And non-zero when they differ.
        let q = [0.7f32, 0.1, 0.1, 0.1];
        let grad = kl_grad_wrt_logits(&p, &q);
        assert!(grad.iter().any(|g| g.abs() > 1e-4));
    }
}
