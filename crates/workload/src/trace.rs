//! Synthesis of production-style RL training traces.
//!
//! The paper motivates TLT with a ByteDance production trace (Figure 2): 385 GRPO
//! steps of Qwen2.5-32B on 128 H20 GPUs over 11 days, showing per-step maximum, p75
//! and median response lengths with a persistent gap between p75 and the 20,480-token
//! cap. The real trace is not redistributable, so this module synthesises traces with
//! the same structure from the long-tail generators.

use crate::longtail::{LengthDistribution, LengthStats};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Length statistics for one RL training step of a synthesised trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStep {
    /// RL step index.
    pub step: usize,
    /// Response-length statistics of the step's rollout batch.
    pub stats: LengthStats,
}

/// Configuration of a synthetic production trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of RL steps.
    pub num_steps: usize,
    /// Responses generated per step (prompts x group size).
    pub responses_per_step: usize,
    /// Generation length cap in tokens; responses are truncated here and the
    /// cap-hit fraction of [`TraceSummary`] is measured against this value.
    pub length_cap: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        // Matches the scale of the ByteDance trace in Figure 2.
        TraceConfig {
            num_steps: 385,
            responses_per_step: 512,
            length_cap: 20_480,
            seed: 2026,
        }
    }
}

/// Synthesises a ByteDance-style trace: response lengths grow over training while the
/// maximum repeatedly hits the configured cap.
pub fn synthesize_bytedance_trace(config: TraceConfig) -> Vec<TraceStep> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut steps = Vec::with_capacity(config.num_steps);
    for step in 0..config.num_steps {
        let progress = if config.num_steps <= 1 {
            0.0
        } else {
            step as f64 / (config.num_steps - 1) as f64
        };
        let dist = LengthDistribution::bytedance_step(progress).with_max_len(config.length_cap);
        let lengths = dist.sample_many(config.responses_per_step, &mut rng);
        steps.push(TraceStep {
            step,
            stats: LengthStats::from_lengths(&lengths),
        });
    }
    steps
}

/// Aggregate view over a synthesised trace (used by the Figure 2 experiment output).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Number of steps.
    pub num_steps: usize,
    /// Fraction of steps whose maximum response hit the length cap.
    pub steps_hitting_cap: f64,
    /// Mean p75 across steps.
    pub mean_p75: f64,
    /// Mean median across steps.
    pub mean_p50: f64,
    /// Mean under-utilised fraction ( (max - p75) / max ).
    pub mean_underutilized: f64,
}

impl TraceSummary {
    /// Summarises a trace against the *configured* generation cap (the
    /// `length_cap` the trace was synthesised with). Returns zeros for an
    /// empty trace.
    ///
    /// The cap must be passed in rather than inferred: measuring against the
    /// trace's own observed maximum would guarantee a cap-hit fraction of at
    /// least `1/num_steps` even for traces that never reach the cap at all.
    pub fn from_trace(trace: &[TraceStep], length_cap: usize) -> Self {
        if trace.is_empty() {
            return TraceSummary {
                num_steps: 0,
                steps_hitting_cap: 0.0,
                mean_p75: 0.0,
                mean_p50: 0.0,
                mean_underutilized: 0.0,
            };
        }
        let n = trace.len() as f64;
        TraceSummary {
            num_steps: trace.len(),
            steps_hitting_cap: trace.iter().filter(|s| s.stats.max >= length_cap).count() as f64
                / n,
            mean_p75: trace.iter().map(|s| s.stats.p75).sum::<f64>() / n,
            mean_p50: trace.iter().map(|s| s.stats.p50).sum::<f64>() / n,
            mean_underutilized: trace
                .iter()
                .map(|s| s.stats.underutilized_fraction())
                .sum::<f64>()
                / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_requested_length_and_is_deterministic() {
        let config = TraceConfig {
            num_steps: 50,
            responses_per_step: 128,
            seed: 1,
            ..TraceConfig::default()
        };
        let a = synthesize_bytedance_trace(config);
        let b = synthesize_bytedance_trace(config);
        assert_eq!(a.len(), 50);
        assert_eq!(a, b);
    }

    #[test]
    fn persistent_long_tail_across_steps() {
        // Figure 2's key property: in most steps a few responses reach the cap while
        // the p75 stays far below it.
        let config = TraceConfig {
            num_steps: 100,
            responses_per_step: 512,
            seed: 7,
            ..TraceConfig::default()
        };
        let trace = synthesize_bytedance_trace(config);
        let summary = TraceSummary::from_trace(&trace, config.length_cap);
        assert!(
            summary.steps_hitting_cap > 0.5,
            "cap-hit fraction {}",
            summary.steps_hitting_cap
        );
        assert!(summary.mean_underutilized > 0.5);
        assert!(summary.mean_p75 < 20_480.0 * 0.5);
    }

    #[test]
    fn lengths_grow_over_training() {
        let trace = synthesize_bytedance_trace(TraceConfig {
            num_steps: 200,
            responses_per_step: 256,
            seed: 3,
            ..TraceConfig::default()
        });
        let early: f64 = trace[..20].iter().map(|s| s.stats.p50).sum::<f64>() / 20.0;
        let late: f64 = trace[180..].iter().map(|s| s.stats.p50).sum::<f64>() / 20.0;
        assert!(
            late > early,
            "median should grow: early {early} late {late}"
        );
    }

    #[test]
    fn empty_trace_summary_is_zero() {
        let s = TraceSummary::from_trace(&[], 20_480);
        assert_eq!(s.num_steps, 0);
        assert_eq!(s.mean_p75, 0.0);
    }

    #[test]
    fn cap_fraction_is_zero_when_no_step_reaches_the_cap() {
        // Regression: steps_hitting_cap used to compare each step against the
        // trace's own observed maximum, so some step always "hit the cap" —
        // this trace tops out at 5000 tokens, far below the 20,480 cap, and
        // the fraction must be exactly zero.
        let trace: Vec<TraceStep> = (0..10)
            .map(|step| TraceStep {
                step,
                stats: LengthStats::from_lengths(&[100, 400, 1200, 5000]),
            })
            .collect();
        let summary = TraceSummary::from_trace(&trace, 20_480);
        assert_eq!(summary.steps_hitting_cap, 0.0);
        // Against a cap the trace does reach, every step hits it.
        assert_eq!(
            TraceSummary::from_trace(&trace, 5000).steps_hitting_cap,
            1.0
        );
    }

    #[test]
    fn length_cap_is_plumbed_through_synthesis() {
        let config = TraceConfig {
            num_steps: 40,
            responses_per_step: 256,
            length_cap: 512,
            seed: 11,
        };
        let trace = synthesize_bytedance_trace(config);
        assert!(trace.iter().all(|s| s.stats.max <= 512));
        // With the cap pulled into the body of the distribution, most steps
        // have at least one truncated response.
        let summary = TraceSummary::from_trace(&trace, config.length_cap);
        assert!(summary.steps_hitting_cap > 0.5);
    }
}
