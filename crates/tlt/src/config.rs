//! End-to-end system configurations: TLT and the baselines it is compared against.

use serde::{Deserialize, Serialize};
use tlt_gpusim::ClusterConfig;
use tlt_model::ModelSpec;
use tlt_workload::LengthDistribution;

/// Which end-to-end system to simulate (the four bars of Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// Open-R1-like baseline: separate placement of rollout and training GPUs with a
    /// tight coupling between rollout and training batch sizes.
    OpenR1,
    /// VeRL-like baseline: colocated placement with GPU time-sharing, no speculative
    /// decoding.
    Verl,
    /// TLT-Base: TLT's rollout engine with the model-free n-gram drafter only
    /// (no adaptive drafter training).
    TltBase,
    /// Full TLT: adaptive drafter (spot-trained) + adaptive rollout engine.
    Tlt,
}

impl SystemKind {
    /// All systems in the order of Figure 11.
    pub fn all() -> [SystemKind; 4] {
        [
            SystemKind::OpenR1,
            SystemKind::Verl,
            SystemKind::TltBase,
            SystemKind::Tlt,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::OpenR1 => "Open-R1",
            SystemKind::Verl => "VeRL",
            SystemKind::TltBase => "TLT-Base",
            SystemKind::Tlt => "TLT (Ours)",
        }
    }

    /// Whether this system uses speculative decoding at all.
    pub fn uses_sd(&self) -> bool {
        matches!(self, SystemKind::TltBase | SystemKind::Tlt)
    }

    /// Whether this system trains the adaptive drafter on idle workers.
    pub fn uses_adaptive_drafter(&self) -> bool {
        matches!(self, SystemKind::Tlt)
    }
}

/// Configuration of an end-to-end (timing-level) RL training experiment.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentConfig {
    /// Target model geometry.
    pub model: ModelSpec,
    /// Cluster to run on.
    pub cluster: ClusterConfig,
    /// Prompts per RL step.
    pub prompts_per_step: usize,
    /// Responses sampled per prompt (GRPO group size).
    pub group_size: usize,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Response-length distribution.
    pub length_distribution: LengthDistribution,
    /// Elastic SD activation threshold (running requests).
    pub sd_threshold: usize,
    /// Number of RL steps to simulate.
    pub num_steps: usize,
    /// Random seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The paper's default end-to-end setting for a given model on the H100 testbed.
    pub fn paper_default(model: ModelSpec, cluster: ClusterConfig) -> Self {
        ExperimentConfig {
            model,
            cluster,
            prompts_per_step: 64,
            group_size: 8,
            prompt_len: 512,
            length_distribution: LengthDistribution::LongTailMixture {
                mu: 7.3,
                sigma: 0.9,
                truncation_mass: 0.02,
                max_len: 32_768,
            },
            sd_threshold: 32,
            num_steps: 3,
            seed: 2026,
        }
    }

    /// Total responses generated per RL step.
    pub fn requests_per_step(&self) -> usize {
        self.prompts_per_step * self.group_size
    }

    /// Uses a smaller, faster configuration (for tests and examples).
    pub fn scaled_down(mut self) -> Self {
        self.prompts_per_step = 8;
        self.group_size = 4;
        self.num_steps = 1;
        // Keep the long tail pronounced even at reduced scale: a few responses still
        // run to a 16K cap, so rollout remains the dominant stage.
        self.length_distribution = LengthDistribution::LongTailMixture {
            mu: 6.5,
            sigma: 0.8,
            truncation_mass: 0.08,
            max_len: 16_384,
        };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlt_gpusim::GpuType;

    #[test]
    fn system_kinds_expose_expected_capabilities() {
        assert!(!SystemKind::Verl.uses_sd());
        assert!(SystemKind::TltBase.uses_sd());
        assert!(!SystemKind::TltBase.uses_adaptive_drafter());
        assert!(SystemKind::Tlt.uses_adaptive_drafter());
        assert_eq!(SystemKind::all().len(), 4);
    }

    #[test]
    fn paper_default_is_consistent() {
        let config = ExperimentConfig::paper_default(
            ModelSpec::qwen2_5_7b(),
            ClusterConfig::dgx_h100_testbed(),
        );
        assert_eq!(config.requests_per_step(), 512);
        assert!(config.cluster.validate().is_ok());
        let small = config.scaled_down();
        assert!(small.requests_per_step() < 64);
    }

    #[test]
    fn single_node_config_builds() {
        let config = ExperimentConfig::paper_default(
            ModelSpec::qwen2_5_7b(),
            ClusterConfig::single_node(GpuType::A100, 2),
        );
        assert_eq!(config.cluster.num_workers(), 4);
    }
}
