//! Differentiable neural-network primitives (forward and backward passes).
//!
//! Every operation here is written as an explicit forward function that optionally
//! returns the intermediates needed by a matching backward function. This manual
//! reverse-mode style keeps the substrate dependency-free and easy to verify with
//! finite-difference tests (see the test module at the bottom of this file).

use crate::tensor::Mat;

/// Numerical epsilon used by RMSNorm.
pub const RMS_EPS: f32 = 1e-5;

/// Row-wise softmax of a matrix of logits.
///
/// Numerically stabilised by subtracting the per-row maximum.
pub fn softmax_rows(logits: &Mat) -> Mat {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        softmax_in_place(out.row_mut(r));
    }
    out
}

/// In-place numerically-stable softmax over a slice.
pub fn softmax_in_place(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Stable log-softmax over a slice, returning a new vector.
pub fn log_softmax(row: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; row.len()];
    log_softmax_into(row, &mut out);
    out
}

/// Stable log-softmax written into a caller-provided buffer (no allocation).
///
/// # Panics
///
/// Panics if `out.len() != row.len()`.
pub fn log_softmax_into(row: &[f32], out: &mut [f32]) {
    assert_eq!(row.len(), out.len(), "log_softmax output length mismatch");
    let log_sum = log_sum_exp(row);
    for (o, &v) in out.iter_mut().zip(row.iter()) {
        *o = v - log_sum;
    }
}

/// Stable `log(sum(exp(row)))` of a slice.
fn log_sum_exp(row: &[f32]) -> f32 {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max
}

/// Backward pass for a row-wise softmax.
///
/// Given `probs = softmax(logits)` and upstream gradient `d_probs`, returns
/// `d_logits` using the Jacobian-vector product
/// `dL/dz_j = p_j * (dL/dp_j - sum_k p_k dL/dp_k)`.
pub fn softmax_backward_rows(probs: &Mat, d_probs: &Mat) -> Mat {
    assert_eq!(
        probs.shape(),
        d_probs.shape(),
        "softmax backward shape mismatch"
    );
    let mut out = Mat::zeros(probs.rows(), probs.cols());
    for r in 0..probs.rows() {
        let p = probs.row(r);
        let dp = d_probs.row(r);
        let inner: f32 = p.iter().zip(dp.iter()).map(|(&a, &b)| a * b).sum();
        let o = out.row_mut(r);
        for i in 0..p.len() {
            o[i] = p[i] * (dp[i] - inner);
        }
    }
    out
}

/// SiLU (swish) activation: `x * sigmoid(x)`.
pub fn silu(x: f32) -> f32 {
    x * sigmoid(x)
}

/// Derivative of SiLU with respect to its input.
pub fn silu_grad(x: f32) -> f32 {
    let s = sigmoid(x);
    s * (1.0 + x * (1.0 - s))
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Saved state from an [`rmsnorm_forward`] call, needed for the backward pass.
#[derive(Debug, Clone)]
pub struct RmsNormCache {
    /// Input activations.
    pub input: Mat,
    /// Per-row reciprocal RMS values.
    pub inv_rms: Vec<f32>,
}

/// RMSNorm forward pass: `y = x / rms(x) * gain` applied row-wise.
///
/// Returns the output and a cache for [`rmsnorm_backward`].
pub fn rmsnorm_forward(x: &Mat, gain: &[f32]) -> (Mat, RmsNormCache) {
    let mut out = Mat::zeros(x.rows(), x.cols());
    rmsnorm_into(x, gain, &mut out);
    let inv_rms = (0..x.rows())
        .map(|r| {
            let row = x.row(r);
            let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / row.len() as f32;
            1.0 / (ms + RMS_EPS).sqrt()
        })
        .collect();
    (
        out,
        RmsNormCache {
            input: x.clone(),
            inv_rms,
        },
    )
}

/// Allocation-free RMSNorm forward pass into a caller-provided matrix.
///
/// `out` must already have `x`'s shape and is fully overwritten. Decode-path
/// callers use this directly; training callers that need the reciprocal RMS cache
/// go through [`rmsnorm_forward`].
///
/// # Panics
///
/// Panics on gain-length or output-shape mismatch.
pub fn rmsnorm_into(x: &Mat, gain: &[f32], out: &mut Mat) {
    assert_eq!(x.cols(), gain.len(), "rmsnorm gain length mismatch");
    assert_eq!(x.shape(), out.shape(), "rmsnorm output shape mismatch");
    for r in 0..x.rows() {
        let row = x.row(r);
        let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / row.len() as f32;
        let inv = 1.0 / (ms + RMS_EPS).sqrt();
        let o = out.row_mut(r);
        for i in 0..row.len() {
            o[i] = row[i] * inv * gain[i];
        }
    }
}

/// RMSNorm backward pass.
///
/// Returns `(d_input, d_gain)` given the upstream gradient `d_out`.
pub fn rmsnorm_backward(cache: &RmsNormCache, gain: &[f32], d_out: &Mat) -> (Mat, Vec<f32>) {
    let x = &cache.input;
    assert_eq!(x.shape(), d_out.shape(), "rmsnorm backward shape mismatch");
    let n = x.cols() as f32;
    let mut d_x = Mat::zeros(x.rows(), x.cols());
    let mut d_gain = vec![0.0f32; gain.len()];
    for r in 0..x.rows() {
        let row = x.row(r);
        let grad = d_out.row(r);
        let inv = cache.inv_rms[r];
        // d_gain_i += g_i * x_i * inv
        for i in 0..row.len() {
            d_gain[i] += grad[i] * row[i] * inv;
        }
        // dL/dx_i = inv * g_i*gain_i - x_i * inv^3 / n * sum_j(g_j*gain_j*x_j)
        let dot: f32 = (0..row.len()).map(|j| grad[j] * gain[j] * row[j]).sum();
        let inv3 = inv.powi(3);
        let dx = d_x.row_mut(r);
        for i in 0..row.len() {
            dx[i] = inv * grad[i] * gain[i] - row[i] * inv3 * dot / n;
        }
    }
    (d_x, d_gain)
}

/// Saved state from a [`swiglu_forward`] call.
#[derive(Debug, Clone)]
pub struct SwiGluCache {
    /// Input activations.
    pub input: Mat,
    /// Gate pre-activation (`x @ w_gate`).
    pub gate_pre: Mat,
    /// Up projection (`x @ w_up`).
    pub up: Mat,
    /// Hidden activations (`silu(gate_pre) * up`), input to the down projection.
    pub hidden: Mat,
}

/// SwiGLU feed-forward block: `down(silu(x @ w_gate) * (x @ w_up))`.
pub fn swiglu_forward(x: &Mat, w_gate: &Mat, w_up: &Mat, w_down: &Mat) -> (Mat, SwiGluCache) {
    let gate_pre = x.matmul(w_gate);
    let up = x.matmul(w_up);
    let mut hidden = Mat::zeros(gate_pre.rows(), gate_pre.cols());
    for r in 0..hidden.rows() {
        let g = gate_pre.row(r);
        let u = up.row(r);
        let h = hidden.row_mut(r);
        for i in 0..h.len() {
            h[i] = silu(g[i]) * u[i];
        }
    }
    let out = hidden.matmul(w_down);
    (
        out,
        SwiGluCache {
            input: x.clone(),
            gate_pre,
            up,
            hidden,
        },
    )
}

/// Gradients produced by [`swiglu_backward`].
#[derive(Debug, Clone)]
pub struct SwiGluGrads {
    /// Gradient with respect to the block input.
    pub d_input: Mat,
    /// Gradient of the gate projection weights.
    pub d_w_gate: Mat,
    /// Gradient of the up projection weights.
    pub d_w_up: Mat,
    /// Gradient of the down projection weights.
    pub d_w_down: Mat,
}

/// Backward pass of the SwiGLU block.
pub fn swiglu_backward(
    cache: &SwiGluCache,
    w_gate: &Mat,
    w_up: &Mat,
    w_down: &Mat,
    d_out: &Mat,
) -> SwiGluGrads {
    // out = hidden @ w_down
    let d_w_down = cache.hidden.transposed_matmul(d_out);
    let d_hidden = d_out.matmul_transposed(w_down);

    // hidden = silu(gate_pre) * up. One fused pass computes the sigmoid once per
    // element and reuses it for both silu and its derivative — the exact formulas
    // of `silu` / `silu_grad`, evaluated with a single exp instead of two.
    let mut d_gate_pre = Mat::zeros(d_hidden.rows(), d_hidden.cols());
    let mut d_up = Mat::zeros(d_hidden.rows(), d_hidden.cols());
    for r in 0..d_hidden.rows() {
        let dh = d_hidden.row(r);
        let g = cache.gate_pre.row(r);
        let u = cache.up.row(r);
        let dg = d_gate_pre.row_mut(r);
        let du = d_up.row_mut(r);
        for i in 0..dh.len() {
            let s = sigmoid(g[i]);
            dg[i] = dh[i] * u[i] * (s * (1.0 + g[i] * (1.0 - s)));
            du[i] = dh[i] * (g[i] * s);
        }
    }

    let d_w_gate = cache.input.transposed_matmul(&d_gate_pre);
    let d_w_up = cache.input.transposed_matmul(&d_up);
    let mut d_input = d_gate_pre.matmul_transposed(w_gate);
    d_input.add_assign(&d_up.matmul_transposed(w_up));

    SwiGluGrads {
        d_input,
        d_w_gate,
        d_w_up,
        d_w_down,
    }
}

/// Cross-entropy loss over a batch of rows of logits against integer targets.
///
/// Returns `(mean_loss, d_logits)` where the gradient is already divided by the
/// number of rows so it can be fed straight into the backward pass.
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()` or any target index is out of range.
pub fn cross_entropy(logits: &Mat, targets: &[usize]) -> (f32, Mat) {
    cross_entropy_weighted(logits, targets, None)
}

/// Cross-entropy with optional per-row weights (used by policy-gradient objectives
/// where each position is scaled by its advantage).
pub fn cross_entropy_weighted(
    logits: &Mat,
    targets: &[usize],
    weights: Option<&[f32]>,
) -> (f32, Mat) {
    assert_eq!(targets.len(), logits.rows(), "target length mismatch");
    if let Some(w) = weights {
        assert_eq!(w.len(), targets.len(), "weight length mismatch");
    }
    let n = logits.rows().max(1) as f32;
    let mut d_logits = Mat::zeros(logits.rows(), logits.cols());
    let mut loss = 0.0;
    for r in 0..logits.rows() {
        let target = targets[r];
        assert!(target < logits.cols(), "target index out of range");
        let w = weights.map_or(1.0, |ws| ws[r]);
        // Single log-sum-exp per row, no temporary log-prob buffer.
        let row = logits.row(r);
        let log_sum = log_sum_exp(row);
        loss += -w * (row[target] - log_sum);
        let d = d_logits.row_mut(r);
        for (i, (d_i, &v)) in d.iter_mut().zip(row.iter()).enumerate() {
            let p = (v - log_sum).exp();
            let indicator = if i == target { 1.0 } else { 0.0 };
            *d_i = w * (p - indicator) / n;
        }
    }
    (loss / n, d_logits)
}

/// Smooth L1 loss between two matrices, returning `(loss, d_pred)`.
///
/// Used by EAGLE-style drafter training to align drafter hidden states with the
/// target model's hidden states.
pub fn smooth_l1(pred: &Mat, target: &Mat) -> (f32, Mat) {
    assert_eq!(pred.shape(), target.shape(), "smooth_l1 shape mismatch");
    let n = pred.len().max(1) as f32;
    let mut grad = Mat::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0;
    for (i, (&p, &t)) in pred.as_slice().iter().zip(target.as_slice()).enumerate() {
        let diff = p - t;
        if diff.abs() < 1.0 {
            loss += 0.5 * diff * diff;
            grad.as_mut_slice()[i] = diff / n;
        } else {
            loss += diff.abs() - 0.5;
            grad.as_mut_slice()[i] = diff.signum() / n;
        }
    }
    (loss / n, grad)
}

/// Top-k accuracy of logits rows against integer targets.
///
/// Returns the fraction of rows whose target token is within the `k` highest logits.
pub fn top_k_accuracy(logits: &Mat, targets: &[usize], k: usize) -> f64 {
    top_k_accuracy_multi(logits, targets, &[k])[0]
}

/// Top-k accuracy at several `k` values in a single pass over the logits.
///
/// Returns one fraction per entry of `ks`, identical to calling
/// [`top_k_accuracy`] once per `k` but with the per-row rank computed once.
pub fn top_k_accuracy_multi(logits: &Mat, targets: &[usize], ks: &[usize]) -> Vec<f64> {
    assert_eq!(targets.len(), logits.rows(), "target length mismatch");
    if logits.rows() == 0 {
        return vec![0.0; ks.len()];
    }
    let mut hits = vec![0usize; ks.len()];
    for r in 0..logits.rows() {
        let row = logits.row(r);
        let target_logit = row[targets[r]];
        let better = row.iter().filter(|&&v| v > target_logit).count();
        for (h, &k) in hits.iter_mut().zip(ks.iter()) {
            if better < k {
                *h += 1;
            }
        }
    }
    hits.into_iter()
        .map(|h| h as f64 / logits.rows() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn finite_diff_check<F: FnMut(&Mat) -> f32>(x: &Mat, analytic: &Mat, mut f: F, tol: f32) {
        let eps = 1e-3;
        for idx in 0..x.len() {
            let mut plus = x.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = x.clone();
            minus.as_mut_slice()[idx] -= eps;
            let numeric = (f(&plus) - f(&minus)) / (2.0 * eps);
            let a = analytic.as_slice()[idx];
            assert!(
                (numeric - a).abs() < tol,
                "finite diff mismatch at {idx}: numeric={numeric}, analytic={a}"
            );
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[-1.0, 0.0, 1.0]]);
        let p = softmax_rows(&logits);
        for r in 0..p.rows() {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(p.get(0, 2) > p.get(0, 1));
    }

    #[test]
    fn log_softmax_matches_softmax() {
        let row = [0.5f32, -1.0, 2.0, 0.0];
        let lp = log_softmax(&row);
        let mut sm = row.to_vec();
        softmax_in_place(&mut sm);
        for (l, s) in lp.iter().zip(sm.iter()) {
            assert!((l.exp() - s).abs() < 1e-6);
        }
    }

    #[test]
    fn silu_grad_matches_finite_difference() {
        for &x in &[-3.0f32, -0.5, 0.0, 0.7, 2.5] {
            let eps = 1e-3;
            let numeric = (silu(x + eps) - silu(x - eps)) / (2.0 * eps);
            assert!((numeric - silu_grad(x)).abs() < 1e-3);
        }
    }

    #[test]
    fn rmsnorm_backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Mat::random_uniform(3, 5, 1.0, &mut rng);
        let gain: Vec<f32> = (0..5).map(|i| 0.8 + 0.1 * i as f32).collect();
        let d_out = Mat::random_uniform(3, 5, 1.0, &mut rng);
        let (_, cache) = rmsnorm_forward(&x, &gain);
        let (d_x, _) = rmsnorm_backward(&cache, &gain, &d_out);
        let loss = |m: &Mat| {
            let (y, _) = rmsnorm_forward(m, &gain);
            y.as_slice()
                .iter()
                .zip(d_out.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        finite_diff_check(&x, &d_x, loss, 2e-2);
    }

    #[test]
    fn swiglu_backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(8);
        let x = Mat::random_uniform(2, 4, 0.5, &mut rng);
        let w_gate = Mat::random_uniform(4, 6, 0.5, &mut rng);
        let w_up = Mat::random_uniform(4, 6, 0.5, &mut rng);
        let w_down = Mat::random_uniform(6, 4, 0.5, &mut rng);
        let d_out = Mat::random_uniform(2, 4, 1.0, &mut rng);
        let (_, cache) = swiglu_forward(&x, &w_gate, &w_up, &w_down);
        let grads = swiglu_backward(&cache, &w_gate, &w_up, &w_down, &d_out);
        let loss = |m: &Mat| {
            let (y, _) = swiglu_forward(m, &w_gate, &w_up, &w_down);
            y.as_slice()
                .iter()
                .zip(d_out.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        finite_diff_check(&x, &grads.d_input, loss, 3e-2);
    }

    #[test]
    fn swiglu_weight_grads_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(9);
        let x = Mat::random_uniform(2, 3, 0.5, &mut rng);
        let w_gate = Mat::random_uniform(3, 4, 0.5, &mut rng);
        let w_up = Mat::random_uniform(3, 4, 0.5, &mut rng);
        let w_down = Mat::random_uniform(4, 3, 0.5, &mut rng);
        let d_out = Mat::random_uniform(2, 3, 1.0, &mut rng);
        let (_, cache) = swiglu_forward(&x, &w_gate, &w_up, &w_down);
        let grads = swiglu_backward(&cache, &w_gate, &w_up, &w_down, &d_out);
        let loss = |wg: &Mat| {
            let (y, _) = swiglu_forward(&x, wg, &w_up, &w_down);
            y.as_slice()
                .iter()
                .zip(d_out.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        finite_diff_check(&w_gate, &grads.d_w_gate, loss, 3e-2);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(10);
        let logits = Mat::random_uniform(3, 5, 1.0, &mut rng);
        let targets = vec![0usize, 3, 4];
        let (_, grad) = cross_entropy(&logits, &targets);
        let loss = |m: &Mat| cross_entropy(m, &targets).0;
        finite_diff_check(&logits, &grad, loss, 1e-2);
    }

    #[test]
    fn cross_entropy_decreases_with_confident_correct_prediction() {
        let confident = Mat::from_rows(&[&[10.0, 0.0, 0.0]]);
        let uncertain = Mat::from_rows(&[&[0.1, 0.0, 0.0]]);
        let (l1, _) = cross_entropy(&confident, &[0]);
        let (l2, _) = cross_entropy(&uncertain, &[0]);
        assert!(l1 < l2);
    }

    #[test]
    fn smooth_l1_zero_at_equal_inputs() {
        let a = Mat::from_rows(&[&[1.0, -2.0, 3.0]]);
        let (loss, grad) = smooth_l1(&a, &a);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.max_abs(), 0.0);
    }

    #[test]
    fn top_k_accuracy_basic() {
        let logits = Mat::from_rows(&[&[5.0, 1.0, 0.0], &[0.0, 1.0, 5.0]]);
        assert_eq!(top_k_accuracy(&logits, &[0, 0], 1), 0.5);
        assert_eq!(top_k_accuracy(&logits, &[0, 0], 3), 1.0);
    }

    #[test]
    fn into_variants_match_allocating_forms() {
        let mut rng = StdRng::seed_from_u64(12);
        let x = Mat::random_uniform(3, 6, 1.0, &mut rng);
        let gain: Vec<f32> = (0..6).map(|i| 0.9 + 0.05 * i as f32).collect();
        let (expected, _) = rmsnorm_forward(&x, &gain);
        let mut out = Mat::full(3, 6, 9.0);
        rmsnorm_into(&x, &gain, &mut out);
        assert_eq!(out, expected);

        let row = [0.5f32, -1.0, 2.0, 0.0];
        let mut buf = [9.0f32; 4];
        log_softmax_into(&row, &mut buf);
        assert_eq!(buf.to_vec(), log_softmax(&row));
    }

    #[test]
    fn softmax_backward_rows_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(11);
        let logits = Mat::random_uniform(2, 4, 1.0, &mut rng);
        let d_probs = Mat::random_uniform(2, 4, 1.0, &mut rng);
        let probs = softmax_rows(&logits);
        let d_logits = softmax_backward_rows(&probs, &d_probs);
        let loss = |m: &Mat| {
            let p = softmax_rows(m);
            p.as_slice()
                .iter()
                .zip(d_probs.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        finite_diff_check(&logits, &d_logits, loss, 1e-2);
    }
}
