//! Derived million-request trace: committed **by derivation**, not by bytes.
//!
//! A million-request TLTR file is ~6.5 MB — too heavy to commit, but cheap to
//! re-derive: [`write_derived_trace`] builds it as a pure function of the four
//! corpus presets, so CI regenerates it on every run and pins the result with
//! [`MILLION_CHECKSUM`]. The recipe:
//!
//! 1. Cycle through the corpus presets round-robin, one *tile* per preset
//!    visit. Each tile is the preset rate-scaled ×2 (fatter batches keep the
//!    replay wall-time down at the million scale) and tenant-shuffled with a
//!    seed derived from the tile index, so no two tiles carry the same
//!    payload sequence.
//! 2. Time-shift each tile past the previous tile's span plus a fixed
//!    1000-tick gap, keeping the stream time-sorted.
//! 3. Stream arrivals straight into a [`TraceWriter`] and cut at exactly
//!    [`MILLION_REQUESTS`] — the full arrival vector never exists in memory
//!    on the generator side either.
//!
//! Every step is deterministic (seeded shuffles, integer tick arithmetic), so
//! the checksum is as stable as the corpus builders it derives from — any
//! corpus or transform change shows up as a checksum mismatch in CI.

use crate::corpus::{CorpusPreset, CORPUS_TICK_NS};
use crate::format::{Trace, TraceError};
use crate::stream::TraceWriter;
use std::io::Write;
use tlt_workload::RequestArrival;

/// Number of requests in the derived trace.
pub const MILLION_REQUESTS: u64 = 1_000_000;

/// Pinned FNV-1a 64 checksum of the derived [`MILLION_REQUESTS`]-request
/// trace. CI regenerates the trace and fails on any drift.
pub const MILLION_CHECKSUM: u64 = 0xb459_834a_9c78_ea07;

/// Ticks of silence inserted between consecutive tiles.
const TILE_GAP_TICKS: u64 = 1_000;

/// Per-tile shuffle seed: a fixed odd multiplier spreads the tile index
/// across the seed space (splitmix-style), so neighbouring tiles draw
/// unrelated permutations.
fn tile_seed(tile: u64) -> u64 {
    0x9e37_79b9_7f4a_7c15u64.wrapping_mul(tile + 1) ^ 0x0051_7eed
}

/// Streams the derived trace into `sink` (TLTR bytes, `requests` records) and
/// returns its checksum. `write_derived_trace(sink, MILLION_REQUESTS)` is the
/// canonical million-request stream pinned by [`MILLION_CHECKSUM`]; smaller
/// counts produce prefixes of the same arrival sequence (with the count and
/// checksum in the header/trailer adjusted accordingly) and are used by the
/// determinism tests to keep test time bounded.
pub fn write_derived_trace<W: Write>(sink: W, requests: u64) -> Result<u64, TraceError> {
    let presets = CorpusPreset::all();
    // Rate-scaling is tile-invariant, so the four scaled bases are built once;
    // only the cheap per-tile shuffle runs inside the loop.
    let bases: Vec<Trace> = presets.iter().map(|p| p.build().rate_scaled(2.0)).collect();
    let name = format!("derived-million-x{}", requests);
    let mut writer = TraceWriter::new(sink, &name, CORPUS_TICK_NS, requests)?;
    let mut written = 0u64;
    let mut offset_ticks = 0u64;
    let mut tile = 0u64;
    while written < requests {
        let base = &bases[(tile % bases.len() as u64) as usize];
        let shuffled = base.tenant_shuffled(tile_seed(tile));
        let mut last_ticks = 0u64;
        for a in shuffled.arrivals() {
            if written == requests {
                break;
            }
            let ticks = offset_ticks + a.time_ns / CORPUS_TICK_NS;
            writer.push(&RequestArrival {
                time_ns: ticks * CORPUS_TICK_NS,
                ..*a
            })?;
            last_ticks = ticks;
            written += 1;
        }
        offset_ticks = last_ticks + TILE_GAP_TICKS;
        tile += 1;
    }
    writer.finish()
}

/// Checksum of the derived `requests`-request trace without keeping any of
/// its bytes (the writer hashes as it encodes into a discarding sink).
pub fn derived_trace_checksum(requests: u64) -> u64 {
    write_derived_trace(std::io::sink(), requests).expect("sink writes cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::TraceReader;

    #[test]
    fn derived_slices_are_deterministic_and_stream_clean() {
        let mut bytes = Vec::new();
        let checksum = write_derived_trace(&mut bytes, 10_000).unwrap();
        assert_eq!(checksum, derived_trace_checksum(10_000));

        let mut reader = TraceReader::open(&bytes[..]).unwrap();
        assert_eq!(reader.request_count(), 10_000);
        assert_eq!(reader.tick_ns(), CORPUS_TICK_NS);
        let mut count = 0u64;
        let mut prev_ns = 0u64;
        let mut tiles_seen = 0;
        while let Some(a) = reader.next_arrival().unwrap() {
            assert_eq!(a.id, count);
            assert!(a.time_ns >= prev_ns, "stream must stay time-sorted");
            if a.time_ns > prev_ns && a.time_ns - prev_ns >= TILE_GAP_TICKS * CORPUS_TICK_NS {
                tiles_seen += 1;
            }
            prev_ns = a.time_ns;
            count += 1;
        }
        assert_eq!(count, 10_000);
        // 10k requests span several tiles of the four scaled presets.
        assert!(tiles_seen >= 2, "expected multiple tiles, saw {tiles_seen}");
    }

    #[test]
    fn different_tiles_use_different_shuffles() {
        assert_ne!(tile_seed(0), tile_seed(1));
        let mut bytes = Vec::new();
        write_derived_trace(&mut bytes, 5_000).unwrap();
        let trace = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(trace.arrivals().len(), 5_000);
    }
}

#[cfg(test)]
mod full {
    /// Full-scale pin; ignored by default (seconds of work in release, far
    /// slower under dev). CI runs it via the experiments CLI instead.
    #[test]
    #[ignore = "full million-request generation; run in release"]
    fn full_derived_trace_matches_the_pinned_checksum() {
        assert_eq!(
            super::derived_trace_checksum(super::MILLION_REQUESTS),
            super::MILLION_CHECKSUM
        );
    }
}
