//! Minimal text-table reporter used by the experiments binary and benches.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are already formatted strings).
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n=== {} ===\n", self.title));
        let format_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    format!(
                        "{:width$}",
                        c,
                        width = widths.get(i).copied().unwrap_or(c.len())
                    )
                })
                .collect::<Vec<_>>()
                .join(" | ")
        };
        out.push_str(&format_row(&self.header));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders and prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_rows_and_headers() {
        let mut t = Table::new("Demo", &["a", "long header", "c"]);
        t.add_row(vec!["1".into(), "2".into(), "3".into()]);
        t.add_row(vec!["x".into(), "y".into(), "zzzz".into()]);
        let rendered = t.render();
        assert!(rendered.contains("Demo"));
        assert!(rendered.contains("long header"));
        assert!(rendered.contains("zzzz"));
        assert_eq!(t.num_rows(), 2);
    }
}
