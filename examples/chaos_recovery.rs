//! Chaos recovery demo: scripts a failure storm against a 3-replica deployment
//! — a straggler, a mid-run crash with failover, an arrival storm, a corrupt
//! drafter checkpoint, and a restart — then verifies the system invariants all
//! held: every request completed exactly once, KV budgets were respected, the
//! coordinator stayed consistent, and speculative decoding remained lossless
//! through the drafter swap.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example chaos_recovery
//! ```

use tlt::chaos::{run_scenario, Scenario};

fn main() {
    let scenario = Scenario::builder("demo-failure-storm")
        .seed(2026)
        .replicas(3)
        .arrivals(10.0, 12.0)
        .adaptive_sd()
        .slow(1.0, 2, 3.0)
        .preempt_training(2.0)
        .crash(3.0, 1)
        .storm(4.0, 30.0, 2.0)
        .corrupt_checkpoint(5.0)
        .restart(6.5, 1)
        .slow(8.0, 2, 1.0)
        .build();

    println!("scenario : {}", scenario.name);
    println!("schedule : {}", scenario.schedule_label());
    let outcome = run_scenario(&scenario);

    println!("\n--- outcome ---");
    println!("arrivals   : {}", outcome.arrivals);
    println!("completed  : {}", outcome.completed);
    println!("dropped    : {}", outcome.dropped);
    println!(
        "requeued   : {} (failed over to survivors)",
        outcome.requeued
    );
    println!(
        "faults     : {} crash(es), {} restart(s)",
        outcome.crashes, outcome.restarts
    );
    println!(
        "drafter    : {} swap(s), {} corrupt rejected, {} stale rejected, {} rollback(s)",
        outcome.drafter.swaps,
        outcome.drafter.rejected_corrupt,
        outcome.drafter.rejected_stale,
        outcome.drafter.rollbacks
    );
    println!(
        "coordinator: {} promoted, {} failed, {} re-elections",
        outcome.coordinator.workers_promoted,
        outcome.coordinator.workers_failed,
        outcome.coordinator.leader_reelections
    );
    println!(
        "latency    : TTFT p99 {:.3} s | E2E p99 {:.3} s across the storm",
        outcome.report.ttft.p99_s, outcome.report.e2e.p99_s
    );

    println!("\n--- invariants ---");
    for v in &outcome.invariants.violations {
        println!("VIOLATED [{}] {}", v.invariant, v.detail);
    }
    println!("verdict    : {}", outcome.invariants.verdict());
    assert!(
        outcome.invariants.passed(),
        "the demo scenario must pass every invariant"
    );
    assert_eq!(outcome.completed + outcome.dropped, outcome.arrivals);
}
