//! Pluggable load balancers for the multi-replica frontend.

use serde::{Deserialize, Serialize};

/// Which policy the frontend uses to route an arriving request to a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BalancerPolicy {
    /// Cycle through replicas in arrival order.
    RoundRobin,
    /// Route to the replica with the fewest requests (queued + running).
    JoinShortestQueue,
    /// Route to the replica with the fewest outstanding tokens (prompt tokens still
    /// to prefill plus output tokens still to decode).
    LeastOutstandingTokens,
}

impl BalancerPolicy {
    /// All policies, in presentation order.
    pub fn all() -> [BalancerPolicy; 3] {
        [
            BalancerPolicy::RoundRobin,
            BalancerPolicy::JoinShortestQueue,
            BalancerPolicy::LeastOutstandingTokens,
        ]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            BalancerPolicy::RoundRobin => "round-robin",
            BalancerPolicy::JoinShortestQueue => "join-shortest-queue",
            BalancerPolicy::LeastOutstandingTokens => "least-outstanding-tokens",
        }
    }
}

/// A replica's load as observed by the balancer at dispatch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct ReplicaLoad {
    /// Requests waiting in the admission queue.
    pub queued: usize,
    /// Requests currently running (prefilled or prefilling).
    pub running: usize,
    /// Prompt tokens still to prefill plus output tokens still to decode.
    pub outstanding_tokens: u64,
}

impl ReplicaLoad {
    /// Total requests on the replica.
    pub fn total_requests(&self) -> usize {
        self.queued + self.running
    }
}

/// Stateful dispatcher implementing a [`BalancerPolicy`].
#[derive(Debug, Clone)]
pub struct LoadBalancer {
    policy: BalancerPolicy,
    rr_next: usize,
}

impl LoadBalancer {
    /// Creates a balancer with the given policy.
    pub fn new(policy: BalancerPolicy) -> Self {
        LoadBalancer { policy, rr_next: 0 }
    }

    /// The policy in use.
    pub fn policy(&self) -> BalancerPolicy {
        self.policy
    }

    /// Picks the replica index for the next request. Ties are broken by the lowest
    /// index so routing is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `loads` is empty.
    pub fn pick(&mut self, loads: &[ReplicaLoad]) -> usize {
        assert!(!loads.is_empty(), "need at least one replica");
        match self.policy {
            BalancerPolicy::RoundRobin => {
                let idx = self.rr_next % loads.len();
                self.rr_next = (self.rr_next + 1) % loads.len();
                idx
            }
            BalancerPolicy::JoinShortestQueue => loads
                .iter()
                .enumerate()
                .min_by_key(|(i, l)| (l.total_requests(), *i))
                .map(|(i, _)| i)
                .expect("non-empty"),
            BalancerPolicy::LeastOutstandingTokens => loads
                .iter()
                .enumerate()
                .min_by_key(|(i, l)| (l.outstanding_tokens, *i))
                .map(|(i, _)| i)
                .expect("non-empty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(queued: usize, running: usize, tokens: u64) -> ReplicaLoad {
        ReplicaLoad {
            queued,
            running,
            outstanding_tokens: tokens,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut lb = LoadBalancer::new(BalancerPolicy::RoundRobin);
        let loads = vec![ReplicaLoad::default(); 3];
        assert_eq!(
            (0..6).map(|_| lb.pick(&loads)).collect::<Vec<_>>(),
            vec![0, 1, 2, 0, 1, 2]
        );
    }

    #[test]
    fn jsq_picks_fewest_requests_with_low_index_ties() {
        let mut lb = LoadBalancer::new(BalancerPolicy::JoinShortestQueue);
        assert_eq!(lb.pick(&[load(2, 2, 0), load(0, 3, 0), load(4, 0, 0)]), 1);
        // Tie between 0 and 2 resolves to 0.
        assert_eq!(lb.pick(&[load(1, 1, 0), load(2, 1, 0), load(0, 2, 0)]), 0);
    }

    #[test]
    fn least_outstanding_tokens_ignores_request_counts() {
        let mut lb = LoadBalancer::new(BalancerPolicy::LeastOutstandingTokens);
        // Replica 1 has many small requests; replica 0 one huge request.
        assert_eq!(lb.pick(&[load(0, 1, 50_000), load(5, 5, 2_000)]), 1);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_loads_panic() {
        LoadBalancer::new(BalancerPolicy::RoundRobin).pick(&[]);
    }
}
