//! Online serving pipeline: wires `tlt-workload` arrival streams into the
//! `tlt-serve` subsystem and compares speculative-decoding policies under
//! time-varying open-loop load.
//!
//! This is the serving-side counterpart of [`crate::pipeline`]: instead of
//! simulating closed-loop RL steps it drives a multi-replica deployment with
//! Poisson arrivals and reports SLO metrics (TTFT / TPOT / E2E percentiles,
//! goodput, utilisation) per SD policy. The elastic-SD insight of the paper — SD
//! only pays off below a batch-size threshold — becomes a load-dependent serving
//! policy here, so the adaptive manager is expected to dominate both "never
//! speculate" and "always speculate" across a rate sweep.

use serde::Serialize;
use tlt_gpusim::{GpuType, LlmCostModel};
use tlt_model::ModelSpec;
use tlt_rollout::{SdManagerConfig, SdMode, SdStrategy};
use tlt_serve::{
    simulate_serving, BalancerPolicy, KvAccounting, ServeConfig, ServeReport, SloSpec,
};
use tlt_workload::{
    generate_arrivals, ArrivalConfig, LengthDistribution, RateCurve, SharedPrefixSpec,
};

/// Speculative-decoding policy compared by the serving experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ServingSdPolicy {
    /// Vanilla decoding on every step (the no-SD baseline).
    Disabled,
    /// The default SD strategy forced on for every decode step.
    StaticAlwaysOn,
    /// The adaptive manager: elastic activation on live load + BEG-MAB strategy
    /// selection.
    Adaptive,
}

impl ServingSdPolicy {
    /// All policies, in presentation order.
    pub fn all() -> [ServingSdPolicy; 3] {
        [
            ServingSdPolicy::Disabled,
            ServingSdPolicy::StaticAlwaysOn,
            ServingSdPolicy::Adaptive,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ServingSdPolicy::Disabled => "No SD",
            ServingSdPolicy::StaticAlwaysOn => "Static SD (always on)",
            ServingSdPolicy::Adaptive => "Adaptive SD (ours)",
        }
    }

    /// The `tlt-serve` SD mode implementing this policy.
    pub fn sd_mode(&self) -> SdMode {
        match self {
            ServingSdPolicy::Disabled => SdMode::Disabled,
            ServingSdPolicy::StaticAlwaysOn => SdMode::Static {
                strategy: SdStrategy::default(),
                threshold: usize::MAX,
            },
            ServingSdPolicy::Adaptive => SdMode::Adaptive {
                config: SdManagerConfig::default(),
            },
        }
    }
}

/// Configuration of one serving experiment: a deployment plus an arrival stream.
#[derive(Debug, Clone, Serialize)]
pub struct ServingExperimentConfig {
    /// Target model geometry.
    pub model: ModelSpec,
    /// GPU each replica runs on.
    pub gpu: GpuType,
    /// Tensor-parallel degree per replica.
    pub tp: usize,
    /// Number of replicas behind the frontend.
    pub replicas: usize,
    /// Request routing policy.
    pub balancer: BalancerPolicy,
    /// Time-varying arrival rate.
    pub curve: RateCurve,
    /// Arrival horizon in simulated seconds.
    pub horizon_s: f64,
    /// Prompt lengths (uniform, inclusive).
    pub prompt_len_range: (usize, usize),
    /// Long-tail output-length distribution.
    pub output_lengths: LengthDistribution,
    /// Per-request output cap (drives conservative KV admission).
    pub max_output_tokens: usize,
    /// KV accounting granularity on every replica (flat tokens or paged
    /// blocks with prefix sharing).
    pub kv_accounting: KvAccounting,
    /// Shared system prompt carried by a fraction of the requests.
    pub prefix: Option<SharedPrefixSpec>,
    /// Latency SLO for goodput accounting.
    pub slo: SloSpec,
    /// Seed for the arrival stream and the replicas' tuners.
    pub seed: u64,
}

impl ServingExperimentConfig {
    /// A Qwen-7B / H100 deployment under bursty load at the given mean rate: the
    /// burst phase pushes replicas above the elastic threshold while the quiet
    /// phase drains below it, which is exactly where adaptive SD shines.
    pub fn qwen7b_bursty(replicas: usize, mean_rps: f64) -> Self {
        ServingExperimentConfig {
            model: ModelSpec::qwen2_5_7b(),
            gpu: GpuType::H100,
            tp: 1,
            replicas,
            balancer: BalancerPolicy::JoinShortestQueue,
            // 25% of each period at 3x the base rate (mean = base * 1.5).
            curve: RateCurve::Bursty {
                base_rps: mean_rps / 1.5,
                burst_rps: mean_rps * 2.0,
                burst_fraction: 0.25,
                period_s: 20.0,
            },
            horizon_s: 60.0,
            prompt_len_range: (256, 768),
            output_lengths: LengthDistribution::LongTailMixture {
                mu: 5.3,
                sigma: 0.9,
                truncation_mass: 0.02,
                max_len: 2048,
            },
            max_output_tokens: 2048,
            kv_accounting: KvAccounting::Tokens,
            prefix: None,
            slo: SloSpec {
                ttft_s: 1.0,
                tpot_s: 0.02,
            },
            seed: 2026,
        }
    }

    /// Switches the deployment to paged (block-granular) KV accounting and
    /// gives `share` of the requests a shared system prompt of `prefix_len`
    /// tokens — the configuration behind `experiments -- serving
    /// --prefix-share`.
    pub fn with_prefix_share(mut self, share: f64, prefix_len: usize) -> Self {
        assert!((0.0..=1.0).contains(&share), "share must be in [0, 1]");
        self.kv_accounting = KvAccounting::Paged { block_size: 16 };
        self.prefix = Some(SharedPrefixSpec {
            share,
            len: prefix_len,
        });
        self
    }

    /// The arrival stream this experiment serves.
    pub fn arrivals(&self) -> Vec<tlt_workload::RequestArrival> {
        generate_arrivals(&ArrivalConfig {
            curve: self.curve,
            horizon_s: self.horizon_s,
            prompt_len_range: self.prompt_len_range,
            output_lengths: self.output_lengths.clone(),
            prefix: self.prefix,
            seed: self.seed,
        })
    }

    /// The `tlt-serve` deployment config under the given SD policy.
    pub fn serve_config(&self, policy: ServingSdPolicy) -> ServeConfig {
        let cost = LlmCostModel::new(self.model.clone(), self.gpu.spec(), self.tp);
        let mut config = ServeConfig::new(cost, self.replicas)
            .with_balancer(self.balancer)
            .with_sd_mode(policy.sd_mode());
        config.max_output_tokens = self.max_output_tokens;
        config.kv_accounting = self.kv_accounting;
        config.slo = self.slo;
        config.seed = self.seed;
        config
    }
}

/// Runs one serving experiment under one SD policy.
pub fn run_serving(config: &ServingExperimentConfig, policy: ServingSdPolicy) -> ServeReport {
    let arrivals = config.arrivals();
    simulate_serving(&config.serve_config(policy), &arrivals)
}

/// Runs the same arrival stream under all three SD policies.
pub fn run_serving_comparison(
    config: &ServingExperimentConfig,
) -> Vec<(ServingSdPolicy, ServeReport)> {
    let arrivals = config.arrivals();
    ServingSdPolicy::all()
        .into_iter()
        .map(|policy| {
            (
                policy,
                simulate_serving(&config.serve_config(policy), &arrivals),
            )
        })
        .collect()
}

/// Serves one arrival stream — `share` of the requests carrying a
/// `prefix_len`-token system prompt — twice at a deliberately tight KV
/// budget: once with paged block accounting (shared blocks charged once,
/// prefill only for novel tokens) and once with the legacy flat token budget.
/// Returns `(paged, tokens)` reports; with meaningful sharing the paged run
/// admits more concurrent requests and posts the higher goodput.
pub fn run_prefix_sharing_comparison(
    replicas: usize,
    mean_rps: f64,
    share: f64,
    prefix_len: usize,
) -> (ServeReport, ServeReport) {
    let config = ServingExperimentConfig::qwen7b_bursty(replicas, mean_rps)
        .with_prefix_share(share, prefix_len);
    let arrivals = config.arrivals();
    let tighten = |mut c: ServeConfig| {
        // A quarter of the GPU for weights+KV makes memory the binding
        // resource, which is exactly where admission policy matters.
        c.kv_memory_fraction = 0.25;
        c
    };
    let paged = simulate_serving(
        &tighten(config.serve_config(ServingSdPolicy::Disabled)),
        &arrivals,
    );
    let mut token_config = config.clone();
    token_config.kv_accounting = KvAccounting::Tokens;
    let tokens = simulate_serving(
        &tighten(token_config.serve_config(ServingSdPolicy::Disabled)),
        &arrivals,
    );
    (paged, tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_serves_every_request_under_all_policies() {
        let config = ServingExperimentConfig::qwen7b_bursty(2, 4.0);
        let n = config.arrivals().len();
        assert!(n > 50, "stream too small: {n}");
        for (policy, report) in run_serving_comparison(&config) {
            assert_eq!(
                report.completed.len(),
                n,
                "{}: lost requests",
                policy.name()
            );
        }
    }

    #[test]
    fn adaptive_policy_dominates_at_a_moderate_rate() {
        // The acceptance-shape claim: at a rate oscillating around the elastic
        // threshold, adaptive SD beats No-SD *and* always-on SD on tail TTFT
        // or goodput.
        let config = ServingExperimentConfig::qwen7b_bursty(2, 10.0);
        let results = run_serving_comparison(&config);
        let get = |p: ServingSdPolicy| {
            results
                .iter()
                .find(|(q, _)| *q == p)
                .map(|(_, r)| r)
                .expect("policy present")
        };
        let disabled = get(ServingSdPolicy::Disabled);
        let always = get(ServingSdPolicy::StaticAlwaysOn);
        let adaptive = get(ServingSdPolicy::Adaptive);
        let beats_on_ttft =
            adaptive.ttft.p99_s < disabled.ttft.p99_s && adaptive.ttft.p99_s < always.ttft.p99_s;
        let beats_on_goodput = adaptive.goodput_rps > disabled.goodput_rps
            && adaptive.goodput_rps > always.goodput_rps;
        assert!(
            beats_on_ttft || beats_on_goodput,
            "adaptive must win on p99 TTFT or goodput: ttft {a:.3}/{d:.3}/{s:.3}, goodput {ag:.3}/{dg:.3}/{sg:.3}",
            a = adaptive.ttft.p99_s,
            d = disabled.ttft.p99_s,
            s = always.ttft.p99_s,
            ag = adaptive.goodput_rps,
            dg = disabled.goodput_rps,
            sg = always.goodput_rps,
        );
    }

    #[test]
    fn paged_prefix_sharing_beats_token_admission_on_goodput() {
        // The acceptance criterion of the paged-KV refactor: at a fixed KV
        // budget with >= 50% of requests sharing a system prompt, block
        // admission with prefix sharing completes the same work with higher
        // goodput than the flat token budget.
        let (paged, tokens) = run_prefix_sharing_comparison(1, 16.0, 0.6, 768);
        assert_eq!(
            paged.completed.len(),
            tokens.completed.len(),
            "both policies must serve every request"
        );
        assert!(
            paged.goodput_rps > tokens.goodput_rps,
            "paged sharing must win on goodput: {pg} vs {tg}",
            pg = paged.goodput_rps,
            tg = tokens.goodput_rps
        );
        assert!(paged.mean_prefix_hit_rate() > 0.0, "prefix cache never hit");
        let util = paged.mean_pool_utilization();
        assert!(util > 0.0 && util <= 1.0, "pool utilisation {util}");
        assert_eq!(
            tokens.mean_pool_utilization(),
            0.0,
            "token mode has no pool"
        );
    }

    #[test]
    fn serving_pipeline_is_deterministic() {
        let config = ServingExperimentConfig::qwen7b_bursty(2, 6.0);
        let a = run_serving(&config, ServingSdPolicy::Adaptive);
        let b = run_serving(&config, ServingSdPolicy::Adaptive);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.throughput_tokens_per_s, b.throughput_tokens_per_s);
    }
}
