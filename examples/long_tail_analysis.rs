//! Long-tail workload analysis: regenerates the motivation data of Figures 1(a) and 2
//! (response-length distribution, per-step percentiles, under-utilised zone).
//!
//! Run with `cargo run -p tlt --release --example long_tail_analysis`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tlt_workload::{
    length_histogram, synthesize_bytedance_trace, LengthDistribution, LengthStats, TraceConfig,
    TraceSummary,
};

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let lengths = LengthDistribution::paper_fig1().sample_many(10_000, &mut rng);
    let stats = LengthStats::from_lengths(&lengths);
    println!("rollout length distribution (10,000 samples, 30K cap):");
    println!(
        "  p50={:.0}  p75={:.0}  p95={:.0}  max={}  under-utilised fraction={:.2}",
        stats.p50,
        stats.p75,
        stats.p95,
        stats.max,
        stats.underutilized_fraction()
    );
    let (edges, pdf) = length_histogram(&lengths, 30_000, 12);
    for (e, f) in edges.iter().zip(pdf.iter()) {
        let bar = "#".repeat((f * 200.0).round() as usize);
        println!("  <= {e:>6}: {bar}");
    }

    let config = TraceConfig {
        num_steps: 100,
        responses_per_step: 256,
        length_cap: 20_480,
        seed: 2,
    };
    let trace = synthesize_bytedance_trace(config);
    let summary = TraceSummary::from_trace(&trace, config.length_cap);
    println!("\nsynthesised production trace (100 steps):");
    println!(
        "  steps hitting the cap: {:.0}%  mean p75: {:.0}  mean p50: {:.0}  mean under-utilised: {:.2}",
        summary.steps_hitting_cap * 100.0,
        summary.mean_p75,
        summary.mean_p50,
        summary.mean_underutilized
    );
}
