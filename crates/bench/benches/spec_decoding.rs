//! Token-level speculative decoding benchmarks: vanilla vs speculative generation on
//! the tiny-model substrate (the mechanism behind every SD result in the paper).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tlt_draft::{DraftModel, FeatureSource};
use tlt_model::{ModelConfig, SamplingParams, TinyLm};
use tlt_rollout::{speculative_generate, vanilla_generate, SdStrategy, SpecDrafter};

fn bench_generation(c: &mut Criterion) {
    let target = TinyLm::new(ModelConfig::tiny(), 11);
    let drafter = DraftModel::new(&target, FeatureSource::LastLayer, 12);
    let prompt = [1u32, 5, 9, 2];
    let params = SamplingParams::greedy();
    let mut group = c.benchmark_group("token_level_generation");
    group.sample_size(10);
    group.bench_function("vanilla_64_tokens", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(0);
            vanilla_generate(&target, &prompt, 64, params, None, &mut rng)
        })
    });
    group.bench_function("speculative_64_tokens", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(0);
            speculative_generate(
                &target,
                &SpecDrafter::Learned(&drafter),
                &prompt,
                64,
                SdStrategy::default(),
                params,
                None,
                &mut rng,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
