//! Shape-class kernel dispatch for the matmul micro-kernels.
//!
//! PR 3's register-tiled kernels used one fixed tile ladder (64/32/16) chosen
//! for the dev machine. This module makes kernel selection a *dispatched*
//! decision instead of a compile-time constant: every
//! `matmul`/`matmul_transposed`/`transposed_matmul` call is classified into a
//! [`ShapeClass`] (decode mat-vec, small/large GEMM, long-context reduction)
//! and routed through a process-wide [`DispatchTable`] that names one kernel
//! variant per (operation, shape class) pair.
//!
//! Every variant is **bit-identical** to the naive i-k-j reference: per output
//! element the shared dimension `k` always advances in strictly increasing
//! order and dot products always use the same 8-lane layout and pairwise
//! reduction, so the table only changes *speed*, never results (enforced by
//! the `dispatch_equivalence` proptest suite). The table itself is a bank of
//! atomics — installing a profile is a handful of relaxed stores and looking a
//! kernel up is one relaxed load, so steady-state decode stays allocation-free
//! and the table can be swapped at runtime (e.g. by the micro-autotuner in
//! [`mod@crate::autotune`]) without locking.

use std::sync::atomic::{AtomicU8, Ordering};

/// Number of shape classes (the width of each per-op dispatch row).
pub const NUM_SHAPE_CLASSES: usize = 4;

/// `k` at or above this length classifies as a long-context reduction
/// (attention rows over a long KV history, long-k training contractions).
pub const LONG_K_THRESHOLD: usize = 512;

/// Output cells (`rows * n`) at or below this classify as a small GEMM.
pub const SMALL_GEMM_CELLS: usize = 64 * 64;

/// Shape class of one matmul-family call, derived from `(rows, k, n)` where
/// `rows x k` contracts against `k x n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ShapeClass {
    /// Long shared dimension (`k >= LONG_K_THRESHOLD`), any row count: the
    /// long-context attention / long-k contraction profile.
    LongK = 0,
    /// Single output row (`rows == 1`): the decode mat-vec profile.
    MatVec = 1,
    /// At most [`SMALL_GEMM_CELLS`] output cells: small prefill / drafter GEMM.
    SmallGemm = 2,
    /// Everything larger: prefill and training GEMMs.
    LargeGemm = 3,
}

impl ShapeClass {
    /// All classes, in dispatch-row order.
    pub fn all() -> [ShapeClass; NUM_SHAPE_CLASSES] {
        [
            ShapeClass::LongK,
            ShapeClass::MatVec,
            ShapeClass::SmallGemm,
            ShapeClass::LargeGemm,
        ]
    }

    /// Classifies a `rows x k` by `k x n` contraction.
    #[inline]
    pub fn classify(rows: usize, k: usize, n: usize) -> ShapeClass {
        if k >= LONG_K_THRESHOLD {
            ShapeClass::LongK
        } else if rows == 1 {
            ShapeClass::MatVec
        } else if rows.saturating_mul(n) <= SMALL_GEMM_CELLS {
            ShapeClass::SmallGemm
        } else {
            ShapeClass::LargeGemm
        }
    }

    /// Stable profile-file name.
    pub fn name(self) -> &'static str {
        match self {
            ShapeClass::LongK => "long_k",
            ShapeClass::MatVec => "matvec",
            ShapeClass::SmallGemm => "small_gemm",
            ShapeClass::LargeGemm => "large_gemm",
        }
    }

    /// Parses a profile-file name.
    pub fn from_name(name: &str) -> Option<ShapeClass> {
        ShapeClass::all().into_iter().find(|c| c.name() == name)
    }
}

/// Kernel variant for the row-product family (`matmul`: each output row is
/// `a_row * B`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RowKernel {
    /// Register-tile ladder with 64-wide top tiles (the PR 3 fixed kernel).
    Tiled64 = 0,
    /// Ladder topping out at 32-wide tiles (less register/stack pressure).
    Tiled32 = 1,
    /// Ladder topping out at 16-wide tiles.
    Tiled16 = 2,
    /// Ladder topping out at 128-wide tiles (streams longer B segments).
    Tiled128 = 3,
    /// k-outer AXPY: zero the output row, then stream each B row once,
    /// `out += a[k] * B[k, :]`. Perfectly sequential B traffic; the
    /// specialised `rows == 1` mat-vec path.
    Axpy = 4,
    /// 64-wide ladder with the shared dimension blocked at
    /// [`K_BLOCK`](crate::tensor::K_BLOCK) rows per pass, so each pass's B
    /// working set stays cache-resident on long-k shapes.
    KBlocked64 = 5,
}

impl RowKernel {
    /// All variants, in autotune candidate order (default first).
    pub fn all() -> [RowKernel; 6] {
        [
            RowKernel::Tiled64,
            RowKernel::Tiled32,
            RowKernel::Tiled16,
            RowKernel::Tiled128,
            RowKernel::Axpy,
            RowKernel::KBlocked64,
        ]
    }

    /// Stable profile-file name.
    pub fn name(self) -> &'static str {
        match self {
            RowKernel::Tiled64 => "tiled64",
            RowKernel::Tiled32 => "tiled32",
            RowKernel::Tiled16 => "tiled16",
            RowKernel::Tiled128 => "tiled128",
            RowKernel::Axpy => "axpy",
            RowKernel::KBlocked64 => "kblocked64",
        }
    }

    /// Parses a profile-file name.
    pub fn from_name(name: &str) -> Option<RowKernel> {
        RowKernel::all().into_iter().find(|v| v.name() == name)
    }

    fn from_u8(v: u8) -> RowKernel {
        RowKernel::all()
            .into_iter()
            .find(|k| *k as u8 == v)
            .unwrap_or(RowKernel::Tiled64)
    }
}

/// Kernel variant for the dot-product family (`matmul_transposed`: every
/// output element is an independent dot product of two rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum DotKernel {
    /// Four dot products per pass over the left row (the PR 3 fixed kernel).
    Dot4 = 0,
    /// One dot product at a time (lowest register pressure).
    Dot1 = 1,
    /// Eight dot products per pass (amortises the left-row loads further).
    Dot8 = 2,
}

impl DotKernel {
    /// All variants, in autotune candidate order (default first).
    pub fn all() -> [DotKernel; 3] {
        [DotKernel::Dot4, DotKernel::Dot1, DotKernel::Dot8]
    }

    /// Stable profile-file name.
    pub fn name(self) -> &'static str {
        match self {
            DotKernel::Dot4 => "dot4",
            DotKernel::Dot1 => "dot1",
            DotKernel::Dot8 => "dot8",
        }
    }

    /// Parses a profile-file name.
    pub fn from_name(name: &str) -> Option<DotKernel> {
        DotKernel::all().into_iter().find(|v| v.name() == name)
    }

    fn from_u8(v: u8) -> DotKernel {
        DotKernel::all()
            .into_iter()
            .find(|k| *k as u8 == v)
            .unwrap_or(DotKernel::Dot4)
    }
}

/// Kernel variant for the column-product family (`transposed_matmul`: each
/// output row weights B's rows by one strided column of A — the training
/// backward-pass contraction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ColKernel {
    /// Register-tile ladder with 64-wide top tiles (the PR 3 fixed kernel).
    Tiled64 = 0,
    /// Ladder topping out at 32-wide tiles.
    Tiled32 = 1,
    /// k-outer AXPY over B rows with the strided A-column gather hoisted.
    Axpy = 2,
    /// 64-wide ladder with the shared dimension blocked at
    /// [`K_BLOCK`](crate::tensor::K_BLOCK) rows per pass.
    KBlocked64 = 3,
}

impl ColKernel {
    /// All variants, in autotune candidate order (default first).
    pub fn all() -> [ColKernel; 4] {
        [
            ColKernel::Tiled64,
            ColKernel::Tiled32,
            ColKernel::Axpy,
            ColKernel::KBlocked64,
        ]
    }

    /// Stable profile-file name.
    pub fn name(self) -> &'static str {
        match self {
            ColKernel::Tiled64 => "tiled64",
            ColKernel::Tiled32 => "tiled32",
            ColKernel::Axpy => "axpy",
            ColKernel::KBlocked64 => "kblocked64",
        }
    }

    /// Parses a profile-file name.
    pub fn from_name(name: &str) -> Option<ColKernel> {
        ColKernel::all().into_iter().find(|v| v.name() == name)
    }

    fn from_u8(v: u8) -> ColKernel {
        ColKernel::all()
            .into_iter()
            .find(|k| *k as u8 == v)
            .unwrap_or(ColKernel::Tiled64)
    }
}

/// The three dispatched matmul families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelOp {
    /// `A * B` (each output row is `a_row * B`).
    RowProduct,
    /// `A * B^T` (independent dot products).
    DotProduct,
    /// `A^T * B` (B's rows weighted by a strided A column).
    ColProduct,
}

impl KernelOp {
    /// All ops, in profile order.
    pub fn all() -> [KernelOp; 3] {
        [
            KernelOp::RowProduct,
            KernelOp::DotProduct,
            KernelOp::ColProduct,
        ]
    }

    /// Stable profile-file name.
    pub fn name(self) -> &'static str {
        match self {
            KernelOp::RowProduct => "row",
            KernelOp::DotProduct => "dot",
            KernelOp::ColProduct => "col",
        }
    }

    /// Parses a profile-file name.
    pub fn from_name(name: &str) -> Option<KernelOp> {
        KernelOp::all().into_iter().find(|o| o.name() == name)
    }
}

/// One full kernel-selection table: a variant per (operation, shape class).
///
/// The default table reproduces PR 3's fixed kernels exactly (64/32/16 tile
/// ladders and 4-wide dot passes for every class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchTable {
    /// Row-product variant per shape class (indexed by `ShapeClass as usize`).
    pub row: [RowKernel; NUM_SHAPE_CLASSES],
    /// Dot-product variant per shape class.
    pub dot: [DotKernel; NUM_SHAPE_CLASSES],
    /// Column-product variant per shape class.
    pub col: [ColKernel; NUM_SHAPE_CLASSES],
}

impl Default for DispatchTable {
    fn default() -> Self {
        DispatchTable {
            row: [RowKernel::Tiled64; NUM_SHAPE_CLASSES],
            dot: [DotKernel::Dot4; NUM_SHAPE_CLASSES],
            col: [ColKernel::Tiled64; NUM_SHAPE_CLASSES],
        }
    }
}

impl DispatchTable {
    /// Flat `(op, class, variant-name)` view in stable profile order.
    pub fn entries(&self) -> Vec<(KernelOp, ShapeClass, &'static str)> {
        let mut out = Vec::with_capacity(3 * NUM_SHAPE_CLASSES);
        for class in ShapeClass::all() {
            out.push((KernelOp::RowProduct, class, self.row[class as usize].name()));
        }
        for class in ShapeClass::all() {
            out.push((KernelOp::DotProduct, class, self.dot[class as usize].name()));
        }
        for class in ShapeClass::all() {
            out.push((KernelOp::ColProduct, class, self.col[class as usize].name()));
        }
        out
    }

    /// Sets the entry named by `(op, class)` from a profile-file variant name.
    /// Returns false (leaving the table unchanged) for an unknown variant.
    pub fn set_by_name(&mut self, op: KernelOp, class: ShapeClass, variant: &str) -> bool {
        let i = class as usize;
        match op {
            KernelOp::RowProduct => match RowKernel::from_name(variant) {
                Some(v) => {
                    self.row[i] = v;
                    true
                }
                None => false,
            },
            KernelOp::DotProduct => match DotKernel::from_name(variant) {
                Some(v) => {
                    self.dot[i] = v;
                    true
                }
                None => false,
            },
            KernelOp::ColProduct => match ColKernel::from_name(variant) {
                Some(v) => {
                    self.col[i] = v;
                    true
                }
                None => false,
            },
        }
    }

    /// Installs this table as the process-wide active dispatch. Lock-free;
    /// concurrent kernels may observe a mix of old and new entries, which is
    /// safe because every variant is bit-identical.
    pub fn install(&self) {
        for class in ShapeClass::all() {
            let i = class as usize;
            ACTIVE_ROW[i].store(self.row[i] as u8, Ordering::Relaxed);
            ACTIVE_DOT[i].store(self.dot[i] as u8, Ordering::Relaxed);
            ACTIVE_COL[i].store(self.col[i] as u8, Ordering::Relaxed);
        }
    }

    /// Reads the currently installed process-wide table.
    pub fn current() -> DispatchTable {
        let mut t = DispatchTable::default();
        for class in ShapeClass::all() {
            let i = class as usize;
            t.row[i] = RowKernel::from_u8(ACTIVE_ROW[i].load(Ordering::Relaxed));
            t.dot[i] = DotKernel::from_u8(ACTIVE_DOT[i].load(Ordering::Relaxed));
            t.col[i] = ColKernel::from_u8(ACTIVE_COL[i].load(Ordering::Relaxed));
        }
        t
    }

    /// Restores the default (PR 3 fixed-kernel) dispatch.
    pub fn reset() {
        DispatchTable::default().install();
    }
}

// The active table. Initialisers are the `= 0` discriminants, i.e. the
// defaults (Tiled64 / Dot4 / Tiled64), so a process that never installs a
// table runs the PR 3 kernels unchanged.
static ACTIVE_ROW: [AtomicU8; NUM_SHAPE_CLASSES] = [const { AtomicU8::new(0) }; NUM_SHAPE_CLASSES];
static ACTIVE_DOT: [AtomicU8; NUM_SHAPE_CLASSES] = [const { AtomicU8::new(0) }; NUM_SHAPE_CLASSES];
static ACTIVE_COL: [AtomicU8; NUM_SHAPE_CLASSES] = [const { AtomicU8::new(0) }; NUM_SHAPE_CLASSES];

/// Active row-product variant for a `rows x k` by `k x n` call.
/// One classification + one relaxed load; allocates nothing.
#[inline]
pub fn active_row_kernel(rows: usize, k: usize, n: usize) -> RowKernel {
    let class = ShapeClass::classify(rows, k, n);
    RowKernel::from_u8(ACTIVE_ROW[class as usize].load(Ordering::Relaxed))
}

/// Active dot-product variant for a `rows x k` by `(n x k)^T` call.
#[inline]
pub fn active_dot_kernel(rows: usize, k: usize, n: usize) -> DotKernel {
    let class = ShapeClass::classify(rows, k, n);
    DotKernel::from_u8(ACTIVE_DOT[class as usize].load(Ordering::Relaxed))
}

/// Active column-product variant for a `(k x rows)^T` by `k x n` call
/// (`rows` is the output row count, `k` the shared row dimension).
#[inline]
pub fn active_col_kernel(rows: usize, k: usize, n: usize) -> ColKernel {
    let class = ShapeClass::classify(rows, k, n);
    ColKernel::from_u8(ACTIVE_COL[class as usize].load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_profiles() {
        assert_eq!(ShapeClass::classify(1, 32, 96), ShapeClass::MatVec);
        assert_eq!(ShapeClass::classify(1, 2048, 64), ShapeClass::LongK);
        assert_eq!(ShapeClass::classify(64, 64, 64), ShapeClass::SmallGemm);
        assert_eq!(ShapeClass::classify(128, 64, 256), ShapeClass::LargeGemm);
        assert_eq!(ShapeClass::classify(20, 96, 32), ShapeClass::SmallGemm);
        // Long k dominates the row count.
        assert_eq!(ShapeClass::classify(8, 512, 8), ShapeClass::LongK);
        // Degenerate shapes classify without panicking.
        assert_eq!(ShapeClass::classify(0, 0, 0), ShapeClass::SmallGemm);
        assert_eq!(
            ShapeClass::classify(usize::MAX, 1, usize::MAX),
            ShapeClass::LargeGemm
        );
    }

    #[test]
    fn names_round_trip_for_every_variant() {
        for op in KernelOp::all() {
            assert_eq!(KernelOp::from_name(op.name()), Some(op));
        }
        for c in ShapeClass::all() {
            assert_eq!(ShapeClass::from_name(c.name()), Some(c));
        }
        for v in RowKernel::all() {
            assert_eq!(RowKernel::from_name(v.name()), Some(v));
        }
        for v in DotKernel::all() {
            assert_eq!(DotKernel::from_name(v.name()), Some(v));
        }
        for v in ColKernel::all() {
            assert_eq!(ColKernel::from_name(v.name()), Some(v));
        }
        assert_eq!(RowKernel::from_name("nope"), None);
    }

    #[test]
    fn install_and_current_round_trip() {
        let mut t = DispatchTable::default();
        t.row[ShapeClass::MatVec as usize] = RowKernel::Axpy;
        t.row[ShapeClass::LongK as usize] = RowKernel::KBlocked64;
        t.dot[ShapeClass::SmallGemm as usize] = DotKernel::Dot8;
        t.col[ShapeClass::LargeGemm as usize] = ColKernel::Tiled32;
        t.install();
        assert_eq!(DispatchTable::current(), t);
        assert_eq!(active_row_kernel(1, 32, 96), RowKernel::Axpy);
        assert_eq!(active_row_kernel(1, 4096, 64), RowKernel::KBlocked64);
        DispatchTable::reset();
        assert_eq!(DispatchTable::current(), DispatchTable::default());
    }

    #[test]
    fn entries_cover_every_op_class_pair() {
        let t = DispatchTable::default();
        let entries = t.entries();
        assert_eq!(entries.len(), 3 * NUM_SHAPE_CLASSES);
        let mut t2 = DispatchTable::default();
        for (op, class, name) in entries {
            assert!(t2.set_by_name(op, class, name));
        }
        assert_eq!(t2, t);
        assert!(!t2.set_by_name(KernelOp::RowProduct, ShapeClass::MatVec, "bogus"));
    }
}
