//! The simulated KV transfer link between the prefill and decode pools of a
//! disaggregated cluster.
//!
//! A migration's wire time is costed from its physical size — block count ×
//! block bytes — over a configurable bandwidth, plus a fixed per-transfer
//! setup latency. The link is a single serial resource: transfers queue behind
//! each other (`free_at_s`), which is what makes the link a real bottleneck a
//! cluster can saturate, and what keeps transfer completion times a pure
//! function of the schedule (bit-identical per seed).

use serde::Serialize;

/// Bandwidth/latency parameters of the pool-to-pool KV link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TransferLinkConfig {
    /// Sustained link bandwidth in gigabytes per second.
    pub bandwidth_gbps: f64,
    /// Fixed per-transfer setup latency in seconds (handshake + block-table
    /// exchange), paid before the first byte moves.
    pub latency_s: f64,
}

impl Default for TransferLinkConfig {
    /// An NVLink-class interconnect: 50 GB/s sustained, 2 ms setup.
    fn default() -> Self {
        TransferLinkConfig {
            bandwidth_gbps: 50.0,
            latency_s: 0.002,
        }
    }
}

impl TransferLinkConfig {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics unless bandwidth is finite and positive and latency is finite
    /// and non-negative.
    pub fn validate(&self) {
        assert!(
            self.bandwidth_gbps.is_finite() && self.bandwidth_gbps > 0.0,
            "link bandwidth must be finite and positive"
        );
        assert!(
            self.latency_s.is_finite() && self.latency_s >= 0.0,
            "link latency must be finite and non-negative"
        );
    }
}

/// The serial transfer link, with its accounting.
#[derive(Debug, Clone)]
pub struct TransferLink {
    config: TransferLinkConfig,
    /// Bytes per KV block (all layers, keys + values), from the model spec.
    block_bytes: f64,
    /// Sim time at which the wire is next free.
    free_at_s: f64,
    transfers: u64,
    blocks_moved: u64,
    busy_s: f64,
    aborted: u64,
}

impl TransferLink {
    /// A link moving blocks of `block_bytes` bytes each.
    pub fn new(config: TransferLinkConfig, block_bytes: usize) -> Self {
        config.validate();
        assert!(block_bytes > 0, "block bytes must be non-zero");
        TransferLink {
            config,
            block_bytes: block_bytes as f64,
            free_at_s: 0.0,
            transfers: 0,
            blocks_moved: 0,
            busy_s: 0.0,
            aborted: 0,
        }
    }

    /// Wire time for one migration of `blocks` blocks.
    pub fn transfer_time_s(&self, blocks: usize) -> f64 {
        self.config.latency_s
            + (blocks as f64 * self.block_bytes) / (self.config.bandwidth_gbps * 1e9)
    }

    /// Schedules a migration submitted at `now`: it starts when the wire frees
    /// up and holds it for the whole transfer. Returns `(start_s, finish_s)`.
    pub fn schedule(&mut self, now: f64, blocks: usize) -> (f64, f64) {
        let start = now.max(self.free_at_s);
        let duration = self.transfer_time_s(blocks);
        let finish = start + duration;
        self.free_at_s = finish;
        self.transfers += 1;
        self.blocks_moved += blocks as u64;
        self.busy_s += duration;
        (start, finish)
    }

    /// Records an in-flight migration abandoned by a source/destination crash.
    /// The wire time already allocated is wasted, not reclaimed.
    pub fn note_abort(&mut self) {
        self.aborted += 1;
    }

    /// Migrations scheduled (including later-aborted ones).
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total blocks scheduled over the wire.
    pub fn blocks_moved(&self) -> u64 {
        self.blocks_moved
    }

    /// Total seconds the wire was held.
    pub fn busy_s(&self) -> f64 {
        self.busy_s
    }

    /// Migrations abandoned mid-wire by a crash.
    pub fn aborted(&self) -> u64 {
        self.aborted
    }

    /// Mean wire time per scheduled migration (0 when none ran).
    pub fn mean_transfer_s(&self) -> f64 {
        if self.transfers == 0 {
            0.0
        } else {
            self.busy_s / self.transfers as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_latency_plus_bytes_over_bandwidth() {
        let link = TransferLink::new(
            TransferLinkConfig {
                bandwidth_gbps: 10.0,
                latency_s: 0.001,
            },
            1_000_000, // 1 MB blocks
        );
        // 100 blocks = 100 MB at 10 GB/s = 10 ms, plus 1 ms latency.
        let t = link.transfer_time_s(100);
        assert!((t - 0.011).abs() < 1e-12, "got {t}");
    }

    #[test]
    fn link_serialises_concurrent_transfers() {
        let mut link = TransferLink::new(
            TransferLinkConfig {
                bandwidth_gbps: 10.0,
                latency_s: 0.0,
            },
            1_000_000,
        );
        let (s1, f1) = link.schedule(0.0, 100); // 10 ms
        let (s2, f2) = link.schedule(0.001, 100); // submitted mid-wire
        assert_eq!(s1, 0.0);
        assert!((f1 - 0.010).abs() < 1e-12);
        assert_eq!(s2, f1, "second transfer waits for the wire");
        assert!((f2 - 0.020).abs() < 1e-12);
        assert_eq!(link.transfers(), 2);
        assert_eq!(link.blocks_moved(), 200);
        assert!((link.busy_s() - 0.020).abs() < 1e-12);
        assert!((link.mean_transfer_s() - 0.010).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_is_rejected() {
        TransferLink::new(
            TransferLinkConfig {
                bandwidth_gbps: 0.0,
                latency_s: 0.0,
            },
            1,
        );
    }
}
