//! End-to-end training-step benchmarks (Figure 11 / Table 3): simulated RL step time
//! of VeRL vs TLT on the reduced-scale configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tlt::{run_experiment, SystemKind};
use tlt_bench::setups::{e2e_config, paper_testbed, Scale};
use tlt_model::ModelSpec;

fn bench_e2e_systems(c: &mut Criterion) {
    let config = e2e_config(ModelSpec::qwen2_5_7b(), paper_testbed(), Scale::Quick);
    let mut group = c.benchmark_group("fig11_e2e_step");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    for system in [SystemKind::Verl, SystemKind::TltBase, SystemKind::Tlt] {
        group.bench_with_input(
            BenchmarkId::from_parameter(system.name()),
            &system,
            |b, &system| b.iter(|| run_experiment(system, &config)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e2e_systems);
criterion_main!(benches);
