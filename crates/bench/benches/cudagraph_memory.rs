//! Table 5 benchmark: planning the CUDAGraph pool under the three capture modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tlt_gpusim::{GpuType, LlmCostModel};
use tlt_model::ModelSpec;
use tlt_rollout::{default_batch_buckets, CaptureMode, CudaGraphPool, SdStrategy};

fn bench_capture_planning(c: &mut Criterion) {
    let cost = LlmCostModel::new(ModelSpec::llama3_8b(), GpuType::H100.spec(), 4);
    let drafter = cost.model.eagle_drafter();
    let strategies = SdStrategy::default_set();
    let buckets = default_batch_buckets();
    let mut group = c.benchmark_group("table5_cudagraph_pool");
    group.sample_size(20);
    for (name, mode) in [
        ("single", CaptureMode::SingleStrategy),
        ("vanilla_multi", CaptureMode::VanillaMultiStrategy),
        ("bucketed", CaptureMode::Bucketed),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            b.iter(|| {
                CudaGraphPool::plan(mode, &strategies, &buckets, &cost, &drafter).total_memory_gb()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_capture_planning);
criterion_main!(benches);
