//! Open-loop request arrival processes for the serving subsystem.
//!
//! The closed-loop engines elsewhere in the repo decode one fixed batch to
//! completion; online serving instead sees requests *arrive over time*. This module
//! provides seeded arrival generators: a (possibly non-homogeneous) Poisson process
//! whose instantaneous rate follows a [`RateCurve`] — constant, diurnal
//! (sinusoidal), or bursty (square-wave) — with per-request prompt lengths and
//! long-tail output lengths drawn from a [`LengthDistribution`]. Everything is a
//! pure function of the seed, like the rest of the workspace.

use crate::longtail::LengthDistribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Instantaneous request-arrival rate as a function of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RateCurve {
    /// Homogeneous Poisson arrivals at a fixed rate (requests per second).
    Constant {
        /// Requests per second.
        rps: f64,
    },
    /// Diurnal load: `mean_rps * (1 + amplitude * sin(2πt / period_s))`.
    Diurnal {
        /// Mean requests per second.
        mean_rps: f64,
        /// Relative swing around the mean, in `[0, 1]`.
        amplitude: f64,
        /// Period of one day-night cycle in simulated seconds.
        period_s: f64,
    },
    /// Bursty load: a square wave spending `burst_fraction` of every period at
    /// `burst_rps` and the remainder at `base_rps`.
    Bursty {
        /// Rate outside bursts (requests per second).
        base_rps: f64,
        /// Rate during bursts (requests per second).
        burst_rps: f64,
        /// Fraction of each period spent bursting, in `(0, 1)`.
        burst_fraction: f64,
        /// Period of the burst cycle in simulated seconds.
        period_s: f64,
    },
}

impl RateCurve {
    /// Instantaneous rate at time `t` (seconds), in requests per second.
    pub fn rate_at(&self, t: f64) -> f64 {
        match *self {
            RateCurve::Constant { rps } => rps,
            RateCurve::Diurnal {
                mean_rps,
                amplitude,
                period_s,
            } => {
                let a = amplitude.clamp(0.0, 1.0);
                mean_rps * (1.0 + a * (2.0 * std::f64::consts::PI * t / period_s).sin())
            }
            RateCurve::Bursty {
                base_rps,
                burst_rps,
                burst_fraction,
                period_s,
            } => {
                let phase = (t % period_s) / period_s;
                if phase < burst_fraction.clamp(0.0, 1.0) {
                    burst_rps
                } else {
                    base_rps
                }
            }
        }
    }

    /// Upper bound on the instantaneous rate (used by the thinning sampler).
    pub fn peak_rate(&self) -> f64 {
        match *self {
            RateCurve::Constant { rps } => rps,
            RateCurve::Diurnal {
                mean_rps,
                amplitude,
                ..
            } => mean_rps * (1.0 + amplitude.clamp(0.0, 1.0)),
            RateCurve::Bursty {
                base_rps,
                burst_rps,
                ..
            } => base_rps.max(burst_rps),
        }
    }

    /// The same curve with every rate multiplied by `factor`, keeping the
    /// temporal shape (period, amplitude, burst fraction) intact — the knob
    /// rate-sweep experiments turn to push one workload shape to 10x load.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "rate scale factor must be finite and positive"
        );
        match *self {
            RateCurve::Constant { rps } => RateCurve::Constant { rps: rps * factor },
            RateCurve::Diurnal {
                mean_rps,
                amplitude,
                period_s,
            } => RateCurve::Diurnal {
                mean_rps: mean_rps * factor,
                amplitude,
                period_s,
            },
            RateCurve::Bursty {
                base_rps,
                burst_rps,
                burst_fraction,
                period_s,
            } => RateCurve::Bursty {
                base_rps: base_rps * factor,
                burst_rps: burst_rps * factor,
                burst_fraction,
                period_s,
            },
        }
    }

    /// Exact integral of the rate over `[0, horizon_s]`: the expected number of
    /// arrivals of the (non-homogeneous) Poisson process over that window.
    pub fn expected_requests(&self, horizon_s: f64) -> f64 {
        let t = horizon_s.max(0.0);
        match *self {
            RateCurve::Constant { rps } => rps * t,
            RateCurve::Diurnal {
                mean_rps,
                amplitude,
                period_s,
            } => {
                let a = amplitude.clamp(0.0, 1.0);
                let w = 2.0 * std::f64::consts::PI / period_s;
                // ∫ mean (1 + a sin(wt)) dt = mean t + mean a (1 - cos(wt)) / w.
                mean_rps * t + mean_rps * a * (1.0 - (w * t).cos()) / w
            }
            RateCurve::Bursty {
                base_rps,
                burst_rps,
                burst_fraction,
                period_s,
            } => {
                let f = burst_fraction.clamp(0.0, 1.0);
                let per_period = period_s * (f * burst_rps + (1.0 - f) * base_rps);
                let full = (t / period_s).floor();
                let rem = t - full * period_s;
                let partial =
                    rem.min(f * period_s) * burst_rps + (rem - f * period_s).max(0.0) * base_rps;
                full * per_period + partial
            }
        }
    }
}

/// Shared system-prompt specification for an arrival stream: each request
/// independently carries the shared prefix with probability `share`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharedPrefixSpec {
    /// Fraction of requests whose prompt starts with the shared prefix,
    /// in `[0, 1]`.
    pub share: f64,
    /// Length of the shared prefix in tokens (clamped to the prompt length).
    pub len: usize,
}

impl SharedPrefixSpec {
    /// The prefix-group id stamped on sharing requests (0 means "no prefix").
    pub const GROUP_ID: u64 = 1;
}

/// Configuration of one arrival stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// The time-varying arrival rate.
    pub curve: RateCurve,
    /// Arrivals are generated over `[0, horizon_s)` simulated seconds.
    pub horizon_s: f64,
    /// Prompt lengths are drawn uniformly from this inclusive range.
    pub prompt_len_range: (usize, usize),
    /// Output (response) lengths follow this long-tail distribution.
    pub output_lengths: LengthDistribution,
    /// Optional shared system prompt. `None` leaves the stream — including
    /// its RNG draws — bit-identical to streams generated before prefix
    /// support existed.
    pub prefix: Option<SharedPrefixSpec>,
    /// Seed determining the entire stream.
    pub seed: u64,
}

impl ArrivalConfig {
    /// A constant-rate stream with chat-style prompts and long-tail outputs.
    pub fn constant(rps: f64, horizon_s: f64, seed: u64) -> Self {
        ArrivalConfig {
            curve: RateCurve::Constant { rps },
            horizon_s,
            prompt_len_range: (256, 768),
            output_lengths: LengthDistribution::LongTailMixture {
                mu: 5.5,
                sigma: 0.9,
                truncation_mass: 0.02,
                max_len: 4096,
            },
            prefix: None,
            seed,
        }
    }

    /// Same stream with a shared system prompt carried by `share` of requests.
    pub fn with_prefix(mut self, share: f64, len: usize) -> Self {
        self.prefix = Some(SharedPrefixSpec { share, len });
        self
    }
}

/// One request arriving at the serving frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestArrival {
    /// Monotonically increasing request id (arrival order).
    pub id: u64,
    /// Arrival time in integer simulated nanoseconds (exact, hashable, orderable).
    pub time_ns: u64,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Target output length in tokens.
    pub output_len: usize,
    /// Shared-prefix group the prompt starts with (0 = none).
    pub prefix_id: u64,
    /// Tokens of the prompt belonging to the shared prefix.
    pub prefix_len: usize,
}

impl RequestArrival {
    /// Arrival time in seconds.
    pub fn time_s(&self) -> f64 {
        self.time_ns as f64 * 1e-9
    }
}

/// A pull-based source of time-ordered arrivals.
///
/// The serving frontends consume arrivals strictly one at a time (advance the
/// clock to the arrival, offer it, repeat), so a replay driver never needs the
/// whole stream in memory — any feed with bounded per-pull state gives a
/// bounded-memory replay. Every in-memory iterator of arrivals is a feed via
/// the blanket impl; `tlt-trace` feeds a streamed TLTR decode through the same
/// trait.
pub trait ArrivalFeed {
    /// The next arrival, in non-decreasing time order, or `None` at the end
    /// of the stream.
    fn next_arrival(&mut self) -> Option<RequestArrival>;
}

impl<I> ArrivalFeed for I
where
    I: Iterator<Item = RequestArrival>,
{
    fn next_arrival(&mut self) -> Option<RequestArrival> {
        self.next()
    }
}

/// Generates the arrival stream described by `config` via Poisson thinning:
/// candidate arrivals are drawn from a homogeneous process at the peak rate and
/// kept with probability `rate(t) / peak`, yielding a non-homogeneous Poisson
/// process with intensity `rate(t)`. Identical configs give identical streams.
pub fn generate_arrivals(config: &ArrivalConfig) -> Vec<RequestArrival> {
    let peak = config.curve.peak_rate();
    assert!(peak > 0.0, "arrival rate must be positive");
    let (lo, hi) = config.prompt_len_range;
    assert!(lo >= 1 && lo <= hi, "invalid prompt length range");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::new();
    let mut t = 0.0f64;
    let mut id = 0u64;
    loop {
        // Exponential inter-arrival at the peak rate (inverse CDF).
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / peak;
        if t >= config.horizon_s {
            break;
        }
        let keep: f64 = rng.gen_range(0.0..1.0);
        if keep < config.curve.rate_at(t) / peak {
            let prompt_len = rng.gen_range(lo..=hi);
            let output_len = config.output_lengths.sample(&mut rng);
            // The prefix coin is only drawn when a prefix is configured, so
            // legacy configs reproduce their historical streams bit for bit.
            let (prefix_id, prefix_len) = match config.prefix {
                Some(spec) if rng.gen_range(0.0..1.0) < spec.share.clamp(0.0, 1.0) => {
                    (SharedPrefixSpec::GROUP_ID, spec.len.min(prompt_len))
                }
                _ => (0, 0),
            };
            out.push(RequestArrival {
                id,
                // Quantised to integer nanoseconds so arrival times are exactly
                // representable and comparisons are reproducible everywhere.
                time_ns: (t * 1e9) as u64,
                prompt_len,
                output_len,
                prefix_id,
                prefix_len,
            });
            id += 1;
        }
    }
    out
}

/// Shifts every arrival in the stream forward by `offset_s` seconds (used to
/// place a generated burst at an injection point on another stream's timeline).
pub fn shift_arrivals(arrivals: &mut [RequestArrival], offset_s: f64) {
    assert!(offset_s >= 0.0, "offset must be non-negative");
    let offset_ns = (offset_s * 1e9) as u64;
    for a in arrivals {
        a.time_ns += offset_ns;
    }
}

/// Merges several arrival streams into one timeline and re-assigns ids in
/// arrival order (ties broken by stream index, then original id, so the merge
/// is fully deterministic). The result satisfies the same contract as
/// [`generate_arrivals`]: sorted by time with sequential ids — which is what
/// the serving frontend's request-conservation invariant is checked against.
pub fn merge_arrival_streams(streams: Vec<Vec<RequestArrival>>) -> Vec<RequestArrival> {
    let mut merged: Vec<(usize, RequestArrival)> = streams
        .into_iter()
        .enumerate()
        .flat_map(|(s, stream)| stream.into_iter().map(move |a| (s, a)))
        .collect();
    merged.sort_by_key(|(s, a)| (a.time_ns, *s, a.id));
    merged
        .into_iter()
        .enumerate()
        .map(|(i, (_, mut a))| {
            a.id = i as u64;
            a
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_multiplies_rates_and_keeps_the_shape() {
        let bursty = RateCurve::Bursty {
            base_rps: 2.0,
            burst_rps: 20.0,
            burst_fraction: 0.25,
            period_s: 8.0,
        };
        let x10 = bursty.scaled(10.0);
        for t in [0.0, 1.0, 3.0, 7.9, 12.5] {
            assert!((x10.rate_at(t) - 10.0 * bursty.rate_at(t)).abs() < 1e-9);
        }
        assert!((x10.expected_requests(20.0) - 10.0 * bursty.expected_requests(20.0)).abs() < 1e-6);
        let diurnal = RateCurve::Diurnal {
            mean_rps: 4.0,
            amplitude: 0.5,
            period_s: 60.0,
        };
        assert_eq!(
            diurnal.scaled(2.5),
            RateCurve::Diurnal {
                mean_rps: 10.0,
                amplitude: 0.5,
                period_s: 60.0
            }
        );
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_scale_factor_is_rejected() {
        RateCurve::Constant { rps: 1.0 }.scaled(0.0);
    }

    fn count_for(curve: RateCurve, horizon_s: f64, seed: u64) -> usize {
        generate_arrivals(&ArrivalConfig {
            curve,
            horizon_s,
            prompt_len_range: (64, 128),
            output_lengths: LengthDistribution::Constant { len: 100 },
            prefix: None,
            seed,
        })
        .len()
    }

    #[test]
    fn constant_rate_count_matches_integral() {
        let curve = RateCurve::Constant { rps: 50.0 };
        let horizon = 400.0;
        let expected = curve.expected_requests(horizon);
        let n = count_for(curve, horizon, 11) as f64;
        // Poisson sd is sqrt(expected); allow 5 sigma.
        let tol = 5.0 * expected.sqrt();
        assert!(
            (n - expected).abs() < tol,
            "count {n} vs expected {expected} (tol {tol})"
        );
    }

    #[test]
    fn diurnal_rate_count_matches_integral() {
        let curve = RateCurve::Diurnal {
            mean_rps: 40.0,
            amplitude: 0.8,
            period_s: 60.0,
        };
        let horizon = 390.0; // deliberately not a whole number of periods
        let expected = curve.expected_requests(horizon);
        let n = count_for(curve, horizon, 12) as f64;
        let tol = 5.0 * expected.sqrt();
        assert!(
            (n - expected).abs() < tol,
            "count {n} vs expected {expected} (tol {tol})"
        );
    }

    #[test]
    fn bursty_rate_count_matches_integral() {
        let curve = RateCurve::Bursty {
            base_rps: 10.0,
            burst_rps: 80.0,
            burst_fraction: 0.25,
            period_s: 40.0,
        };
        let horizon = 410.0; // ends mid-period to exercise the partial term
        let expected = curve.expected_requests(horizon);
        let n = count_for(curve, horizon, 13) as f64;
        let tol = 5.0 * expected.sqrt();
        assert!(
            (n - expected).abs() < tol,
            "count {n} vs expected {expected} (tol {tol})"
        );
    }

    #[test]
    fn bursty_integral_is_piecewise_exact() {
        let curve = RateCurve::Bursty {
            base_rps: 2.0,
            burst_rps: 10.0,
            burst_fraction: 0.5,
            period_s: 10.0,
        };
        // One full period: 5 s at 10 rps + 5 s at 2 rps = 60.
        assert!((curve.expected_requests(10.0) - 60.0).abs() < 1e-9);
        // Half a period (all burst): 5 s at 10 rps = 50.
        assert!((curve.expected_requests(5.0) - 50.0).abs() < 1e-9);
        // 7 s: 50 + 2 s at 2 rps = 54.
        assert!((curve.expected_requests(7.0) - 54.0).abs() < 1e-9);
    }

    #[test]
    fn identical_seeds_give_identical_streams() {
        let config = ArrivalConfig::constant(25.0, 120.0, 99);
        let a = generate_arrivals(&config);
        let b = generate_arrivals(&config);
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a = generate_arrivals(&ArrivalConfig::constant(25.0, 120.0, 1));
        let b = generate_arrivals(&ArrivalConfig::constant(25.0, 120.0, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_sorted_ids_sequential_lengths_in_range() {
        let config = ArrivalConfig {
            curve: RateCurve::Diurnal {
                mean_rps: 30.0,
                amplitude: 0.5,
                period_s: 30.0,
            },
            horizon_s: 60.0,
            prompt_len_range: (100, 200),
            output_lengths: LengthDistribution::LongTailMixture {
                mu: 5.0,
                sigma: 1.0,
                truncation_mass: 0.05,
                max_len: 2048,
            },
            prefix: None,
            seed: 7,
        };
        let arrivals = generate_arrivals(&config);
        assert!(!arrivals.is_empty());
        for (i, pair) in arrivals.windows(2).enumerate() {
            assert!(pair[0].time_ns <= pair[1].time_ns, "unsorted at {i}");
        }
        for (i, a) in arrivals.iter().enumerate() {
            assert_eq!(a.id, i as u64);
            assert!(a.time_s() < config.horizon_s);
            assert!((100..=200).contains(&a.prompt_len));
            assert!((1..=2048).contains(&a.output_len));
        }
    }

    #[test]
    fn shared_prefix_is_sampled_at_the_configured_share() {
        let base = ArrivalConfig::constant(50.0, 40.0, 5);
        let none = generate_arrivals(&base);
        assert!(none.iter().all(|a| a.prefix_id == 0 && a.prefix_len == 0));

        let all = generate_arrivals(&base.clone().with_prefix(1.0, 128));
        assert!(!all.is_empty());
        for a in &all {
            assert_eq!(a.prefix_id, SharedPrefixSpec::GROUP_ID);
            assert_eq!(a.prefix_len, 128.min(a.prompt_len));
        }

        let half = generate_arrivals(&base.clone().with_prefix(0.5, 10_000));
        let with = half.iter().filter(|a| a.prefix_id != 0).count();
        let frac = with as f64 / half.len() as f64;
        assert!((0.35..0.65).contains(&frac), "share came out at {frac}");
        // The prefix never exceeds the prompt it is part of.
        assert!(half
            .iter()
            .all(|a| a.prefix_len <= a.prompt_len && (a.prefix_id == 0) == (a.prefix_len == 0)));

        // Timing and lengths of the no-prefix stream are unchanged by prefix
        // support existing at all (no extra RNG draw without a prefix).
        let replay = generate_arrivals(&base);
        assert_eq!(none, replay);
    }

    #[test]
    fn merged_streams_are_sorted_with_sequential_ids() {
        let base = generate_arrivals(&ArrivalConfig::constant(10.0, 10.0, 1));
        let mut burst = generate_arrivals(&ArrivalConfig::constant(40.0, 2.0, 2));
        shift_arrivals(&mut burst, 4.0);
        let n = base.len() + burst.len();
        let merged = merge_arrival_streams(vec![base.clone(), burst.clone()]);
        assert_eq!(merged.len(), n);
        for (i, a) in merged.iter().enumerate() {
            assert_eq!(a.id, i as u64);
        }
        for pair in merged.windows(2) {
            assert!(pair[0].time_ns <= pair[1].time_ns);
        }
        // The burst lands entirely inside [4, 6) seconds.
        assert!(burst.iter().all(|a| (4.0..6.0).contains(&a.time_s())));
        // Merging is deterministic.
        assert_eq!(merged, merge_arrival_streams(vec![base, burst]));
    }

    fn arrival_at(id: u64, time_ns: u64, prompt_len: usize) -> RequestArrival {
        RequestArrival {
            id,
            time_ns,
            prompt_len,
            output_len: 5,
            prefix_id: 0,
            prefix_len: 0,
        }
    }

    #[test]
    fn merge_reassigns_colliding_ids_uniquely() {
        // Regression: both streams carry ids 0 and 1; the merged timeline must
        // not — ids are reassigned sequentially in merged arrival order.
        let s0 = vec![arrival_at(0, 100, 10), arrival_at(1, 300, 11)];
        let s1 = vec![arrival_at(0, 200, 20), arrival_at(1, 400, 21)];
        let merged = merge_arrival_streams(vec![s0, s1]);
        assert_eq!(merged.len(), 4);
        for (i, a) in merged.iter().enumerate() {
            assert_eq!(a.id, i as u64, "ids must be unique and sequential");
        }
        // Payloads interleave by timestamp: s0[0], s1[0], s0[1], s1[1].
        assert_eq!(
            merged.iter().map(|a| a.prompt_len).collect::<Vec<_>>(),
            vec![10, 20, 11, 21]
        );
    }

    #[test]
    fn merge_breaks_timestamp_ties_by_stream_index_then_original_id() {
        // Regression: equal-timestamp ties are ordered by (stream index,
        // original id), pinning the previously unspecified merge order.
        let s0 = vec![arrival_at(5, 1000, 10)];
        let s1 = vec![arrival_at(3, 1000, 20), arrival_at(4, 1000, 21)];
        let s2 = vec![arrival_at(0, 1000, 30)];
        let merged = merge_arrival_streams(vec![s0, s1, s2]);
        assert_eq!(
            merged.iter().map(|a| a.prompt_len).collect::<Vec<_>>(),
            vec![10, 20, 21, 30],
            "ties must order by stream index first, then original id"
        );
        assert!(merged.iter().all(|a| a.time_ns == 1000));
        // Determinism under repetition.
        let again = merge_arrival_streams(vec![
            vec![arrival_at(5, 1000, 10)],
            vec![arrival_at(3, 1000, 20), arrival_at(4, 1000, 21)],
            vec![arrival_at(0, 1000, 30)],
        ]);
        assert_eq!(merged, again);
    }

    #[test]
    fn shift_arrivals_is_exact_in_integer_nanoseconds() {
        let mut arrivals = vec![arrival_at(0, 0, 10), arrival_at(1, 123_456_789, 11)];
        shift_arrivals(&mut arrivals, 4.0);
        assert_eq!(arrivals[0].time_ns, 4_000_000_000);
        assert_eq!(arrivals[1].time_ns, 4_123_456_789);
        // Zero offset is the identity.
        let mut same = vec![arrival_at(0, 777, 10)];
        shift_arrivals(&mut same, 0.0);
        assert_eq!(same[0].time_ns, 777);
    }

    #[test]
    fn bursty_peak_dominates_rate_everywhere() {
        let curve = RateCurve::Bursty {
            base_rps: 5.0,
            burst_rps: 50.0,
            burst_fraction: 0.2,
            period_s: 20.0,
        };
        for i in 0..200 {
            let t = i as f64 * 0.37;
            assert!(curve.rate_at(t) <= curve.peak_rate());
        }
    }
}
