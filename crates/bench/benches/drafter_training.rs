//! Drafter-side benchmarks: one spot-training iteration (Figure 15 / Table 7 path),
//! checkpointing modes (Figure 17a) and sequence packing (Figure 17b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tlt_draft::{
    pack_sequences, CheckpointMode, CheckpointStore, DraftModel, DrafterTrainer, FeatureSource,
    TrainerConfig, TrainingSample,
};
use tlt_model::{ModelConfig, TinyLm};
use tlt_workload::LengthDistribution;

fn samples(target: &TinyLm, n: usize) -> Vec<TrainingSample> {
    let mut rng = StdRng::seed_from_u64(5);
    (0..n)
        .map(|i| {
            let len = 16 + (i % 4) * 4;
            let tokens: Vec<u32> = (0..len)
                .map(|_| rng.gen_range(0..target.config.vocab_size as u32))
                .collect();
            TrainingSample::from_rollout(
                target,
                FeatureSource::LastLayer,
                &tokens,
                len - 4,
                0,
                i as u64,
            )
        })
        .collect()
}

fn bench_train_iteration(c: &mut Criterion) {
    let target = TinyLm::new(ModelConfig::tiny(), 1);
    let data = samples(&target, 4);
    let refs: Vec<&TrainingSample> = data.iter().collect();
    let mut group = c.benchmark_group("drafter_training");
    group.sample_size(10);
    group.bench_function("eagle_iteration", |b| {
        let mut trainer = DrafterTrainer::new(&target, TrainerConfig::default(), 2);
        b.iter(|| trainer.train_iteration(&target, &refs))
    });
    group.finish();
}

fn bench_checkpointing(c: &mut Criterion) {
    let target = TinyLm::new(ModelConfig::tiny(), 1);
    let drafter = DraftModel::new(&target, FeatureSource::LastLayer, 3);
    let mut group = c.benchmark_group("fig17a_checkpointing");
    group.sample_size(10);
    for mode in CheckpointMode::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.name()),
            &mode,
            |b, &mode| {
                let mut store = CheckpointStore::new();
                b.iter(|| {
                    let report = store.checkpoint(mode, &drafter, &target);
                    store.wait_for_pending();
                    report
                })
            },
        );
    }
    group.finish();
}

fn bench_packing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let lengths = LengthDistribution::LongTailMixture {
        mu: 5.5,
        sigma: 1.0,
        truncation_mass: 0.05,
        max_len: 4096,
    }
    .sample_many(512, &mut rng);
    let mut group = c.benchmark_group("fig17b_packing");
    group.sample_size(20);
    group.bench_function("pack_512_sequences", |b| {
        b.iter(|| pack_sequences(&lengths, 4096))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_train_iteration,
    bench_checkpointing,
    bench_packing
);
criterion_main!(benches);
