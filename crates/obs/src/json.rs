//! Minimal JSON document builder.
//!
//! The vendored `serde` shim has no serializer backend (its `Serialize` trait is a
//! marker only), so machine-readable output is built through this tiny value tree
//! instead. Rendering is deterministic: object keys keep insertion order and
//! numbers use Rust's shortest-roundtrip float formatting, so identical results
//! serialise to identical bytes.
//!
//! This is the single JSON emitter in the tree: `tlt-bench` report export and the
//! Chrome `trace_event` writer in [`crate::trace`] both render through it.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for an object.
    pub fn object(fields: Vec<(&str, JsonValue)>) -> Self {
        JsonValue::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// A string value.
    pub fn string(s: impl Into<String>) -> Self {
        JsonValue::String(s.into())
    }

    /// A cell that is a number when it parses as one, a string otherwise.
    /// Used to export table cells with their natural JSON type.
    pub fn cell(s: &str) -> Self {
        match s.trim().parse::<f64>() {
            Ok(n) if n.is_finite() => JsonValue::Number(n),
            _ => JsonValue::string(s),
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    f.write_str("null")
                }
            }
            JsonValue::String(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                escape_into(&mut out, s);
                f.write_str(&out)
            }
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    escape_into(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(JsonValue::Null.to_string(), "null");
        assert_eq!(JsonValue::Bool(true).to_string(), "true");
        assert_eq!(JsonValue::Number(1.5).to_string(), "1.5");
        assert_eq!(JsonValue::Number(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::string("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            JsonValue::string("a\"b\\c\nd").to_string(),
            "\"a\\\"b\\\\c\\nd\""
        );
    }

    #[test]
    fn renders_nested_structures_in_order() {
        let v = JsonValue::object(vec![
            ("b", JsonValue::Number(2.0)),
            (
                "a",
                JsonValue::Array(vec![JsonValue::Null, JsonValue::Bool(false)]),
            ),
        ]);
        assert_eq!(v.to_string(), "{\"b\":2,\"a\":[null,false]}");
    }

    #[test]
    fn cell_parses_numbers_but_not_units() {
        assert_eq!(JsonValue::cell("42"), JsonValue::Number(42.0));
        assert_eq!(JsonValue::cell(" 3.25 "), JsonValue::Number(3.25));
        assert_eq!(JsonValue::cell("1.20x"), JsonValue::string("1.20x"));
        assert_eq!(JsonValue::cell("OOM"), JsonValue::string("OOM"));
    }
}
