//! Multi-replica frontend: merges the arrival stream with replica step events into
//! one deterministic discrete-event simulation.

use crate::balancer::LoadBalancer;
use crate::config::ServeConfig;
use crate::metrics::ServeReport;
use crate::replica::Replica;
use crate::request::ServeRequest;
use tlt_workload::RequestArrival;

/// Hard cap on processed events; prevents pathological configurations from
/// spinning forever.
const MAX_EVENTS: u64 = 200_000_000;

/// Simulates serving the `arrivals` stream on the deployment described by `config`
/// and returns the aggregate SLO report. Arrivals must be sorted by time (as
/// produced by [`tlt_workload::generate_arrivals`]); the simulation runs until
/// every admitted request has drained.
pub fn simulate_serving(config: &ServeConfig, arrivals: &[RequestArrival]) -> ServeReport {
    let mut replicas: Vec<Replica> = (0..config.num_replicas)
        .map(|i| Replica::new(config, i))
        .collect();
    let mut balancer = LoadBalancer::new(config.balancer);
    let mut next_arrival = 0usize;
    let mut events = 0u64;

    loop {
        let t_arrival = arrivals
            .get(next_arrival)
            .map(|a| a.time_s())
            .unwrap_or(f64::MAX);
        let (step_idx, t_step) = replicas
            .iter()
            .enumerate()
            .map(|(i, r)| (i, r.next_event_s()))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite or MAX"))
            .expect("at least one replica");
        if t_arrival == f64::MAX && t_step == f64::MAX {
            break;
        }
        // Arrivals win ties so the routed request is visible to the step that
        // starts at the same instant.
        if t_arrival <= t_step {
            let loads: Vec<_> = replicas.iter().map(Replica::load).collect();
            let target = balancer.pick(&loads);
            let req = ServeRequest::from_arrival(&arrivals[next_arrival]);
            replicas[target].enqueue(req, t_arrival);
            next_arrival += 1;
        } else {
            replicas[step_idx].on_step_complete(t_step);
        }
        events += 1;
        if events > MAX_EVENTS {
            break;
        }
    }

    let completed: Vec<_> = replicas
        .iter_mut()
        .flat_map(Replica::take_completed)
        .collect();
    let dropped: usize = replicas.iter().map(Replica::dropped).sum();
    let makespan_s = completed.iter().map(|r| r.finish_s).fold(0.0f64, f64::max);
    let stats = replicas.iter().map(|r| r.stats(makespan_s)).collect();
    ServeReport::build(completed, dropped, stats, config.slo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::BalancerPolicy;
    use tlt_gpusim::{GpuType, LlmCostModel};
    use tlt_model::ModelSpec;
    use tlt_rollout::{SdManagerConfig, SdMode, SdStrategy};
    use tlt_workload::{ArrivalConfig, LengthDistribution, RateCurve};

    fn qwen7b_config(replicas: usize) -> ServeConfig {
        ServeConfig::new(
            LlmCostModel::new(ModelSpec::qwen2_5_7b(), GpuType::H100.spec(), 1),
            replicas,
        )
    }

    fn arrivals(rps: f64, horizon: f64, seed: u64) -> Vec<RequestArrival> {
        tlt_workload::generate_arrivals(&ArrivalConfig {
            curve: RateCurve::Constant { rps },
            horizon_s: horizon,
            prompt_len_range: (256, 512),
            output_lengths: LengthDistribution::LongTailMixture {
                mu: 5.0,
                sigma: 0.8,
                truncation_mass: 0.02,
                max_len: 2048,
            },
            seed,
        })
    }

    #[test]
    fn every_arrival_completes_and_metrics_are_sane() {
        let config = qwen7b_config(2);
        let stream = arrivals(4.0, 30.0, 1);
        let report = simulate_serving(&config, &stream);
        assert_eq!(report.completed.len() + report.dropped, stream.len());
        assert_eq!(report.dropped, 0);
        assert!(report.makespan_s > 0.0);
        assert!(report.throughput_tokens_per_s > 0.0);
        assert!(report.ttft.p50_s > 0.0);
        assert!(report.ttft.p50_s <= report.ttft.p99_s);
        assert!(report.e2e.p50_s >= report.ttft.p50_s);
        assert_eq!(report.replicas.len(), 2);
        for r in &report.replicas {
            assert!(r.utilization > 0.0 && r.utilization <= 1.0);
        }
    }

    #[test]
    fn serving_is_deterministic_per_seed() {
        let config = qwen7b_config(3).with_sd_mode(SdMode::Adaptive {
            config: SdManagerConfig::default(),
        });
        let stream = arrivals(6.0, 20.0, 2);
        let a = simulate_serving(&config, &stream);
        let b = simulate_serving(&config, &stream);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.makespan_s, b.makespan_s);
        assert_eq!(a.throughput_tokens_per_s, b.throughput_tokens_per_s);
        assert_eq!(a.goodput_rps, b.goodput_rps);
    }

    #[test]
    fn adaptive_sd_improves_latency_at_low_load() {
        let stream = arrivals(2.0, 30.0, 3);
        let vanilla = simulate_serving(&qwen7b_config(2), &stream);
        let adaptive = simulate_serving(
            &qwen7b_config(2).with_sd_mode(SdMode::Adaptive {
                config: SdManagerConfig::default(),
            }),
            &stream,
        );
        assert!(
            adaptive.e2e.p50_s < vanilla.e2e.p50_s,
            "adaptive {res} vs vanilla {base}",
            res = adaptive.e2e.p50_s,
            base = vanilla.e2e.p50_s
        );
        assert!(adaptive.mean_sd_fraction() > 0.5);
        assert!(vanilla.mean_sd_fraction() == 0.0);
    }

    #[test]
    fn always_on_sd_collapses_under_heavy_load() {
        // At a high arrival rate the batch stays large; forcing SD on every step
        // (static, infinite threshold) must hurt tail latency versus the elastic
        // adaptive policy that switches SD off under backlog.
        let stream = arrivals(30.0, 20.0, 4);
        let static_sd = simulate_serving(
            &qwen7b_config(1).with_sd_mode(SdMode::Static {
                strategy: SdStrategy::default(),
                threshold: usize::MAX,
            }),
            &stream,
        );
        let adaptive = simulate_serving(
            &qwen7b_config(1).with_sd_mode(SdMode::Adaptive {
                config: SdManagerConfig::default(),
            }),
            &stream,
        );
        assert!(
            adaptive.e2e.p99_s < static_sd.e2e.p99_s,
            "adaptive p99 {a} should beat always-on SD p99 {s}",
            a = adaptive.e2e.p99_s,
            s = static_sd.e2e.p99_s
        );
        assert!(adaptive.mean_sd_fraction() < 1.0);
    }

    #[test]
    fn balancers_spread_load_and_jsq_beats_unlucky_round_robin_tail() {
        let stream = arrivals(8.0, 25.0, 5);
        for policy in BalancerPolicy::all() {
            let report = simulate_serving(&qwen7b_config(4).with_balancer(policy), &stream);
            assert_eq!(report.completed.len(), stream.len(), "{}", policy.name());
            // Every replica should see some work at this rate.
            for r in &report.replicas {
                assert!(r.completed > 0, "{}: idle replica", policy.name());
            }
        }
    }

    #[test]
    fn empty_arrival_stream_yields_empty_report() {
        let report = simulate_serving(&qwen7b_config(2), &[]);
        assert!(report.completed.is_empty());
        assert_eq!(report.makespan_s, 0.0);
    }
}
