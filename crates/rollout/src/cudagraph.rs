//! CUDAGraph pool with bucketed, disaggregated, merged capture (§5.1, Figure 10).
//!
//! Replaying decode kernels from pre-captured CUDAGraphs removes launch overhead but
//! each captured graph pins a persistent activation workspace, so supporting many
//! (batch-size x SD-strategy) combinations naively multiplies memory. The paper's
//! Bucketed CUDAGraph Capture applies three optimisations reproduced here:
//!
//! 1. **Bucketed batch sizes** — each strategy is only captured for the batch-size
//!    bucket range it is actually used in (large batches verify fewer tokens).
//! 2. **Disaggregated capture** — target and drafter graphs are captured separately,
//!    because `tokens_to_verify` only affects the target and `top_k` only the drafter.
//! 3. **Merged captures** — graphs with identical (bucket, parameter) keys are shared
//!    across strategies.

use crate::spec::SdStrategy;
use serde::Serialize;
use std::collections::BTreeSet;
use tlt_gpusim::LlmCostModel;
use tlt_model::DraftModelSpec;

/// Capture policy for the graph pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CaptureMode {
    /// A single static strategy captured across all batch buckets (baseline row 1 of
    /// Table 5).
    SingleStrategy,
    /// Every strategy captured independently across all batch buckets, target and
    /// drafter graphs bundled together (the naive "Multiple Strategies" row).
    VanillaMultiStrategy,
    /// The paper's bucketed + disaggregated + merged capture.
    Bucketed,
}

/// One captured graph (either a target verification graph or a drafter graph).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CapturedGraph {
    /// Maximum batch size the graph supports.
    pub batch_bucket: usize,
    /// Tokens processed per sequence (tokens-to-verify for the target, top-K for the
    /// drafter).
    pub tokens_per_seq: usize,
    /// Whether this is a drafter graph (false = target graph).
    pub for_drafter: bool,
    /// Persistent memory pinned by the capture, in bytes.
    pub memory_bytes: f64,
}

/// A planned pool of captured CUDAGraphs.
#[derive(Debug, Clone, Serialize)]
pub struct CudaGraphPool {
    /// Capture policy used to build the pool.
    pub mode: CaptureMode,
    /// Batch-size buckets, ascending.
    pub buckets: Vec<usize>,
    /// The strategies the pool serves (largest `tokens_to_verify` first).
    pub strategies: Vec<SdStrategy>,
    /// All captured graphs.
    pub graphs: Vec<CapturedGraph>,
}

/// Default batch-size buckets used for capture.
pub fn default_batch_buckets() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32, 64, 128]
}

impl CudaGraphPool {
    /// Plans a capture pool for `strategies` under `mode`, estimating memory with the
    /// target cost model and the drafter geometry.
    pub fn plan(
        mode: CaptureMode,
        strategies: &[SdStrategy],
        buckets: &[usize],
        cost: &LlmCostModel,
        drafter: &DraftModelSpec,
    ) -> CudaGraphPool {
        assert!(!strategies.is_empty(), "need at least one strategy");
        assert!(!buckets.is_empty(), "need at least one batch bucket");
        let mut sorted_strategies = strategies.to_vec();
        sorted_strategies.sort_by_key(|s| std::cmp::Reverse(s.tokens_to_verify));
        let mut graphs = Vec::new();
        match mode {
            CaptureMode::SingleStrategy => {
                let s = sorted_strategies[0];
                for &b in buckets {
                    graphs.push(CapturedGraph {
                        batch_bucket: b,
                        tokens_per_seq: s.tokens_to_verify,
                        for_drafter: false,
                        memory_bytes: cost.graph_capture_bytes(b, s.tokens_to_verify),
                    });
                    graphs.push(CapturedGraph {
                        batch_bucket: b,
                        tokens_per_seq: s.top_k,
                        for_drafter: true,
                        memory_bytes: cost.drafter_graph_capture_bytes(drafter, b, s.top_k),
                    });
                }
            }
            CaptureMode::VanillaMultiStrategy => {
                for s in &sorted_strategies {
                    for &b in buckets {
                        graphs.push(CapturedGraph {
                            batch_bucket: b,
                            tokens_per_seq: s.tokens_to_verify,
                            for_drafter: false,
                            memory_bytes: cost.graph_capture_bytes(b, s.tokens_to_verify),
                        });
                        graphs.push(CapturedGraph {
                            batch_bucket: b,
                            tokens_per_seq: s.top_k,
                            for_drafter: true,
                            memory_bytes: cost.drafter_graph_capture_bytes(drafter, b, s.top_k),
                        });
                    }
                }
            }
            CaptureMode::Bucketed => {
                // Partition the batch buckets across strategies: the strategy with the
                // largest tokens_to_verify serves the smallest batches, and so on.
                let assignments = Self::bucket_assignment(&sorted_strategies, buckets);
                // Disaggregated + merged: deduplicate by (bucket, tokens) per model.
                let mut target_keys: BTreeSet<(usize, usize)> = BTreeSet::new();
                let mut drafter_keys: BTreeSet<(usize, usize)> = BTreeSet::new();
                for (strategy, assigned_buckets) in sorted_strategies.iter().zip(&assignments) {
                    for &b in assigned_buckets {
                        target_keys.insert((b, strategy.tokens_to_verify));
                        drafter_keys.insert((b, strategy.top_k));
                    }
                }
                for (b, tokens) in target_keys {
                    graphs.push(CapturedGraph {
                        batch_bucket: b,
                        tokens_per_seq: tokens,
                        for_drafter: false,
                        memory_bytes: cost.graph_capture_bytes(b, tokens),
                    });
                }
                for (b, top_k) in drafter_keys {
                    graphs.push(CapturedGraph {
                        batch_bucket: b,
                        tokens_per_seq: top_k,
                        for_drafter: true,
                        memory_bytes: cost.drafter_graph_capture_bytes(drafter, b, top_k),
                    });
                }
            }
        }
        CudaGraphPool {
            mode,
            buckets: buckets.to_vec(),
            strategies: sorted_strategies,
            graphs,
        }
    }

    /// Splits the bucket list into contiguous ranges, one per strategy (strategies are
    /// ordered by descending `tokens_to_verify`, buckets ascending — so the deepest
    /// verification is captured only for the smallest batches).
    fn bucket_assignment(strategies: &[SdStrategy], buckets: &[usize]) -> Vec<Vec<usize>> {
        let n = strategies.len();
        let chunk = (buckets.len() as f64 / n as f64).ceil() as usize;
        (0..n)
            .map(|i| {
                buckets
                    .iter()
                    .copied()
                    .skip(i * chunk)
                    .take(chunk)
                    .collect::<Vec<_>>()
            })
            .map(|mut v: Vec<usize>| {
                // Every strategy keeps at least one bucket (reuse the last one).
                if v.is_empty() {
                    v.push(*buckets.last().expect("non-empty buckets"));
                }
                v
            })
            .collect()
    }

    /// Total persistent memory of the pool in bytes.
    pub fn total_memory_bytes(&self) -> f64 {
        self.graphs.iter().map(|g| g.memory_bytes).sum()
    }

    /// Total persistent memory in GiB.
    pub fn total_memory_gb(&self) -> f64 {
        self.total_memory_bytes() / (1024.0 * 1024.0 * 1024.0)
    }

    /// Number of captured graphs.
    pub fn num_graphs(&self) -> usize {
        self.graphs.len()
    }

    /// Picks the strategy this pool would use for a live batch of `batch` sequences:
    /// the strategy whose assigned bucket range contains the batch (larger batches map
    /// to strategies verifying fewer tokens).
    pub fn strategy_for_batch(&self, batch: usize) -> SdStrategy {
        match self.mode {
            CaptureMode::SingleStrategy => self.strategies[0],
            _ => {
                let assignments = Self::bucket_assignment(&self.strategies, &self.buckets);
                for (strategy, assigned) in self.strategies.iter().zip(&assignments) {
                    if let (Some(&lo), Some(&hi)) = (assigned.first(), assigned.last()) {
                        if batch >= lo && batch <= hi {
                            return *strategy;
                        }
                    }
                }
                // Batches beyond the largest bucket use the shallowest strategy.
                *self.strategies.last().expect("non-empty strategies")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlt_gpusim::GpuType;
    use tlt_model::ModelSpec;

    fn setup() -> (LlmCostModel, DraftModelSpec) {
        let cost = LlmCostModel::new(ModelSpec::llama3_8b(), GpuType::H100.spec(), 4);
        let drafter = cost.model.eagle_drafter();
        (cost, drafter)
    }

    #[test]
    fn table5_memory_ordering_holds() {
        // Table 5: single 7.81 GB, vanilla multi 30.39 GB, bucketed 10.69 GB.
        let (cost, drafter) = setup();
        let strategies = SdStrategy::default_set();
        let buckets = default_batch_buckets();
        let single = CudaGraphPool::plan(
            CaptureMode::SingleStrategy,
            &strategies,
            &buckets,
            &cost,
            &drafter,
        );
        let vanilla = CudaGraphPool::plan(
            CaptureMode::VanillaMultiStrategy,
            &strategies,
            &buckets,
            &cost,
            &drafter,
        );
        let bucketed = CudaGraphPool::plan(
            CaptureMode::Bucketed,
            &strategies,
            &buckets,
            &cost,
            &drafter,
        );

        let s = single.total_memory_gb();
        let v = vanilla.total_memory_gb();
        let b = bucketed.total_memory_gb();
        assert!(
            v > 2.5 * s,
            "vanilla {v:.2} GB should be ~4x single {s:.2} GB"
        );
        assert!(
            b < v / 2.0,
            "bucketed {b:.2} GB should be well below vanilla {v:.2} GB"
        );
        assert!(
            b < 2.0 * s,
            "bucketed {b:.2} GB should be close to single {s:.2} GB"
        );
        // Absolute scale sanity: single-strategy pool in the single-digit GB range.
        assert!((2.0..15.0).contains(&s), "single-strategy pool {s:.2} GB");
    }

    #[test]
    fn bucketed_pool_has_fewer_graphs_than_vanilla() {
        let (cost, drafter) = setup();
        let strategies = SdStrategy::default_set();
        let buckets = default_batch_buckets();
        let vanilla = CudaGraphPool::plan(
            CaptureMode::VanillaMultiStrategy,
            &strategies,
            &buckets,
            &cost,
            &drafter,
        );
        let bucketed = CudaGraphPool::plan(
            CaptureMode::Bucketed,
            &strategies,
            &buckets,
            &cost,
            &drafter,
        );
        assert!(bucketed.num_graphs() < vanilla.num_graphs());
    }

    #[test]
    fn strategy_selection_matches_bucket_ranges() {
        let (cost, drafter) = setup();
        let strategies = SdStrategy::default_set();
        let buckets = default_batch_buckets();
        let pool = CudaGraphPool::plan(
            CaptureMode::Bucketed,
            &strategies,
            &buckets,
            &cost,
            &drafter,
        );
        // Small batches get deep verification, large batches shallow verification
        // (Table 4's observation that larger batches should verify fewer tokens).
        let small = pool.strategy_for_batch(1);
        let large = pool.strategy_for_batch(128);
        assert!(small.tokens_to_verify > large.tokens_to_verify);
        // Batches beyond the largest bucket still resolve.
        let huge = pool.strategy_for_batch(512);
        assert_eq!(huge.tokens_to_verify, large.tokens_to_verify);
    }

    #[test]
    fn single_strategy_pool_always_returns_it() {
        let (cost, drafter) = setup();
        let strategies = vec![SdStrategy::default()];
        let pool = CudaGraphPool::plan(
            CaptureMode::SingleStrategy,
            &strategies,
            &default_batch_buckets(),
            &cost,
            &drafter,
        );
        assert_eq!(pool.strategy_for_batch(1), SdStrategy::default());
        assert_eq!(pool.strategy_for_batch(64), SdStrategy::default());
    }

    #[test]
    #[should_panic(expected = "need at least one strategy")]
    fn empty_strategy_list_rejected() {
        let (cost, drafter) = setup();
        let _ = CudaGraphPool::plan(
            CaptureMode::Bucketed,
            &[],
            &default_batch_buckets(),
            &cost,
            &drafter,
        );
    }
}
