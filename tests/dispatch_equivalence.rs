//! Property tests for the shape-class kernel dispatch: every kernel variant —
//! and whatever the active dispatch table selects — must be bit-identical to
//! the naive i-k-j reference on arbitrary shapes, including 1xN mat-vecs, Nx1
//! outputs, empty dimensions, and long-k contractions that cross the k-block
//! and long-k classification boundaries. Also checks that autotune results
//! survive a save → load round-trip unchanged, which is what lets CI pin a
//! committed profile instead of re-tuning.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tlt_model::autotune::{parse_profile, profile_json};
use tlt_model::{
    autotune, AutotuneConfig, ColKernel, DispatchTable, DotKernel, Mat, RowKernel, ShapeClass,
};

/// Maps a drawn case onto a shape family covering every dispatch class and
/// ladder edge: general shapes around the tile widths, decode mat-vec rows,
/// Nx1 outputs, and shared dimensions that cross K_BLOCK (128) and the
/// long-k classification threshold (512). Dimensions of zero are included.
fn pick_shape(family: usize, m: usize, k: usize, n: usize) -> (usize, usize, usize) {
    match family {
        0 => (m % 5, k % 70, n % 70),
        1 => (1, k % 70, n % 150),
        2 => (1 + m % 4, 1 + k % 69, 1),
        _ => (1 + m % 2, 500 + k % 60, 1 + n % 39),
    }
}

fn random_mat(rows: usize, cols: usize, rng: &mut StdRng) -> Mat {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Mat::from_vec(rows, cols, data)
}

/// Naive i-k-j reference `A * B`: the accumulation-order ground truth every
/// kernel variant must reproduce bit for bit.
fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
    let mut out = Mat::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f32;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// Naive `A^T * B` with `k` (the shared row dimension) innermost-increasing.
fn naive_transposed_matmul(a: &Mat, b: &Mat) -> Mat {
    let mut out = Mat::zeros(a.cols(), b.cols());
    for i in 0..a.cols() {
        for j in 0..b.cols() {
            let mut acc = 0.0f32;
            for k in 0..a.rows() {
                acc += a.get(k, i) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// Builds a fully random dispatch table from per-slot picks (mod the variant
/// count, so any drawn integers are valid).
fn table_from_picks(picks: &[usize]) -> DispatchTable {
    let mut table = DispatchTable::default();
    for class in ShapeClass::all() {
        let i = class as usize;
        table.row[i] = RowKernel::all()[picks[i] % RowKernel::all().len()];
        table.dot[i] = DotKernel::all()[picks[4 + i] % DotKernel::all().len()];
        table.col[i] = ColKernel::all()[picks[8 + i] % ColKernel::all().len()];
    }
    table
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn row_kernels_match_naive_reference(
        family in 0usize..4,
        m in 0usize..1000,
        k in 0usize..1000,
        n in 0usize..1000,
        seed in 0u64..1000,
    ) {
        let (m, k, n) = pick_shape(family, m, k, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_mat(m, k, &mut rng);
        let b = random_mat(k, n, &mut rng);
        let reference = naive_matmul(&a, &b);
        // The dispatch-routed entry point agrees with naive...
        prop_assert_eq!(a.matmul(&b).as_slice(), reference.as_slice());
        // ...and so does every variant, forced explicitly.
        for kernel in RowKernel::all() {
            let mut out = Mat::full(m, n, f32::NAN);
            a.matmul_into_using(&b, &mut out, kernel);
            prop_assert_eq!(out.as_slice(), reference.as_slice(), "{:?}", kernel);
        }
    }

    #[test]
    fn dot_kernels_match_naive_reference(
        family in 0usize..4,
        m in 0usize..1000,
        k in 0usize..1000,
        n in 0usize..1000,
        seed in 0u64..1000,
    ) {
        let (m, k, n) = pick_shape(family, m, k, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_mat(m, k, &mut rng);
        let b = random_mat(k, n, &mut rng);
        // The dot family shares an 8-lane accumulator with a pairwise
        // reduction tree, so its bit-exact anchor is the default (Dot4)
        // kernel rather than the scalar naive chain; naive still bounds the
        // result approximately, guarding against shared semantic bugs.
        let bt = b.transpose();
        let mut reference = Mat::full(m, n, f32::NAN);
        a.matmul_transposed_into_using(&bt, &mut reference, DotKernel::Dot4);
        let naive = naive_matmul(&a, &b);
        for (got, want) in reference.as_slice().iter().zip(naive.as_slice()) {
            prop_assert!((got - want).abs() <= 1e-4 * (1.0 + want.abs()));
        }
        prop_assert_eq!(a.matmul_transposed(&bt).as_slice(), reference.as_slice());
        for kernel in DotKernel::all() {
            let mut out = Mat::full(m, n, f32::NAN);
            a.matmul_transposed_into_using(&bt, &mut out, kernel);
            prop_assert_eq!(out.as_slice(), reference.as_slice(), "{:?}", kernel);
        }
    }

    #[test]
    fn col_kernels_match_naive_reference(
        family in 0usize..4,
        m in 0usize..1000,
        k in 0usize..1000,
        n in 0usize..1000,
        seed in 0u64..1000,
    ) {
        // Treat the drawn (m, k, n) as A: k x m, B: k x n for A^T * B, so the
        // long-k family exercises a tall shared row dimension here too.
        let (m, k, n) = pick_shape(family, m, k, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let at = random_mat(k, m, &mut rng);
        let b = random_mat(k, n, &mut rng);
        let reference = naive_transposed_matmul(&at, &b);
        prop_assert_eq!(at.transposed_matmul(&b).as_slice(), reference.as_slice());
        for kernel in ColKernel::all() {
            let mut out = Mat::full(m, n, f32::NAN);
            at.transposed_matmul_into_using(&b, &mut out, kernel);
            prop_assert_eq!(out.as_slice(), reference.as_slice(), "{:?}", kernel);
        }
    }

    #[test]
    fn any_installed_table_leaves_results_unchanged(
        picks in proptest::collection::vec(0usize..1000, 12..13),
        family in 0usize..4,
        m in 0usize..1000,
        k in 0usize..1000,
        n in 0usize..1000,
        seed in 0u64..1000,
    ) {
        let table = table_from_picks(&picks);
        let (m, k, n) = pick_shape(family, m, k, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_mat(m, k, &mut rng);
        let b = random_mat(k, n, &mut rng);
        // References computed under the default table...
        let bt = b.transpose();
        let reference = a.matmul(&b);
        let reference_t = a.matmul_transposed(&bt);
        let reference_c = a.transposed_matmul(&a);
        prop_assert_eq!(reference.as_slice(), naive_matmul(&a, &b).as_slice());
        // ...then force the fully random table process-wide; results must not
        // move. (Safe even with concurrent tests precisely *because* variants
        // are bit-identical — that is the property under test.)
        table.install();
        let routed = a.matmul(&b);
        let routed_t = a.matmul_transposed(&bt);
        let routed_c = a.transposed_matmul(&a);
        DispatchTable::reset();
        prop_assert_eq!(routed.as_slice(), reference.as_slice());
        prop_assert_eq!(routed_t.as_slice(), reference_t.as_slice());
        prop_assert_eq!(routed_c.as_slice(), reference_c.as_slice());
    }

    #[test]
    fn profile_round_trips_any_table(
        picks in proptest::collection::vec(0usize..1000, 12..13),
    ) {
        let table = table_from_picks(&picks);
        let text = profile_json("proptest-target", &table);
        let (target, parsed) = parse_profile(&text).expect("parse");
        prop_assert_eq!(target.as_str(), "proptest-target");
        prop_assert_eq!(parsed, table);
    }
}

/// Autotune must produce a table that survives save → load identically, and a
/// second parse of the same document must agree — the contract that lets a
/// committed `profiles/<target>.json` pin CI's kernel selection.
#[test]
fn autotune_save_load_round_trip_is_identity() {
    let report = autotune(&AutotuneConfig::quick());
    let dir = std::env::temp_dir().join("tlt-dispatch-roundtrip");
    let path = dir.join("tuned.json");
    let target = tlt_model::autotune::target_name();
    tlt_model::save_profile(&path, &target, &report.table).expect("save");
    let (loaded_target, loaded) = tlt_model::load_profile(&path).expect("load");
    assert_eq!(loaded_target, target);
    assert_eq!(loaded, report.table);
    let (_, again) = tlt_model::load_profile(&path).expect("reload");
    assert_eq!(again, loaded);
    let _ = std::fs::remove_dir_all(&dir);
}
