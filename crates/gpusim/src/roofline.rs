//! Roofline execution-time model.
//!
//! Every simulated kernel is summarised by the floating-point work it performs and
//! the bytes it must move through device memory. Its execution time is the maximum
//! of the compute time and the memory time (the classical roofline), plus a launch
//! overhead term that CUDAGraph replay removes — which is exactly the effect the
//! paper exploits (Figure 5(c): speculative verification moves decoding from the
//! memory-bound region toward the compute-bound region).

use crate::specs::GpuSpec;
use serde::{Deserialize, Serialize};

/// Fraction of peak tensor throughput realistically achievable by dense GEMMs.
pub const DEFAULT_COMPUTE_EFFICIENCY: f64 = 0.55;
/// Fraction of peak memory bandwidth realistically achievable by decode kernels.
pub const DEFAULT_MEMORY_EFFICIENCY: f64 = 0.80;
/// Per-kernel execution floor in microseconds that remains even under CUDAGraph
/// replay (tiny kernels cannot run faster than this; it is what makes a 24-layer
/// 0.5B drafter slower than a single-layer EAGLE drafter of similar size).
pub const GRAPH_KERNEL_FLOOR_US: f64 = 2.5;

/// Work performed by one (fused) kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct KernelWork {
    /// Floating-point operations.
    pub flops: f64,
    /// Bytes moved through device memory.
    pub bytes: f64,
    /// Number of kernel launches this work is split into (for launch overhead).
    pub launches: f64,
}

impl KernelWork {
    /// Creates a work descriptor.
    pub fn new(flops: f64, bytes: f64, launches: f64) -> Self {
        KernelWork {
            flops,
            bytes,
            launches,
        }
    }

    /// Combines two pieces of work executed back to back.
    pub fn then(self, other: KernelWork) -> KernelWork {
        KernelWork {
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
            launches: self.launches + other.launches,
        }
    }

    /// Arithmetic intensity in FLOP/byte. Returns infinity when no bytes are moved.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.bytes <= 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.bytes
        }
    }
}

/// Execution-mode knobs that affect kernel timing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionMode {
    /// Whether kernels are replayed from a captured CUDAGraph (removes launch overhead).
    pub cuda_graph: bool,
    /// Achieved fraction of peak compute.
    pub compute_efficiency: f64,
    /// Achieved fraction of peak memory bandwidth.
    pub memory_efficiency: f64,
}

impl Default for ExecutionMode {
    fn default() -> Self {
        ExecutionMode {
            cuda_graph: true,
            compute_efficiency: DEFAULT_COMPUTE_EFFICIENCY,
            memory_efficiency: DEFAULT_MEMORY_EFFICIENCY,
        }
    }
}

impl ExecutionMode {
    /// Eager (non-captured) execution.
    pub fn eager() -> Self {
        ExecutionMode {
            cuda_graph: false,
            ..ExecutionMode::default()
        }
    }
}

/// Breakdown of a roofline time estimate.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Seconds spent limited by compute.
    pub compute_s: f64,
    /// Seconds spent limited by memory bandwidth.
    pub memory_s: f64,
    /// Seconds of launch overhead.
    pub launch_s: f64,
    /// Total seconds (`max(compute, memory) + launch`).
    pub total_s: f64,
}

impl TimeBreakdown {
    /// Whether the kernel is compute-bound (compute time exceeds memory time).
    pub fn is_compute_bound(&self) -> bool {
        self.compute_s >= self.memory_s
    }
}

/// Estimates execution time of `work` on `gpu` under `mode`.
pub fn estimate_time(work: KernelWork, gpu: &GpuSpec, mode: ExecutionMode) -> TimeBreakdown {
    let peak_flops = gpu.bf16_tflops * 1e12 * mode.compute_efficiency;
    let peak_bw = gpu.memory_bandwidth_gbps * 1e9 * mode.memory_efficiency;
    let compute_s = work.flops / peak_flops;
    let memory_s = work.bytes / peak_bw;
    // Kernel execution floor applies regardless of capture; CPU-side launch
    // overhead is only paid in eager mode (CUDAGraph replays the whole graph with a
    // single submission).
    let mut launch_s = work.launches * GRAPH_KERNEL_FLOOR_US * 1e-6;
    if !mode.cuda_graph {
        launch_s += work.launches * gpu.kernel_launch_us * 1e-6;
    }
    TimeBreakdown {
        compute_s,
        memory_s,
        launch_s,
        total_s: compute_s.max(memory_s) + launch_s,
    }
}

/// Effective achieved TFLOP/s of a kernel (used to reproduce Figure 5(c)).
pub fn achieved_tflops(work: KernelWork, gpu: &GpuSpec, mode: ExecutionMode) -> f64 {
    let t = estimate_time(work, gpu, mode).total_s;
    if t <= 0.0 {
        0.0
    } else {
        work.flops / t / 1e12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::GpuType;

    #[test]
    fn memory_bound_kernel_limited_by_bandwidth() {
        let gpu = GpuType::H100.spec();
        // 1 GB of traffic, negligible flops.
        let work = KernelWork::new(1e6, 1e9, 10.0);
        let t = estimate_time(work, &gpu, ExecutionMode::default());
        assert!(!t.is_compute_bound());
        assert!(t.total_s > 1e-4);
    }

    #[test]
    fn compute_bound_kernel_limited_by_flops() {
        let gpu = GpuType::H100.spec();
        // Huge GEMM with little traffic.
        let work = KernelWork::new(1e15, 1e6, 10.0);
        let t = estimate_time(work, &gpu, ExecutionMode::default());
        assert!(t.is_compute_bound());
    }

    #[test]
    fn cuda_graph_removes_per_kernel_launch_overhead() {
        let gpu = GpuType::H100.spec();
        let work = KernelWork::new(1e9, 1e7, 500.0);
        let eager = estimate_time(work, &gpu, ExecutionMode::eager());
        let graphed = estimate_time(work, &gpu, ExecutionMode::default());
        assert!(eager.launch_s > graphed.launch_s * 2.0);
        assert!(eager.total_s > graphed.total_s);
    }

    #[test]
    fn achieved_tflops_increases_with_batched_verification() {
        // Figure 5(c): speculative decoding saturates compute at much smaller batch
        // sizes. Verifying 8 tokens per sequence ~8x the achieved TFLOPS of
        // single-token decode at the same batch size (while memory-bound).
        let gpu = GpuType::H100.spec();
        let params = 7.6e9;
        let decode = KernelWork::new(2.0 * params * 8.0, 2.0 * params, 1.0);
        let verify = KernelWork::new(2.0 * params * 8.0 * 8.0, 2.0 * params, 1.0);
        let t_decode = achieved_tflops(decode, &gpu, ExecutionMode::default());
        let t_verify = achieved_tflops(verify, &gpu, ExecutionMode::default());
        assert!(t_verify > 4.0 * t_decode);
    }

    #[test]
    fn work_composition_adds_fields() {
        let a = KernelWork::new(1.0, 2.0, 3.0);
        let b = KernelWork::new(10.0, 20.0, 30.0);
        let c = a.then(b);
        assert_eq!(c.flops, 11.0);
        assert_eq!(c.bytes, 22.0);
        assert_eq!(c.launches, 33.0);
    }

    #[test]
    fn arithmetic_intensity_handles_zero_bytes() {
        assert!(KernelWork::new(1.0, 0.0, 1.0)
            .arithmetic_intensity()
            .is_infinite());
        assert_eq!(KernelWork::new(4.0, 2.0, 1.0).arithmetic_intensity(), 2.0);
    }
}
