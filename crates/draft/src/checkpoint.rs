//! Selective asynchronous checkpointing of the draft model (§4.2).
//!
//! The spot trainer is preemptible: when rollout finishes, drafter training is halted
//! immediately, so frequent checkpoints are needed to avoid losing progress. The
//! paper's two optimisations are reproduced here:
//!
//! * **Asynchronous** — serialisation happens on a background thread; the training
//!   thread only pays for snapshotting the (small) trainable state.
//! * **Selective** — frozen tied weights (embedding, LM head) are filtered out and
//!   only the trainable fusion + decoder-layer parameters are written.
//!
//! Checkpoints are written into an in-memory byte store rather than the filesystem so
//! the behaviour is deterministic and testable; the blocking-time accounting is the
//! quantity compared in Figure 17(a).

use crate::model::DraftModel;
use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use tlt_model::{Mat, TinyLm};

/// Checkpointing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckpointMode {
    /// Serialise everything (drafter + tied frozen weights) on the calling thread.
    VanillaSync,
    /// Serialise everything, but on a background thread.
    Async,
    /// Serialise only the trainable drafter parameters, on a background thread.
    SelectiveAsync,
}

impl CheckpointMode {
    /// All modes, in the order of Figure 17(a).
    pub fn all() -> [CheckpointMode; 3] {
        [
            CheckpointMode::VanillaSync,
            CheckpointMode::Async,
            CheckpointMode::SelectiveAsync,
        ]
    }

    /// Display name matching the figure labels.
    pub fn name(&self) -> &'static str {
        match self {
            CheckpointMode::VanillaSync => "Vanilla Ckpt",
            CheckpointMode::Async => "Async Ckpt",
            CheckpointMode::SelectiveAsync => "Selective Async Ckpt",
        }
    }
}

/// Outcome of a checkpoint request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointReport {
    /// Time the *training thread* was blocked, in microseconds.
    pub blocking_us: u64,
    /// Bytes written to the store.
    pub bytes_written: usize,
    /// Whether serialisation happened on a background thread.
    pub asynchronous: bool,
}

/// Serialises a matrix as little-endian f32s prefixed by its shape.
fn write_mat(buf: &mut BytesMut, mat: &Mat) {
    buf.extend_from_slice(&(mat.rows() as u64).to_le_bytes());
    buf.extend_from_slice(&(mat.cols() as u64).to_le_bytes());
    for &v in mat.as_slice() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn write_vec(buf: &mut BytesMut, values: &[f32]) {
    buf.extend_from_slice(&(values.len() as u64).to_le_bytes());
    for &v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Serialises only the trainable drafter state.
pub fn serialize_trainable(drafter: &DraftModel) -> Bytes {
    let mut buf = BytesMut::new();
    buf.extend_from_slice(&drafter.version.to_le_bytes());
    write_mat(&mut buf, &drafter.fusion.weight);
    let layer = &drafter.layer;
    write_vec(&mut buf, &layer.attn_norm);
    write_mat(&mut buf, &layer.wq);
    write_mat(&mut buf, &layer.wk);
    write_mat(&mut buf, &layer.wv);
    write_mat(&mut buf, &layer.wo);
    write_vec(&mut buf, &layer.mlp_norm);
    write_mat(&mut buf, &layer.w_gate);
    write_mat(&mut buf, &layer.w_up);
    write_mat(&mut buf, &layer.w_down);
    buf.freeze()
}

/// Serialises the drafter plus the tied frozen weights of the target (what a
/// non-selective checkpoint of the drafter process would write).
pub fn serialize_full(drafter: &DraftModel, target: &TinyLm) -> Bytes {
    let mut buf = BytesMut::from(&serialize_trainable(drafter)[..]);
    let mut extra = BytesMut::new();
    write_mat(&mut extra, &target.embedding);
    write_mat(&mut extra, &target.lm_head);
    write_vec(&mut extra, &target.final_norm);
    buf.extend_from_slice(&extra);
    buf.freeze()
}

/// Restores the trainable drafter state from [`serialize_trainable`] output into an
/// existing drafter (shapes must match).
///
/// # Panics
///
/// Panics on malformed data; production paths should validate first via
/// [`try_restore_trainable`].
pub fn restore_trainable(drafter: &mut DraftModel, data: &[u8]) {
    try_restore_trainable(drafter, data).expect("valid trainable checkpoint");
}

/// Why a checkpoint was rejected by validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckpointError {
    /// The byte stream ends before the declared structure does.
    Truncated,
    /// A declared dimension is implausibly large for the byte stream (a corrupt
    /// shape header would otherwise ask for a huge allocation).
    ShapeOverflow,
    /// A weight decoded to NaN or infinity.
    NonFinite,
    /// Extra bytes remain after the last tensor.
    TrailingBytes,
    /// The checkpoint is structurally valid but its tensor shapes do not match
    /// the drafter it is being restored into.
    ShapeMismatch,
    /// The checkpoint's version is not newer than the drafter's (stale swap).
    Stale,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CheckpointError::Truncated => "truncated checkpoint",
            CheckpointError::ShapeOverflow => "corrupt shape header",
            CheckpointError::NonFinite => "non-finite weight",
            CheckpointError::TrailingBytes => "trailing bytes after last tensor",
            CheckpointError::ShapeMismatch => "tensor shapes do not match the drafter",
            CheckpointError::Stale => "checkpoint is not newer than the current drafter",
        };
        f.write_str(s)
    }
}

/// A bounds- and finiteness-checked reader over the checkpoint wire format.
struct Cursor<'a> {
    data: &'a [u8],
    offset: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, offset: 0 }
    }

    fn read_u64(&mut self) -> Result<u64, CheckpointError> {
        let end = self
            .offset
            .checked_add(8)
            .ok_or(CheckpointError::Truncated)?;
        if end > self.data.len() {
            return Err(CheckpointError::Truncated);
        }
        let v = u64::from_le_bytes(self.data[self.offset..end].try_into().expect("8 bytes"));
        self.offset = end;
        Ok(v)
    }

    /// Reads `count` little-endian f32s, rejecting non-finite values.
    fn read_f32s(&mut self, count: usize) -> Result<Vec<f32>, CheckpointError> {
        let bytes = count.checked_mul(4).ok_or(CheckpointError::ShapeOverflow)?;
        let end = self
            .offset
            .checked_add(bytes)
            .ok_or(CheckpointError::ShapeOverflow)?;
        if end > self.data.len() {
            return Err(CheckpointError::Truncated);
        }
        let mut values = Vec::with_capacity(count);
        while self.offset < end {
            let v = f32::from_le_bytes(
                self.data[self.offset..self.offset + 4]
                    .try_into()
                    .expect("4 bytes"),
            );
            if !v.is_finite() {
                return Err(CheckpointError::NonFinite);
            }
            values.push(v);
            self.offset += 4;
        }
        Ok(values)
    }

    fn read_mat(&mut self) -> Result<Mat, CheckpointError> {
        let rows = self.read_u64()? as usize;
        let cols = self.read_u64()? as usize;
        let count = rows
            .checked_mul(cols)
            .ok_or(CheckpointError::ShapeOverflow)?;
        let values = self.read_f32s(count)?;
        Ok(Mat::from_vec(rows, cols, values))
    }

    fn read_vec(&mut self) -> Result<Vec<f32>, CheckpointError> {
        let len = self.read_u64()? as usize;
        self.read_f32s(len)
    }

    fn finish(&self) -> Result<(), CheckpointError> {
        if self.offset == self.data.len() {
            Ok(())
        } else {
            Err(CheckpointError::TrailingBytes)
        }
    }
}

/// The trainable state decoded (and validated) from a checkpoint.
struct DecodedTrainable {
    version: u64,
    fusion_weight: Mat,
    attn_norm: Vec<f32>,
    wq: Mat,
    wk: Mat,
    wv: Mat,
    wo: Mat,
    mlp_norm: Vec<f32>,
    w_gate: Mat,
    w_up: Mat,
    w_down: Mat,
}

fn decode_trainable(data: &[u8]) -> Result<DecodedTrainable, CheckpointError> {
    let mut cur = Cursor::new(data);
    let decoded = DecodedTrainable {
        version: cur.read_u64()?,
        fusion_weight: cur.read_mat()?,
        attn_norm: cur.read_vec()?,
        wq: cur.read_mat()?,
        wk: cur.read_mat()?,
        wv: cur.read_mat()?,
        wo: cur.read_mat()?,
        mlp_norm: cur.read_vec()?,
        w_gate: cur.read_mat()?,
        w_up: cur.read_mat()?,
        w_down: cur.read_mat()?,
    };
    cur.finish()?;
    Ok(decoded)
}

/// Validates a [`serialize_trainable`] byte stream without restoring it: checks
/// structure (every tensor fully present, nothing trailing) and weight
/// finiteness. Returns the checkpoint's version on success.
pub fn validate_trainable(data: &[u8]) -> Result<u64, CheckpointError> {
    decode_trainable(data).map(|d| d.version)
}

/// Validates `data` and restores it into `drafter` only if every check passes —
/// on any error the drafter is left untouched (no partial restore). Shapes must
/// match the drafter's current geometry. Returns the restored version.
pub fn try_restore_trainable(
    drafter: &mut DraftModel,
    data: &[u8],
) -> Result<u64, CheckpointError> {
    let d = decode_trainable(data)?;
    install_decoded(drafter, d)
}

/// Shape-checks an already decoded checkpoint against `drafter` and moves the
/// tensors in (no copy). On mismatch the drafter is untouched.
fn install_decoded(drafter: &mut DraftModel, d: DecodedTrainable) -> Result<u64, CheckpointError> {
    let shape = |m: &Mat| (m.rows(), m.cols());
    let layer = &drafter.layer;
    let matches = shape(&d.fusion_weight) == shape(&drafter.fusion.weight)
        && d.attn_norm.len() == layer.attn_norm.len()
        && shape(&d.wq) == shape(&layer.wq)
        && shape(&d.wk) == shape(&layer.wk)
        && shape(&d.wv) == shape(&layer.wv)
        && shape(&d.wo) == shape(&layer.wo)
        && d.mlp_norm.len() == layer.mlp_norm.len()
        && shape(&d.w_gate) == shape(&layer.w_gate)
        && shape(&d.w_up) == shape(&layer.w_up)
        && shape(&d.w_down) == shape(&layer.w_down);
    if !matches {
        return Err(CheckpointError::ShapeMismatch);
    }
    drafter.version = d.version;
    drafter.fusion.weight = d.fusion_weight;
    drafter.layer.attn_norm = d.attn_norm;
    drafter.layer.wq = d.wq;
    drafter.layer.wk = d.wk;
    drafter.layer.wv = d.wv;
    drafter.layer.wo = d.wo;
    drafter.layer.mlp_norm = d.mlp_norm;
    drafter.layer.w_gate = d.w_gate;
    drafter.layer.w_up = d.w_up;
    drafter.layer.w_down = d.w_down;
    Ok(d.version)
}

/// An in-memory checkpoint store shared with background serialisation threads.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    latest: Arc<Mutex<Option<Bytes>>>,
    pending: Vec<JoinHandle<()>>,
}

impl CheckpointStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// Latest completed checkpoint, if any (waits for background writes first).
    pub fn latest(&mut self) -> Option<Bytes> {
        self.wait_for_pending();
        self.latest.lock().clone()
    }

    /// Number of in-flight background writes.
    pub fn pending_writes(&self) -> usize {
        self.pending.len()
    }

    /// Blocks until all background writes have completed.
    pub fn wait_for_pending(&mut self) {
        for handle in self.pending.drain(..) {
            let _ = handle.join();
        }
    }

    /// Takes a checkpoint of `drafter` under `mode`, returning how long the calling
    /// (training) thread was blocked.
    pub fn checkpoint(
        &mut self,
        mode: CheckpointMode,
        drafter: &DraftModel,
        target: &TinyLm,
    ) -> CheckpointReport {
        let start = Instant::now();
        match mode {
            CheckpointMode::VanillaSync => {
                let data = serialize_full(drafter, target);
                let bytes_written = data.len();
                *self.latest.lock() = Some(data);
                CheckpointReport {
                    blocking_us: start.elapsed().as_micros() as u64,
                    bytes_written,
                    asynchronous: false,
                }
            }
            CheckpointMode::Async | CheckpointMode::SelectiveAsync => {
                // Blocking portion: clone the state the background thread needs.
                let drafter_snapshot = drafter.clone();
                let target_snapshot = if mode == CheckpointMode::Async {
                    Some(target.clone())
                } else {
                    None
                };
                let slot = Arc::clone(&self.latest);
                let blocking_us = start.elapsed().as_micros() as u64;
                let handle = std::thread::spawn(move || {
                    let data = match &target_snapshot {
                        Some(t) => serialize_full(&drafter_snapshot, t),
                        None => serialize_trainable(&drafter_snapshot),
                    };
                    *slot.lock() = Some(data);
                });
                self.pending.push(handle);
                let bytes_written = match mode {
                    CheckpointMode::Async => serialize_full(drafter, target).len(),
                    _ => serialize_trainable(drafter).len(),
                };
                CheckpointReport {
                    blocking_us,
                    bytes_written,
                    asynchronous: true,
                }
            }
        }
    }
}

impl Drop for CheckpointStore {
    fn drop(&mut self) {
        self.wait_for_pending();
    }
}

/// Outcome of offering a candidate checkpoint to a [`DrafterVault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwapOutcome {
    /// The candidate validated, was newer, and is now live.
    Swapped {
        /// Version of the adopted checkpoint.
        version: u64,
    },
    /// The candidate failed validation; the current drafter was kept.
    RejectedCorrupt {
        /// Why validation failed.
        error: CheckpointError,
    },
    /// The candidate validated but is not newer than the live drafter.
    RejectedStale {
        /// The candidate's version.
        candidate: u64,
        /// The live drafter's version.
        current: u64,
    },
}

/// Guards the serving drafter against bad checkpoints: every candidate is
/// validated (structure, finiteness, shape, freshness) before it goes live, and
/// the last known-good serialized state is retained so a drafter whose in-memory
/// weights are damaged can be rolled back bit-exactly. Speculative decoding is
/// lossless with *any* drafter, so the vault's job is availability, not
/// correctness: it keeps the acceptance rate from collapsing to garbage weights
/// while the rejection-sampling verifier keeps outputs exact either way.
#[derive(Debug, Default)]
pub struct DrafterVault {
    last_good: Option<Bytes>,
    last_good_version: u64,
    swaps: u64,
    rejected_corrupt: u64,
    rejected_stale: u64,
    rollbacks: u64,
}

impl DrafterVault {
    /// An empty vault (no known-good state yet).
    pub fn new() -> Self {
        DrafterVault::default()
    }

    /// Records `drafter`'s current trainable state as the last known-good
    /// checkpoint. Returns its version.
    pub fn commit(&mut self, drafter: &DraftModel) -> u64 {
        self.last_good = Some(serialize_trainable(drafter));
        self.last_good_version = drafter.version;
        drafter.version
    }

    /// Version of the last committed known-good state (0 before any commit).
    pub fn last_good_version(&self) -> u64 {
        self.last_good_version
    }

    /// Offers a candidate checkpoint: validated and restored into `drafter`
    /// only if it is structurally sound, finite, shape-compatible, and strictly
    /// newer than the live drafter. A rejected candidate leaves the drafter
    /// untouched. A swapped candidate becomes the new last-good state.
    pub fn try_swap(&mut self, drafter: &mut DraftModel, candidate: &[u8]) -> SwapOutcome {
        // One decode covers validation, the staleness gate, and the install
        // (the decoded tensors move into the drafter without re-parsing).
        let decoded = match decode_trainable(candidate) {
            Ok(d) => d,
            Err(error) => {
                self.rejected_corrupt += 1;
                return SwapOutcome::RejectedCorrupt { error };
            }
        };
        if decoded.version <= drafter.version {
            self.rejected_stale += 1;
            return SwapOutcome::RejectedStale {
                candidate: decoded.version,
                current: drafter.version,
            };
        }
        match install_decoded(drafter, decoded) {
            Ok(v) => {
                self.swaps += 1;
                self.last_good = Some(Bytes::copy_from_slice(candidate));
                self.last_good_version = v;
                SwapOutcome::Swapped { version: v }
            }
            Err(error) => {
                self.rejected_corrupt += 1;
                SwapOutcome::RejectedCorrupt { error }
            }
        }
    }

    /// Rolls `drafter` back to the last known-good state (bit-exact). Returns
    /// `false` (leaving the drafter untouched) when nothing was ever committed.
    pub fn restore_last_good(&mut self, drafter: &mut DraftModel) -> bool {
        match &self.last_good {
            Some(data) => {
                try_restore_trainable(drafter, data).expect("committed state is valid");
                self.rollbacks += 1;
                true
            }
            None => false,
        }
    }

    /// Counters: `(swaps, rejected_corrupt, rejected_stale, rollbacks)`.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.swaps,
            self.rejected_corrupt,
            self.rejected_stale,
            self.rollbacks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FeatureSource;
    use tlt_model::ModelConfig;

    fn setup() -> (TinyLm, DraftModel) {
        let target = TinyLm::new(ModelConfig::tiny(), 11);
        let drafter = DraftModel::new(&target, FeatureSource::LastLayer, 1);
        (target, drafter)
    }

    #[test]
    fn trainable_roundtrip_restores_exactly() {
        let (target, mut drafter) = setup();
        drafter.version = 42;
        let data = serialize_trainable(&drafter);
        let mut restored = DraftModel::new(&target, FeatureSource::LastLayer, 99);
        restore_trainable(&mut restored, &data);
        assert_eq!(restored.version, 42);
        assert_eq!(restored.fusion.weight, drafter.fusion.weight);
        assert_eq!(restored.layer, drafter.layer);
    }

    #[test]
    fn selective_checkpoint_is_much_smaller_than_full() {
        let (target, drafter) = setup();
        let selective = serialize_trainable(&drafter).len();
        let full = serialize_full(&drafter, &target).len();
        // With the tiny substrate vocabulary the tied embedding/LM-head add ~50%
        // on top of the trainable state; with a real 150K-entry vocabulary the gap
        // is far larger (the paper reports a combined 9.2x checkpoint-latency win).
        assert!(
            full as f64 > 1.2 * selective as f64,
            "full {full} should exceed selective {selective}"
        );
    }

    #[test]
    fn async_modes_report_background_write() {
        let (target, drafter) = setup();
        let mut store = CheckpointStore::new();
        let sync = store.checkpoint(CheckpointMode::VanillaSync, &drafter, &target);
        assert!(!sync.asynchronous);
        let selective = store.checkpoint(CheckpointMode::SelectiveAsync, &drafter, &target);
        assert!(selective.asynchronous);
        assert!(selective.bytes_written < sync.bytes_written);
        store.wait_for_pending();
        assert!(store.latest().is_some());
    }

    #[test]
    fn latest_checkpoint_reflects_most_recent_write() {
        let (target, mut drafter) = setup();
        let mut store = CheckpointStore::new();
        drafter.version = 1;
        store.checkpoint(CheckpointMode::SelectiveAsync, &drafter, &target);
        drafter.version = 2;
        store.checkpoint(CheckpointMode::SelectiveAsync, &drafter, &target);
        let data = store.latest().expect("checkpoint present");
        let mut restored = DraftModel::new(&target, FeatureSource::LastLayer, 5);
        restore_trainable(&mut restored, &data);
        assert_eq!(restored.version, 2);
    }

    #[test]
    fn checkpoint_modes_have_names() {
        for mode in CheckpointMode::all() {
            assert!(!mode.name().is_empty());
        }
    }

    #[test]
    fn validation_accepts_good_and_rejects_corrupt_checkpoints() {
        let (_, mut drafter) = setup();
        drafter.version = 9;
        let good = serialize_trainable(&drafter);
        assert_eq!(validate_trainable(&good), Ok(9));

        // Truncation anywhere in the stream is caught.
        assert_eq!(
            validate_trainable(&good[..good.len() - 3]),
            Err(CheckpointError::Truncated)
        );
        assert_eq!(
            validate_trainable(&good[..4]),
            Err(CheckpointError::Truncated)
        );

        // Trailing garbage is caught.
        let mut trailing = good.to_vec();
        trailing.extend_from_slice(&[0u8; 5]);
        assert_eq!(
            validate_trainable(&trailing),
            Err(CheckpointError::TrailingBytes)
        );

        // A NaN weight is caught (flip a payload float to NaN).
        let mut nan = good.to_vec();
        let weight_offset = 8 + 16; // version + fusion shape header
        nan[weight_offset..weight_offset + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        assert_eq!(validate_trainable(&nan), Err(CheckpointError::NonFinite));

        // A corrupted shape header asks for data the stream cannot hold.
        let mut bad_shape = good.to_vec();
        bad_shape[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(validate_trainable(&bad_shape).is_err());
    }

    #[test]
    fn try_restore_rejects_shape_mismatch_without_touching_the_drafter() {
        let (_, tiny) = setup();
        let micro_target = TinyLm::new(ModelConfig::micro(), 13);
        let mut micro = DraftModel::new(&micro_target, FeatureSource::LastLayer, 14);
        let before = micro.clone();
        let data = serialize_trainable(&tiny);
        assert_eq!(
            try_restore_trainable(&mut micro, &data),
            Err(CheckpointError::ShapeMismatch)
        );
        assert_eq!(micro, before, "no partial restore on rejection");
    }

    #[test]
    fn vault_swaps_newer_rejects_stale_and_corrupt() {
        let (target, mut live) = setup();
        live.version = 5;
        let mut vault = DrafterVault::new();
        vault.commit(&live);

        // A newer checkpoint swaps in and becomes the last-good state.
        let mut newer = DraftModel::new(&target, FeatureSource::LastLayer, 3);
        newer.version = 6;
        let candidate = serialize_trainable(&newer);
        assert_eq!(
            vault.try_swap(&mut live, &candidate),
            SwapOutcome::Swapped { version: 6 }
        );
        assert_eq!(live.version, 6);
        assert_eq!(live.layer, newer.layer);
        assert_eq!(vault.last_good_version(), 6);

        // A stale checkpoint (same or older version) is rejected.
        let mut stale = DraftModel::new(&target, FeatureSource::LastLayer, 4);
        stale.version = 6;
        let outcome = vault.try_swap(&mut live, &serialize_trainable(&stale));
        assert_eq!(
            outcome,
            SwapOutcome::RejectedStale {
                candidate: 6,
                current: 6
            }
        );
        assert_eq!(live.layer, newer.layer, "stale swap leaves drafter intact");

        // A corrupt checkpoint is rejected without touching the drafter.
        let mut corrupt = serialize_trainable(&newer).to_vec();
        corrupt.truncate(corrupt.len() / 2);
        let outcome = vault.try_swap(&mut live, &corrupt);
        assert!(matches!(outcome, SwapOutcome::RejectedCorrupt { .. }));
        assert_eq!(live.layer, newer.layer);
        let (swaps, rejected_corrupt, rejected_stale, _) = vault.counters();
        assert_eq!((swaps, rejected_corrupt, rejected_stale), (1, 1, 1));
    }

    #[test]
    fn vault_rolls_back_damaged_weights_bit_exactly() {
        let (_, mut live) = setup();
        live.version = 3;
        let pristine = live.clone();
        let mut vault = DrafterVault::new();
        vault.commit(&live);

        // Damage the in-memory drafter (simulating a bad partial load).
        live.fusion.weight = Mat::from_vec(
            live.fusion.weight.rows(),
            live.fusion.weight.cols(),
            vec![0.0; live.fusion.weight.len()],
        );
        assert_ne!(live.fusion.weight, pristine.fusion.weight);
        assert!(vault.restore_last_good(&mut live));
        assert_eq!(live.fusion.weight, pristine.fusion.weight);
        assert_eq!(live.layer, pristine.layer);
        assert_eq!(live.version, 3);

        // An empty vault refuses to roll back.
        let mut empty = DrafterVault::new();
        assert!(!empty.restore_last_good(&mut live));
    }
}
