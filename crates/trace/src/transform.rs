//! Deterministic trace transforms: rate scaling, storm injection, tenant
//! shuffling.
//!
//! Every transform is a pure function of the input trace (and a seed where
//! noted), produces a renamed trace, and **drops the SD section** — a recorded
//! accept stream describes one exact run and no longer corresponds to the
//! edited workload.

use crate::format::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tlt_workload::{merge_arrival_streams, RequestArrival};

impl Trace {
    /// Compresses (factor > 1) or stretches (factor < 1) the arrival timeline
    /// by `factor`, keeping every request payload: the trace-replay analogue
    /// of `RateCurve::scaled`. Tick deltas are rounded, so relative order is
    /// preserved exactly.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive.
    pub fn rate_scaled(&self, factor: f64) -> Trace {
        assert!(
            factor.is_finite() && factor > 0.0,
            "rate scale factor must be finite and positive"
        );
        let tick = self.tick_ns();
        let scaled: Vec<RequestArrival> = self
            .arrivals()
            .iter()
            .map(|a| {
                let ticks = (a.time_ns / tick) as f64 / factor;
                RequestArrival {
                    time_ns: (ticks.round() as u64) * tick,
                    ..*a
                }
            })
            .collect();
        Trace::from_arrivals(&format!("{}+x{factor:.2}", self.name()), tick, &scaled)
    }

    /// Injects a synthetic request storm: a homogeneous Poisson burst at
    /// `storm_rps` over `[at_s, at_s + duration_s)`, each storm request
    /// cloning the payload (lengths, prefix) of a uniformly drawn base
    /// request. Deterministic per `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty, the storm rate is not positive, or the
    /// window is degenerate.
    pub fn storm_injected(&self, at_s: f64, duration_s: f64, storm_rps: f64, seed: u64) -> Trace {
        assert!(!self.arrivals().is_empty(), "cannot storm an empty trace");
        assert!(storm_rps > 0.0, "storm rate must be positive");
        assert!(duration_s > 0.0 && at_s >= 0.0, "invalid storm window");
        let tick = self.tick_ns();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut storm = Vec::new();
        let mut t = at_s;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / storm_rps;
            if t >= at_s + duration_s {
                break;
            }
            let donor = self.arrivals()[rng.gen_range(0..self.arrivals().len())];
            storm.push(RequestArrival {
                id: storm.len() as u64,
                time_ns: ((t * 1e9) as u64 / tick) * tick,
                ..donor
            });
        }
        let merged = merge_arrival_streams(vec![self.arrivals().to_vec(), storm]);
        Trace::from_arrivals(&format!("{}+storm", self.name()), tick, &merged)
    }

    /// Re-deals the request payloads (lengths and prefix membership) across
    /// the arrival slots with a seeded Fisher–Yates shuffle, keeping the
    /// arrival timeline itself fixed — "same tenants, different timing
    /// correlation". Deterministic per `seed`.
    pub fn tenant_shuffled(&self, seed: u64) -> Trace {
        let mut payloads: Vec<(usize, usize, u64, usize)> = self
            .arrivals()
            .iter()
            .map(|a| (a.prompt_len, a.output_len, a.prefix_id, a.prefix_len))
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..payloads.len()).rev() {
            let j = rng.gen_range(0..=i);
            payloads.swap(i, j);
        }
        let shuffled: Vec<RequestArrival> = self
            .arrivals()
            .iter()
            .zip(payloads)
            .map(
                |(a, (prompt_len, output_len, prefix_id, prefix_len))| RequestArrival {
                    prompt_len,
                    output_len,
                    prefix_id,
                    prefix_len,
                    ..*a
                },
            )
            .collect();
        Trace::from_arrivals(
            &format!("{}+shuffle", self.name()),
            self.tick_ns(),
            &shuffled,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlt_workload::{generate_arrivals, ArrivalConfig};

    fn base() -> Trace {
        let config = ArrivalConfig::constant(10.0, 60.0, 5).with_prefix(0.4, 64);
        Trace::from_arrivals("base", 1_000_000, &generate_arrivals(&config))
            .with_sd_accepts(vec![2; 10])
    }

    #[test]
    fn rate_scaling_compresses_the_timeline_and_keeps_payloads() {
        let t = base();
        let fast = t.rate_scaled(2.0);
        assert_eq!(fast.arrivals().len(), t.arrivals().len());
        assert!(
            fast.sd_accepts().is_none(),
            "transforms drop the SD section"
        );
        let last = t.arrivals().last().unwrap().time_ns as f64;
        let fast_last = fast.arrivals().last().unwrap().time_ns as f64;
        assert!((fast_last - last / 2.0).abs() <= 2.0 * t.tick_ns() as f64);
        for (a, b) in t.arrivals().iter().zip(fast.arrivals()) {
            assert_eq!(a.prompt_len, b.prompt_len);
            assert_eq!(a.output_len, b.output_len);
        }
        assert_eq!(fast.name(), "base+x2.00");
        // Identity-ish: scaling by 1.0 keeps the timeline bit-for-bit.
        assert_eq!(t.rate_scaled(1.0).arrivals(), t.arrivals());
    }

    #[test]
    fn storm_injection_is_deterministic_per_seed() {
        let t = base();
        let a = t.storm_injected(10.0, 5.0, 40.0, 1);
        let b = t.storm_injected(10.0, 5.0, 40.0, 1);
        assert_eq!(a, b);
        let c = t.storm_injected(10.0, 5.0, 40.0, 2);
        assert_ne!(a.arrivals(), c.arrivals());
        // The storm adds roughly rate x duration requests inside the window.
        let added = a.arrivals().len() - t.arrivals().len();
        assert!((100..=300).contains(&added), "storm added {added}");
        let window = 10.0..15.5;
        let in_window = a
            .arrivals()
            .iter()
            .filter(|r| window.contains(&r.time_s()))
            .count();
        assert!(in_window >= added, "storm requests land in the window");
    }

    #[test]
    fn tenant_shuffle_permutes_payloads_but_not_times() {
        let t = base();
        let s = t.tenant_shuffled(9);
        assert_eq!(s.arrivals().len(), t.arrivals().len());
        for (a, b) in t.arrivals().iter().zip(s.arrivals()) {
            assert_eq!(a.time_ns, b.time_ns, "timeline must be untouched");
        }
        let mut before: Vec<_> = t
            .arrivals()
            .iter()
            .map(|a| (a.prompt_len, a.output_len, a.prefix_id, a.prefix_len))
            .collect();
        let mut after: Vec<_> = s
            .arrivals()
            .iter()
            .map(|a| (a.prompt_len, a.output_len, a.prefix_id, a.prefix_len))
            .collect();
        assert_ne!(before, after, "shuffle should move something");
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after, "payload multiset is preserved");
        assert_eq!(s, t.tenant_shuffled(9));
    }

    #[test]
    fn transformed_traces_still_round_trip() {
        let t = base().storm_injected(5.0, 2.0, 30.0, 3).tenant_shuffled(4);
        let decoded = Trace::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(decoded, t);
    }
}
