//! Cross-crate integration tests: the full TLT stack wired together.

use tlt::{
    run_comparison, run_experiment, run_token_experiment, SystemKind, TokenExperimentConfig,
};
use tlt_coord::{Coordinator, CoordinatorConfig, WorkerEvent, WorkerState};
use tlt_draft::AcceptanceProfile;
use tlt_gpusim::{ClusterConfig, GpuType, LlmCostModel};
use tlt_model::ModelSpec;
use tlt_rollout::{
    default_batch_buckets, simulate_rollout, CaptureMode, CudaGraphPool, SdManagerConfig, SdMode,
    SdStrategy, SimRolloutConfig,
};
use tlt_workload::LengthDistribution;

fn quick_config() -> tlt::ExperimentConfig {
    tlt::ExperimentConfig::paper_default(
        ModelSpec::qwen2_5_7b(),
        ClusterConfig::single_node(GpuType::H100, 2),
    )
    .scaled_down()
}

#[test]
fn end_to_end_system_ordering_matches_the_paper() {
    let results = run_comparison(&quick_config());
    let throughput = |k: SystemKind| {
        results
            .iter()
            .find(|r| r.system == k)
            .expect("system simulated")
            .throughput_tokens_per_s
    };
    assert!(throughput(SystemKind::Tlt) > throughput(SystemKind::TltBase));
    assert!(throughput(SystemKind::TltBase) > throughput(SystemKind::Verl));
    assert!(throughput(SystemKind::Verl) > throughput(SystemKind::OpenR1));
}

#[test]
fn rollout_bottleneck_is_reduced_but_step_structure_is_preserved() {
    let config = quick_config();
    let verl = run_experiment(SystemKind::Verl, &config);
    let ours = run_experiment(SystemKind::Tlt, &config);
    let verl_breakdown = verl.mean_breakdown();
    let tlt_breakdown = ours.mean_breakdown();
    // TLT attacks the rollout stage specifically.
    assert!(tlt_breakdown.rollout_s < verl_breakdown.rollout_s);
    // The other stages are untouched (same cost model inputs).
    assert!((tlt_breakdown.training_s - verl_breakdown.training_s).abs() < 1e-6);
    assert!(ours.drafter_updates_per_step > 0.0);
}

#[test]
fn coordinator_harvests_exactly_the_idle_workers() {
    let mut coordinator = Coordinator::new(8, CoordinatorConfig::default());
    for (worker, at) in [(3usize, 5.0f64), (5, 7.0), (1, 9.0)] {
        coordinator.handle_event(
            WorkerEvent::StateChanged {
                worker,
                state: WorkerState::Idle,
                at,
            },
            at,
        );
    }
    let session = coordinator.training_session().expect("training session");
    assert_eq!(session.members.len(), 3);
    assert_eq!(coordinator.workers_in_state(WorkerState::Training).len(), 3);
    assert_eq!(coordinator.workers_in_state(WorkerState::Busy).len(), 5);
    let commands = coordinator.preempt_for_rollout();
    assert!(commands.len() >= 8);
    assert!(coordinator.training_session().is_none());
}

#[test]
fn cudagraph_pool_strategies_are_consistent_with_the_mab_buckets() {
    let cost = LlmCostModel::new(ModelSpec::qwen2_5_32b(), GpuType::H100.spec(), 4);
    let drafter = cost.model.eagle_drafter();
    let pool = CudaGraphPool::plan(
        CaptureMode::Bucketed,
        &SdStrategy::default_set(),
        &default_batch_buckets(),
        &cost,
        &drafter,
    );
    // The pool serves every batch size the engine can see, and deeper verification is
    // reserved for smaller batches.
    let mut last_verify = usize::MAX;
    for batch in [1usize, 4, 16, 64, 256] {
        let strategy = pool.strategy_for_batch(batch);
        assert!(strategy.tokens_to_verify <= last_verify);
        last_verify = strategy.tokens_to_verify;
    }
}

#[test]
fn adaptive_rollout_beats_stale_rollout_beats_vanilla() {
    // Ties the drafter acceptance model to the rollout engine: a fresher drafter must
    // translate into faster rollouts.
    let cost = LlmCostModel::new(ModelSpec::qwen2_5_32b(), GpuType::H100.spec(), 4);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let lengths = LengthDistribution::LongTailMixture {
        mu: 6.5,
        sigma: 0.8,
        truncation_mass: 0.05,
        max_len: 8192,
    }
    .sample_many(64, &mut rng);
    let run = |acceptance: AcceptanceProfile| {
        let config = SimRolloutConfig {
            acceptance,
            ..SimRolloutConfig::vanilla(cost.clone())
        }
        .with_sd_mode(SdMode::Adaptive {
            config: SdManagerConfig::default(),
        });
        simulate_rollout(&config, &lengths).total_time_s
    };
    let vanilla = simulate_rollout(&SimRolloutConfig::vanilla(cost.clone()), &lengths).total_time_s;
    let stale = run(AcceptanceProfile::stale_drafter());
    let adaptive = run(AcceptanceProfile::adaptive_drafter());
    assert!(
        adaptive < stale,
        "adaptive {adaptive} should beat stale {stale}"
    );
    assert!(
        stale < vanilla,
        "stale-drafter SD {stale} should still beat vanilla {vanilla}"
    );
}

#[test]
fn token_level_pipeline_trains_policy_and_drafter_together() {
    let (report, target, drafter) = run_token_experiment(&TokenExperimentConfig::small(true, true));
    assert_eq!(report.reward_curve.len(), 3);
    assert!(report.generated_tokens > 0);
    assert!(drafter.version > 0);
    // The drafter is a valid by-product: it can immediately draft for the final target.
    let prompt = [1u32, 2, 3];
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let result = tlt_rollout::speculative_generate(
        &target,
        &tlt_rollout::SpecDrafter::Learned(&drafter),
        &prompt,
        16,
        SdStrategy {
            draft_depth: 4,
            top_k: 1,
            tokens_to_verify: 4,
        },
        tlt_model::SamplingParams::greedy(),
        None,
        &mut rng,
    );
    assert!(!result.tokens.is_empty());
}
