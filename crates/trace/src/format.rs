//! The TLTR v1 compact binary serving-trace format.
//!
//! Modelled on branch-trace formats like cbp-experiments (0.1–1.2 bits per
//! branch), the encoding targets a few **bytes per request**:
//!
//! ```text
//! offset  field
//! ------  -----------------------------------------------------------------
//! 0       magic "TLTR" (4 bytes)
//! 4       version (u8, currently 1)
//! 5       flags (u8; bit 0 = SD bitstream section present)
//! 6       name length (u8) followed by that many UTF-8 bytes
//! ..      tick_ns (varint)          time quantum of the trace
//! ..      request_count (varint)
//! ..      request records           (see below, one per request)
//! ..      [SD section]              varint step count + unary bitstream
//! end-8   FNV-1a 64 checksum (little-endian) over all preceding bytes
//! ```
//!
//! Each request record is:
//!
//! ```text
//! varint  delta ticks since the previous request's arrival
//! varint  prompt_len
//! varint  output_len
//! varint  prefix tag: 0 = no shared prefix
//!                     1 = new prefix group (+ varint prefix_id, varint len)
//!                     k >= 2 = back-reference to the (k-1)-th most recent
//!                              preceding prefix-bearing request
//!                              (+ zigzag varint prefix-length delta)
//! ```
//!
//! Request ids are implicit (index order) and arrival times are reconstructed
//! from the deltas, so a decoded trace is already in the canonical shape the
//! serving frontends expect: sorted by time with sequential ids.

use std::fmt;
use tlt_workload::RequestArrival;

/// File magic: the first four bytes of every TLTR trace.
pub const MAGIC: [u8; 4] = *b"TLTR";

/// Current format version.
pub const VERSION: u8 = 1;

/// Flag bit 0: an SD accept-length bitstream section follows the requests.
pub(crate) const FLAG_SD: u8 = 1;

/// How far back the encoder searches for a prefix back-reference. Bounds
/// encoder cost (and the streaming reader's prefix ring); longer gaps fall
/// back to re-stating the group id.
pub const PREFIX_WINDOW: usize = 63;

/// Largest accept length one SD step can carry in the unary bitstream.
pub const MAX_SD_ACCEPT: u8 = 63;

/// Decode guard: refuse to pre-allocate for more requests than this before
/// the record bytes have actually been seen.
const MAX_PREALLOC: usize = 1 << 20;

/// Typed decode / IO error for TLTR traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The file does not start with the TLTR magic.
    BadMagic,
    /// The file is a TLTR trace of a version this build cannot read.
    UnsupportedVersion(u8),
    /// The byte stream ended before the structure it promised.
    Truncated,
    /// The checksum does not match the payload.
    Corrupt {
        /// Checksum recomputed over the payload.
        expected: u64,
        /// Checksum stored in the file.
        actual: u64,
    },
    /// The structure decoded but violates a format invariant.
    Malformed(&'static str),
    /// An underlying filesystem error (message of the `std::io::Error`).
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a TLTR trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => write!(f, "unsupported TLTR version {v}"),
            TraceError::Truncated => write!(f, "truncated TLTR trace"),
            TraceError::Corrupt { expected, actual } => write!(
                f,
                "corrupt TLTR trace: checksum {actual:#018x}, expected {expected:#018x}"
            ),
            TraceError::Malformed(what) => write!(f, "malformed TLTR trace: {what}"),
            TraceError::Io(e) => write!(f, "trace io error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Size accounting of an encoded trace, reported in the replay tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Total encoded size on disk, checksum included.
    pub total_bytes: usize,
    /// Bytes spent on the fixed header (magic through request count).
    pub header_bytes: usize,
    /// Bytes spent on the per-request records.
    pub request_bytes: usize,
    /// Bytes spent on the SD bitstream section (0 without one).
    pub sd_bytes: usize,
    /// Requests in the trace.
    pub requests: usize,
    /// SD steps in the bitstream (0 without one).
    pub sd_steps: usize,
}

impl TraceStats {
    /// Average encoded bytes per request (total size over request count).
    pub fn bytes_per_request(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.requests as f64
        }
    }

    /// Average encoded bits per event, where every request arrival and every
    /// SD step counts as one event — the cbp-style density figure.
    pub fn bits_per_event(&self) -> f64 {
        let events = self.requests + self.sd_steps;
        if events == 0 {
            0.0
        } else {
            self.total_bytes as f64 * 8.0 / events as f64
        }
    }
}

/// A recorded serving workload: named, tick-quantised arrivals plus an
/// optional SD accept-length bitstream captured from a recorded run.
///
/// Invariants (maintained by every constructor and decoder): arrivals are
/// sorted by `time_ns`, ids are sequential from 0, and every `time_ns` is a
/// multiple of `tick_ns`.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    name: String,
    tick_ns: u64,
    arrivals: Vec<RequestArrival>,
    sd_accepts: Option<Vec<u8>>,
}

impl Trace {
    /// Canonicalises `arrivals` into a trace: times are quantised down to
    /// `tick_ns` ticks and ids reassigned sequentially. The input must already
    /// be sorted by time (the contract of `generate_arrivals` /
    /// `merge_arrival_streams`).
    ///
    /// # Panics
    ///
    /// Panics if `tick_ns` is 0, the name exceeds 255 bytes, or the input is
    /// not time-sorted.
    pub fn from_arrivals(name: &str, tick_ns: u64, arrivals: &[RequestArrival]) -> Self {
        assert!(tick_ns >= 1, "trace tick must be at least 1 ns");
        assert!(name.len() <= 255, "trace name must fit in 255 bytes");
        assert!(
            arrivals.windows(2).all(|w| w[0].time_ns <= w[1].time_ns),
            "arrivals must be sorted by time"
        );
        let arrivals = arrivals
            .iter()
            .enumerate()
            .map(|(i, a)| RequestArrival {
                id: i as u64,
                time_ns: (a.time_ns / tick_ns) * tick_ns,
                ..*a
            })
            .collect();
        Trace {
            name: name.to_string(),
            tick_ns,
            arrivals,
            sd_accepts: None,
        }
    }

    /// The workload name stored in the header.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Time quantum of the trace in nanoseconds.
    pub fn tick_ns(&self) -> u64 {
        self.tick_ns
    }

    /// The canonical arrival stream (sorted, sequential ids, tick-aligned).
    pub fn arrivals(&self) -> &[RequestArrival] {
        &self.arrivals
    }

    /// The recorded SD accept-length stream, if this trace carries one.
    pub fn sd_accepts(&self) -> Option<&[u8]> {
        self.sd_accepts.as_deref()
    }

    /// Attaches a recorded SD accept-length stream (values clamped to
    /// `1..=MAX_SD_ACCEPT` by the recorder).
    pub fn set_sd_accepts(&mut self, accepts: Vec<u8>) {
        assert!(
            accepts.iter().all(|&a| (1..=MAX_SD_ACCEPT).contains(&a)),
            "SD accept lengths must be in 1..={MAX_SD_ACCEPT}"
        );
        self.sd_accepts = Some(accepts);
    }

    /// Builder form of [`Trace::set_sd_accepts`].
    pub fn with_sd_accepts(mut self, accepts: Vec<u8>) -> Self {
        self.set_sd_accepts(accepts);
        self
    }

    /// The same trace without its SD section (transforms drop it because the
    /// recorded accept stream no longer corresponds to the edited workload).
    pub fn without_sd(&self) -> Self {
        Trace {
            sd_accepts: None,
            ..self.clone()
        }
    }

    /// A copy with a different workload name (used by the transforms).
    pub fn renamed(&self, name: &str) -> Self {
        assert!(name.len() <= 255, "trace name must fit in 255 bytes");
        Trace {
            name: name.to_string(),
            ..self.clone()
        }
    }

    /// Encodes the trace to its on-disk byte representation.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.encode().0
    }

    /// Encoded-size accounting for the replay report tables.
    pub fn stats(&self) -> TraceStats {
        let (bytes, header_end, requests_end) = self.encode();
        TraceStats {
            total_bytes: bytes.len(),
            header_bytes: header_end,
            request_bytes: requests_end - header_end,
            sd_bytes: bytes.len() - 8 - requests_end,
            requests: self.arrivals.len(),
            sd_steps: self.sd_accepts.as_ref().map_or(0, Vec::len),
        }
    }

    fn encode(&self) -> (Vec<u8>, usize, usize) {
        let mut out = Vec::with_capacity(16 + self.name.len() + 6 * self.arrivals.len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(if self.sd_accepts.is_some() {
            FLAG_SD
        } else {
            0
        });
        out.push(self.name.len() as u8);
        out.extend_from_slice(self.name.as_bytes());
        put_varint(&mut out, self.tick_ns);
        put_varint(&mut out, self.arrivals.len() as u64);
        let header_end = out.len();

        let mut prev_ticks = 0u64;
        // Prefix groups seen so far, most recent last, for back-references.
        let mut recent: Vec<(u64, usize)> = Vec::new();
        for a in &self.arrivals {
            let ticks = a.time_ns / self.tick_ns;
            put_varint(&mut out, ticks - prev_ticks);
            prev_ticks = ticks;
            put_varint(&mut out, a.prompt_len as u64);
            put_varint(&mut out, a.output_len as u64);
            if a.prefix_id == 0 {
                put_varint(&mut out, 0);
            } else {
                let hit = recent
                    .iter()
                    .rev()
                    .take(PREFIX_WINDOW)
                    .position(|&(id, _)| id == a.prefix_id)
                    .map(|d| (d + 1, recent[recent.len() - 1 - d].1));
                match hit {
                    Some((distance, prev_len)) => {
                        put_varint(&mut out, 1 + distance as u64);
                        put_varint(&mut out, zigzag(a.prefix_len as i64 - prev_len as i64));
                    }
                    None => {
                        put_varint(&mut out, 1);
                        put_varint(&mut out, a.prefix_id);
                        put_varint(&mut out, a.prefix_len as u64);
                    }
                }
                recent.push((a.prefix_id, a.prefix_len));
            }
        }
        let requests_end = out.len();

        if let Some(accepts) = &self.sd_accepts {
            put_varint(&mut out, accepts.len() as u64);
            let mut bits = BitWriter::new();
            for &a in accepts {
                for _ in 0..a.clamp(1, MAX_SD_ACCEPT) {
                    bits.push(true);
                }
                bits.push(false);
            }
            out.extend_from_slice(&bits.finish());
        }

        let checksum = fnv1a_64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        (out, header_end, requests_end)
    }

    /// Decodes a trace from its on-disk byte representation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceError> {
        if bytes.len() < 4 {
            return Err(TraceError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut pos = 4usize;
        let version = take_u8(bytes, &mut pos)?;
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let flags = take_u8(bytes, &mut pos)?;
        if flags & !FLAG_SD != 0 {
            return Err(TraceError::Malformed("unknown flag bits set"));
        }
        let name_len = take_u8(bytes, &mut pos)? as usize;
        if pos + name_len > bytes.len() {
            return Err(TraceError::Truncated);
        }
        let name = std::str::from_utf8(&bytes[pos..pos + name_len])
            .map_err(|_| TraceError::Malformed("trace name is not UTF-8"))?
            .to_string();
        pos += name_len;
        let tick_ns = get_varint(bytes, &mut pos)?;
        if tick_ns == 0 {
            return Err(TraceError::Malformed("tick must be non-zero"));
        }
        let count = get_varint(bytes, &mut pos)? as usize;

        let mut arrivals = Vec::with_capacity(count.min(MAX_PREALLOC));
        let mut ticks = 0u64;
        let mut recent: Vec<(u64, usize)> = Vec::new();
        for id in 0..count {
            let delta = get_varint(bytes, &mut pos)?;
            ticks = ticks
                .checked_add(delta)
                .ok_or(TraceError::Malformed("arrival tick overflows"))?;
            let time_ns = ticks
                .checked_mul(tick_ns)
                .ok_or(TraceError::Malformed("arrival time overflows"))?;
            let prompt_len = get_varint(bytes, &mut pos)? as usize;
            let output_len = get_varint(bytes, &mut pos)? as usize;
            let tag = get_varint(bytes, &mut pos)?;
            let (prefix_id, prefix_len) = match tag {
                0 => (0, 0),
                1 => {
                    let prefix_id = get_varint(bytes, &mut pos)?;
                    if prefix_id == 0 {
                        return Err(TraceError::Malformed("new prefix group with id 0"));
                    }
                    let prefix_len = get_varint(bytes, &mut pos)? as usize;
                    (prefix_id, prefix_len)
                }
                back => {
                    let distance = (back - 1) as usize;
                    if distance > recent.len() {
                        return Err(TraceError::Malformed("prefix back-reference out of range"));
                    }
                    let (prefix_id, prev_len) = recent[recent.len() - distance];
                    let delta = unzigzag(get_varint(bytes, &mut pos)?);
                    let prefix_len = prev_len as i64 + delta;
                    if prefix_len < 0 {
                        return Err(TraceError::Malformed("negative prefix length"));
                    }
                    (prefix_id, prefix_len as usize)
                }
            };
            if prefix_id != 0 {
                recent.push((prefix_id, prefix_len));
            }
            arrivals.push(RequestArrival {
                id: id as u64,
                time_ns,
                prompt_len,
                output_len,
                prefix_id,
                prefix_len,
            });
        }

        let sd_accepts = if flags & FLAG_SD != 0 {
            let steps = get_varint(bytes, &mut pos)? as usize;
            let mut reader = BitReader::new(bytes, &mut pos);
            let mut accepts = Vec::with_capacity(steps.min(MAX_PREALLOC));
            for _ in 0..steps {
                let mut run = 0u64;
                while reader.read()? {
                    run += 1;
                    if run > u64::from(MAX_SD_ACCEPT) {
                        return Err(TraceError::Malformed("SD accept run exceeds the cap"));
                    }
                }
                if run == 0 {
                    return Err(TraceError::Malformed("SD step with zero accepted tokens"));
                }
                accepts.push(run as u8);
            }
            pos = reader.finish();
            Some(accepts)
        } else {
            None
        };

        if pos + 8 > bytes.len() {
            return Err(TraceError::Truncated);
        }
        if pos + 8 < bytes.len() {
            return Err(TraceError::Malformed("trailing bytes after checksum"));
        }
        let expected = fnv1a_64(&bytes[..pos]);
        let actual = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8 bytes"));
        if expected != actual {
            return Err(TraceError::Corrupt { expected, actual });
        }

        Ok(Trace {
            name,
            tick_ns,
            arrivals,
            sd_accepts,
        })
    }

    /// Writes the encoded trace to `path`.
    pub fn write_file(&self, path: &str) -> Result<(), TraceError> {
        std::fs::write(path, self.to_bytes()).map_err(|e| TraceError::Io(e.to_string()))
    }

    /// Reads and decodes a trace from `path`.
    pub fn read_file(path: &str) -> Result<Self, TraceError> {
        let bytes = std::fs::read(path).map_err(|e| TraceError::Io(e.to_string()))?;
        Trace::from_bytes(&bytes)
    }
}

/// LEB128 unsigned varint encoder.
pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// LEB128 unsigned varint decoder.
pub(crate) fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut value = 0u64;
    for shift in 0..10 {
        let byte = take_u8(bytes, pos)?;
        if shift == 9 && byte > 1 {
            return Err(TraceError::Malformed("varint overflows 64 bits"));
        }
        value |= u64::from(byte & 0x7f) << (7 * shift);
        if byte & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(TraceError::Malformed("varint longer than 10 bytes"))
}

pub(crate) fn take_u8(bytes: &[u8], pos: &mut usize) -> Result<u8, TraceError> {
    let b = *bytes.get(*pos).ok_or(TraceError::Truncated)?;
    *pos += 1;
    Ok(b)
}

/// Zigzag-encodes a signed value so small magnitudes stay small varints.
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// FNV-1a 64-bit hash, the trace checksum.
pub(crate) fn fnv1a_64(bytes: &[u8]) -> u64 {
    fnv1a_64_update(FNV_OFFSET_BASIS, bytes)
}

/// FNV-1a 64 initial state, for incremental (streaming) hashing.
pub(crate) const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into a running FNV-1a 64 state (the streaming reader and
/// writer hash bytes as they pass instead of re-walking the whole buffer).
pub(crate) fn fnv1a_64_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// MSB-first bit accumulator for the SD section.
struct BitWriter {
    bytes: Vec<u8>,
    current: u8,
    used: u8,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            bytes: Vec::new(),
            current: 0,
            used: 0,
        }
    }

    fn push(&mut self, bit: bool) {
        self.current = (self.current << 1) | u8::from(bit);
        self.used += 1;
        if self.used == 8 {
            self.bytes.push(self.current);
            self.current = 0;
            self.used = 0;
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.used > 0 {
            self.bytes.push(self.current << (8 - self.used));
        }
        self.bytes
    }
}

/// MSB-first bit reader over a byte slice starting at `*pos`; [`finish`]
/// advances the position past the last (possibly partial) byte consumed.
///
/// [`finish`]: BitReader::finish
struct BitReader<'a> {
    bytes: &'a [u8],
    byte_pos: usize,
    bit: u8,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8], pos: &mut usize) -> Self {
        BitReader {
            bytes,
            byte_pos: *pos,
            bit: 0,
        }
    }

    fn read(&mut self) -> Result<bool, TraceError> {
        let byte = *self.bytes.get(self.byte_pos).ok_or(TraceError::Truncated)?;
        let bit = (byte >> (7 - self.bit)) & 1 == 1;
        self.bit += 1;
        if self.bit == 8 {
            self.bit = 0;
            self.byte_pos += 1;
        }
        Ok(bit)
    }

    fn finish(self) -> usize {
        self.byte_pos + usize::from(self.bit > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlt_workload::{generate_arrivals, ArrivalConfig};

    fn sample_trace(prefix: bool) -> Trace {
        let mut config = ArrivalConfig::constant(20.0, 30.0, 42);
        if prefix {
            config = config.with_prefix(0.6, 128);
        }
        Trace::from_arrivals("sample", 1_000, &generate_arrivals(&config))
    }

    #[test]
    fn varints_round_trip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes encode small.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // Standard FNV-1a 64 test vector.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn encode_decode_round_trips_without_prefixes() {
        let trace = sample_trace(false);
        let decoded = Trace::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(decoded, trace);
    }

    #[test]
    fn encode_decode_round_trips_with_prefix_backrefs() {
        let trace = sample_trace(true);
        assert!(trace.arrivals().iter().any(|a| a.prefix_id != 0));
        let decoded = Trace::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(decoded, trace);
    }

    #[test]
    fn sd_bitstream_round_trips() {
        let trace = sample_trace(false).with_sd_accepts(vec![1, 2, 63, 1, 5, 4, 4, 4]);
        let decoded = Trace::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(decoded.sd_accepts(), trace.sd_accepts());
        assert_eq!(decoded, trace);
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::from_arrivals("empty", 1, &[]);
        let decoded = Trace::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(decoded, trace);
        assert_eq!(decoded.stats().bytes_per_request(), 0.0);
    }

    #[test]
    fn quantisation_aligns_times_and_reassigns_ids() {
        let arrivals = generate_arrivals(&ArrivalConfig::constant(50.0, 10.0, 7));
        let trace = Trace::from_arrivals("q", 1_000_000, &arrivals);
        for (i, a) in trace.arrivals().iter().enumerate() {
            assert_eq!(a.id, i as u64);
            assert_eq!(a.time_ns % 1_000_000, 0);
        }
        assert_eq!(trace.arrivals().len(), arrivals.len());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_trace(false).to_bytes();
        bytes[0] = b'X';
        assert_eq!(Trace::from_bytes(&bytes), Err(TraceError::BadMagic));
        assert_eq!(Trace::from_bytes(b"TL"), Err(TraceError::Truncated));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut bytes = sample_trace(false).to_bytes();
        bytes[4] = 9;
        assert_eq!(
            Trace::from_bytes(&bytes),
            Err(TraceError::UnsupportedVersion(9))
        );
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = sample_trace(true).to_bytes();
        // Any truncation point must yield a typed error, never a panic or an
        // accidentally valid trace.
        for cut in [5, 12, bytes.len() / 2, bytes.len() - 9, bytes.len() - 1] {
            let err = Trace::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, TraceError::Truncated | TraceError::Corrupt { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn checksum_flip_is_rejected_as_corrupt() {
        let mut bytes = sample_trace(false).to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(matches!(
            Trace::from_bytes(&bytes),
            Err(TraceError::Corrupt { .. })
        ));
    }

    #[test]
    fn payload_flip_is_rejected() {
        let trace = sample_trace(true);
        let bytes = trace.to_bytes();
        // Flip one byte in the middle of the request records: either the
        // structure breaks (typed error) or the checksum catches it.
        let mut flipped = bytes.clone();
        flipped[bytes.len() / 2] ^= 0x55;
        assert!(Trace::from_bytes(&flipped).is_err());
    }

    #[test]
    fn stats_sections_add_up() {
        let trace = sample_trace(true).with_sd_accepts(vec![3; 100]);
        let stats = trace.stats();
        assert_eq!(
            stats.header_bytes + stats.request_bytes + stats.sd_bytes + 8,
            stats.total_bytes
        );
        assert_eq!(stats.requests, trace.arrivals().len());
        assert_eq!(stats.sd_steps, 100);
        assert!(stats.bits_per_event() > 0.0);
        // The unary SD section costs ~(3+1) bits per step.
        assert!(stats.sd_bytes <= 100 / 2 + 8);
    }
}
