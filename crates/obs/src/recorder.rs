//! Fixed-capacity flight recorder with a thread-local install point.
//!
//! A [`FlightRecorder`] keeps the last-N events *per track* in preallocated
//! ring buffers: at capacity the oldest event on that track is dropped, so a
//! long run always retains recent history for every replica plus the frontend
//! and coordinator — exactly what a postmortem needs.
//!
//! Recording goes through the free function [`record`]. The disabled fast path
//! is a single relaxed atomic load (no locks, no thread-local touch); when a
//! recorder is installed on the *current thread* the event is appended without
//! allocating (rings are preallocated when a track is first seen). Simulations
//! in this workspace are single-threaded per run and `libtest` runs each test
//! on its own thread, so a thread-local recorder gives deterministic event
//! order with zero cross-test pollution. Events emitted from `parallel_map`
//! worker threads are not captured — a documented limitation.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::event::{ObsEvent, Track};

/// Default ring capacity per track: enough decode steps to reconstruct several
/// seconds of sim time around a fault without unbounded memory.
pub const DEFAULT_CAPACITY_PER_TRACK: usize = 512;

/// Fixed-capacity, per-track ring buffer of [`ObsEvent`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    cap_per_track: usize,
    next_seq: u64,
    recorded: u64,
    rings: Vec<(Track, VecDeque<ObsEvent>)>,
}

impl FlightRecorder {
    /// A recorder keeping the last `cap_per_track` events on each track.
    /// A capacity of 0 is clamped to 1.
    pub fn new(cap_per_track: usize) -> Self {
        FlightRecorder {
            cap_per_track: cap_per_track.max(1),
            next_seq: 0,
            recorded: 0,
            rings: Vec::new(),
        }
    }

    /// Ring capacity per track.
    pub fn capacity_per_track(&self) -> usize {
        self.cap_per_track
    }

    /// Total events ever recorded (including ones since evicted by wraparound).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events currently retained across all tracks.
    pub fn len(&self) -> usize {
        self.rings.iter().map(|(_, ring)| ring.len()).sum()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append an event, stamping its global sequence number. At capacity the
    /// oldest event on the same track is evicted. The ring for a track is
    /// preallocated on first use, so steady-state recording never allocates.
    pub fn record(&mut self, mut event: ObsEvent) {
        event.seq = self.next_seq;
        self.next_seq += 1;
        self.recorded += 1;
        let ring = match self.rings.iter_mut().find(|(t, _)| *t == event.track) {
            Some((_, ring)) => ring,
            None => {
                self.rings
                    .push((event.track, VecDeque::with_capacity(self.cap_per_track)));
                &mut self.rings.last_mut().expect("just pushed").1
            }
        };
        if ring.len() == self.cap_per_track {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// All retained events merged across tracks, in global record order.
    pub fn events(&self) -> Vec<ObsEvent> {
        let mut all: Vec<ObsEvent> = self
            .rings
            .iter()
            .flat_map(|(_, ring)| ring.iter().copied())
            .collect();
        all.sort_by_key(|e| e.seq);
        all
    }

    /// Retained events for one track, oldest first.
    pub fn track_events(&self, track: Track) -> Vec<ObsEvent> {
        self.rings
            .iter()
            .find(|(t, _)| *t == track)
            .map(|(_, ring)| ring.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Tracks that have recorded at least one event, in first-seen order.
    pub fn tracks(&self) -> Vec<Track> {
        self.rings.iter().map(|(t, _)| *t).collect()
    }
}

/// Count of threads with an installed recorder. The disabled fast path in
/// [`record`] is one relaxed load of this.
static INSTALLED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static CURRENT: RefCell<Option<FlightRecorder>> = const { RefCell::new(None) };
}

/// True if any thread currently has a recorder installed. A cheap pre-check;
/// the per-thread slot still decides whether an event is captured.
pub fn recording_enabled() -> bool {
    INSTALLED.load(Ordering::Relaxed) != 0
}

/// Install `recorder` on the current thread, returning the previous one.
pub fn install(recorder: FlightRecorder) -> Option<FlightRecorder> {
    CURRENT.with(|slot| {
        let prev = slot.borrow_mut().replace(recorder);
        if prev.is_none() {
            INSTALLED.fetch_add(1, Ordering::Relaxed);
        }
        prev
    })
}

/// Remove and return the current thread's recorder, if any.
pub fn uninstall() -> Option<FlightRecorder> {
    CURRENT.with(|slot| {
        let prev = slot.borrow_mut().take();
        if prev.is_some() {
            INSTALLED.fetch_sub(1, Ordering::Relaxed);
        }
        prev
    })
}

/// Record `event` into the current thread's recorder. With no recorder
/// installed anywhere this is a single relaxed atomic load and return.
#[inline]
pub fn record(event: ObsEvent) {
    if INSTALLED.load(Ordering::Relaxed) == 0 {
        return;
    }
    CURRENT.with(|slot| {
        if let Some(rec) = slot.borrow_mut().as_mut() {
            rec.record(event);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, NO_REQ};

    fn ev(ts: f64, track: Track, req: u64) -> ObsEvent {
        ObsEvent::instant(ts, track, EventKind::Decode, req)
    }

    #[test]
    fn ring_wraps_at_capacity_dropping_oldest() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..7 {
            rec.record(ev(i as f64, Track::Replica(0), i));
        }
        let kept = rec.track_events(Track::Replica(0));
        assert_eq!(kept.len(), 3);
        assert_eq!(
            kept.iter().map(|e| e.req).collect::<Vec<_>>(),
            vec![4, 5, 6],
            "oldest events must be evicted first"
        );
        assert_eq!(rec.recorded(), 7);
        assert_eq!(rec.len(), 3);
    }

    #[test]
    fn wraparound_is_per_track_and_merge_orders_by_seq() {
        let mut rec = FlightRecorder::new(2);
        rec.record(ev(0.0, Track::Frontend, 1));
        rec.record(ev(1.0, Track::Replica(0), 2));
        rec.record(ev(2.0, Track::Frontend, 3));
        rec.record(ev(3.0, Track::Frontend, 4)); // evicts req=1 on Frontend only
        let all = rec.events();
        assert_eq!(all.iter().map(|e| e.req).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert!(all.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(rec.track_events(Track::Replica(0)).len(), 1);
    }

    #[test]
    fn install_record_uninstall_round_trip() {
        assert!(uninstall().is_none());
        install(FlightRecorder::new(8));
        assert!(recording_enabled());
        record(ev(0.5, Track::Coordinator, NO_REQ));
        let rec = uninstall().expect("recorder was installed");
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.events()[0].track, Track::Coordinator);
        assert!(uninstall().is_none());
    }

    #[test]
    fn record_without_installed_recorder_is_a_noop() {
        record(ev(0.0, Track::Frontend, NO_REQ));
        assert!(uninstall().is_none());
    }
}
