//! Rollout-worker state machine.
//!
//! A *worker* is one tensor-parallel rollout replica (e.g. 8 GPUs of a DGX node at
//! TP=8). Each worker cycles between three states — BUSY (serving rollout), IDLE
//! (all of its requests finished, memory released) and TRAINING (running drafter
//! spot-training) — and reports every transition to the coordinator.

use serde::{Deserialize, Serialize};
use std::fmt;

/// State of one rollout worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkerState {
    /// Serving rollout requests.
    Busy,
    /// Finished its rollout requests; GPUs idle and memory released.
    Idle,
    /// Running opportunistic drafter training.
    Training,
    /// Crashed / unreachable; holds no work and cannot be promoted until it
    /// reports back as Busy or Idle (restart).
    Failed,
}

impl fmt::Display for WorkerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WorkerState::Busy => "BUSY",
            WorkerState::Idle => "IDLE",
            WorkerState::Training => "TRAINING",
            WorkerState::Failed => "FAILED",
        };
        f.write_str(s)
    }
}

impl WorkerState {
    /// Whether a transition from `self` to `next` is allowed by the protocol.
    ///
    /// Busy → Idle (requests drained), Idle → Training (promoted by coordinator),
    /// Training → Idle (preempted or finished), Idle → Busy (new rollout step),
    /// Training → Busy (hard preemption when rollout work arrives immediately),
    /// Busy → Busy / Idle → Idle (idempotent notifications) are allowed.
    /// Any state can transition to Failed (crashes don't ask permission), and a
    /// Failed worker restarts into Busy or Idle.
    /// Busy → Training is *not* allowed (a worker must drain first), and neither
    /// is Failed → Training (a crashed worker must restart and re-idle first).
    pub fn can_transition_to(self, next: WorkerState) -> bool {
        !matches!(
            (self, next),
            (WorkerState::Busy, WorkerState::Training)
                | (WorkerState::Failed, WorkerState::Training)
        )
    }
}

/// Event sent from a worker to the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkerEvent {
    /// The worker transitioned into a new state.
    StateChanged {
        /// Worker index.
        worker: usize,
        /// New state.
        state: WorkerState,
        /// Simulated or wall-clock timestamp in seconds.
        at: f64,
    },
    /// Periodic report of how many rollout requests the worker still holds.
    ActiveRequests {
        /// Worker index.
        worker: usize,
        /// Number of running requests.
        running: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_cannot_jump_straight_to_training() {
        assert!(!WorkerState::Busy.can_transition_to(WorkerState::Training));
    }

    #[test]
    fn legal_cycle_is_accepted() {
        assert!(WorkerState::Busy.can_transition_to(WorkerState::Idle));
        assert!(WorkerState::Idle.can_transition_to(WorkerState::Training));
        assert!(WorkerState::Training.can_transition_to(WorkerState::Idle));
        assert!(WorkerState::Idle.can_transition_to(WorkerState::Busy));
        assert!(WorkerState::Training.can_transition_to(WorkerState::Busy));
    }

    #[test]
    fn failures_can_happen_anywhere_but_recovery_goes_through_restart() {
        for state in [
            WorkerState::Busy,
            WorkerState::Idle,
            WorkerState::Training,
            WorkerState::Failed,
        ] {
            assert!(state.can_transition_to(WorkerState::Failed), "{state}");
        }
        assert!(WorkerState::Failed.can_transition_to(WorkerState::Busy));
        assert!(WorkerState::Failed.can_transition_to(WorkerState::Idle));
        assert!(!WorkerState::Failed.can_transition_to(WorkerState::Training));
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(WorkerState::Busy.to_string(), "BUSY");
        assert_eq!(WorkerState::Idle.to_string(), "IDLE");
        assert_eq!(WorkerState::Training.to_string(), "TRAINING");
        assert_eq!(WorkerState::Failed.to_string(), "FAILED");
    }
}
