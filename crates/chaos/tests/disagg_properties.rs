//! Property-based invariant suite for the disaggregated-cluster chaos path.
//!
//! Random pool shapes, link shapes, workloads, and fault schedules — crash +
//! guaranteed restart, stragglers, autoscaling — must all hold every cluster
//! invariant: request conservation across migration and failover, KV pool
//! conservation on both sides of the transfer link, per-replica block budgets,
//! a full drain, and bit-identical reruns per seed.

use proptest::prelude::*;
use tlt_chaos::{run_disagg_scenario, DisaggScenario};

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_fault_schedules_hold_every_cluster_invariant(
        seed in 0u64..1_000_000,
        prefill in 1usize..=2,
        decode in 1usize..=2,
        rps in 2.0f64..10.0,
        horizon_s in 3.0f64..6.0,
        bandwidth_gbps in 0.5f64..50.0,
        latency_s in 0.0f64..0.2,
        // Feature mask: bit 0 autoscale, bit 1 shared prefix, bit 2 a crash
        // with a guaranteed restart, bit 3 a straggler.
        knobs in 0u32..16,
        share in 0.1f64..0.9,
        prefix_len in 32usize..128,
        crash_at in 0.5f64..2.5,
        crash_target in 0usize..8,
        restart_delay in 0.5f64..1.5,
        slow_at in 0.5f64..2.5,
        slow_target in 0usize..8,
        slow_factor in 1.5f64..4.0,
    ) {
        let total = prefill + decode;
        let mut b = DisaggScenario::builder("prop-disagg")
            .seed(seed)
            .pools(prefill, decode)
            .arrivals(rps, horizon_s)
            .link(bandwidth_gbps, latency_s);
        if knobs & 1 != 0 {
            b = b.autoscale();
        }
        if knobs & 2 != 0 {
            b = b.prefix_share(share, prefix_len);
        }
        if knobs & 4 != 0 {
            // Restart is mandatory: a pool left permanently empty can never
            // drain, which is a liveness property of the schedule, not of the
            // cluster.
            let target = crash_target % total;
            b = b.crash(crash_at, target).restart(crash_at + restart_delay, target);
        }
        if knobs & 8 != 0 {
            b = b.slow(slow_at, slow_target % total, slow_factor);
        }
        let scenario = b.build();

        let outcome = run_disagg_scenario(&scenario);
        prop_assert!(
            outcome.invariants.passed(),
            "seed {} knobs {:#06b} pools {}+{} violated: {:?}",
            seed,
            knobs,
            prefill,
            decode,
            outcome.invariants.violations
        );
        prop_assert_eq!(
            outcome.completed + outcome.dropped,
            outcome.arrivals,
            "conservation arithmetic must close"
        );
        // Every completion on the cluster path rides at least one migration
        // (failed-over requests re-prefill and migrate again after a crash).
        prop_assert!(outcome.report.migrations as usize >= outcome.completed);
    }
}
