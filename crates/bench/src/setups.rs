//! Shared experiment setups used by the `experiments` binary and the Criterion
//! benches, so both report on exactly the same configurations.

use tlt::ExperimentConfig;
use tlt_draft::AcceptanceProfile;
use tlt_gpusim::{ClusterConfig, GpuType, LlmCostModel};
use tlt_model::{DraftModelSpec, ModelSpec};
use tlt_workload::LengthDistribution;

/// Scale knob for the experiments: `Full` mirrors the paper's setting, `Quick` runs
/// the same code paths at reduced request counts / lengths for CI and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale configuration (minutes of simulated work per experiment).
    Full,
    /// Reduced configuration (seconds per experiment).
    Quick,
}

impl Scale {
    /// Parses "--quick" style flags.
    pub fn from_args(args: &[String]) -> Scale {
        if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }
}

/// The Qwen-32B / H100 TP=4 cost model used by most single-rollout studies.
pub fn qwen32b_h100_tp4() -> LlmCostModel {
    LlmCostModel::new(ModelSpec::qwen2_5_32b(), GpuType::H100.spec(), 4)
}

/// The Qwen-7B / single-GPU cost model used by Table 2.
pub fn qwen7b_on(gpu: GpuType) -> LlmCostModel {
    LlmCostModel::new(ModelSpec::qwen2_5_7b(), gpu.spec(), 1)
}

/// EAGLE drafter for a given cost model's target.
pub fn eagle_drafter_of(cost: &LlmCostModel) -> DraftModelSpec {
    cost.model.eagle_drafter()
}

/// The adaptive-drafter acceptance profile used throughout the timing experiments.
pub fn adaptive_acceptance() -> AcceptanceProfile {
    AcceptanceProfile::adaptive_drafter()
}

/// End-to-end configuration for one model on a cluster, at the requested scale.
pub fn e2e_config(model: ModelSpec, cluster: ClusterConfig, scale: Scale) -> ExperimentConfig {
    let base = ExperimentConfig::paper_default(model, cluster);
    match scale {
        Scale::Full => base,
        Scale::Quick => {
            let mut cfg = base.scaled_down();
            cfg.length_distribution = LengthDistribution::LongTailMixture {
                mu: 6.5,
                sigma: 0.8,
                truncation_mass: 0.08,
                max_len: 8192,
            };
            cfg
        }
    }
}

/// The 8-node DGX-H100 testbed of the paper.
pub fn paper_testbed() -> ClusterConfig {
    ClusterConfig::dgx_h100_testbed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::from_args(&["--quick".to_string()]), Scale::Quick);
        assert_eq!(Scale::from_args(&[]), Scale::Full);
    }

    #[test]
    fn setups_build() {
        let cost = qwen32b_h100_tp4();
        assert!(eagle_drafter_of(&cost).params > 0.0);
        let cfg = e2e_config(ModelSpec::qwen2_5_7b(), paper_testbed(), Scale::Quick);
        assert!(cfg.requests_per_step() > 0);
    }
}
