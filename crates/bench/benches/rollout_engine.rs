//! Benchmarks of the timing-level rollout engine: the Figure 14 case study (adaptive
//! SD on 128 long-tail requests) and the Table 2 single-request throughput study.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tlt_bench::setups::{adaptive_acceptance, eagle_drafter_of, qwen32b_h100_tp4, qwen7b_on};
use tlt_gpusim::GpuType;
use tlt_rollout::{
    simulate_rollout, single_request_throughput, SdManagerConfig, SdMode, SdStrategy,
    SimRolloutConfig,
};
use tlt_workload::LengthDistribution;

fn longtail_lengths(n: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(14);
    LengthDistribution::LongTailMixture {
        mu: 6.5,
        sigma: 0.8,
        truncation_mass: 0.03,
        max_len: 8192,
    }
    .sample_many(n, &mut rng)
}

fn bench_fig14_case_study(c: &mut Criterion) {
    let cost = qwen32b_h100_tp4();
    let lengths = longtail_lengths(128);
    let mut group = c.benchmark_group("fig14_rollout");
    group.sample_size(10);
    group.bench_function("baseline_no_sd", |b| {
        b.iter(|| simulate_rollout(&SimRolloutConfig::vanilla(cost.clone()), &lengths))
    });
    group.bench_function("adaptive_sd", |b| {
        b.iter(|| {
            simulate_rollout(
                &SimRolloutConfig::vanilla(cost.clone()).with_sd_mode(SdMode::Adaptive {
                    config: SdManagerConfig::default(),
                }),
                &lengths,
            )
        })
    });
    group.finish();
}

fn bench_table2_gpu_types(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_gpu_throughput");
    group.sample_size(10);
    let strategy = SdStrategy {
        draft_depth: 8,
        top_k: 8,
        tokens_to_verify: 48,
    };
    for gpu in [GpuType::H100, GpuType::A100, GpuType::Rtx3090] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{gpu:?}")),
            &gpu,
            |b, &gpu| {
                let cost = qwen7b_on(gpu);
                let drafter = eagle_drafter_of(&cost);
                b.iter(|| {
                    single_request_throughput(
                        &cost,
                        &drafter,
                        &adaptive_acceptance(),
                        strategy,
                        256,
                        2048,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig14_case_study, bench_table2_gpu_types);
criterion_main!(benches);
