//! End-to-end (timing-level) RL training pipeline simulation.
//!
//! Reproduces the paper's end-to-end comparisons (Figure 1a's step breakdown,
//! Figure 11's cross-system throughput, Table 3's cluster scaling) by composing the
//! per-stage cost models: rollout (per-worker continuous-batching simulation with or
//! without adaptive SD), the inference stage (target + reference re-prefill), the
//! training stage, and stage-transition overheads. For TLT the idle GPU time freed by
//! the long tail is additionally converted into opportunistic drafter-training
//! iterations (the Spot Trainer), and the drafter's acceptance profile reflects
//! whether it is adaptively trained (TLT) or model-free (TLT-Base).

use crate::config::{ExperimentConfig, SystemKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tlt_draft::AcceptanceProfile;
use tlt_gpusim::LlmCostModel;
use tlt_rollout::{simulate_rollout, RolloutProfile, SdManagerConfig, SdMode, SimRolloutConfig};

/// Per-step overhead of colocated systems (weight resharding, reward computation,
/// data movement between stages) as a fraction of the step's compute time. The
/// resharding and reward work both scale with the step's batch, so the overhead is
/// proportional rather than a fixed wall-clock cost.
pub const COLOCATED_TRANSITION_FRAC: f64 = 0.12;
/// Additional TLT overhead (drafter weight update + coordination) as a fraction of
/// compute time; the paper reports it below 1% of step time.
pub const TLT_EXTRA_TRANSITION_FRAC: f64 = 0.01;
/// Fixed SD mode-switch cost of TLT (drafter hot-swap re-prefill + CUDAGraph
/// re-capture), in seconds; the paper reports a ~3 s switch.
pub const TLT_SWITCH_S: f64 = 3.0;
/// Per-step overhead of the separate-placement baseline (cross-node weight
/// synchronisation between the training and serving clusters) as a fraction of the
/// step's compute time; full weights cross the slow inter-cluster links every step.
pub const SEPARATE_PLACEMENT_TRANSITION_FRAC: f64 = 0.25;

/// Per-stage time breakdown of one RL step (the quantities of Figure 1a).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StepBreakdown {
    /// Rollout (generation) stage seconds.
    pub rollout_s: f64,
    /// Inference stage (target + reference logits) seconds.
    pub inference_s: f64,
    /// Training stage seconds.
    pub training_s: f64,
    /// Everything else (stage transitions, reward computation, coordination).
    pub other_s: f64,
}

impl StepBreakdown {
    /// Total step time.
    pub fn total_s(&self) -> f64 {
        self.rollout_s + self.inference_s + self.training_s + self.other_s
    }

    /// Fraction of the step spent in rollout.
    pub fn rollout_fraction(&self) -> f64 {
        if self.total_s() <= 0.0 {
            0.0
        } else {
            self.rollout_s / self.total_s()
        }
    }
}

/// Result of simulating one system on one experiment configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Which system was simulated.
    pub system: SystemKind,
    /// Per-step breakdowns.
    pub steps: Vec<StepBreakdown>,
    /// Mean tokens (prompt + response) processed per step.
    pub tokens_per_step: f64,
    /// Mean end-to-end token throughput (tokens per second).
    pub throughput_tokens_per_s: f64,
    /// Mean drafter-training iterations harvested from idle GPUs per step (TLT only).
    pub drafter_updates_per_step: f64,
    /// Mean idle GPU-seconds per step left by the long tail (before harvesting).
    pub idle_gpu_seconds_per_step: f64,
    /// Mean accept length observed in speculative steps (1.0 when SD is unused).
    pub mean_accept_length: f64,
}

impl ExperimentResult {
    /// Mean step time in seconds.
    pub fn mean_step_time_s(&self) -> f64 {
        if self.steps.is_empty() {
            0.0
        } else {
            self.steps.iter().map(StepBreakdown::total_s).sum::<f64>() / self.steps.len() as f64
        }
    }

    /// Throughput speedup relative to a baseline result.
    pub fn speedup_over(&self, baseline: &ExperimentResult) -> f64 {
        if baseline.throughput_tokens_per_s <= 0.0 {
            1.0
        } else {
            self.throughput_tokens_per_s / baseline.throughput_tokens_per_s
        }
    }

    /// Mean step breakdown across steps.
    pub fn mean_breakdown(&self) -> StepBreakdown {
        let n = self.steps.len().max(1) as f64;
        StepBreakdown {
            rollout_s: self.steps.iter().map(|s| s.rollout_s).sum::<f64>() / n,
            inference_s: self.steps.iter().map(|s| s.inference_s).sum::<f64>() / n,
            training_s: self.steps.iter().map(|s| s.training_s).sum::<f64>() / n,
            other_s: self.steps.iter().map(|s| s.other_s).sum::<f64>() / n,
        }
    }
}

fn acceptance_for(system: SystemKind) -> AcceptanceProfile {
    match system {
        SystemKind::Tlt => AcceptanceProfile::adaptive_drafter(),
        SystemKind::TltBase => AcceptanceProfile::model_free_drafter(),
        _ => AcceptanceProfile::stale_drafter(),
    }
}

fn sd_mode_for(system: SystemKind, config: &ExperimentConfig) -> SdMode {
    if !system.uses_sd() {
        return SdMode::Disabled;
    }
    SdMode::Adaptive {
        config: SdManagerConfig {
            elastic_threshold: config.sd_threshold,
            learned_drafter_available: system.uses_adaptive_drafter(),
            model_free_fallback: true,
            ..SdManagerConfig::default()
        },
    }
}

/// Simulates `config.num_steps` RL steps of `system` and returns aggregate results.
pub fn run_experiment(system: SystemKind, config: &ExperimentConfig) -> ExperimentResult {
    let cluster = config.cluster;
    let gpu = cluster.gpu_spec();
    let cost = LlmCostModel::new(config.model.clone(), gpu, cluster.tp);
    let drafter = config.model.eagle_drafter();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Open-R1-like separate placement: only half the cluster serves rollout and the
    // rollout is executed in `group_size` sequential waves because its rollout batch
    // is coupled to the training batch.
    let (rollout_workers, rollout_waves, train_gpus) = match system {
        SystemKind::OpenR1 => (
            (cluster.num_workers() / 2).max(1),
            config.group_size.max(1),
            (cluster.total_gpus() / 2).max(1),
        ),
        _ => (cluster.num_workers(), 1, cluster.total_gpus()),
    };
    let gpus_per_worker = cluster.tp;

    let mut steps = Vec::with_capacity(config.num_steps);
    let mut total_tokens_acc = 0.0;
    let mut drafter_updates_acc = 0.0;
    let mut idle_acc = 0.0;
    let mut accept_acc = 0.0;
    let mut accept_count = 0usize;

    for step in 0..config.num_steps {
        let lengths = config
            .length_distribution
            .sample_many(config.requests_per_step(), &mut rng);
        let total_response_tokens: usize = lengths.iter().sum();
        let total_tokens = total_response_tokens + config.requests_per_step() * config.prompt_len;
        total_tokens_acc += total_tokens as f64;

        // --- Rollout stage ---
        let mut rollout_s = 0.0;
        let mut idle_gpu_seconds = 0.0;
        for wave in 0..rollout_waves {
            let wave_lengths: Vec<usize> = lengths
                .iter()
                .skip(wave)
                .step_by(rollout_waves)
                .copied()
                .collect();
            if wave_lengths.is_empty() {
                continue;
            }
            // Distribute this wave's requests round-robin over the rollout workers and
            // simulate each worker independently; the wave ends when the slowest
            // worker finishes.
            let mut worker_profiles: Vec<RolloutProfile> = Vec::with_capacity(rollout_workers);
            for w in 0..rollout_workers {
                let share: Vec<usize> = wave_lengths
                    .iter()
                    .skip(w)
                    .step_by(rollout_workers)
                    .copied()
                    .collect();
                if share.is_empty() {
                    continue;
                }
                let sim = SimRolloutConfig {
                    cost: cost.clone(),
                    drafter: drafter.clone(),
                    acceptance: acceptance_for(system),
                    model_free_acceptance: AcceptanceProfile::model_free_drafter(),
                    prompt_len: config.prompt_len,
                    sd_mode: sd_mode_for(system, config),
                    seed: config.seed ^ (step as u64) << 8 ^ w as u64,
                };
                worker_profiles.push(simulate_rollout(&sim, &share));
            }
            let wave_end = worker_profiles
                .iter()
                .map(|p| p.total_time_s)
                .fold(0.0, f64::max);
            rollout_s += wave_end;
            for p in &worker_profiles {
                idle_gpu_seconds += (wave_end - p.total_time_s) * gpus_per_worker as f64
                    + p.idle_request_seconds / p.total_tokens.max(1) as f64;
                accept_acc += p.mean_accept_length;
                accept_count += 1;
            }
        }
        idle_acc += idle_gpu_seconds;

        // --- Inference + training stages ---
        let inference_s = cost.inference_stage_time(total_tokens, rollout_workers);
        let training_s = cost.training_stage_time(total_tokens, train_gpus);

        // --- Other / transition overheads ---
        let compute_s = rollout_s + inference_s + training_s;
        let other_s = match system {
            SystemKind::OpenR1 => SEPARATE_PLACEMENT_TRANSITION_FRAC * compute_s,
            SystemKind::Verl | SystemKind::TltBase => COLOCATED_TRANSITION_FRAC * compute_s,
            SystemKind::Tlt => {
                (COLOCATED_TRANSITION_FRAC + TLT_EXTRA_TRANSITION_FRAC) * compute_s + TLT_SWITCH_S
            }
        };

        // --- Spot trainer: convert idle GPU time into drafter updates (TLT only) ---
        if system.uses_adaptive_drafter() {
            let iter_time = cost.drafter_train_step_time(&drafter, 4096).max(1e-6);
            drafter_updates_acc += idle_gpu_seconds / (gpus_per_worker as f64 * iter_time);
        }

        steps.push(StepBreakdown {
            rollout_s,
            inference_s,
            training_s,
            other_s,
        });
    }

    let n = config.num_steps.max(1) as f64;
    let tokens_per_step = total_tokens_acc / n;
    let mean_step_time: f64 = steps.iter().map(StepBreakdown::total_s).sum::<f64>() / n;
    ExperimentResult {
        system,
        steps,
        tokens_per_step,
        throughput_tokens_per_s: tokens_per_step / mean_step_time.max(1e-9),
        drafter_updates_per_step: drafter_updates_acc / n,
        idle_gpu_seconds_per_step: idle_acc / n,
        mean_accept_length: if accept_count == 0 {
            1.0
        } else {
            accept_acc / accept_count as f64
        },
    }
}

/// Runs all four systems on the same configuration (one column group of Figure 11).
pub fn run_comparison(config: &ExperimentConfig) -> Vec<ExperimentResult> {
    SystemKind::all()
        .into_iter()
        .map(|system| run_experiment(system, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlt_gpusim::{ClusterConfig, GpuType};
    use tlt_model::ModelSpec;

    fn small_config() -> ExperimentConfig {
        ExperimentConfig::paper_default(
            ModelSpec::qwen2_5_7b(),
            ClusterConfig::single_node(GpuType::H100, 2),
        )
        .scaled_down()
    }

    #[test]
    fn rollout_dominates_the_step_for_verl() {
        let config = small_config();
        let result = run_experiment(SystemKind::Verl, &config);
        let breakdown = result.mean_breakdown();
        assert!(
            breakdown.rollout_fraction() > 0.6,
            "rollout fraction {} should dominate",
            breakdown.rollout_fraction()
        );
        assert!(result.throughput_tokens_per_s > 0.0);
    }

    #[test]
    fn figure11_ordering_holds() {
        let config = small_config();
        let results = run_comparison(&config);
        let by_kind = |k: SystemKind| {
            results
                .iter()
                .find(|r| r.system == k)
                .expect("system present")
                .throughput_tokens_per_s
        };
        let openr1 = by_kind(SystemKind::OpenR1);
        let verl = by_kind(SystemKind::Verl);
        let tlt_base = by_kind(SystemKind::TltBase);
        let tlt = by_kind(SystemKind::Tlt);
        assert!(verl > openr1, "VeRL {verl} should beat Open-R1 {openr1}");
        assert!(
            tlt_base > verl,
            "TLT-Base {tlt_base} should beat VeRL {verl}"
        );
        assert!(tlt > tlt_base, "TLT {tlt} should beat TLT-Base {tlt_base}");
        // Headline number: TLT should land in the right speedup range over VeRL.
        let speedup = tlt / verl;
        assert!(
            (1.3..3.5).contains(&speedup),
            "TLT speedup over VeRL out of range: {speedup:.2}"
        );
    }

    #[test]
    fn tlt_harvests_idle_gpu_time_for_drafter_training() {
        let config = small_config();
        let tlt = run_experiment(SystemKind::Tlt, &config);
        let verl = run_experiment(SystemKind::Verl, &config);
        assert!(tlt.drafter_updates_per_step > 0.0);
        assert_eq!(verl.drafter_updates_per_step, 0.0);
        assert!(verl.idle_gpu_seconds_per_step > 0.0);
    }

    #[test]
    fn results_are_deterministic() {
        let config = small_config();
        let a = run_experiment(SystemKind::Tlt, &config);
        let b = run_experiment(SystemKind::Tlt, &config);
        assert_eq!(a.throughput_tokens_per_s, b.throughput_tokens_per_s);
    }
}
