//! The scenario DSL: composable fault schedules over a serving deployment.
//!
//! A [`Scenario`] is a pure value — a workload (seeded Poisson arrivals), a
//! deployment shape, and a time-ordered list of [`FaultEvent`]s — built through
//! [`ScenarioBuilder`]. Identical scenarios replay identically; the pinned
//! [`pinned_matrix`] is the repository's standing chaos suite.

use serde::Serialize;
use tlt_serve::BalancerPolicy;
use tlt_workload::{
    generate_arrivals, merge_arrival_streams, shift_arrivals, ArrivalConfig, LengthDistribution,
    RateCurve, RequestArrival, SharedPrefixSpec,
};

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FaultKind {
    /// Kill a replica: its in-flight step is lost and every held request fails
    /// over to the survivors (or the orphan buffer if none are up).
    ReplicaCrash {
        /// Which replica dies.
        replica: usize,
    },
    /// Bring a crashed replica back; orphaned requests are re-delivered.
    ReplicaRestart {
        /// Which replica restarts.
        replica: usize,
    },
    /// Degrade a replica's step durations by a multiplicative factor.
    SlowReplica {
        /// Which replica becomes a straggler.
        replica: usize,
        /// Step-duration multiplier (> 1.0 is slower).
        factor: f64,
    },
    /// Preempt any ongoing drafter-training session for rollout work; the
    /// training side commits a fresh drafter checkpoint on the way out.
    TrainingPreempt,
    /// Deliver a corrupt drafter checkpoint (bit-flipped and truncated
    /// variants); the serving drafter must reject it and keep the last good.
    CheckpointCorrupt,
    /// Deliver a stale drafter checkpoint (not newer than the live drafter);
    /// it must be rejected as stale.
    CheckpointStale,
    /// Inject a burst of extra arrivals at this point in the timeline.
    ArrivalStorm {
        /// Burst arrival rate (requests per second).
        burst_rps: f64,
        /// Burst duration in seconds.
        duration_s: f64,
    },
}

impl FaultKind {
    /// Short display label.
    pub fn label(&self) -> String {
        match self {
            FaultKind::ReplicaCrash { replica } => format!("crash(r{replica})"),
            FaultKind::ReplicaRestart { replica } => format!("restart(r{replica})"),
            FaultKind::SlowReplica { replica, factor } => {
                format!("slow(r{replica},x{factor})")
            }
            FaultKind::TrainingPreempt => "preempt-training".to_string(),
            FaultKind::CheckpointCorrupt => "ckpt-corrupt".to_string(),
            FaultKind::CheckpointStale => "ckpt-stale".to_string(),
            FaultKind::ArrivalStorm {
                burst_rps,
                duration_s,
            } => format!("storm({burst_rps}rps,{duration_s}s)"),
        }
    }
}

/// A fault scheduled at a point on the simulated timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultEvent {
    /// Simulated time the fault fires, in seconds.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A complete chaos scenario: deployment, workload, and fault schedule.
#[derive(Debug, Clone, Serialize)]
pub struct Scenario {
    /// Scenario name (unique within a matrix).
    pub name: String,
    /// Seed for the arrival stream, replica tuners, and the token-level
    /// losslessness probe.
    pub seed: u64,
    /// Number of replicas behind the frontend.
    pub replicas: usize,
    /// Base arrival rate in requests per second.
    pub rps: f64,
    /// Arrival horizon in simulated seconds.
    pub horizon_s: f64,
    /// Request routing policy.
    pub balancer: BalancerPolicy,
    /// Whether the replicas run the adaptive SD manager (vanilla decoding
    /// otherwise).
    pub adaptive_sd: bool,
    /// Optimistic KV admission with preemption (conservative otherwise).
    pub preemption: bool,
    /// Shared system prompt carried by a fraction of the arrivals (exercises
    /// shared-block accounting on the paged KV pool under faults).
    pub prefix: Option<SharedPrefixSpec>,
    /// Fault schedule, sorted by time.
    pub faults: Vec<FaultEvent>,
    /// Inject a synthetic `postmortem-probe` invariant violation at the end of
    /// the run (self-test of the flight-recorder postmortem path; never set in
    /// the pinned matrix).
    pub probe_violation: bool,
}

impl Scenario {
    /// Starts building a scenario with sane defaults: 2 replicas,
    /// join-shortest-queue, 6 req/s over 10 s, vanilla decoding, conservative
    /// admission, no faults.
    pub fn builder(name: &str) -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Scenario {
                name: name.to_string(),
                seed: 2026,
                replicas: 2,
                rps: 6.0,
                horizon_s: 10.0,
                balancer: BalancerPolicy::JoinShortestQueue,
                adaptive_sd: false,
                preemption: false,
                prefix: None,
                faults: Vec::new(),
                probe_violation: false,
            },
        }
    }

    /// The complete arrival stream: the base Poisson stream merged with every
    /// scheduled storm burst, re-indexed into one timeline.
    pub fn arrival_stream(&self) -> Vec<RequestArrival> {
        chaos_stream(
            self.seed,
            self.rps,
            self.horizon_s,
            self.prefix,
            &self.faults,
        )
    }

    /// The faults in schedule order, storms excluded (storms are folded into
    /// the arrival stream, not replayed at runtime).
    pub fn runtime_faults(&self) -> Vec<FaultEvent> {
        self.faults
            .iter()
            .filter(|f| !matches!(f.kind, FaultKind::ArrivalStorm { .. }))
            .copied()
            .collect()
    }

    /// Compact schedule description, e.g. `crash(r1)@3 restart(r1)@6`.
    pub fn schedule_label(&self) -> String {
        if self.faults.is_empty() {
            return "none".to_string();
        }
        self.faults
            .iter()
            .map(|f| format!("{}@{}", f.kind.label(), f.at_s))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// The chaos workload shape shared by the monolithic and the disaggregated
/// scenarios: short prompts, long-tail outputs capped at 256 tokens, plus one
/// extra Poisson stream per scheduled storm, merged into a single timeline.
fn chaos_stream(
    seed: u64,
    rps: f64,
    horizon_s: f64,
    prefix: Option<SharedPrefixSpec>,
    faults: &[FaultEvent],
) -> Vec<RequestArrival> {
    let lengths = LengthDistribution::LongTailMixture {
        mu: 4.0,
        sigma: 0.8,
        truncation_mass: 0.02,
        max_len: 256,
    };
    let base = generate_arrivals(&ArrivalConfig {
        curve: RateCurve::Constant { rps },
        horizon_s,
        prompt_len_range: (64, 192),
        output_lengths: lengths.clone(),
        prefix,
        seed,
    });
    let mut streams = vec![base];
    for (i, fault) in faults.iter().enumerate() {
        if let FaultKind::ArrivalStorm {
            burst_rps,
            duration_s,
        } = fault.kind
        {
            let mut burst = generate_arrivals(&ArrivalConfig {
                curve: RateCurve::Constant { rps: burst_rps },
                horizon_s: duration_s,
                prompt_len_range: (64, 192),
                output_lengths: lengths.clone(),
                prefix,
                seed: seed ^ (0x0057_0412 + i as u64),
            });
            shift_arrivals(&mut burst, fault.at_s);
            streams.push(burst);
        }
    }
    merge_arrival_streams(streams)
}

/// Fluent builder for [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Sets the scenario seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.seed = seed;
        self
    }

    /// Sets the number of replicas.
    pub fn replicas(mut self, replicas: usize) -> Self {
        assert!(replicas > 0, "need at least one replica");
        self.scenario.replicas = replicas;
        self
    }

    /// Sets the base arrival rate and horizon.
    pub fn arrivals(mut self, rps: f64, horizon_s: f64) -> Self {
        assert!(
            rps > 0.0 && horizon_s > 0.0,
            "rate and horizon must be positive"
        );
        self.scenario.rps = rps;
        self.scenario.horizon_s = horizon_s;
        self
    }

    /// Sets the routing policy.
    pub fn balancer(mut self, policy: BalancerPolicy) -> Self {
        self.scenario.balancer = policy;
        self
    }

    /// Enables the adaptive speculative-decoding manager on every replica.
    pub fn adaptive_sd(mut self) -> Self {
        self.scenario.adaptive_sd = true;
        self
    }

    /// Enables optimistic KV admission with preemption.
    pub fn preemption(mut self) -> Self {
        self.scenario.preemption = true;
        self
    }

    /// Gives `share` of the arrivals a shared system prompt of `len` tokens.
    pub fn prefix_share(mut self, share: f64, len: usize) -> Self {
        assert!((0.0..=1.0).contains(&share), "share must be in [0, 1]");
        self.scenario.prefix = Some(SharedPrefixSpec { share, len });
        self
    }

    /// Schedules an arbitrary fault.
    pub fn fault(mut self, at_s: f64, kind: FaultKind) -> Self {
        assert!(at_s >= 0.0, "fault time must be non-negative");
        self.scenario.faults.push(FaultEvent { at_s, kind });
        self
    }

    /// Schedules a replica crash.
    pub fn crash(self, at_s: f64, replica: usize) -> Self {
        self.fault(at_s, FaultKind::ReplicaCrash { replica })
    }

    /// Schedules a replica restart.
    pub fn restart(self, at_s: f64, replica: usize) -> Self {
        self.fault(at_s, FaultKind::ReplicaRestart { replica })
    }

    /// Schedules a slow-down (or, with `factor = 1.0`, a speed restore).
    pub fn slow(self, at_s: f64, replica: usize, factor: f64) -> Self {
        self.fault(at_s, FaultKind::SlowReplica { replica, factor })
    }

    /// Schedules a training preemption (commits a fresh drafter checkpoint).
    pub fn preempt_training(self, at_s: f64) -> Self {
        self.fault(at_s, FaultKind::TrainingPreempt)
    }

    /// Schedules delivery of a corrupt drafter checkpoint.
    pub fn corrupt_checkpoint(self, at_s: f64) -> Self {
        self.fault(at_s, FaultKind::CheckpointCorrupt)
    }

    /// Schedules delivery of a stale drafter checkpoint.
    pub fn stale_checkpoint(self, at_s: f64) -> Self {
        self.fault(at_s, FaultKind::CheckpointStale)
    }

    /// Forces a synthetic `postmortem-probe` invariant violation at the end of
    /// the run. The scenario is otherwise unchanged; the harness must respond
    /// by dumping the flight recorder, so this is a self-test of the whole
    /// alerting path (violation → postmortem → operator-readable dump).
    pub fn forced_violation(mut self) -> Self {
        self.scenario.probe_violation = true;
        self
    }

    /// Schedules an arrival storm.
    pub fn storm(self, at_s: f64, burst_rps: f64, duration_s: f64) -> Self {
        self.fault(
            at_s,
            FaultKind::ArrivalStorm {
                burst_rps,
                duration_s,
            },
        )
    }

    /// Finalises the scenario: validates replica indices, sorts the fault
    /// schedule by time (stable, so same-time faults keep insertion order), and
    /// rejects impossible schedules (crashing a replica that is already down,
    /// restarting one that never crashed) so authoring mistakes fail loudly at
    /// build time instead of panicking deep inside the harness.
    pub fn build(mut self) -> Scenario {
        for fault in &self.scenario.faults {
            let replica = match fault.kind {
                FaultKind::ReplicaCrash { replica }
                | FaultKind::ReplicaRestart { replica }
                | FaultKind::SlowReplica { replica, .. } => replica,
                _ => 0,
            };
            assert!(
                replica < self.scenario.replicas,
                "fault targets replica {replica} but the deployment has {}",
                self.scenario.replicas
            );
        }
        self.scenario
            .faults
            .sort_by(|a, b| a.at_s.partial_cmp(&b.at_s).expect("finite fault times"));
        let mut up = vec![true; self.scenario.replicas];
        for fault in &self.scenario.faults {
            match fault.kind {
                FaultKind::ReplicaCrash { replica } => {
                    assert!(
                        up[replica],
                        "crash of replica {replica} at t={}: it is already down",
                        fault.at_s
                    );
                    up[replica] = false;
                }
                FaultKind::ReplicaRestart { replica } => {
                    assert!(
                        !up[replica],
                        "restart of replica {replica} at t={}: it never crashed",
                        fault.at_s
                    );
                    up[replica] = true;
                }
                _ => {}
            }
        }
        self.scenario
    }
}

/// The pinned scenario matrix: the standing chaos suite every PR must keep
/// green (run by `experiments -- chaos` and the `chaos-suite` CI job). Each
/// scenario is deliberately small — the whole matrix (with its double-run
/// determinism check) finishes in seconds.
pub fn pinned_matrix() -> Vec<Scenario> {
    vec![
        Scenario::builder("baseline-no-faults")
            .seed(11)
            .replicas(2)
            .arrivals(6.0, 8.0)
            .build(),
        Scenario::builder("crash-failover")
            .seed(12)
            .replicas(3)
            .arrivals(8.0, 8.0)
            .crash(3.0, 1)
            .build(),
        Scenario::builder("crash-then-restart")
            .seed(13)
            .replicas(2)
            .arrivals(14.0, 10.0)
            .prefix_share(0.6, 96)
            .crash(3.0, 0)
            .restart(6.0, 0)
            .build(),
        Scenario::builder("rolling-crashes")
            .seed(14)
            .replicas(3)
            .arrivals(7.0, 12.0)
            .crash(2.0, 0)
            .restart(4.5, 0)
            .crash(6.0, 1)
            .restart(8.5, 1)
            .crash(9.0, 2)
            .restart(10.5, 2)
            .build(),
        Scenario::builder("lone-replica-crash-recovers")
            .seed(15)
            .replicas(1)
            .arrivals(6.0, 4.0)
            .crash(2.0, 0)
            .restart(3.5, 0)
            .build(),
        Scenario::builder("slow-replica-straggler")
            .seed(16)
            .replicas(2)
            .arrivals(6.0, 10.0)
            .slow(2.0, 1, 4.0)
            .slow(7.0, 1, 1.0)
            .build(),
        Scenario::builder("training-preempt-churn")
            .seed(17)
            .replicas(3)
            .arrivals(2.0, 10.0)
            .preempt_training(2.5)
            .preempt_training(5.0)
            .preempt_training(7.5)
            .build(),
        Scenario::builder("checkpoint-corrupt")
            .seed(18)
            .replicas(2)
            .arrivals(5.0, 8.0)
            .adaptive_sd()
            .preempt_training(2.0)
            .corrupt_checkpoint(4.0)
            .build(),
        Scenario::builder("checkpoint-stale")
            .seed(19)
            .replicas(2)
            .arrivals(5.0, 8.0)
            .adaptive_sd()
            .preempt_training(2.0)
            .stale_checkpoint(4.0)
            .build(),
        Scenario::builder("arrival-storm")
            .seed(20)
            .replicas(2)
            .arrivals(4.0, 12.0)
            .adaptive_sd()
            .storm(4.0, 30.0, 2.0)
            .build(),
        Scenario::builder("storm-under-preemption")
            .seed(21)
            .replicas(2)
            .arrivals(4.0, 12.0)
            .preemption()
            .prefix_share(0.5, 128)
            .storm(3.0, 40.0, 2.0)
            .build(),
        Scenario::builder("kitchen-sink")
            .seed(22)
            .replicas(3)
            .arrivals(12.0, 14.0)
            .adaptive_sd()
            .slow(1.0, 2, 3.0)
            .preempt_training(2.0)
            .crash(3.0, 1)
            .storm(4.0, 25.0, 2.0)
            .corrupt_checkpoint(5.0)
            .restart(6.5, 1)
            .stale_checkpoint(7.0)
            .crash(8.0, 0)
            .preempt_training(9.0)
            .restart(10.0, 0)
            .slow(11.0, 2, 1.0)
            .build(),
    ]
}

/// A chaos scenario over the disaggregated prefill/decode cluster
/// (`tlt_serve::ClusterSim`). Faults address replicas by **global fault
/// index**: `0..prefill_replicas` is the prefill pool, the rest the decode
/// pool — the same numbering `ClusterSim::crash_replica` uses. Only
/// serving-path faults (crash / restart / straggler / storm) are legal; the
/// drafter and coordinator pipelines are monolithic-suite concerns.
#[derive(Debug, Clone, Serialize)]
pub struct DisaggScenario {
    /// Scenario name (unique within the disagg matrix).
    pub name: String,
    /// Seed for the arrival stream and replica tuners.
    pub seed: u64,
    /// Prefill pool size at t=0.
    pub prefill_replicas: usize,
    /// Decode pool size at t=0.
    pub decode_replicas: usize,
    /// Base arrival rate in requests per second.
    pub rps: f64,
    /// Arrival horizon in simulated seconds.
    pub horizon_s: f64,
    /// KV transfer link bandwidth in GB/s (small values serialise transfers,
    /// widening the mid-transfer crash window).
    pub link_bandwidth_gbps: f64,
    /// KV transfer link latency in seconds.
    pub link_latency_s: f64,
    /// Run the reactive autoscaler (drain-before-retire) over both pools.
    pub autoscale: bool,
    /// Shared system prompt carried by a fraction of the arrivals (exercises
    /// prefix-affinity routing and shared-block migration accounting).
    pub prefix: Option<SharedPrefixSpec>,
    /// Fault schedule, sorted by time.
    pub faults: Vec<FaultEvent>,
}

impl DisaggScenario {
    /// Starts building a disaggregated scenario with sane defaults: 2 prefill
    /// plus 2 decode replicas, 8 req/s over 8 s, the default NVLink-class
    /// link, no autoscaler, no faults.
    pub fn builder(name: &str) -> DisaggScenarioBuilder {
        DisaggScenarioBuilder {
            scenario: DisaggScenario {
                name: name.to_string(),
                seed: 2026,
                prefill_replicas: 2,
                decode_replicas: 2,
                rps: 8.0,
                horizon_s: 8.0,
                link_bandwidth_gbps: 50.0,
                link_latency_s: 0.002,
                autoscale: false,
                prefix: None,
                faults: Vec::new(),
            },
        }
    }

    /// The complete arrival stream (same workload shape as the monolithic
    /// suite: base Poisson stream plus storm bursts, one timeline).
    pub fn arrival_stream(&self) -> Vec<RequestArrival> {
        chaos_stream(
            self.seed,
            self.rps,
            self.horizon_s,
            self.prefix,
            &self.faults,
        )
    }

    /// The faults in schedule order, storms excluded.
    pub fn runtime_faults(&self) -> Vec<FaultEvent> {
        self.faults
            .iter()
            .filter(|f| !matches!(f.kind, FaultKind::ArrivalStorm { .. }))
            .copied()
            .collect()
    }

    /// Compact schedule description, e.g. `crash(r0)@1.5 restart(r0)@3.5`.
    pub fn schedule_label(&self) -> String {
        if self.faults.is_empty() {
            return "none".to_string();
        }
        self.faults
            .iter()
            .map(|f| format!("{}@{}", f.kind.label(), f.at_s))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Total replicas provisioned at t=0.
    pub fn total_replicas(&self) -> usize {
        self.prefill_replicas + self.decode_replicas
    }
}

/// Fluent builder for [`DisaggScenario`].
#[derive(Debug, Clone)]
pub struct DisaggScenarioBuilder {
    scenario: DisaggScenario,
}

impl DisaggScenarioBuilder {
    /// Sets the scenario seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.seed = seed;
        self
    }

    /// Sets the initial pool sizes.
    pub fn pools(mut self, prefill: usize, decode: usize) -> Self {
        assert!(
            prefill > 0 && decode > 0,
            "both pools need at least one replica"
        );
        self.scenario.prefill_replicas = prefill;
        self.scenario.decode_replicas = decode;
        self
    }

    /// Sets the base arrival rate and horizon.
    pub fn arrivals(mut self, rps: f64, horizon_s: f64) -> Self {
        assert!(
            rps > 0.0 && horizon_s > 0.0,
            "rate and horizon must be positive"
        );
        self.scenario.rps = rps;
        self.scenario.horizon_s = horizon_s;
        self
    }

    /// Shapes the KV transfer link. A deliberately slow link keeps transfers
    /// on the wire longer, so mid-transfer crash schedules actually hit one.
    pub fn link(mut self, bandwidth_gbps: f64, latency_s: f64) -> Self {
        assert!(
            bandwidth_gbps > 0.0 && latency_s >= 0.0,
            "link shape must be positive"
        );
        self.scenario.link_bandwidth_gbps = bandwidth_gbps;
        self.scenario.link_latency_s = latency_s;
        self
    }

    /// Enables the reactive autoscaler over both pools.
    pub fn autoscale(mut self) -> Self {
        self.scenario.autoscale = true;
        self
    }

    /// Gives `share` of the arrivals a shared system prompt of `len` tokens.
    pub fn prefix_share(mut self, share: f64, len: usize) -> Self {
        assert!((0.0..=1.0).contains(&share), "share must be in [0, 1]");
        self.scenario.prefix = Some(SharedPrefixSpec { share, len });
        self
    }

    /// Schedules a replica crash (global fault index).
    pub fn crash(self, at_s: f64, replica: usize) -> Self {
        self.fault(at_s, FaultKind::ReplicaCrash { replica })
    }

    /// Schedules a replica restart (global fault index).
    pub fn restart(self, at_s: f64, replica: usize) -> Self {
        self.fault(at_s, FaultKind::ReplicaRestart { replica })
    }

    /// Schedules a slow-down (or, with `factor = 1.0`, a speed restore).
    pub fn slow(self, at_s: f64, replica: usize, factor: f64) -> Self {
        self.fault(at_s, FaultKind::SlowReplica { replica, factor })
    }

    /// Schedules an arrival storm.
    pub fn storm(self, at_s: f64, burst_rps: f64, duration_s: f64) -> Self {
        self.fault(
            at_s,
            FaultKind::ArrivalStorm {
                burst_rps,
                duration_s,
            },
        )
    }

    /// Schedules an arbitrary serving-path fault.
    pub fn fault(mut self, at_s: f64, kind: FaultKind) -> Self {
        assert!(at_s >= 0.0, "fault time must be non-negative");
        self.scenario.faults.push(FaultEvent { at_s, kind });
        self
    }

    /// Finalises the scenario: validates fault indices against the initial
    /// pools, rejects drafter/coordinator faults (not modelled on the cluster
    /// path), sorts the schedule, and rejects impossible crash/restart orders.
    pub fn build(mut self) -> DisaggScenario {
        let total = self.scenario.total_replicas();
        for fault in &self.scenario.faults {
            let replica = match fault.kind {
                FaultKind::ReplicaCrash { replica }
                | FaultKind::ReplicaRestart { replica }
                | FaultKind::SlowReplica { replica, .. } => replica,
                FaultKind::ArrivalStorm { .. } => 0,
                FaultKind::TrainingPreempt
                | FaultKind::CheckpointCorrupt
                | FaultKind::CheckpointStale => {
                    panic!("drafter faults are not supported in disaggregated scenarios")
                }
            };
            assert!(
                replica < total,
                "fault targets replica {replica} but the cluster has {total}"
            );
        }
        self.scenario
            .faults
            .sort_by(|a, b| a.at_s.partial_cmp(&b.at_s).expect("finite fault times"));
        let mut up = vec![true; total];
        for fault in &self.scenario.faults {
            match fault.kind {
                FaultKind::ReplicaCrash { replica } => {
                    assert!(
                        up[replica],
                        "crash of replica {replica} at t={}: it is already down",
                        fault.at_s
                    );
                    up[replica] = false;
                }
                FaultKind::ReplicaRestart { replica } => {
                    assert!(
                        !up[replica],
                        "restart of replica {replica} at t={}: it never crashed",
                        fault.at_s
                    );
                    up[replica] = true;
                }
                _ => {}
            }
        }
        self.scenario
    }
}

/// The pinned disaggregated-cluster matrix, run alongside [`pinned_matrix`]
/// by `experiments -- chaos` and the `chaos-suite` CI job. The slow-link
/// scenarios are timed so a crash provably lands mid-transfer (the runner's
/// tests assert `aborted_transfers > 0`).
pub fn disagg_matrix() -> Vec<DisaggScenario> {
    vec![
        DisaggScenario::builder("disagg-baseline")
            .seed(31)
            .pools(2, 2)
            .arrivals(8.0, 8.0)
            .prefix_share(0.5, 96)
            .build(),
        DisaggScenario::builder("disagg-mid-transfer-source-crash")
            .seed(32)
            .pools(2, 1)
            .arrivals(10.0, 6.0)
            .link(1.0, 0.25)
            .prefix_share(0.5, 96)
            .crash(1.5, 0)
            .restart(3.5, 0)
            .build(),
        DisaggScenario::builder("disagg-mid-transfer-dest-crash")
            .seed(33)
            .pools(1, 2)
            .arrivals(10.0, 6.0)
            .link(1.0, 0.25)
            .crash(1.5, 1)
            .restart(3.0, 1)
            .build(),
        DisaggScenario::builder("disagg-autoscale-drain-storm")
            .seed(34)
            .pools(1, 1)
            .arrivals(4.0, 10.0)
            .autoscale()
            .link(2.0, 0.02)
            .prefix_share(0.4, 96)
            .storm(2.0, 120.0, 3.0)
            .build(),
        DisaggScenario::builder("disagg-decode-straggler")
            .seed(35)
            .pools(1, 2)
            .arrivals(8.0, 8.0)
            .slow(2.0, 2, 4.0)
            .slow(6.0, 2, 1.0)
            .build(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sorts_faults_and_validates_targets() {
        let s = Scenario::builder("t")
            .replicas(3)
            .restart(6.0, 1)
            .crash(3.0, 1)
            .build();
        assert_eq!(s.faults[0].kind, FaultKind::ReplicaCrash { replica: 1 });
        assert_eq!(s.faults[1].kind, FaultKind::ReplicaRestart { replica: 1 });
        assert!(s.schedule_label().contains("crash(r1)@3"));
    }

    #[test]
    #[should_panic(expected = "fault targets replica")]
    fn out_of_range_fault_target_panics() {
        let _ = Scenario::builder("t").replicas(2).crash(1.0, 5).build();
    }

    #[test]
    #[should_panic(expected = "never crashed")]
    fn restart_without_a_crash_is_rejected_at_build_time() {
        let _ = Scenario::builder("t").replicas(1).restart(1.0, 0).build();
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn double_crash_is_rejected_at_build_time() {
        let _ = Scenario::builder("t")
            .replicas(2)
            .crash(1.0, 0)
            .crash(2.0, 0)
            .build();
    }

    #[test]
    fn storms_extend_the_arrival_stream_deterministically() {
        let base = Scenario::builder("b").seed(7).arrivals(5.0, 10.0).build();
        let stormy = Scenario::builder("s")
            .seed(7)
            .arrivals(5.0, 10.0)
            .storm(4.0, 40.0, 1.5)
            .build();
        let plain = base.arrival_stream();
        let with_storm = stormy.arrival_stream();
        assert!(with_storm.len() > plain.len() + 20);
        assert_eq!(with_storm, stormy.arrival_stream());
        for (i, a) in with_storm.iter().enumerate() {
            assert_eq!(a.id, i as u64);
        }
        assert!(
            stormy.runtime_faults().is_empty(),
            "storms are not runtime faults"
        );
    }

    #[test]
    fn disagg_builder_validates_global_fault_indices() {
        let s = DisaggScenario::builder("d")
            .pools(2, 1)
            .restart(4.0, 2)
            .crash(1.0, 2)
            .build();
        assert_eq!(s.faults[0].kind, FaultKind::ReplicaCrash { replica: 2 });
        assert_eq!(s.total_replicas(), 3);
        assert!(s.schedule_label().contains("crash(r2)@1"));
    }

    #[test]
    #[should_panic(expected = "fault targets replica")]
    fn disagg_out_of_range_fault_target_panics() {
        let _ = DisaggScenario::builder("d")
            .pools(1, 1)
            .crash(1.0, 2)
            .build();
    }

    #[test]
    #[should_panic(expected = "drafter faults are not supported")]
    fn disagg_rejects_drafter_faults() {
        let _ = DisaggScenario::builder("d")
            .fault(1.0, FaultKind::TrainingPreempt)
            .build();
    }

    #[test]
    fn disagg_matrix_covers_the_migration_fault_surface() {
        let matrix = disagg_matrix();
        let mut names: Vec<&str> = matrix.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate scenario names");
        // A prefill-pool crash, a decode-pool crash, an autoscaled storm and a
        // straggler are all present.
        let crashed: Vec<usize> = matrix
            .iter()
            .flat_map(|s| {
                let p = s.prefill_replicas;
                s.faults.iter().filter_map(move |f| match f.kind {
                    FaultKind::ReplicaCrash { replica } => Some(if replica < p { 0 } else { 1 }),
                    _ => None,
                })
            })
            .collect();
        assert!(crashed.contains(&0), "no prefill-pool crash in the matrix");
        assert!(crashed.contains(&1), "no decode-pool crash in the matrix");
        assert!(matrix.iter().any(|s| s.autoscale
            && s.faults
                .iter()
                .any(|f| matches!(f.kind, FaultKind::ArrivalStorm { .. }))));
        assert!(matrix
            .iter()
            .flat_map(|s| s.faults.iter())
            .any(|f| matches!(f.kind, FaultKind::SlowReplica { .. })));
        // The monolithic pinned matrix is untouched by the disagg suite.
        assert_eq!(pinned_matrix().len(), 12);
    }

    #[test]
    fn pinned_matrix_has_unique_names_and_covers_every_fault_kind() {
        let matrix = pinned_matrix();
        let mut names: Vec<&str> = matrix.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate scenario names");
        let has = |pred: &dyn Fn(&FaultKind) -> bool| {
            matrix
                .iter()
                .flat_map(|s| s.faults.iter())
                .any(|f| pred(&f.kind))
        };
        assert!(has(&|k| matches!(k, FaultKind::ReplicaCrash { .. })));
        assert!(has(&|k| matches!(k, FaultKind::ReplicaRestart { .. })));
        assert!(has(&|k| matches!(k, FaultKind::SlowReplica { .. })));
        assert!(has(&|k| matches!(k, FaultKind::TrainingPreempt)));
        assert!(has(&|k| matches!(k, FaultKind::CheckpointCorrupt)));
        assert!(has(&|k| matches!(k, FaultKind::CheckpointStale)));
        assert!(has(&|k| matches!(k, FaultKind::ArrivalStorm { .. })));
    }
}
