//! Multi-replica frontend: merges the arrival stream with replica step events into
//! one deterministic discrete-event simulation.
//!
//! The frontend is exposed at two levels. [`simulate_serving`] is the closed-form
//! entry point: feed it a sorted arrival stream and get the aggregate SLO report.
//! Underneath sits [`ServeSim`], a steppable simulation the chaos harness drives
//! directly: external events (arrivals, crashes, restarts, slow-downs) are applied
//! at the caller's chosen times between [`ServeSim::advance_before`] calls, and
//! the frontend guarantees **request conservation** across faults — a crashed
//! replica's requests are re-queued onto surviving replicas (or parked in an
//! orphan buffer until a replica comes back), never lost and never duplicated.

use crate::balancer::LoadBalancer;
use crate::config::ServeConfig;
use crate::events::{DriveOutcome, EventCore, EventQueue};
use crate::metrics::ServeReport;
use crate::replica::{FailoverRequest, Replica};
use crate::request::ServeRequest;
use std::collections::VecDeque;
use tlt_obs::{hooks, record, EventKind, ObsEvent, Track, NO_REQ};
use tlt_workload::RequestArrival;

/// Hard cap on processed events; prevents pathological configurations from
/// spinning forever.
const MAX_EVENTS: u64 = 200_000_000;

/// Event class of a replica step completion — `ServeSim`'s only internal
/// event, so heap order reduces to `(time, replica index)`, exactly the
/// first-minimum tie-break of the old linear scan.
const CLASS_STEP: u8 = 0;

/// A steppable multi-replica serving simulation with failure semantics.
#[derive(Debug)]
pub struct ServeSim {
    replicas: Vec<Replica>,
    balancer: LoadBalancer,
    slo: crate::metrics::SloSpec,
    now_s: f64,
    /// Per-request routing decisions, in offer order (`(request id, replica)`).
    routing: Vec<(u64, usize)>,
    /// Failed-over requests waiting for any replica to come back up.
    orphans: VecDeque<FailoverRequest>,
    requeued: u64,
    crashes: u64,
    restarts: u64,
    events: u64,
    event_budget: u64,
    budget_reported: bool,
    core: EventCore,
    queue: EventQueue,
}

impl ServeSim {
    /// Builds an idle deployment described by `config`.
    pub fn new(config: &ServeConfig) -> Self {
        ServeSim {
            replicas: (0..config.num_replicas)
                .map(|i| Replica::new(config, i))
                .collect(),
            balancer: LoadBalancer::new(config.balancer),
            slo: config.slo,
            now_s: 0.0,
            routing: Vec::new(),
            orphans: VecDeque::new(),
            requeued: 0,
            crashes: 0,
            restarts: 0,
            events: 0,
            event_budget: MAX_EVENTS,
            budget_reported: false,
            core: EventCore::default(),
            queue: EventQueue::new(),
        }
    }

    /// Switches the next-event implementation, re-seeding the heap from every
    /// replica's current state. The two cores are bit-identical (enforced by
    /// the `event_core` test suite); the scan is kept as the oracle and for
    /// the `sim_event_core_speedup` benchmark.
    pub fn set_event_core(&mut self, core: EventCore) {
        self.core = core;
        self.queue.clear();
        if core == EventCore::IndexedHeap {
            for i in 0..self.replicas.len() {
                self.queue
                    .push(self.replicas[i].next_event_s(), CLASS_STEP, i);
            }
        }
    }

    /// The next-event implementation in use.
    pub fn event_core(&self) -> EventCore {
        self.core
    }

    /// Overrides the hard event budget (default 200M). Exposed so tests can
    /// exercise the typed [`DriveOutcome::BudgetExhausted`] path cheaply.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Re-pushes `replica`'s current next-event key after a mutation that may
    /// have changed it; `before_s` is the pre-mutation time, so unchanged keys
    /// (e.g. enqueueing onto an already-busy replica) push nothing.
    fn touch(&mut self, replica: usize, before_s: f64) {
        if self.core == EventCore::IndexedHeap {
            let now = self.replicas[replica].next_event_s();
            if now.to_bits() != before_s.to_bits() {
                self.queue.push(now, CLASS_STEP, replica);
            }
        }
    }

    /// Current simulated time (the latest event applied).
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Time of the next replica step completion (`f64::MAX` when all idle).
    pub fn next_event_s(&self) -> f64 {
        self.replicas
            .iter()
            .map(Replica::next_event_s)
            .fold(f64::MAX, f64::min)
    }

    /// Whether any request is still queued, running, in flight, or orphaned.
    pub fn has_work(&self) -> bool {
        !self.orphans.is_empty() || self.replicas.iter().any(Replica::has_work)
    }

    /// Whether the hard event budget has been exhausted. Once true,
    /// [`ServeSim::advance_before`] makes no further progress — callers driving
    /// their own event loop must stop instead of re-polling forever.
    pub fn event_budget_exhausted(&self) -> bool {
        self.events > self.event_budget
    }

    /// The replicas, for inspection (peak KV, drop ids, health).
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// Concatenated SD accept-length log of every replica, in replica order
    /// (each replica's speculative steps stay in step order). Since the sim is
    /// a pure function of (config, arrivals), this stream is bit-deterministic
    /// and the trace recorder persists it as a unary bitstream.
    pub fn sd_accept_trace(&self) -> Vec<u8> {
        self.replicas
            .iter()
            .flat_map(|r| r.sd_accept_trace().iter().copied())
            .collect()
    }

    /// Per-request routing decisions in offer order. Failover re-deliveries are
    /// not recorded here (they are counted by [`ServeSim::requeued`]), so the
    /// trace pins exactly the balancer's arrival-routing behaviour.
    pub fn routing_trace(&self) -> &[(u64, usize)] {
        &self.routing
    }

    /// Failed-over requests re-delivered to a replica so far.
    pub fn requeued(&self) -> u64 {
        self.requeued
    }

    /// Crash / restart events applied so far.
    pub fn fault_counts(&self) -> (u64, u64) {
        (self.crashes, self.restarts)
    }

    /// Failed-over requests still waiting for a replica to come back.
    pub fn orphaned(&self) -> usize {
        self.orphans.len()
    }

    /// Ids dropped at admission across all replicas.
    pub fn dropped_ids(&self) -> Vec<u64> {
        self.replicas
            .iter()
            .flat_map(|r| r.dropped_ids().iter().copied())
            .collect()
    }

    fn eligibility(&self) -> Vec<bool> {
        self.replicas.iter().map(Replica::is_up).collect()
    }

    /// Routes one arriving request (must be offered in non-decreasing arrival
    /// order, after advancing the simulation past earlier step events). With
    /// zero healthy replicas the arrival is parked in the orphan buffer — never
    /// rejected — and delivered through the balancer by the next restart; parked
    /// arrivals get no routing-trace entry (they are counted by
    /// [`ServeSim::requeued`] on delivery).
    pub fn offer(&mut self, req: ServeRequest) {
        let now = req.arrival_s;
        self.now_s = self.now_s.max(now);
        let eligible = self.eligibility();
        self.events += 1;
        if !eligible.iter().any(|&up| up) {
            record(
                ObsEvent::instant(now, Track::Frontend, EventKind::Arrival, req.id)
                    .with_args(-1.0, req.prompt_len as f64),
            );
            self.orphans.push_back(FailoverRequest {
                req,
                generated: 0.0,
                first_token_s: None,
                admitted_s: None,
                preemptions: 0,
            });
            return;
        }
        let loads: Vec<_> = self.replicas.iter().map(Replica::load).collect();
        let target = self.balancer.pick_among(&loads, Some(&eligible));
        record(
            ObsEvent::instant(now, Track::Frontend, EventKind::Arrival, req.id)
                .with_args(target as f64, req.prompt_len as f64),
        );
        self.routing.push((req.id, target));
        let before = self.replicas[target].next_event_s();
        self.replicas[target].enqueue(req, now);
        self.touch(target, before);
    }

    /// Advances the clock to `t` without processing events. External actors
    /// (fault injectors) call this before applying an action at `t` so that any
    /// resulting re-queues and restarts are stamped with the action's time, not
    /// the last internal event's.
    pub fn advance_now(&mut self, t: f64) {
        self.now_s = self.now_s.max(t);
    }

    /// Processes every replica step event strictly before `t` (arrivals and
    /// faults at `t` therefore win ties, matching the original frontend rule).
    /// Returns [`DriveOutcome::BudgetExhausted`] — reported once through the
    /// flight recorder — if the hard event budget tripped with an event still
    /// due.
    pub fn advance_before(&mut self, t: f64) -> DriveOutcome {
        match self.core {
            EventCore::IndexedHeap => self.advance_before_heap(t),
            EventCore::LinearScan => self.advance_before_scan(t),
        }
    }

    fn advance_before_heap(&mut self, t: f64) -> DriveOutcome {
        loop {
            let Some(key) = self.queue.peek() else {
                // Every live key is in the heap, so an empty heap means every
                // replica is idle.
                return DriveOutcome::Completed;
            };
            if key.time_s() >= t {
                // The heap minimum bounds every live key from below: nothing
                // (stale or not) is due before `t`.
                return DriveOutcome::Completed;
            }
            let key = self.queue.pop().expect("peeked");
            let idx = key.index();
            if self.replicas[idx].next_event_s().to_bits() != key.time_bits() {
                hooks::on_sim_stale_event();
                continue;
            }
            if self.events > self.event_budget {
                // Put the still-valid key back so the one-sided heap invariant
                // holds if the budget is ever raised.
                self.queue.push_key(key);
                return self.budget_outcome();
            }
            let t_step = key.time_s();
            self.now_s = t_step;
            self.replicas[idx].on_step_complete(t_step);
            self.events += 1;
            hooks::on_sim_event();
            // Only the just-stepped replica's key is dirty: re-push it alone
            // instead of re-deriving the global minimum.
            self.touch(idx, t_step);
        }
    }

    fn advance_before_scan(&mut self, t: f64) -> DriveOutcome {
        loop {
            let (idx, t_step) = self.soonest_step();
            if t_step >= t {
                return DriveOutcome::Completed;
            }
            if self.events > self.event_budget {
                return self.budget_outcome();
            }
            self.now_s = t_step;
            self.replicas[idx].on_step_complete(t_step);
            self.events += 1;
            hooks::on_sim_event();
        }
    }

    /// Runs every remaining step event until the deployment drains (or the event
    /// budget is exhausted). Orphans can only be re-delivered by a restart, so
    /// they are left untouched here.
    pub fn run_until_drained(&mut self) -> DriveOutcome {
        self.advance_before(f64::MAX)
    }

    fn budget_outcome(&mut self) -> DriveOutcome {
        if !self.budget_reported {
            self.budget_reported = true;
            record(
                ObsEvent::instant(
                    self.now_s,
                    Track::Frontend,
                    EventKind::BudgetExhausted,
                    NO_REQ,
                )
                .with_args(self.events as f64, self.event_budget as f64),
            );
        }
        DriveOutcome::BudgetExhausted
    }

    fn soonest_step(&self) -> (usize, f64) {
        self.replicas
            .iter()
            .enumerate()
            .map(|(i, r)| (i, r.next_event_s()))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite or MAX"))
            .expect("at least one replica")
    }

    /// Crashes `replica` at the current time and re-queues every request it held
    /// onto surviving replicas through the balancer (orphaning them if no replica
    /// is up). Returns how many requests were drained.
    pub fn crash_replica(&mut self, replica: usize) -> usize {
        let now = self.now_s;
        let drained = self.replicas[replica].crash(now);
        self.crashes += 1;
        let n = drained.len();
        for fo in drained {
            self.deliver_failover(fo, now);
        }
        n
    }

    /// Restarts a crashed `replica` at the current time and re-delivers any
    /// orphaned requests through the balancer (which can now see it).
    pub fn restart_replica(&mut self, replica: usize) {
        let now = self.now_s;
        let before = self.replicas[replica].next_event_s();
        self.replicas[replica].restart(now);
        self.touch(replica, before);
        self.restarts += 1;
        while let Some(fo) = self.orphans.pop_front() {
            self.deliver_failover(fo, now);
        }
    }

    /// Sets the step-duration multiplier of one replica (a straggler runs slower
    /// than 1.0x); takes effect from its next scheduled step.
    pub fn set_slow_factor(&mut self, replica: usize, factor: f64) {
        self.replicas[replica].set_slow_factor(factor);
    }

    fn deliver_failover(&mut self, fo: FailoverRequest, now: f64) {
        let eligible = self.eligibility();
        if !eligible.iter().any(|&up| up) {
            self.orphans.push_back(fo);
            return;
        }
        let loads: Vec<_> = self.replicas.iter().map(Replica::load).collect();
        let target = self.balancer.pick_among(&loads, Some(&eligible));
        let before = self.replicas[target].next_event_s();
        self.replicas[target].enqueue_failover(fo, now);
        self.touch(target, before);
        self.requeued += 1;
        self.events += 1;
    }

    /// Consumes the simulation and builds the aggregate SLO report.
    pub fn into_report(mut self) -> ServeReport {
        let completed: Vec<_> = self
            .replicas
            .iter_mut()
            .flat_map(Replica::take_completed)
            .collect();
        let dropped: usize = self.replicas.iter().map(Replica::dropped).sum();
        let makespan_s = completed.iter().map(|r| r.finish_s).fold(0.0f64, f64::max);
        let stats = self.replicas.iter().map(|r| r.stats(makespan_s)).collect();
        ServeReport::build(completed, dropped, stats, self.slo)
    }
}

/// Simulates serving the `arrivals` stream on the deployment described by `config`
/// and returns the aggregate SLO report. Arrivals must be sorted by time (as
/// produced by [`tlt_workload::generate_arrivals`]); the simulation runs until
/// every admitted request has drained.
pub fn simulate_serving(config: &ServeConfig, arrivals: &[RequestArrival]) -> ServeReport {
    simulate_serving_traced(config, arrivals).0
}

/// Like [`simulate_serving`], but also returns the frontend's per-request routing
/// trace (`(request id, replica)` in arrival order) so balancer behaviour can be
/// pinned by golden tests.
pub fn simulate_serving_traced(
    config: &ServeConfig,
    arrivals: &[RequestArrival],
) -> (ServeReport, Vec<(u64, usize)>) {
    let mut sim = ServeSim::new(config);
    for arrival in arrivals {
        sim.advance_before(arrival.time_s());
        sim.offer(ServeRequest::from_arrival(arrival));
    }
    sim.run_until_drained();
    let trace = sim.routing_trace().to_vec();
    (sim.into_report(), trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::BalancerPolicy;
    use tlt_gpusim::{GpuType, LlmCostModel};
    use tlt_model::ModelSpec;
    use tlt_rollout::{SdManagerConfig, SdMode, SdStrategy};
    use tlt_workload::{ArrivalConfig, LengthDistribution, RateCurve};

    fn qwen7b_config(replicas: usize) -> ServeConfig {
        ServeConfig::new(
            LlmCostModel::new(ModelSpec::qwen2_5_7b(), GpuType::H100.spec(), 1),
            replicas,
        )
    }

    fn arrivals(rps: f64, horizon: f64, seed: u64) -> Vec<RequestArrival> {
        tlt_workload::generate_arrivals(&ArrivalConfig {
            curve: RateCurve::Constant { rps },
            horizon_s: horizon,
            prompt_len_range: (256, 512),
            output_lengths: LengthDistribution::LongTailMixture {
                mu: 5.0,
                sigma: 0.8,
                truncation_mass: 0.02,
                max_len: 2048,
            },
            prefix: None,
            seed,
        })
    }

    #[test]
    fn every_arrival_completes_and_metrics_are_sane() {
        let config = qwen7b_config(2);
        let stream = arrivals(4.0, 30.0, 1);
        let report = simulate_serving(&config, &stream);
        assert_eq!(report.completed.len() + report.dropped, stream.len());
        assert_eq!(report.dropped, 0);
        assert!(report.makespan_s > 0.0);
        assert!(report.throughput_tokens_per_s > 0.0);
        assert!(report.ttft.p50_s > 0.0);
        assert!(report.ttft.p50_s <= report.ttft.p99_s);
        assert!(report.e2e.p50_s >= report.ttft.p50_s);
        assert_eq!(report.replicas.len(), 2);
        for r in &report.replicas {
            assert!(r.utilization > 0.0 && r.utilization <= 1.0);
        }
    }

    #[test]
    fn serving_is_deterministic_per_seed() {
        let config = qwen7b_config(3).with_sd_mode(SdMode::Adaptive {
            config: SdManagerConfig::default(),
        });
        let stream = arrivals(6.0, 20.0, 2);
        let a = simulate_serving(&config, &stream);
        let b = simulate_serving(&config, &stream);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.makespan_s, b.makespan_s);
        assert_eq!(a.throughput_tokens_per_s, b.throughput_tokens_per_s);
        assert_eq!(a.goodput_rps, b.goodput_rps);
    }

    #[test]
    fn adaptive_sd_improves_latency_at_low_load() {
        let stream = arrivals(2.0, 30.0, 3);
        let vanilla = simulate_serving(&qwen7b_config(2), &stream);
        let adaptive = simulate_serving(
            &qwen7b_config(2).with_sd_mode(SdMode::Adaptive {
                config: SdManagerConfig::default(),
            }),
            &stream,
        );
        assert!(
            adaptive.e2e.p50_s < vanilla.e2e.p50_s,
            "adaptive {res} vs vanilla {base}",
            res = adaptive.e2e.p50_s,
            base = vanilla.e2e.p50_s
        );
        assert!(adaptive.mean_sd_fraction() > 0.5);
        assert!(vanilla.mean_sd_fraction() == 0.0);
    }

    #[test]
    fn always_on_sd_collapses_under_heavy_load() {
        // At a high arrival rate the batch stays large; forcing SD on every step
        // (static, infinite threshold) must hurt tail latency versus the elastic
        // adaptive policy that switches SD off under backlog.
        let stream = arrivals(30.0, 20.0, 4);
        let static_sd = simulate_serving(
            &qwen7b_config(1).with_sd_mode(SdMode::Static {
                strategy: SdStrategy::default(),
                threshold: usize::MAX,
            }),
            &stream,
        );
        let adaptive = simulate_serving(
            &qwen7b_config(1).with_sd_mode(SdMode::Adaptive {
                config: SdManagerConfig::default(),
            }),
            &stream,
        );
        assert!(
            adaptive.e2e.p99_s < static_sd.e2e.p99_s,
            "adaptive p99 {a} should beat always-on SD p99 {s}",
            a = adaptive.e2e.p99_s,
            s = static_sd.e2e.p99_s
        );
        assert!(adaptive.mean_sd_fraction() < 1.0);
    }

    #[test]
    fn balancers_spread_load_and_jsq_beats_unlucky_round_robin_tail() {
        let stream = arrivals(8.0, 25.0, 5);
        for policy in BalancerPolicy::all() {
            let report = simulate_serving(&qwen7b_config(4).with_balancer(policy), &stream);
            assert_eq!(report.completed.len(), stream.len(), "{}", policy.name());
            // Every replica should see some work at this rate.
            for r in &report.replicas {
                assert!(r.completed > 0, "{}: idle replica", policy.name());
            }
        }
    }

    #[test]
    fn empty_arrival_stream_yields_empty_report() {
        let report = simulate_serving(&qwen7b_config(2), &[]);
        assert!(report.completed.is_empty());
        assert_eq!(report.makespan_s, 0.0);
    }

    #[test]
    fn routing_trace_covers_every_arrival_exactly_once() {
        let stream = arrivals(6.0, 15.0, 6);
        let (report, trace) = simulate_serving_traced(&qwen7b_config(3), &stream);
        assert_eq!(trace.len(), stream.len());
        for (i, (id, replica)) in trace.iter().enumerate() {
            assert_eq!(*id, stream[i].id);
            assert!(*replica < 3);
        }
        assert_eq!(report.completed.len(), stream.len());
    }

    #[test]
    fn crashing_a_replica_mid_run_fails_over_without_loss_or_duplication() {
        let config = qwen7b_config(3);
        let stream = arrivals(8.0, 12.0, 7);
        let mut sim = ServeSim::new(&config);
        let crash_at = 5.0;
        let mut crashed = false;
        for arrival in &stream {
            let t = arrival.time_s();
            if !crashed && t >= crash_at {
                sim.advance_before(crash_at);
                let drained = sim.crash_replica(1);
                assert!(drained > 0, "crash mid-run should drain live requests");
                crashed = true;
            }
            sim.advance_before(t);
            sim.offer(ServeRequest::from_arrival(arrival));
        }
        sim.run_until_drained();
        assert!(crashed);
        assert!(sim.requeued() > 0);
        assert_eq!(sim.orphaned(), 0, "survivors absorb every failover");
        assert!(!sim.replicas()[1].is_up());
        let report = sim.into_report();
        let mut ids: Vec<u64> = report.completed.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len(),
            stream.len(),
            "every request completes exactly once"
        );
    }

    #[test]
    fn single_replica_crash_orphans_then_restart_recovers() {
        let config = qwen7b_config(1);
        let stream = arrivals(4.0, 4.0, 8);
        let mut sim = ServeSim::new(&config);
        for arrival in &stream {
            sim.advance_before(arrival.time_s());
            sim.offer(ServeRequest::from_arrival(arrival));
        }
        sim.advance_before(4.5);
        let drained = sim.crash_replica(0);
        assert!(drained > 0);
        assert_eq!(sim.orphaned(), drained, "no survivor: requests parked");
        assert_eq!(
            sim.next_event_s(),
            f64::MAX,
            "down replica schedules nothing"
        );
        sim.restart_replica(0);
        assert_eq!(sim.orphaned(), 0);
        sim.run_until_drained();
        let report = sim.into_report();
        assert_eq!(report.completed.len(), stream.len());
    }

    #[test]
    fn slow_replica_receives_less_jsq_traffic() {
        let config = qwen7b_config(2);
        let stream = arrivals(8.0, 20.0, 9);
        let mut sim = ServeSim::new(&config);
        sim.set_slow_factor(1, 4.0);
        for arrival in &stream {
            sim.advance_before(arrival.time_s());
            sim.offer(ServeRequest::from_arrival(arrival));
        }
        sim.run_until_drained();
        let report = sim.into_report();
        assert_eq!(report.completed.len(), stream.len());
        assert!(
            report.replicas[0].completed > report.replicas[1].completed,
            "JSQ should shift load off the straggler: {} vs {}",
            report.replicas[0].completed,
            report.replicas[1].completed
        );
    }
}
