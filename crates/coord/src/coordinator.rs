//! Centralized worker coordinator.
//!
//! The coordinator tracks every worker's state, promotes idle workers to drafter
//! training once the idle count crosses a threshold (leader-election pattern: the
//! first eligible worker sets up the session, later idle workers join), and halts
//! training immediately when rollout completes or new rollout work arrives.

use crate::bus::{CoordinatorCommand, MessageBus};
use crate::worker::{WorkerEvent, WorkerState};
use serde::{Deserialize, Serialize};

/// Coordinator policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoordinatorConfig {
    /// Minimum number of idle workers before a training session is launched
    /// (the paper launches opportunistically once idle workers exceed a threshold).
    pub min_idle_for_training: usize,
    /// Whether spot training is enabled at all (disabled for the VeRL-like baseline).
    pub spot_training_enabled: bool,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            min_idle_for_training: 1,
            spot_training_enabled: true,
        }
    }
}

/// A drafter-training session spanning one or more workers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingSession {
    /// Worker elected as the session leader (sets up the session).
    pub leader: usize,
    /// All participating workers (leader included).
    pub members: Vec<usize>,
    /// Simulated time the session started.
    pub started_at_s: f64,
}

/// Aggregate statistics of coordinator activity.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CoordinatorStats {
    /// Number of training sessions launched.
    pub sessions_started: u64,
    /// Number of sessions preempted by rollout work.
    pub sessions_preempted: u64,
    /// Number of workers promoted to training over the run.
    pub workers_promoted: u64,
    /// Number of workers that left a session early (failure or rollout work),
    /// without the whole session being preempted.
    pub members_departed: u64,
    /// Total state-transition events processed.
    pub events_processed: u64,
    /// Worker-failure events processed.
    pub workers_failed: u64,
    /// Times the training leader died and a surviving member was re-elected.
    pub leader_reelections: u64,
    /// Sessions dissolved because their last member failed or left.
    pub sessions_dissolved: u64,
}

/// The centralized coordinator (runs on "rank 0").
#[derive(Debug)]
pub struct Coordinator {
    config: CoordinatorConfig,
    states: Vec<WorkerState>,
    active_requests: Vec<usize>,
    session: Option<TrainingSession>,
    stats: CoordinatorStats,
}

impl Coordinator {
    /// Creates a coordinator for `num_workers` workers, all initially BUSY.
    pub fn new(num_workers: usize, config: CoordinatorConfig) -> Self {
        Coordinator {
            config,
            states: vec![WorkerState::Busy; num_workers],
            active_requests: vec![0; num_workers],
            session: None,
            stats: CoordinatorStats::default(),
        }
    }

    /// Number of managed workers.
    pub fn num_workers(&self) -> usize {
        self.states.len()
    }

    /// Current state of a worker.
    pub fn worker_state(&self, worker: usize) -> WorkerState {
        self.states[worker]
    }

    /// Workers currently in the given state.
    pub fn workers_in_state(&self, state: WorkerState) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| (s == state).then_some(i))
            .collect()
    }

    /// The active training session, if any.
    pub fn training_session(&self) -> Option<&TrainingSession> {
        self.session.as_ref()
    }

    /// Coordinator statistics.
    pub fn stats(&self) -> CoordinatorStats {
        self.stats
    }

    /// Processes a single worker event and returns the commands the coordinator
    /// decides to issue (they are also applied to the internal state).
    pub fn handle_event(
        &mut self,
        event: WorkerEvent,
        now_s: f64,
    ) -> Vec<(usize, CoordinatorCommand)> {
        self.stats.events_processed += 1;
        match event {
            WorkerEvent::ActiveRequests { worker, running } => {
                if worker < self.active_requests.len() {
                    self.active_requests[worker] = running;
                }
                Vec::new()
            }
            WorkerEvent::StateChanged {
                worker,
                state,
                at: _,
            } => {
                if worker >= self.states.len() {
                    return Vec::new();
                }
                let prev = self.states[worker];
                if !prev.can_transition_to(state) {
                    // Protocol violation: ignore but keep serving (robustness).
                    return Vec::new();
                }
                self.states[worker] = state;
                match state {
                    WorkerState::Idle => {
                        if prev == WorkerState::Training {
                            // A worker that stopped training (finished or locally
                            // preempted) leaves the session and sits out until the
                            // next promotion sweep — instantly re-promoting the
                            // worker that just told us it stopped would be churn.
                            self.remove_from_session(worker)
                        } else {
                            self.maybe_start_or_join_training(worker, now_s)
                        }
                    }
                    WorkerState::Busy => {
                        // A training member that picked up rollout work leaves its
                        // session (hard preemption of one member): the membership
                        // must not dangle, and a dead leader's seat is re-elected.
                        if prev == WorkerState::Training {
                            self.remove_from_session(worker)
                        } else {
                            Vec::new()
                        }
                    }
                    WorkerState::Training => {
                        // A promoted worker acking StartTraining is idempotent
                        // (it is already a member). An uninvited training report
                        // joins the active session if one exists; with no active
                        // session it is rejected — a worker cannot spot-train
                        // outside a coordinated session, so membership always
                        // covers every TRAINING worker.
                        match self.session.as_mut() {
                            Some(session) => {
                                if !session.members.contains(&worker) {
                                    session.members.push(worker);
                                    self.stats.workers_promoted += 1;
                                }
                            }
                            None => self.states[worker] = prev,
                        }
                        Vec::new()
                    }
                    WorkerState::Failed => {
                        self.stats.workers_failed += 1;
                        self.active_requests[worker] = 0;
                        self.remove_from_session(worker)
                    }
                }
            }
        }
    }

    /// Removes a worker from the active training session (if it is a member):
    /// the session dissolves when it was the last member, and a new leader —
    /// the lowest-indexed survivor — is elected when the departing worker led
    /// the session. Returns the commands issued (at most one leader promotion).
    fn remove_from_session(&mut self, worker: usize) -> Vec<(usize, CoordinatorCommand)> {
        let mut commands = Vec::new();
        let Some(session) = self.session.as_mut() else {
            return commands;
        };
        let Some(pos) = session.members.iter().position(|&w| w == worker) else {
            return commands;
        };
        session.members.remove(pos);
        self.stats.members_departed += 1;
        if session.members.is_empty() {
            self.session = None;
            self.stats.sessions_dissolved += 1;
        } else if session.leader == worker {
            let new_leader = *session.members.iter().min().expect("non-empty members");
            session.leader = new_leader;
            self.stats.leader_reelections += 1;
            commands.push((
                new_leader,
                CoordinatorCommand::StartTraining { leader: true },
            ));
        }
        commands
    }

    fn maybe_start_or_join_training(
        &mut self,
        _worker: usize,
        now_s: f64,
    ) -> Vec<(usize, CoordinatorCommand)> {
        if !self.config.spot_training_enabled {
            return Vec::new();
        }
        let idle = self.workers_in_state(WorkerState::Idle);
        let mut commands = Vec::new();
        match self.session.as_mut() {
            Some(session) => {
                // Later idle workers join the existing session.
                for &w in &idle {
                    if !session.members.contains(&w) {
                        session.members.push(w);
                        self.states[w] = WorkerState::Training;
                        self.stats.workers_promoted += 1;
                        commands.push((w, CoordinatorCommand::StartTraining { leader: false }));
                    }
                }
            }
            None => {
                if idle.len() >= self.config.min_idle_for_training {
                    // Leader election: the first eligible (lowest-index) idle worker
                    // sets up the session; the rest join it.
                    let leader = *idle.first().expect("non-empty idle set");
                    let mut members = Vec::new();
                    for (i, &w) in idle.iter().enumerate() {
                        self.states[w] = WorkerState::Training;
                        self.stats.workers_promoted += 1;
                        members.push(w);
                        commands.push((w, CoordinatorCommand::StartTraining { leader: i == 0 }));
                    }
                    self.session = Some(TrainingSession {
                        leader,
                        members,
                        started_at_s: now_s,
                    });
                    self.stats.sessions_started += 1;
                }
            }
        }
        commands
    }

    /// Called when the rollout stage completes (or new rollout work arrives): any
    /// ongoing training is halted gracefully and every *live* worker is returned
    /// to BUSY for the next stage — failed workers stay failed (a preemption must
    /// not resurrect a crashed worker) and receive no rollout command. Returns
    /// the issued commands.
    pub fn preempt_for_rollout(&mut self) -> Vec<(usize, CoordinatorCommand)> {
        let mut commands = Vec::new();
        if let Some(session) = self.session.take() {
            self.stats.sessions_preempted += 1;
            for &w in &session.members {
                commands.push((w, CoordinatorCommand::PreemptTraining));
            }
        }
        for (w, state) in self.states.iter_mut().enumerate() {
            if *state == WorkerState::Failed {
                continue;
            }
            *state = WorkerState::Busy;
            commands.push((w, CoordinatorCommand::StartRollout));
        }
        commands
    }

    /// Drains events from a [`MessageBus`], handles them, and pushes the resulting
    /// commands back onto the bus. Returns the number of events processed.
    pub fn pump(&mut self, bus: &MessageBus, now_s: f64) -> usize {
        let events = bus.drain_events();
        let count = events.len();
        for event in events {
            for (worker, command) in self.handle_event(event, now_s) {
                bus.send_command(worker, command);
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle_event(worker: usize, at: f64) -> WorkerEvent {
        WorkerEvent::StateChanged {
            worker,
            state: WorkerState::Idle,
            at,
        }
    }

    #[test]
    fn first_idle_worker_becomes_leader() {
        let mut coord = Coordinator::new(4, CoordinatorConfig::default());
        let commands = coord.handle_event(idle_event(2, 10.0), 10.0);
        assert_eq!(
            commands,
            vec![(2, CoordinatorCommand::StartTraining { leader: true })]
        );
        let session = coord.training_session().expect("session started");
        assert_eq!(session.leader, 2);
        assert_eq!(coord.worker_state(2), WorkerState::Training);
        assert_eq!(coord.stats().sessions_started, 1);
    }

    #[test]
    fn later_idle_workers_join_existing_session() {
        let mut coord = Coordinator::new(4, CoordinatorConfig::default());
        coord.handle_event(idle_event(0, 1.0), 1.0);
        let commands = coord.handle_event(idle_event(3, 2.0), 2.0);
        assert_eq!(
            commands,
            vec![(3, CoordinatorCommand::StartTraining { leader: false })]
        );
        assert_eq!(coord.training_session().unwrap().members, vec![0, 3]);
        assert_eq!(coord.stats().workers_promoted, 2);
    }

    #[test]
    fn threshold_delays_training_start() {
        let config = CoordinatorConfig {
            min_idle_for_training: 3,
            ..CoordinatorConfig::default()
        };
        let mut coord = Coordinator::new(4, config);
        assert!(coord.handle_event(idle_event(0, 0.0), 0.0).is_empty());
        assert!(coord.handle_event(idle_event(1, 1.0), 1.0).is_empty());
        let commands = coord.handle_event(idle_event(2, 2.0), 2.0);
        assert_eq!(
            commands.len(),
            3,
            "all three idle workers promoted together"
        );
    }

    #[test]
    fn disabled_spot_training_never_promotes() {
        let config = CoordinatorConfig {
            spot_training_enabled: false,
            ..CoordinatorConfig::default()
        };
        let mut coord = Coordinator::new(2, config);
        assert!(coord.handle_event(idle_event(0, 0.0), 0.0).is_empty());
        assert!(coord.training_session().is_none());
    }

    #[test]
    fn preemption_halts_training_and_restores_busy() {
        let mut coord = Coordinator::new(3, CoordinatorConfig::default());
        coord.handle_event(idle_event(0, 0.0), 0.0);
        coord.handle_event(idle_event(1, 1.0), 1.0);
        let commands = coord.preempt_for_rollout();
        assert!(commands
            .iter()
            .any(|(_, c)| *c == CoordinatorCommand::PreemptTraining));
        assert!(coord.training_session().is_none());
        for w in 0..3 {
            assert_eq!(coord.worker_state(w), WorkerState::Busy);
        }
        assert_eq!(coord.stats().sessions_preempted, 1);
    }

    #[test]
    fn busy_to_training_violation_is_ignored() {
        let mut coord = Coordinator::new(2, CoordinatorConfig::default());
        let commands = coord.handle_event(
            WorkerEvent::StateChanged {
                worker: 0,
                state: WorkerState::Training,
                at: 0.0,
            },
            0.0,
        );
        assert!(commands.is_empty());
        assert_eq!(coord.worker_state(0), WorkerState::Busy);
    }

    fn failed_event(worker: usize, at: f64) -> WorkerEvent {
        WorkerEvent::StateChanged {
            worker,
            state: WorkerState::Failed,
            at,
        }
    }

    #[test]
    fn leader_failure_reelects_the_lowest_surviving_member() {
        let mut coord = Coordinator::new(4, CoordinatorConfig::default());
        coord.handle_event(idle_event(1, 0.0), 0.0); // leader
        coord.handle_event(idle_event(3, 1.0), 1.0);
        coord.handle_event(idle_event(2, 2.0), 2.0);
        let commands = coord.handle_event(failed_event(1, 3.0), 3.0);
        assert_eq!(
            commands,
            vec![(2, CoordinatorCommand::StartTraining { leader: true })]
        );
        let session = coord.training_session().expect("session survives");
        assert_eq!(session.leader, 2);
        assert_eq!(session.members, vec![3, 2]);
        assert_eq!(coord.worker_state(1), WorkerState::Failed);
        assert_eq!(coord.stats().leader_reelections, 1);
        assert_eq!(coord.stats().workers_failed, 1);
    }

    #[test]
    fn non_leader_failure_just_shrinks_the_session() {
        let mut coord = Coordinator::new(3, CoordinatorConfig::default());
        coord.handle_event(idle_event(0, 0.0), 0.0);
        coord.handle_event(idle_event(2, 1.0), 1.0);
        let commands = coord.handle_event(failed_event(2, 2.0), 2.0);
        assert!(commands.is_empty());
        let session = coord.training_session().expect("session survives");
        assert_eq!(session.leader, 0);
        assert_eq!(session.members, vec![0]);
        assert_eq!(coord.stats().leader_reelections, 0);
    }

    #[test]
    fn last_member_failure_dissolves_the_session() {
        let mut coord = Coordinator::new(2, CoordinatorConfig::default());
        coord.handle_event(idle_event(0, 0.0), 0.0);
        let commands = coord.handle_event(failed_event(0, 1.0), 1.0);
        assert!(commands.is_empty());
        assert!(coord.training_session().is_none());
        assert_eq!(coord.stats().sessions_dissolved, 1);
        // A later idle worker starts a brand-new session.
        coord.handle_event(idle_event(1, 2.0), 2.0);
        assert_eq!(coord.training_session().unwrap().leader, 1);
        assert_eq!(coord.stats().sessions_started, 2);
    }

    #[test]
    fn preemption_does_not_resurrect_failed_workers() {
        let mut coord = Coordinator::new(3, CoordinatorConfig::default());
        coord.handle_event(idle_event(0, 0.0), 0.0);
        coord.handle_event(failed_event(2, 1.0), 1.0);
        let commands = coord.preempt_for_rollout();
        assert_eq!(coord.worker_state(2), WorkerState::Failed, "stays failed");
        assert!(
            !commands.iter().any(|(w, _)| *w == 2),
            "no command to a dead worker"
        );
        assert_eq!(coord.worker_state(0), WorkerState::Busy);
        assert_eq!(coord.worker_state(1), WorkerState::Busy);
    }

    #[test]
    fn training_member_picking_up_rollout_work_leaves_the_session() {
        let mut coord = Coordinator::new(3, CoordinatorConfig::default());
        coord.handle_event(idle_event(0, 0.0), 0.0); // leader
        coord.handle_event(idle_event(1, 1.0), 1.0);
        // Worker 0 (the leader) reports Busy: hard preemption of one member.
        let commands = coord.handle_event(
            WorkerEvent::StateChanged {
                worker: 0,
                state: WorkerState::Busy,
                at: 2.0,
            },
            2.0,
        );
        assert_eq!(
            commands,
            vec![(1, CoordinatorCommand::StartTraining { leader: true })]
        );
        let session = coord.training_session().expect("session survives");
        assert_eq!(session.leader, 1);
        assert_eq!(session.members, vec![1]);
        assert_eq!(coord.stats().members_departed, 1);
    }

    #[test]
    fn failed_worker_restarts_through_idle_and_rejoins_training() {
        let mut coord = Coordinator::new(2, CoordinatorConfig::default());
        coord.handle_event(idle_event(0, 0.0), 0.0);
        coord.handle_event(failed_event(1, 1.0), 1.0);
        // A failed worker cannot be promoted directly...
        assert_eq!(coord.worker_state(1), WorkerState::Failed);
        // ...but after restarting into Idle it joins the running session.
        let commands = coord.handle_event(idle_event(1, 2.0), 2.0);
        assert_eq!(
            commands,
            vec![(1, CoordinatorCommand::StartTraining { leader: false })]
        );
        assert_eq!(coord.training_session().unwrap().members, vec![0, 1]);
    }

    #[test]
    fn pump_routes_commands_through_the_bus() {
        let (bus, endpoints) = MessageBus::new(2);
        let mut coord = Coordinator::new(2, CoordinatorConfig::default());
        bus.inject_event(idle_event(1, 5.0));
        let processed = coord.pump(&bus, 5.0);
        assert_eq!(processed, 1);
        assert_eq!(
            endpoints[1].try_recv_command(),
            Some(CoordinatorCommand::StartTraining { leader: true })
        );
        assert_eq!(endpoints[0].try_recv_command(), None);
    }

    #[test]
    fn active_request_reports_are_tracked() {
        let mut coord = Coordinator::new(2, CoordinatorConfig::default());
        let commands = coord.handle_event(
            WorkerEvent::ActiveRequests {
                worker: 0,
                running: 7,
            },
            0.0,
        );
        assert!(commands.is_empty());
        assert_eq!(coord.stats().events_processed, 1);
    }
}
