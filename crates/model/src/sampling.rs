//! Token sampling utilities shared by the target model, the drafter, and the
//! speculative-verification logic.
//!
//! Speculative decoding requires the *full* next-token distribution of both the
//! draft and target model (not just a sampled token), so the central abstraction is
//! [`probs_from_logits`], which converts a logits row into a temperature-adjusted
//! probability vector; the sampling functions then operate on that vector.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How tokens are drawn from a next-token distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingParams {
    /// Softmax temperature; `0.0` means greedy (argmax) decoding.
    pub temperature: f32,
    /// Optional top-k truncation applied before normalisation (`None` = full vocab).
    pub top_k: Option<usize>,
}

impl SamplingParams {
    /// Greedy decoding.
    pub fn greedy() -> Self {
        SamplingParams {
            temperature: 0.0,
            top_k: None,
        }
    }

    /// Standard RL rollout sampling as used in the paper (temperature 0.9).
    pub fn rollout() -> Self {
        SamplingParams {
            temperature: 0.9,
            top_k: None,
        }
    }

    /// Whether this configuration is greedy.
    pub fn is_greedy(&self) -> bool {
        self.temperature <= f32::EPSILON
    }
}

impl Default for SamplingParams {
    fn default() -> Self {
        SamplingParams::rollout()
    }
}

/// Converts a logits row into a probability vector under the given sampling params.
///
/// For greedy decoding the result is a one-hot vector on the argmax (this is the
/// limit distribution as temperature goes to zero, and makes the speculative
/// accept/reject rule uniform across greedy and sampled decoding).
pub fn probs_from_logits(logits: &[f32], params: SamplingParams) -> Vec<f32> {
    let mut probs = Vec::new();
    probs_from_logits_into(logits, params, &mut probs);
    probs
}

/// [`probs_from_logits`] into a caller-owned buffer, reusing its capacity.
///
/// Generation loops hold one buffer per sequence and call this every step, so
/// steady-state sampling performs no heap allocation.
pub fn probs_from_logits_into(logits: &[f32], params: SamplingParams, out: &mut Vec<f32>) {
    assert!(!logits.is_empty(), "empty logits row");
    out.clear();
    if params.is_greedy() {
        out.resize(logits.len(), 0.0);
        out[argmax(logits)] = 1.0;
        return;
    }
    out.extend(logits.iter().map(|v| v / params.temperature));
    if let Some(k) = params.top_k {
        apply_top_k(out, k);
    }
    crate::ops::softmax_in_place(out);
}

/// Index of the maximum element (first occurrence wins ties).
pub fn argmax(values: &[f32]) -> usize {
    let mut best = 0;
    let mut best_val = f32::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        if v > best_val {
            best_val = v;
            best = i;
        }
    }
    best
}

/// Returns the indices of the `k` largest values, in descending value order.
pub fn top_k_indices(values: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(k);
    idx
}

fn apply_top_k(scaled_logits: &mut [f32], k: usize) {
    if k == 0 || k >= scaled_logits.len() {
        return;
    }
    let keep = top_k_indices(scaled_logits, k);
    let mut mask = vec![false; scaled_logits.len()];
    for i in keep {
        mask[i] = true;
    }
    for (i, v) in scaled_logits.iter_mut().enumerate() {
        if !mask[i] {
            *v = f32::NEG_INFINITY;
        }
    }
}

/// Samples an index from a (not necessarily normalised) probability vector.
///
/// # Panics
///
/// Panics if the vector is empty or sums to zero.
pub fn sample_from_probs<R: Rng>(probs: &[f32], rng: &mut R) -> usize {
    assert!(!probs.is_empty(), "empty probability vector");
    let total: f32 = probs.iter().sum();
    assert!(total > 0.0, "probability vector sums to zero");
    let mut threshold = rng.gen_range(0.0..total);
    for (i, &p) in probs.iter().enumerate() {
        if p <= 0.0 {
            continue;
        }
        if threshold < p {
            return i;
        }
        threshold -= p;
    }
    // Floating-point round-off: fall back to the last positive entry.
    probs
        .iter()
        .rposition(|&p| p > 0.0)
        .expect("at least one positive probability")
}

/// Samples a token from a logits row under `params`.
pub fn sample_token<R: Rng>(logits: &[f32], params: SamplingParams, rng: &mut R) -> u32 {
    if params.is_greedy() {
        return argmax(logits) as u32;
    }
    let probs = probs_from_logits(logits, params);
    sample_from_probs(&probs, rng) as u32
}

/// Normalises the positive part of `residual` and samples from it.
///
/// This implements the *residual distribution* sampling step of lossless
/// speculative decoding: when a drafted token is rejected, the replacement token is
/// drawn from `max(0, p_target - p_draft)` renormalised.
pub fn sample_from_residual<R: Rng>(target: &[f32], draft: &[f32], rng: &mut R) -> usize {
    assert_eq!(target.len(), draft.len(), "distribution length mismatch");
    let residual: Vec<f32> = target
        .iter()
        .zip(draft.iter())
        .map(|(&t, &d)| (t - d).max(0.0))
        .collect();
    let total: f32 = residual.iter().sum();
    if total <= f32::EPSILON {
        // Distributions are (numerically) identical; fall back to the target.
        return sample_from_probs(target, rng);
    }
    sample_from_probs(&residual, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn greedy_params_give_one_hot() {
        let logits = [0.1, 3.0, -1.0];
        let probs = probs_from_logits(&logits, SamplingParams::greedy());
        assert_eq!(probs, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn temperature_sharpens_distribution() {
        let logits = [1.0, 2.0, 3.0];
        let cold = probs_from_logits(
            &logits,
            SamplingParams {
                temperature: 0.25,
                top_k: None,
            },
        );
        let warm = probs_from_logits(
            &logits,
            SamplingParams {
                temperature: 2.0,
                top_k: None,
            },
        );
        assert!(cold[2] > warm[2]);
        assert!((cold.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!((warm.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn top_k_masks_low_probability_tokens() {
        let logits = [5.0, 4.0, 1.0, 0.0];
        let probs = probs_from_logits(
            &logits,
            SamplingParams {
                temperature: 1.0,
                top_k: Some(2),
            },
        );
        assert_eq!(probs[2], 0.0);
        assert_eq!(probs[3], 0.0);
        assert!(probs[0] > probs[1]);
    }

    #[test]
    fn sample_from_probs_respects_distribution() {
        let mut rng = StdRng::seed_from_u64(0);
        let probs = [0.0f32, 0.9, 0.1];
        let mut counts = [0usize; 3];
        for _ in 0..2000 {
            counts[sample_from_probs(&probs, &mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > counts[2]);
        let freq1 = counts[1] as f64 / 2000.0;
        assert!((freq1 - 0.9).abs() < 0.05);
    }

    #[test]
    fn sample_token_greedy_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        let logits = [0.5, -0.2, 4.0, 1.0];
        for _ in 0..10 {
            assert_eq!(sample_token(&logits, SamplingParams::greedy(), &mut rng), 2);
        }
    }

    #[test]
    fn residual_sampling_never_picks_overrepresented_tokens() {
        let mut rng = StdRng::seed_from_u64(2);
        // Draft puts too much mass on index 0; residual must exclude it.
        let target = [0.3f32, 0.4, 0.3];
        let draft = [0.8f32, 0.1, 0.1];
        for _ in 0..500 {
            let idx = sample_from_residual(&target, &draft, &mut rng);
            assert_ne!(idx, 0);
        }
    }

    #[test]
    fn residual_sampling_identical_distributions_falls_back_to_target() {
        let mut rng = StdRng::seed_from_u64(3);
        let target = [0.25f32, 0.25, 0.5];
        let idx = sample_from_residual(&target, &target, &mut rng);
        assert!(idx < 3);
    }

    #[test]
    fn top_k_indices_sorted_descending() {
        let values = [0.1f32, 5.0, 3.0, 4.0];
        assert_eq!(top_k_indices(&values, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&values, 10).len(), 4);
    }
}
