//! Offline shim for the subset of `criterion` 0.5 used by this workspace.
//!
//! The shim compiles benches exactly like the real harness (`harness = false`
//! targets calling `criterion_group!` / `criterion_main!`) and, when run,
//! executes each benchmark closure a small fixed number of iterations and
//! prints mean wall-clock time — indicative numbers, not a statistics engine.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (re-export of `std::hint`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing helper handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    iterations: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iterations: 3 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iterations: self.iterations,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let iterations = self.iterations;
        run_one("", id, iterations, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    iterations: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim keeps its fixed iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim does not budget wall-clock time.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&self.name, &id.to_string(), self.iterations, f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.to_string(), self.iterations, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, iterations: u64, mut f: F) {
    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mean = bencher
        .elapsed
        .checked_div(iterations.max(1) as u32)
        .unwrap_or_default();
    println!("bench {label:<52} {mean:>12.2?}/iter ({iterations} iters)");
}

/// Declares a group of benchmark functions, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
