//! Model-free n-gram drafter (§5.3).
//!
//! Rollout responses generated for the same prompt share heavy token-level structure
//! (repeated math notation, code syntax, self-reflection phrases). The model-free
//! drafter exploits this by building an n-gram continuation table from the responses
//! already generated for a prompt group and proposing the most frequent continuation
//! of the current context. It needs no training, so it serves as the fallback
//! drafter during the first RL steps (before the learned drafter has warmed up) and
//! as the drafter of the TLT-Base baseline.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tlt_model::TokenId;

/// Configuration of the n-gram drafter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NgramConfig {
    /// Context length used as the lookup key.
    pub context_len: usize,
    /// Maximum number of tokens proposed per draft call.
    pub max_draft_len: usize,
}

impl Default for NgramConfig {
    fn default() -> Self {
        NgramConfig {
            context_len: 3,
            max_draft_len: 8,
        }
    }
}

/// Retrieval-based drafter over previously observed token sequences.
#[derive(Debug, Clone)]
pub struct NgramDrafter {
    config: NgramConfig,
    /// Maps a context window to observed next tokens and their counts.
    table: HashMap<Vec<TokenId>, HashMap<TokenId, u32>>,
    observed_tokens: usize,
}

impl NgramDrafter {
    /// Creates an empty drafter.
    pub fn new(config: NgramConfig) -> Self {
        NgramDrafter {
            config,
            table: HashMap::new(),
            observed_tokens: 0,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> NgramConfig {
        self.config
    }

    /// Total tokens ingested into the table.
    pub fn observed_tokens(&self) -> usize {
        self.observed_tokens
    }

    /// Number of distinct contexts stored.
    pub fn num_contexts(&self) -> usize {
        self.table.len()
    }

    /// Ingests a full sequence (prompt + response) into the retrieval table.
    pub fn observe(&mut self, tokens: &[TokenId]) {
        let k = self.config.context_len;
        if tokens.len() <= k {
            return;
        }
        self.observed_tokens += tokens.len();
        for window in tokens.windows(k + 1) {
            let context = window[..k].to_vec();
            let next = window[k];
            *self
                .table
                .entry(context)
                .or_default()
                .entry(next)
                .or_insert(0) += 1;
        }
    }

    /// Most frequent observed continuation of `context`, if any.
    pub fn predict_next(&self, context: &[TokenId]) -> Option<TokenId> {
        let k = self.config.context_len;
        if context.len() < k {
            return None;
        }
        let key = &context[context.len() - k..];
        self.table.get(key).and_then(|nexts| {
            nexts
                .iter()
                .max_by_key(|(token, count)| (**count, std::cmp::Reverse(**token)))
                .map(|(&token, _)| token)
        })
    }

    /// Drafts up to `max_draft_len` tokens by repeatedly extending the context with
    /// its most frequent continuation. Stops at the first unseen context.
    pub fn draft(&self, context: &[TokenId]) -> Vec<TokenId> {
        let mut drafted = Vec::new();
        let mut extended: Vec<TokenId> = context.to_vec();
        for _ in 0..self.config.max_draft_len {
            match self.predict_next(&extended) {
                Some(next) => {
                    drafted.push(next);
                    extended.push(next);
                }
                None => break,
            }
        }
        drafted
    }

    /// Clears the retrieval table (called when moving to a new prompt group).
    pub fn clear(&mut self) {
        self.table.clear();
        self.observed_tokens = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_patterns_are_learned() {
        let mut drafter = NgramDrafter::new(NgramConfig::default());
        // A "response" with a strongly repetitive pattern.
        let seq: Vec<TokenId> = (0..10).cycle().take(100).collect();
        drafter.observe(&seq);
        assert!(drafter.num_contexts() > 0);
        let drafted = drafter.draft(&[5, 6, 7]);
        assert_eq!(drafted[..3], [8, 9, 0]);
    }

    #[test]
    fn unseen_context_returns_empty_draft() {
        let mut drafter = NgramDrafter::new(NgramConfig::default());
        drafter.observe(&[1, 2, 3, 4, 5]);
        assert!(drafter.draft(&[9, 9, 9]).is_empty());
        assert!(
            drafter.predict_next(&[1]).is_none(),
            "short context rejected"
        );
    }

    #[test]
    fn most_frequent_continuation_wins() {
        let mut drafter = NgramDrafter::new(NgramConfig {
            context_len: 2,
            max_draft_len: 4,
        });
        drafter.observe(&[1, 2, 3]);
        drafter.observe(&[1, 2, 3]);
        drafter.observe(&[1, 2, 7]);
        assert_eq!(drafter.predict_next(&[1, 2]), Some(3));
    }

    #[test]
    fn draft_length_bounded_by_config() {
        let mut drafter = NgramDrafter::new(NgramConfig {
            context_len: 1,
            max_draft_len: 3,
        });
        drafter.observe(&(0..50).map(|i| i % 4).collect::<Vec<_>>());
        assert!(drafter.draft(&[2]).len() <= 3);
    }

    #[test]
    fn clear_resets_state() {
        let mut drafter = NgramDrafter::new(NgramConfig::default());
        drafter.observe(&[1, 2, 3, 4, 5, 6]);
        drafter.clear();
        assert_eq!(drafter.num_contexts(), 0);
        assert_eq!(drafter.observed_tokens(), 0);
    }
}
