//! In-process message bus standing in for the ZeroMQ transport.
//!
//! Workers talk to the coordinator through asynchronous request/reply pairs: each
//! worker owns a [`WorkerEndpoint`] (send events, receive commands) and the
//! coordinator owns the [`MessageBus`] (receive events from any worker, send commands
//! to a specific worker). Channels are unbounded crossbeam channels, matching the
//! asynchronous, non-blocking pattern described in §4.2.

use crate::worker::WorkerEvent;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use serde::{Deserialize, Serialize};

/// Command sent from the coordinator to a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoordinatorCommand {
    /// Begin drafter spot-training; the flag says whether this worker is the
    /// session leader (sets up the training session others join).
    StartTraining {
        /// Whether this worker sets up the session (leader election winner).
        leader: bool,
    },
    /// Preempt any ongoing drafter training and release the GPUs for rollout.
    PreemptTraining,
    /// Begin serving rollout for a new RL step.
    StartRollout,
    /// Graceful shutdown at the end of training.
    Shutdown,
}

/// Worker-side endpoint: sends events to the coordinator, receives commands.
#[derive(Debug)]
pub struct WorkerEndpoint {
    /// Worker index this endpoint belongs to.
    pub worker: usize,
    event_tx: Sender<WorkerEvent>,
    command_rx: Receiver<CoordinatorCommand>,
}

impl WorkerEndpoint {
    /// Sends an event to the coordinator (never blocks).
    pub fn send_event(&self, event: WorkerEvent) {
        // The coordinator outliving its workers is a protocol error we surface loudly.
        self.event_tx.send(event).expect("coordinator bus closed");
    }

    /// Receives the next pending command, if any.
    pub fn try_recv_command(&self) -> Option<CoordinatorCommand> {
        match self.command_rx.try_recv() {
            Ok(cmd) => Some(cmd),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Blocks until a command arrives (used by worker threads in tests).
    pub fn recv_command(&self) -> Option<CoordinatorCommand> {
        self.command_rx.recv().ok()
    }
}

/// Coordinator-side bus.
#[derive(Debug)]
pub struct MessageBus {
    event_tx: Sender<WorkerEvent>,
    event_rx: Receiver<WorkerEvent>,
    command_txs: Vec<Sender<CoordinatorCommand>>,
}

impl MessageBus {
    /// Creates a bus for `num_workers` workers, returning the bus and one endpoint
    /// per worker.
    pub fn new(num_workers: usize) -> (MessageBus, Vec<WorkerEndpoint>) {
        let (event_tx, event_rx) = unbounded();
        let mut command_txs = Vec::with_capacity(num_workers);
        let mut endpoints = Vec::with_capacity(num_workers);
        for worker in 0..num_workers {
            let (cmd_tx, cmd_rx) = unbounded();
            command_txs.push(cmd_tx);
            endpoints.push(WorkerEndpoint {
                worker,
                event_tx: event_tx.clone(),
                command_rx: cmd_rx,
            });
        }
        (
            MessageBus {
                event_tx,
                event_rx,
                command_txs,
            },
            endpoints,
        )
    }

    /// Number of workers attached to the bus.
    pub fn num_workers(&self) -> usize {
        self.command_txs.len()
    }

    /// Injects an event as if a worker had sent it (used by simulations that do not
    /// run worker threads).
    pub fn inject_event(&self, event: WorkerEvent) {
        self.event_tx.send(event).expect("bus closed");
    }

    /// Drains all pending worker events.
    pub fn drain_events(&self) -> Vec<WorkerEvent> {
        let mut events = Vec::new();
        while let Ok(e) = self.event_rx.try_recv() {
            events.push(e);
        }
        events
    }

    /// Sends a command to one worker.
    ///
    /// # Panics
    ///
    /// Panics if the worker index is out of range.
    pub fn send_command(&self, worker: usize, command: CoordinatorCommand) {
        self.command_txs[worker]
            .send(command)
            .expect("worker endpoint dropped");
    }

    /// Broadcasts a command to every worker.
    pub fn broadcast(&self, command: CoordinatorCommand) {
        for tx in &self.command_txs {
            let _ = tx.send(command);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::WorkerState;

    #[test]
    fn events_flow_from_workers_to_coordinator() {
        let (bus, endpoints) = MessageBus::new(3);
        endpoints[1].send_event(WorkerEvent::StateChanged {
            worker: 1,
            state: WorkerState::Idle,
            at: 12.5,
        });
        endpoints[2].send_event(WorkerEvent::ActiveRequests {
            worker: 2,
            running: 4,
        });
        let events = bus.drain_events();
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn commands_are_routed_to_the_right_worker() {
        let (bus, endpoints) = MessageBus::new(2);
        bus.send_command(0, CoordinatorCommand::StartTraining { leader: true });
        assert_eq!(
            endpoints[0].try_recv_command(),
            Some(CoordinatorCommand::StartTraining { leader: true })
        );
        assert_eq!(endpoints[1].try_recv_command(), None);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let (bus, endpoints) = MessageBus::new(4);
        bus.broadcast(CoordinatorCommand::PreemptTraining);
        for ep in &endpoints {
            assert_eq!(
                ep.try_recv_command(),
                Some(CoordinatorCommand::PreemptTraining)
            );
        }
    }

    #[test]
    fn concurrent_worker_threads_can_report() {
        let (bus, endpoints) = MessageBus::new(8);
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|ep| {
                std::thread::spawn(move || {
                    ep.send_event(WorkerEvent::StateChanged {
                        worker: ep.worker,
                        state: WorkerState::Idle,
                        at: 0.0,
                    });
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker thread");
        }
        assert_eq!(bus.drain_events().len(), 8);
    }
}
