//! Benchmarks regenerating the SD hyperparameter sweeps: Figure 13 (draft depth x
//! tokens-to-verify), Table 1 (topK) and Table 4 (batch size x tokens-to-verify).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tlt_bench::setups::{adaptive_acceptance, eagle_drafter_of, qwen32b_h100_tp4};
use tlt_rollout::{fixed_batch_speedup, SdStrategy};

fn bench_depth_sweep(c: &mut Criterion) {
    let cost = qwen32b_h100_tp4();
    let drafter = eagle_drafter_of(&cost);
    let acceptance = adaptive_acceptance();
    let mut group = c.benchmark_group("fig13_depth_sweep");
    group.sample_size(10);
    for depth in [4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let strategy = SdStrategy {
                    draft_depth: depth,
                    top_k: 8,
                    tokens_to_verify: 64,
                };
                fixed_batch_speedup(&cost, &drafter, &acceptance, 1, strategy, 4096)
            })
        });
    }
    group.finish();
}

fn bench_batch_sweep(c: &mut Criterion) {
    let cost = qwen32b_h100_tp4();
    let drafter = eagle_drafter_of(&cost);
    let acceptance = adaptive_acceptance();
    let mut group = c.benchmark_group("table4_batch_sweep");
    group.sample_size(10);
    for batch in [1usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                let strategy = SdStrategy {
                    draft_depth: 10,
                    top_k: 8,
                    tokens_to_verify: 48,
                };
                fixed_batch_speedup(&cost, &drafter, &acceptance, batch, strategy, 4096)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_depth_sweep, bench_batch_sweep);
criterion_main!(benches);
