//! Minimal dense matrix type used by the tiny-transformer substrate.
//!
//! The TLT reproduction intentionally avoids external linear-algebra crates: the
//! models involved are small (hidden sizes of a few dozen to a few hundred), so a
//! straightforward row-major `Vec<f32>` matrix with cache-friendly loops is both
//! sufficient and easy to audit.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major `rows x cols` matrix of `f32`.
///
/// # Examples
///
/// ```
/// use tlt_model::tensor::Mat;
///
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Mat::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.get(1, 0), 3.0);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mat({}x{})", self.rows, self.cols)
    }
}

impl Mat {
    /// Creates a zero-filled matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows.checked_mul(cols).expect("matrix size overflow");
        Mat {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        let mut m = Mat::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates an identity matrix of size `n x n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Mat { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        if rows.is_empty() {
            return Mat::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "inconsistent row length");
            data.extend_from_slice(r);
        }
        Mat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix with entries drawn uniformly from `[-scale, scale]`.
    pub fn random_uniform<R: rand::Rng>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.gen_range(-scale..=scale);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the `(rows, cols)` shape tuple.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Returns element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies `src` into row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != self.cols()`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols, "row length mismatch");
        self.row_mut(r).copy_from_slice(src);
    }

    /// Returns a new matrix holding rows `start..end`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Mat {
        assert!(start <= end && end <= self.rows, "row slice out of range");
        Mat {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Stacks matrices vertically (all must share the same column count).
    pub fn vstack(parts: &[&Mat]) -> Mat {
        if parts.is_empty() {
            return Mat::zeros(0, 0);
        }
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&p.data);
        }
        Mat { rows, cols, data }
    }

    /// Concatenates matrices horizontally (all must share the same row count).
    pub fn hconcat(parts: &[&Mat]) -> Mat {
        if parts.is_empty() {
            return Mat::zeros(0, 0);
        }
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Mat::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "hconcat row mismatch");
                out.row_mut(r)[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Mat::zeros(self.rows, other.cols);
        // i-k-j loop order: stream through `other` rows for cache friendliness.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self * other^T`.
    pub fn matmul_transposed(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Mat::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Matrix product `self^T * other`.
    pub fn transposed_matmul(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.rows, other.rows,
            "transposed_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Mat::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Returns the transpose of this matrix.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &Mat) -> Mat {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let mut out = self.clone();
        for (o, &b) in out.data.iter_mut().zip(other.data.iter()) {
            *o += b;
        }
        out
    }

    /// In-place element-wise addition.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (o, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *o += b;
        }
    }

    /// In-place `self += alpha * other` (AXPY).
    pub fn add_scaled(&mut self, other: &Mat, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (o, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *o += alpha * b;
        }
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Mat) -> Mat {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let mut out = self.clone();
        for (o, &b) in out.data.iter_mut().zip(other.data.iter()) {
            *o -= b;
        }
        out
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Mat) -> Mat {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let mut out = self.clone();
        for (o, &b) in out.data.iter_mut().zip(other.data.iter()) {
            *o *= b;
        }
        out
    }

    /// Returns `self * scalar`.
    pub fn scale(&self, scalar: f32) -> Mat {
        let mut out = self.clone();
        for v in &mut out.data {
            *v *= scalar;
        }
        out
    }

    /// In-place scalar multiplication.
    pub fn scale_assign(&mut self, scalar: f32) {
        for v in &mut self.data {
            *v *= scalar;
        }
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Sum of absolute values (L1 norm of the flattened matrix).
    pub fn l1_norm(&self) -> f32 {
        self.data.iter().map(|v| v.abs()).sum()
    }

    /// Mean of all elements. Returns `0.0` for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Maximum absolute element. Returns `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |acc, v| acc.max(v.abs()))
    }

    /// Clips every element into `[-limit, limit]`.
    pub fn clip(&mut self, limit: f32) {
        assert!(limit >= 0.0, "clip limit must be non-negative");
        for v in &mut self.data {
            *v = v.clamp(-limit, limit);
        }
    }
}

/// Computes the dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// In-place `a += alpha * b` over slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(a: &mut [f32], b: &[f32], alpha: f32) {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        *x += alpha * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_shape() {
        let m = Mat::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(!m.is_empty());
        assert_eq!(m.get(2, 3), 0.0);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Mat::random_uniform(4, 4, 1.0, &mut rng);
        let i = Mat::eye(4);
        let out = a.matmul(&i);
        assert_eq!(out, a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Mat::random_uniform(3, 5, 1.0, &mut rng);
        let b = Mat::random_uniform(4, 5, 1.0, &mut rng);
        let direct = a.matmul_transposed(&b);
        let explicit = a.matmul(&b.transpose());
        for (x, y) in direct.as_slice().iter().zip(explicit.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transposed_matmul_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Mat::random_uniform(6, 3, 1.0, &mut rng);
        let b = Mat::random_uniform(6, 4, 1.0, &mut rng);
        let direct = a.transposed_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        for (x, y) in direct.as_slice().iter().zip(explicit.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn add_sub_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Mat::random_uniform(2, 3, 1.0, &mut rng);
        let b = Mat::random_uniform(2, 3, 1.0, &mut rng);
        let c = a.add(&b).sub(&b);
        for (x, y) in c.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn hconcat_and_vstack() {
        let a = Mat::from_rows(&[&[1.0], &[2.0]]);
        let b = Mat::from_rows(&[&[3.0], &[4.0]]);
        let h = Mat::hconcat(&[&a, &b]);
        assert_eq!(h.shape(), (2, 2));
        assert_eq!(h.row(0), &[1.0, 3.0]);
        let v = Mat::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (4, 1));
        assert_eq!(v.get(3, 0), 4.0);
    }

    #[test]
    fn slice_rows_returns_expected_block() {
        let m = Mat::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let s = m.slice_rows(1, 3);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[2.0, 2.0]);
    }

    #[test]
    fn norms_and_stats() {
        let m = Mat::from_rows(&[&[3.0, -4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
        assert!((m.l1_norm() - 7.0).abs() < 1e-6);
        assert!((m.mean() + 0.5).abs() < 1e-6);
        assert!((m.max_abs() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn clip_bounds_values() {
        let mut m = Mat::from_rows(&[&[10.0, -10.0, 0.5]]);
        m.clip(1.0);
        assert_eq!(m.row(0), &[1.0, -1.0, 0.5]);
    }

    #[test]
    fn dot_and_axpy() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert!((dot(&a, &b) - 32.0).abs() < 1e-6);
        let mut c = [1.0, 1.0, 1.0];
        axpy(&mut c, &b, 2.0);
        assert_eq!(c, [9.0, 11.0, 13.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(4, 2);
        let _ = a.matmul(&b);
    }
}
