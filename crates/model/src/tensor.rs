//! Minimal dense matrix type used by the tiny-transformer substrate.
//!
//! The TLT reproduction intentionally avoids external linear-algebra crates: the
//! models involved are small (hidden sizes of a few dozen to a few hundred), so a
//! straightforward row-major `Vec<f32>` matrix with cache-friendly loops is both
//! sufficient and easy to audit.

use crate::dispatch::{
    active_col_kernel, active_dot_kernel, active_row_kernel, ColKernel, DotKernel, RowKernel,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Shared-dimension block size used by the k-blocked kernel variants: each pass
/// touches at most this many rows of `B`, keeping the pass's working set
/// cache-resident on long-context shapes. Chaining partial sums across blocks
/// preserves the strictly-increasing-`k` accumulation order, so blocking never
/// changes results.
pub const K_BLOCK: usize = 128;

/// A dense, row-major `rows x cols` matrix of `f32`.
///
/// # Examples
///
/// ```
/// use tlt_model::tensor::Mat;
///
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Mat::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.get(1, 0), 3.0);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mat({}x{})", self.rows, self.cols)
    }
}

impl Mat {
    /// Creates a zero-filled matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows.checked_mul(cols).expect("matrix size overflow");
        Mat {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        let mut m = Mat::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates an identity matrix of size `n x n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Mat { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        if rows.is_empty() {
            return Mat::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "inconsistent row length");
            data.extend_from_slice(r);
        }
        Mat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix with entries drawn uniformly from `[-scale, scale]`.
    pub fn random_uniform<R: rand::Rng>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.gen_range(-scale..=scale);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the `(rows, cols)` shape tuple.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Returns element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies `src` into row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != self.cols()`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols, "row length mismatch");
        self.row_mut(r).copy_from_slice(src);
    }

    /// Returns a new matrix holding rows `start..end`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Mat {
        assert!(start <= end && end <= self.rows, "row slice out of range");
        Mat {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Stacks matrices vertically (all must share the same column count).
    pub fn vstack(parts: &[&Mat]) -> Mat {
        if parts.is_empty() {
            return Mat::zeros(0, 0);
        }
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&p.data);
        }
        Mat { rows, cols, data }
    }

    /// Concatenates matrices horizontally (all must share the same row count).
    pub fn hconcat(parts: &[&Mat]) -> Mat {
        if parts.is_empty() {
            return Mat::zeros(0, 0);
        }
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Mat::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "hconcat row mismatch");
                out.row_mut(r)[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Mat) -> Mat {
        let mut out = Mat::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Register-tiled matrix product `self * other`, written into `out`.
    ///
    /// `out` is fully overwritten. The call is classified by shape
    /// ([`crate::dispatch::ShapeClass`]) and routed to the kernel variant the
    /// active [`crate::dispatch::DispatchTable`] names for that class — one
    /// classification plus one relaxed atomic load, no allocation. Every
    /// variant keeps the shared dimension `k` advancing in strictly increasing
    /// order per output element, so results are bit-identical to the naive
    /// i-k-j loop no matter which variant the table selects. The `rows == 1`
    /// decode shape stays a single allocation-free mat-vec pass.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension or output-shape mismatch.
    pub fn matmul_into(&self, other: &Mat, out: &mut Mat) {
        let kernel = active_row_kernel(self.rows, self.cols, other.cols);
        self.matmul_into_using(other, out, kernel);
    }

    /// [`Mat::matmul_into`] forced onto a specific kernel variant, bypassing
    /// the dispatch table. Used by the autotuner to time candidates and by the
    /// equivalence tests; results are bit-identical across variants.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension or output-shape mismatch.
    pub fn matmul_into_using(&self, other: &Mat, out: &mut Mat, kernel: RowKernel) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.cols),
            "matmul output shape mismatch"
        );
        let n = other.cols;
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            row_product_using(kernel, a_row, &other.data, n, out_row);
        }
    }

    /// Matrix product `self * other^T`.
    pub fn matmul_transposed(&self, other: &Mat) -> Mat {
        let mut out = Mat::zeros(self.rows, other.rows);
        self.matmul_transposed_into(other, &mut out);
        out
    }

    /// Matrix product `self * other^T`, written into `out`.
    ///
    /// Every output element is an independent dot product sharing [`dot`]'s
    /// lane layout and reduction order; the dispatch table only chooses how
    /// many dot products run per pass over the left row, so the `rows == 1`
    /// mat-vec case needs no separate code path and every variant agrees bit
    /// for bit.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension or output-shape mismatch.
    pub fn matmul_transposed_into(&self, other: &Mat, out: &mut Mat) {
        let kernel = active_dot_kernel(self.rows, self.cols, other.rows);
        self.matmul_transposed_into_using(other, out, kernel);
    }

    /// [`Mat::matmul_transposed_into`] forced onto a specific kernel variant,
    /// bypassing the dispatch table.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension or output-shape mismatch.
    pub fn matmul_transposed_into_using(&self, other: &Mat, out: &mut Mat, kernel: DotKernel) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "matmul_transposed output shape mismatch"
        );
        let n = other.rows;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            // Batched dot products amortise the loads of `a_row`; each output
            // is bit-identical to a standalone `dot` call.
            let mut j = 0;
            match kernel {
                DotKernel::Dot8 => {
                    while j + 8 <= n {
                        let d = dot_many::<8>(
                            a_row,
                            [
                                other.row(j),
                                other.row(j + 1),
                                other.row(j + 2),
                                other.row(j + 3),
                                other.row(j + 4),
                                other.row(j + 5),
                                other.row(j + 6),
                                other.row(j + 7),
                            ],
                        );
                        out_row[j..j + 8].copy_from_slice(&d);
                        j += 8;
                    }
                }
                DotKernel::Dot4 => {
                    while j + 4 <= n {
                        let d = dot_many::<4>(
                            a_row,
                            [
                                other.row(j),
                                other.row(j + 1),
                                other.row(j + 2),
                                other.row(j + 3),
                            ],
                        );
                        out_row[j..j + 4].copy_from_slice(&d);
                        j += 4;
                    }
                }
                DotKernel::Dot1 => {}
            }
            for (o, jj) in out_row[j..].iter_mut().zip(j..n) {
                *o = dot(a_row, other.row(jj));
            }
        }
    }

    /// Matrix product `self^T * other`.
    pub fn transposed_matmul(&self, other: &Mat) -> Mat {
        let mut out = Mat::zeros(self.cols, other.cols);
        self.transposed_matmul_into(other, &mut out);
        out
    }

    /// Register-tiled matrix product `self^T * other`, written into `out`.
    ///
    /// `out` is fully overwritten; the dispatch table picks the variant but
    /// per-element accumulation always stays in increasing-`k` order (`k`
    /// indexes the shared row dimension), matching the naive loop bit for bit.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension or output-shape mismatch.
    pub fn transposed_matmul_into(&self, other: &Mat, out: &mut Mat) {
        let kernel = active_col_kernel(self.cols, self.rows, other.cols);
        self.transposed_matmul_into_using(other, out, kernel);
    }

    /// [`Mat::transposed_matmul_into`] forced onto a specific kernel variant,
    /// bypassing the dispatch table.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension or output-shape mismatch.
    pub fn transposed_matmul_into_using(&self, other: &Mat, out: &mut Mat, kernel: ColKernel) {
        assert_eq!(
            self.rows, other.rows,
            "transposed_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "transposed_matmul output shape mismatch"
        );
        let n = other.cols;
        // Output row i weights `other`'s rows by column i of `self`; the strided
        // column gather is the only non-contiguous access and the accumulators
        // stay in registers.
        for i in 0..self.cols {
            let out_row = &mut out.data[i * n..(i + 1) * n];
            col_product_using(
                kernel,
                &self.data,
                self.cols,
                i,
                self.rows,
                &other.data,
                n,
                out_row,
            );
        }
    }

    /// Returns the transpose of this matrix.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Writes `self + other` into `out` (fully overwritten).
    ///
    /// # Panics
    ///
    /// Panics if the three shapes differ.
    pub fn add_into(&self, other: &Mat, out: &mut Mat) {
        assert_eq!(self.shape(), other.shape(), "add_into shape mismatch");
        assert_eq!(self.shape(), out.shape(), "add_into output shape mismatch");
        for ((o, &a), &b) in out
            .data
            .iter_mut()
            .zip(self.data.iter())
            .zip(other.data.iter())
        {
            *o = a + b;
        }
    }

    /// Copies `other` into `self` (shapes must match).
    pub fn copy_from(&mut self, other: &Mat) {
        assert_eq!(self.shape(), other.shape(), "copy_from shape mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Resizes the matrix to `rows x cols`, reusing the existing buffer.
    ///
    /// Contents become unspecified (callers are expected to overwrite them). No
    /// allocation occurs when the buffer capacity already covers the new size —
    /// this is what makes workspace-based decode steps allocation-free.
    pub fn set_rows(&mut self, rows: usize, cols: usize) {
        let len = rows.checked_mul(cols).expect("matrix size overflow");
        self.data.resize(len, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Pre-allocates capacity for `rows x cols` elements without changing the shape.
    pub fn reserve_rows(&mut self, rows: usize, cols: usize) {
        let target = rows.checked_mul(cols).expect("matrix size overflow");
        if target > self.data.capacity() {
            self.data.reserve(target - self.data.len());
        }
    }

    /// Appends rows `start..end` of `other` to this matrix (column counts must
    /// match). Grows the buffer amortised; reserve ahead of time to avoid
    /// reallocation.
    pub fn extend_rows_range(&mut self, other: &Mat, start: usize, end: usize) {
        assert_eq!(self.cols, other.cols, "extend_rows_range column mismatch");
        assert!(start <= end && end <= other.rows, "row range out of bounds");
        self.data
            .extend_from_slice(&other.data[start * other.cols..end * other.cols]);
        self.rows += end - start;
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &Mat) -> Mat {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let mut out = self.clone();
        for (o, &b) in out.data.iter_mut().zip(other.data.iter()) {
            *o += b;
        }
        out
    }

    /// In-place element-wise addition.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (o, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *o += b;
        }
    }

    /// In-place `self += alpha * other` (AXPY).
    pub fn add_scaled(&mut self, other: &Mat, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (o, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *o += alpha * b;
        }
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Mat) -> Mat {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let mut out = self.clone();
        for (o, &b) in out.data.iter_mut().zip(other.data.iter()) {
            *o -= b;
        }
        out
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Mat) -> Mat {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let mut out = self.clone();
        for (o, &b) in out.data.iter_mut().zip(other.data.iter()) {
            *o *= b;
        }
        out
    }

    /// Returns `self * scalar`.
    pub fn scale(&self, scalar: f32) -> Mat {
        let mut out = self.clone();
        for v in &mut out.data {
            *v *= scalar;
        }
        out
    }

    /// In-place scalar multiplication.
    pub fn scale_assign(&mut self, scalar: f32) {
        for v in &mut self.data {
            *v *= scalar;
        }
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Sum of absolute values (L1 norm of the flattened matrix).
    pub fn l1_norm(&self) -> f32 {
        self.data.iter().map(|v| v.abs()).sum()
    }

    /// Mean of all elements. Returns `0.0` for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Maximum absolute element. Returns `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |acc, v| acc.max(v.abs()))
    }

    /// Clips every element into `[-limit, limit]`.
    pub fn clip(&mut self, limit: f32) {
        assert!(limit >= 0.0, "clip limit must be non-negative");
        for v in &mut self.data {
            *v = v.clamp(-limit, limit);
        }
    }
}

/// One fixed-width tile pass of the row-product kernel: accumulates
/// `a_row * B[:, j0..j0+W]` into vector-register partial sums and stores them.
/// With `accumulate` set the pass seeds its registers from `out` (the partial
/// sums of earlier k-blocks) instead of zero, which chains the per-element
/// addition order exactly as if the whole `k` range ran in one pass. The
/// shared dimension `k` advances in strictly increasing order for every
/// element, so neither tile width nor k-blocking changes results.
#[inline]
fn row_product_tile<const W: usize>(
    a_row: &[f32],
    b: &[f32],
    n: usize,
    j0: usize,
    out: &mut [f32],
    accumulate: bool,
) {
    let mut acc = [0.0f32; W];
    if accumulate {
        acc.copy_from_slice(&out[j0..j0 + W]);
    }
    for (k, &a) in a_row.iter().enumerate() {
        let b_seg: &[f32; W] = b[k * n + j0..k * n + j0 + W]
            .try_into()
            .expect("tile width");
        for (acc_c, &b_c) in acc.iter_mut().zip(b_seg.iter()) {
            *acc_c += a * b_c;
        }
    }
    out[j0..j0 + W].copy_from_slice(&acc);
}

/// Same tile pass over a strided column of `a` (the `A^T * B` kernel).
#[allow(clippy::too_many_arguments)]
#[inline]
fn col_product_tile<const W: usize>(
    a: &[f32],
    a_cols: usize,
    i: usize,
    a_rows: usize,
    b: &[f32],
    n: usize,
    j0: usize,
    out: &mut [f32],
    accumulate: bool,
) {
    let mut acc = [0.0f32; W];
    if accumulate {
        acc.copy_from_slice(&out[j0..j0 + W]);
    }
    for k in 0..a_rows {
        let w = a[k * a_cols + i];
        let b_seg: &[f32; W] = b[k * n + j0..k * n + j0 + W]
            .try_into()
            .expect("tile width");
        for (acc_c, &b_c) in acc.iter_mut().zip(b_seg.iter()) {
            *acc_c += w * b_c;
        }
    }
    out[j0..j0 + W].copy_from_slice(&acc);
}

/// One kernel family's fixed-width tile pass plus its variable-width tail,
/// driven by [`run_tile_ladder`]. Implementations capture the operands; the
/// ladder only decides tile boundaries, so every family shares one copy of the
/// width-descent logic.
trait TilePass {
    /// Runs one `W`-wide tile starting at output column `j0`.
    fn tile<const W: usize>(&mut self, j0: usize);
    /// Runs the final sub-16-wide scalar tail starting at `j0`.
    fn tail(&mut self, j0: usize, width: usize);
}

/// Walks an `n`-wide output row in descending register tiles: `max_w`-wide
/// passes while they fit, then each narrower width down to 16, then the scalar
/// tail. `max_w` must be one of 128/64/32/16. Tile boundaries never affect
/// results (per-element accumulation order is tile-independent), so ladders
/// with different `max_w` are interchangeable bit for bit.
fn run_tile_ladder<P: TilePass>(pass: &mut P, n: usize, max_w: usize) {
    debug_assert!(
        matches!(max_w, 16 | 32 | 64 | 128),
        "unsupported tile width"
    );
    let mut j0 = 0;
    if max_w >= 128 {
        while j0 + 128 <= n {
            pass.tile::<128>(j0);
            j0 += 128;
        }
    }
    if max_w >= 64 {
        while j0 + 64 <= n {
            pass.tile::<64>(j0);
            j0 += 64;
        }
    }
    if max_w >= 32 {
        while j0 + 32 <= n {
            pass.tile::<32>(j0);
            j0 += 32;
        }
    }
    while j0 + 16 <= n {
        pass.tile::<16>(j0);
        j0 += 16;
    }
    if j0 < n {
        pass.tail(j0, n - j0);
    }
}

/// Row-product tile pass over `a_row * B` for [`run_tile_ladder`].
struct RowPass<'a> {
    a_row: &'a [f32],
    b: &'a [f32],
    n: usize,
    out: &'a mut [f32],
    accumulate: bool,
}

impl TilePass for RowPass<'_> {
    fn tile<const W: usize>(&mut self, j0: usize) {
        row_product_tile::<W>(self.a_row, self.b, self.n, j0, self.out, self.accumulate);
    }

    fn tail(&mut self, j0: usize, width: usize) {
        let mut acc = [0.0f32; 16];
        if self.accumulate {
            acc[..width].copy_from_slice(&self.out[j0..j0 + width]);
        }
        for (k, &a) in self.a_row.iter().enumerate() {
            let b_seg = &self.b[k * self.n + j0..k * self.n + j0 + width];
            for (acc_c, &b_c) in acc[..width].iter_mut().zip(b_seg.iter()) {
                *acc_c += a * b_c;
            }
        }
        self.out[j0..j0 + width].copy_from_slice(&acc[..width]);
    }
}

/// Column-product tile pass over column `i` of `a` against `B` for
/// [`run_tile_ladder`].
struct ColPass<'a> {
    a: &'a [f32],
    a_cols: usize,
    i: usize,
    a_rows: usize,
    b: &'a [f32],
    n: usize,
    out: &'a mut [f32],
    accumulate: bool,
}

impl TilePass for ColPass<'_> {
    fn tile<const W: usize>(&mut self, j0: usize) {
        col_product_tile::<W>(
            self.a,
            self.a_cols,
            self.i,
            self.a_rows,
            self.b,
            self.n,
            j0,
            self.out,
            self.accumulate,
        );
    }

    fn tail(&mut self, j0: usize, width: usize) {
        let mut acc = [0.0f32; 16];
        if self.accumulate {
            acc[..width].copy_from_slice(&self.out[j0..j0 + width]);
        }
        for k in 0..self.a_rows {
            let w = self.a[k * self.a_cols + self.i];
            let b_seg = &self.b[k * self.n + j0..k * self.n + j0 + width];
            for (acc_c, &b_c) in acc[..width].iter_mut().zip(b_seg.iter()) {
                *acc_c += w * b_c;
            }
        }
        self.out[j0..j0 + width].copy_from_slice(&acc[..width]);
    }
}

/// k-outer AXPY row product: zero the output row, then stream each row of `B`
/// exactly once, `out += a[k] * B[k, :]`. Per output element this is the same
/// increasing-`k` addition chain as the tiled ladders; B traffic is perfectly
/// sequential, which favours the `rows == 1` decode mat-vec shape.
fn row_product_axpy(a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
    out_row.fill(0.0);
    for (k, &a) in a_row.iter().enumerate() {
        let b_row = &b[k * n..(k + 1) * n];
        for (o, &b_c) in out_row.iter_mut().zip(b_row.iter()) {
            *o += a * b_c;
        }
    }
}

/// k-outer AXPY column product: same streaming scheme with the strided
/// `a`-column gather hoisted to one load per `B` row.
fn col_product_axpy(
    a: &[f32],
    a_cols: usize,
    i: usize,
    a_rows: usize,
    b: &[f32],
    n: usize,
    out_row: &mut [f32],
) {
    out_row.fill(0.0);
    for k in 0..a_rows {
        let w = a[k * a_cols + i];
        let b_row = &b[k * n..k * n + n];
        for (o, &b_c) in out_row.iter_mut().zip(b_row.iter()) {
            *o += w * b_c;
        }
    }
}

/// Computes one output row of `a_row * B` with the given kernel variant,
/// fully overwriting `out_row`. All variants are bit-identical.
fn row_product_using(kernel: RowKernel, a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
    let max_w = match kernel {
        RowKernel::Tiled128 => 128,
        RowKernel::Tiled64 => 64,
        RowKernel::Tiled32 => 32,
        RowKernel::Tiled16 => 16,
        RowKernel::Axpy => {
            row_product_axpy(a_row, b, n, out_row);
            return;
        }
        RowKernel::KBlocked64 => {
            if a_row.is_empty() {
                out_row.fill(0.0);
            }
            for (blk, a_chunk) in a_row.chunks(K_BLOCK).enumerate() {
                let k0 = blk * K_BLOCK;
                let b_chunk = &b[k0 * n..(k0 + a_chunk.len()) * n];
                let mut pass = RowPass {
                    a_row: a_chunk,
                    b: b_chunk,
                    n,
                    out: &mut *out_row,
                    accumulate: blk > 0,
                };
                run_tile_ladder(&mut pass, n, 64);
            }
            return;
        }
    };
    let mut pass = RowPass {
        a_row,
        b,
        n,
        out: out_row,
        accumulate: false,
    };
    run_tile_ladder(&mut pass, n, max_w);
}

/// Computes output row `i` of `A^T * B` — `B`'s rows weighted by column `i` of
/// `a` (row-major, `a_cols` wide, `a_rows` tall) — with the given kernel
/// variant, fully overwriting `out_row`. All variants are bit-identical.
#[allow(clippy::too_many_arguments)]
fn col_product_using(
    kernel: ColKernel,
    a: &[f32],
    a_cols: usize,
    i: usize,
    a_rows: usize,
    b: &[f32],
    n: usize,
    out_row: &mut [f32],
) {
    let max_w = match kernel {
        ColKernel::Tiled64 => 64,
        ColKernel::Tiled32 => 32,
        ColKernel::Axpy => {
            col_product_axpy(a, a_cols, i, a_rows, b, n, out_row);
            return;
        }
        ColKernel::KBlocked64 => {
            if a_rows == 0 {
                out_row.fill(0.0);
            }
            let mut k0 = 0;
            while k0 < a_rows {
                let k1 = (k0 + K_BLOCK).min(a_rows);
                let mut pass = ColPass {
                    a: &a[k0 * a_cols..k1 * a_cols],
                    a_cols,
                    i,
                    a_rows: k1 - k0,
                    b: &b[k0 * n..k1 * n],
                    n,
                    out: &mut *out_row,
                    accumulate: k0 > 0,
                };
                run_tile_ladder(&mut pass, n, 64);
                k0 = k1;
            }
            return;
        }
    };
    let mut pass = ColPass {
        a,
        a_cols,
        i,
        a_rows,
        b,
        n,
        out: out_row,
        accumulate: false,
    };
    run_tile_ladder(&mut pass, n, max_w);
}

/// Reduces one 8-lane accumulator with the fixed pairwise tree shared by every
/// dot kernel, then adds the remainder contribution.
#[inline]
fn reduce8(acc: &[f32; 8], tail: f32) -> f32 {
    let q = [
        acc[0] + acc[1],
        acc[2] + acc[3],
        acc[4] + acc[5],
        acc[6] + acc[7],
    ];
    ((q[0] + q[1]) + (q[2] + q[3])) + tail
}

/// `M` dot products of `a` against `bs` in one pass over `a`.
///
/// Each output uses exactly the lane layout and reduction order of [`dot`], so
/// `dot_many(a, bs)[c] == dot(a, bs[c])` bit for bit regardless of `M` — the
/// 1/4/8-wide dot kernels are interchangeable.
#[inline]
fn dot_many<const M: usize>(a: &[f32], bs: [&[f32]; M]) -> [f32; M] {
    let mut accs = [[0.0f32; 8]; M];
    let chunks = a.len() / 8;
    for ci in 0..chunks {
        let off = ci * 8;
        let ac: &[f32; 8] = a[off..off + 8].try_into().expect("chunk width");
        for (acc, b) in accs.iter_mut().zip(bs.iter()) {
            let bc: &[f32; 8] = b[off..off + 8].try_into().expect("chunk width");
            for (x, (&a_c, &b_c)) in acc.iter_mut().zip(ac.iter().zip(bc.iter())) {
                *x += a_c * b_c;
            }
        }
    }
    let rem = chunks * 8;
    let mut out = [0.0f32; M];
    for ((o, acc), b) in out.iter_mut().zip(accs.iter()).zip(bs.iter()) {
        let tail: f32 = a[rem..]
            .iter()
            .zip(b[rem..].iter())
            .map(|(x, y)| x * y)
            .sum();
        *o = reduce8(acc, tail);
    }
    out
}

/// Computes the dot product of two equal-length slices.
///
/// Uses eight independent accumulator lanes (one AVX register) with a fixed
/// pairwise reduction, so the compiler can vectorise the loop; every dot product
/// in the stack (attention scores, `matmul_transposed`) goes through this single
/// kernel so row-1 and row-n code paths agree bit for bit.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    if let (Ok(a8), Ok(b8)) = (<&[f32; 8]>::try_from(a), <&[f32; 8]>::try_from(b)) {
        // Fixed-length fast path (the attention head_dim shape); exactly the same
        // lane products and reduction order as one iteration of the general loop.
        let acc = [
            a8[0] * b8[0],
            a8[1] * b8[1],
            a8[2] * b8[2],
            a8[3] * b8[3],
            a8[4] * b8[4],
            a8[5] * b8[5],
            a8[6] * b8[6],
            a8[7] * b8[7],
        ];
        return reduce8(&acc, 0.0);
    }
    let mut acc = [0.0f32; 8];
    let a_chunks = a.chunks_exact(8);
    let b_chunks = b.chunks_exact(8);
    let tail: f32 = a_chunks
        .remainder()
        .iter()
        .zip(b_chunks.remainder())
        .map(|(x, y)| x * y)
        .sum();
    for (ca, cb) in a_chunks.zip(b_chunks) {
        for (acc_c, (&x, &y)) in acc.iter_mut().zip(ca.iter().zip(cb.iter())) {
            *acc_c += x * y;
        }
    }
    reduce8(&acc, tail)
}

/// In-place `a += alpha * b` over slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(a: &mut [f32], b: &[f32], alpha: f32) {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        *x += alpha * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_shape() {
        let m = Mat::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(!m.is_empty());
        assert_eq!(m.get(2, 3), 0.0);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Mat::random_uniform(4, 4, 1.0, &mut rng);
        let i = Mat::eye(4);
        let out = a.matmul(&i);
        assert_eq!(out, a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Mat::random_uniform(3, 5, 1.0, &mut rng);
        let b = Mat::random_uniform(4, 5, 1.0, &mut rng);
        let direct = a.matmul_transposed(&b);
        let explicit = a.matmul(&b.transpose());
        for (x, y) in direct.as_slice().iter().zip(explicit.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transposed_matmul_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Mat::random_uniform(6, 3, 1.0, &mut rng);
        let b = Mat::random_uniform(6, 4, 1.0, &mut rng);
        let direct = a.transposed_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        for (x, y) in direct.as_slice().iter().zip(explicit.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn add_sub_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Mat::random_uniform(2, 3, 1.0, &mut rng);
        let b = Mat::random_uniform(2, 3, 1.0, &mut rng);
        let c = a.add(&b).sub(&b);
        for (x, y) in c.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn hconcat_and_vstack() {
        let a = Mat::from_rows(&[&[1.0], &[2.0]]);
        let b = Mat::from_rows(&[&[3.0], &[4.0]]);
        let h = Mat::hconcat(&[&a, &b]);
        assert_eq!(h.shape(), (2, 2));
        assert_eq!(h.row(0), &[1.0, 3.0]);
        let v = Mat::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (4, 1));
        assert_eq!(v.get(3, 0), 4.0);
    }

    #[test]
    fn slice_rows_returns_expected_block() {
        let m = Mat::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let s = m.slice_rows(1, 3);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[2.0, 2.0]);
    }

    #[test]
    fn norms_and_stats() {
        let m = Mat::from_rows(&[&[3.0, -4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
        assert!((m.l1_norm() - 7.0).abs() < 1e-6);
        assert!((m.mean() + 0.5).abs() < 1e-6);
        assert!((m.max_abs() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn clip_bounds_values() {
        let mut m = Mat::from_rows(&[&[10.0, -10.0, 0.5]]);
        m.clip(1.0);
        assert_eq!(m.row(0), &[1.0, -1.0, 0.5]);
    }

    #[test]
    fn dot_and_axpy() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert!((dot(&a, &b) - 32.0).abs() < 1e-6);
        let mut c = [1.0, 1.0, 1.0];
        axpy(&mut c, &b, 2.0);
        assert_eq!(c, [9.0, 11.0, 13.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matvec_fast_path_is_bit_identical_to_blocked_rows() {
        // The rows==1 decode path and the blocked multi-row path must agree
        // bit for bit so speculative verification reproduces vanilla decoding.
        let mut rng = StdRng::seed_from_u64(20);
        let a = Mat::random_uniform(5, 100, 1.0, &mut rng);
        let b = Mat::random_uniform(100, 150, 1.0, &mut rng);
        let full = a.matmul(&b);
        for i in 0..a.rows() {
            let single = a.slice_rows(i, i + 1).matmul(&b);
            assert_eq!(single.row(0), full.row(i), "row {i}");
        }
        let full_t = a.matmul_transposed(&a);
        for i in 0..a.rows() {
            let single = a.slice_rows(i, i + 1).matmul_transposed(&a);
            assert_eq!(single.row(0), full_t.row(i), "row {i}");
        }
    }

    #[test]
    fn into_variants_match_allocating_variants() {
        let mut rng = StdRng::seed_from_u64(21);
        let a = Mat::random_uniform(70, 130, 1.0, &mut rng);
        let b = Mat::random_uniform(130, 90, 1.0, &mut rng);
        let mut out = Mat::full(70, 90, 7.0); // stale contents must be overwritten
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));

        let c = Mat::random_uniform(80, 130, 1.0, &mut rng);
        let mut out_t = Mat::full(70, 80, 7.0);
        a.matmul_transposed_into(&c, &mut out_t);
        assert_eq!(out_t, a.matmul_transposed(&c));

        let d = Mat::random_uniform(70, 40, 1.0, &mut rng);
        let mut out_tm = Mat::full(130, 40, 7.0);
        a.transposed_matmul_into(&d, &mut out_tm);
        assert_eq!(out_tm, a.transposed_matmul(&d));
    }

    #[test]
    fn every_row_kernel_variant_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(30);
        // Shapes straddling every ladder width, the scalar tail, and K_BLOCK.
        for &(m, k, n) in &[(1, 32, 96), (5, 300, 70), (3, 7, 129), (2, 260, 33)] {
            let a = Mat::random_uniform(m, k, 1.0, &mut rng);
            let b = Mat::random_uniform(k, n, 1.0, &mut rng);
            let reference = a.matmul(&b);
            for kernel in RowKernel::all() {
                let mut out = Mat::full(m, n, 7.0);
                a.matmul_into_using(&b, &mut out, kernel);
                assert_eq!(out, reference, "{kernel:?} on {m}x{k}*{k}x{n}");
            }
        }
    }

    #[test]
    fn every_dot_kernel_variant_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(31);
        for &(m, k, n) in &[(1, 32, 96), (5, 50, 19), (4, 9, 7)] {
            let a = Mat::random_uniform(m, k, 1.0, &mut rng);
            let b = Mat::random_uniform(n, k, 1.0, &mut rng);
            let reference = a.matmul_transposed(&b);
            for kernel in DotKernel::all() {
                let mut out = Mat::full(m, n, 7.0);
                a.matmul_transposed_into_using(&b, &mut out, kernel);
                assert_eq!(out, reference, "{kernel:?} on {m}x{k}*({n}x{k})^T");
            }
        }
    }

    #[test]
    fn every_col_kernel_variant_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(32);
        for &(k, m, n) in &[(32, 6, 96), (300, 5, 70), (7, 3, 129)] {
            let a = Mat::random_uniform(k, m, 1.0, &mut rng);
            let b = Mat::random_uniform(k, n, 1.0, &mut rng);
            let reference = a.transposed_matmul(&b);
            for kernel in ColKernel::all() {
                let mut out = Mat::full(m, n, 7.0);
                a.transposed_matmul_into_using(&b, &mut out, kernel);
                assert_eq!(out, reference, "{kernel:?} on ({k}x{m})^T*{k}x{n}");
            }
        }
    }

    #[test]
    fn variant_kernels_handle_empty_shared_dimension() {
        let a = Mat::zeros(3, 0);
        let b = Mat::zeros(0, 40);
        for kernel in RowKernel::all() {
            let mut out = Mat::full(3, 40, 7.0);
            a.matmul_into_using(&b, &mut out, kernel);
            assert_eq!(out, Mat::zeros(3, 40), "{kernel:?}");
        }
        let c = Mat::zeros(0, 3);
        let d = Mat::zeros(0, 40);
        for kernel in ColKernel::all() {
            let mut out = Mat::full(3, 40, 7.0);
            c.transposed_matmul_into_using(&d, &mut out, kernel);
            assert_eq!(out, Mat::zeros(3, 40), "{kernel:?}");
        }
    }

    #[test]
    fn empty_shapes_are_supported() {
        let a = Mat::zeros(0, 5);
        let b = Mat::zeros(5, 3);
        assert_eq!(a.matmul(&b).shape(), (0, 3));
        let c = Mat::zeros(0, 0);
        assert_eq!(c.matmul(&c).shape(), (0, 0));
        assert_eq!(a.matmul_transposed(&a).shape(), (0, 0));
        assert_eq!(a.transposed_matmul(&a).shape(), (5, 5));
    }

    #[test]
    fn set_rows_reuses_capacity_and_add_into_overwrites() {
        let mut m = Mat::zeros(4, 8);
        let cap_ptr = m.as_slice().as_ptr();
        m.set_rows(2, 8);
        assert_eq!(m.shape(), (2, 8));
        assert_eq!(m.as_slice().as_ptr(), cap_ptr, "no reallocation on shrink");
        let a = Mat::full(2, 8, 1.5);
        let b = Mat::full(2, 8, 2.0);
        a.add_into(&b, &mut m);
        assert_eq!(m, Mat::full(2, 8, 3.5));
    }

    #[test]
    fn extend_rows_range_appends_expected_rows() {
        let mut m = Mat::from_rows(&[&[1.0, 2.0]]);
        let other = Mat::from_rows(&[&[3.0, 4.0], &[5.0, 6.0], &[7.0, 8.0]]);
        m.extend_rows_range(&other, 1, 3);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.row(1), &[5.0, 6.0]);
        assert_eq!(m.row(2), &[7.0, 8.0]);
    }
}
