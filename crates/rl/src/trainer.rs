//! Token-level policy optimisation (the "inference" and "training" stages of Figure 4).
//!
//! The trainer is rollout-engine agnostic: it consumes prompt groups with their
//! already-generated responses and rewards (produced by either vanilla or speculative
//! decoding — TLT's losslessness guarantee means the two are interchangeable), runs
//! the reference/policy log-probability computation, forms the GRPO loss with a KL
//! penalty toward the frozen reference model, and applies the policy-gradient update
//! to the target model's trainable tail.

use crate::advantage::{compute_advantages, RlAlgorithm};
use serde::{Deserialize, Serialize};
use tlt_model::kl::{kl_divergence, kl_grad_wrt_logits};
use tlt_model::{probs_from_logits, Adam, AdamConfig, Mat, SamplingParams, TinyLm, TokenId};

/// RL training configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RlConfig {
    /// Advantage estimator.
    pub algorithm: RlAlgorithm,
    /// KL-penalty coefficient toward the reference model.
    pub kl_coef: f32,
    /// Adam learning rate for the policy update.
    pub lr: f32,
    /// Responses longer than this are truncated for the update (bounds step cost).
    pub max_update_tokens: usize,
}

impl Default for RlConfig {
    fn default() -> Self {
        RlConfig {
            algorithm: RlAlgorithm::Grpo,
            kl_coef: 0.02,
            lr: 5e-3,
            max_update_tokens: 192,
        }
    }
}

/// One prompt group: the prompt, its sampled responses, and their rule-based rewards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RolloutGroup {
    /// Prompt tokens.
    pub prompt: Vec<TokenId>,
    /// Sampled responses (one per group member).
    pub responses: Vec<Vec<TokenId>>,
    /// Rule-based reward of each response.
    pub rewards: Vec<f32>,
}

impl RolloutGroup {
    /// Validates that responses and rewards line up.
    pub fn validate(&self) -> Result<(), String> {
        if self.prompt.is_empty() {
            return Err("empty prompt".to_string());
        }
        if self.responses.len() != self.rewards.len() {
            return Err("responses/rewards length mismatch".to_string());
        }
        if self.responses.is_empty() {
            return Err("group has no responses".to_string());
        }
        Ok(())
    }
}

/// Metrics of one RL training step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepMetrics {
    /// Mean rule-based reward across all responses.
    pub mean_reward: f64,
    /// Mean per-token KL divergence from the reference model. The tiny substrate
    /// materialises full next-token distributions during the update anyway, so this
    /// is the *exact* KL; production systems report a sampled estimate instead
    /// (see [`tlt_model::kl`] for the k1/k2/k3 estimators and their trade-offs).
    pub mean_kl: f64,
    /// Mean response length in tokens.
    pub mean_response_len: f64,
    /// Number of token positions that contributed gradients.
    pub update_tokens: usize,
    /// Gradient global norm before clipping.
    pub grad_norm: f64,
}

/// The policy trainer: owns the frozen reference model and the optimizer state.
#[derive(Debug)]
pub struct PolicyTrainer {
    config: RlConfig,
    reference: TinyLm,
    adam: Adam,
    steps: u64,
}

impl PolicyTrainer {
    /// Creates a trainer with `reference` as the frozen KL anchor (typically a clone
    /// of the target at RL step 0).
    pub fn new(reference: TinyLm, config: RlConfig) -> Self {
        PolicyTrainer {
            config,
            reference,
            adam: Adam::new(AdamConfig {
                lr: config.lr,
                ..AdamConfig::default()
            }),
            steps: 0,
        }
    }

    /// Training configuration.
    pub fn config(&self) -> RlConfig {
        self.config
    }

    /// Number of RL steps applied.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The frozen reference model.
    pub fn reference(&self) -> &TinyLm {
        &self.reference
    }

    /// Runs one RL training step over the rollout groups, updating `target` in place.
    ///
    /// # Panics
    ///
    /// Panics if any group fails validation.
    pub fn train_step(&mut self, target: &mut TinyLm, groups: &[RolloutGroup]) -> StepMetrics {
        for g in groups {
            g.validate().expect("invalid rollout group");
        }
        let rewards: Vec<Vec<f32>> = groups.iter().map(|g| g.rewards.clone()).collect();
        let advantages = compute_advantages(self.config.algorithm, &rewards);

        let mut total_reward = 0.0f64;
        let mut total_kl = 0.0f64;
        let mut total_len = 0.0f64;
        let mut num_responses = 0usize;
        let mut update_tokens = 0usize;

        let mut accumulated: Option<tlt_model::PolicyGrads> = None;

        for (group, advs) in groups.iter().zip(advantages.iter()) {
            for ((response, &reward), &advantage) in group
                .responses
                .iter()
                .zip(group.rewards.iter())
                .zip(advs.iter())
            {
                total_reward += reward as f64;
                total_len += response.len() as f64;
                num_responses += 1;
                if response.is_empty() {
                    continue;
                }

                // Full sequence (prompt + response), truncated for update cost.
                let mut tokens: Vec<TokenId> = group.prompt.clone();
                tokens.extend_from_slice(response);
                let max_len =
                    (group.prompt.len() + self.config.max_update_tokens).min(tokens.len());
                tokens.truncate(max_len.min(target.config.max_seq_len));
                if tokens.len() <= group.prompt.len() {
                    continue;
                }
                let response_positions = tokens.len() - group.prompt.len();

                // Inference stage: policy forward (trainable tail) + reference logits.
                let fwd = target.forward_for_update(&tokens[..tokens.len() - 1]);
                let (ref_out, _) = self.reference.prefill(&tokens[..tokens.len() - 1], false);

                // Training stage: policy-gradient + KL-penalty gradient on logits,
                // applied only at response positions. The full policy/reference
                // distributions needed for the KL gradient double as the source of
                // the exact per-token KL reported in the metrics.
                let mut d_logits = Mat::zeros(fwd.logits.rows(), fwd.logits.cols());
                let norm = response_positions as f32;
                let mut response_kl = 0.0f64;
                for pos in group.prompt.len() - 1..tokens.len() - 1 {
                    let next = tokens[pos + 1] as usize;
                    let probs = probs_from_logits(
                        fwd.logits.row(pos),
                        SamplingParams {
                            temperature: 1.0,
                            top_k: None,
                        },
                    );
                    let ref_probs = probs_from_logits(
                        ref_out.logits.row(pos),
                        SamplingParams {
                            temperature: 1.0,
                            top_k: None,
                        },
                    );
                    response_kl += kl_divergence(&probs, &ref_probs);
                    let kl_grad = kl_grad_wrt_logits(&probs, &ref_probs);
                    let row = d_logits.row_mut(pos);
                    for v in 0..row.len() {
                        let indicator = if v == next { 1.0 } else { 0.0 };
                        // d/dz of [-A * log pi(next)] is A * (p - onehot).
                        row[v] = (advantage * (probs[v] - indicator)
                            + self.config.kl_coef * kl_grad[v])
                            / norm;
                    }
                    update_tokens += 1;
                }
                total_kl += response_kl / response_positions as f64;

                let grads = target.backward_for_update(&fwd, &d_logits);
                match accumulated.as_mut() {
                    Some(acc) => {
                        acc.last_layer.accumulate(&grads.last_layer);
                        for (a, b) in acc.final_norm.iter_mut().zip(&grads.final_norm) {
                            *a += b;
                        }
                        acc.lm_head.add_assign(&grads.lm_head);
                    }
                    None => accumulated = Some(grads),
                }
            }
        }

        let mut grad_norm = 0.0;
        if let Some(mut grads) = accumulated {
            if num_responses > 1 {
                grads.scale(1.0 / num_responses as f32);
            }
            grad_norm = grads.global_norm() as f64;
            // Global-norm clipping at 1.0 for stability.
            if grad_norm > 1.0 {
                grads.scale(1.0 / grad_norm as f32);
            }
            self.adam.begin_step();
            let lm_head_grad = grads.lm_head.clone();
            self.adam
                .update_mat("policy.lm_head", &mut target.lm_head, &lm_head_grad);
            let final_norm_grad = grads.final_norm.clone();
            self.adam.update_slice(
                "policy.final_norm",
                &mut target.final_norm,
                &final_norm_grad,
            );
            let last_idx = target.layers.len() - 1;
            self.adam.update_decoder_layer(
                "policy.last_layer",
                &mut target.layers[last_idx],
                &grads.last_layer,
            );
        }
        self.steps += 1;

        StepMetrics {
            mean_reward: total_reward / num_responses.max(1) as f64,
            mean_kl: total_kl / num_responses.max(1) as f64,
            mean_response_len: total_len / num_responses.max(1) as f64,
            update_tokens,
            grad_norm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tlt_model::ModelConfig;
    use tlt_workload::TaskGenerator;

    /// Build rollout groups whose "good" responses are gold answers and whose "bad"
    /// responses are wrong answers — a controlled reward signal.
    fn controlled_groups(target: &TinyLm, n_groups: usize) -> Vec<RolloutGroup> {
        let mut gen = TaskGenerator::new(target.config.vocab_size);
        let mut rng = StdRng::seed_from_u64(77);
        (0..n_groups)
            .map(|_| {
                let task = gen.generate(&mut rng);
                let good = task.gold_response(2);
                let mut bad = task.gold_response(2);
                let idx = bad.len() - 2;
                bad[idx] = (task.answer() + 1) % task.vocab.modulus;
                RolloutGroup {
                    prompt: task.prompt_tokens(),
                    responses: vec![good.clone(), bad.clone(), good, bad],
                    rewards: vec![1.0, 0.0, 1.0, 0.0],
                }
            })
            .collect()
    }

    #[test]
    fn train_step_produces_finite_metrics() {
        let mut target = TinyLm::new(ModelConfig::micro(), 50);
        let reference = target.reference_copy();
        let mut trainer = PolicyTrainer::new(reference, RlConfig::default());
        let groups = controlled_groups(&target, 3);
        let metrics = trainer.train_step(&mut target, &groups);
        assert!((0.0..=1.0).contains(&metrics.mean_reward));
        assert!(metrics.mean_kl.is_finite());
        assert!(metrics.update_tokens > 0);
        assert!(metrics.grad_norm > 0.0);
        assert_eq!(trainer.steps(), 1);
    }

    #[test]
    fn training_raises_probability_of_rewarded_responses() {
        let mut target = TinyLm::new(ModelConfig::micro(), 51);
        let reference = target.reference_copy();
        let mut trainer = PolicyTrainer::new(
            reference,
            RlConfig {
                kl_coef: 0.0,
                lr: 2e-2,
                ..RlConfig::default()
            },
        );
        let groups = controlled_groups(&target, 4);
        // Log-prob of the *correct answer digit* (the token that distinguishes the
        // rewarded response from the unrewarded one) before and after training.
        let answer_logprob = |model: &TinyLm| -> f32 {
            groups
                .iter()
                .map(|g| {
                    let mut tokens = g.prompt.clone();
                    tokens.extend_from_slice(&g.responses[0]);
                    // Gold response layout: [think, think, ANSWER, digit, EOS]; the
                    // digit sits 2 positions before the end.
                    let digit_pos = tokens.len() - 2;
                    model.sequence_logprobs(&tokens)[digit_pos - 1]
                })
                .sum()
        };
        let before = answer_logprob(&target);
        for _ in 0..15 {
            trainer.train_step(&mut target, &groups);
        }
        let after = answer_logprob(&target);
        assert!(
            after > before,
            "the rewarded answer should become more likely: {before:.3} -> {after:.3}"
        );
    }

    #[test]
    fn kl_penalty_limits_drift_from_reference() {
        let make = |kl_coef: f32| {
            let mut target = TinyLm::new(ModelConfig::micro(), 52);
            let reference = target.reference_copy();
            let mut trainer = PolicyTrainer::new(
                reference,
                RlConfig {
                    kl_coef,
                    lr: 2e-2,
                    ..RlConfig::default()
                },
            );
            let groups = controlled_groups(&target, 3);
            let mut last = 0.0;
            for _ in 0..10 {
                last = trainer.train_step(&mut target, &groups).mean_kl;
            }
            last
        };
        let kl_without_penalty = make(0.0);
        let kl_with_penalty = make(0.5);
        assert!(
            kl_with_penalty < kl_without_penalty,
            "KL penalty should reduce drift: {kl_with_penalty} vs {kl_without_penalty}"
        );
    }

    #[test]
    fn all_algorithms_run_a_step() {
        for algorithm in RlAlgorithm::all() {
            let mut target = TinyLm::new(ModelConfig::micro(), 53);
            let reference = target.reference_copy();
            let mut trainer = PolicyTrainer::new(
                reference,
                RlConfig {
                    algorithm,
                    ..RlConfig::default()
                },
            );
            let groups = controlled_groups(&target, 2);
            let metrics = trainer.train_step(&mut target, &groups);
            assert!(metrics.mean_reward.is_finite(), "{}", algorithm.name());
        }
    }

    #[test]
    #[should_panic(expected = "invalid rollout group")]
    fn mismatched_rewards_panic() {
        let mut target = TinyLm::new(ModelConfig::micro(), 54);
        let reference = target.reference_copy();
        let mut trainer = PolicyTrainer::new(reference, RlConfig::default());
        let bad = RolloutGroup {
            prompt: vec![1, 2],
            responses: vec![vec![3]],
            rewards: vec![1.0, 0.0],
        };
        trainer.train_step(&mut target, &[bad]);
    }

    #[test]
    fn empty_responses_are_skipped_gracefully() {
        let mut target = TinyLm::new(ModelConfig::micro(), 55);
        let reference = target.reference_copy();
        let mut trainer = PolicyTrainer::new(reference, RlConfig::default());
        let group = RolloutGroup {
            prompt: vec![1, 2, 3],
            responses: vec![vec![], vec![4, 5, 6]],
            rewards: vec![0.0, 1.0],
        };
        let metrics = trainer.train_step(&mut target, &[group]);
        assert!(metrics.mean_reward.is_finite());
    }
}
