//! Golden-trace snapshot tests for the frontend's balancers: one pinned
//! per-replica assignment sequence per policy, over a fixed 12-request arrival
//! set on 3 replicas. A balancer refactor that silently reshuffles routing
//! breaks these exact sequences.

use tlt_gpusim::{GpuType, LlmCostModel};
use tlt_model::ModelSpec;
use tlt_serve::{simulate_serving_traced, BalancerPolicy, ServeConfig};
use tlt_workload::RequestArrival;

fn config(policy: BalancerPolicy) -> ServeConfig {
    ServeConfig::new(
        LlmCostModel::new(ModelSpec::qwen2_5_7b(), GpuType::H100.spec(), 1),
        3,
    )
    .with_balancer(policy)
}

/// A fixed arrival set: 12 requests, 150 ms apart, mixed prompt and output
/// sizes — small enough that routing decisions interleave with live decodes.
fn pinned_arrivals() -> Vec<RequestArrival> {
    (0..12u64)
        .map(|i| RequestArrival {
            id: i,
            time_ns: i * 150_000_000,
            prompt_len: 256 + (i as usize % 3) * 128,
            output_len: [64, 192, 48, 256][i as usize % 4],
            prefix_id: 0,
            prefix_len: 0,
        })
        .collect()
}

fn trace_for(policy: BalancerPolicy) -> Vec<usize> {
    let (report, trace) = simulate_serving_traced(&config(policy), &pinned_arrivals());
    assert_eq!(report.completed.len(), 12, "{}", policy.name());
    assert_eq!(trace.len(), 12, "{}", policy.name());
    for (i, (id, _)) in trace.iter().enumerate() {
        assert_eq!(*id, i as u64, "{}", policy.name());
    }
    trace.into_iter().map(|(_, replica)| replica).collect()
}

#[test]
fn round_robin_assignment_sequence_is_pinned() {
    assert_eq!(
        trace_for(BalancerPolicy::RoundRobin),
        vec![0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2]
    );
}

#[test]
fn join_shortest_queue_assignment_sequence_is_pinned() {
    assert_eq!(
        trace_for(BalancerPolicy::JoinShortestQueue),
        vec![0, 1, 2, 0, 0, 2, 1, 0, 2, 1, 1, 2]
    );
}

#[test]
fn least_outstanding_tokens_assignment_sequence_is_pinned() {
    assert_eq!(
        trace_for(BalancerPolicy::LeastOutstandingTokens),
        vec![0, 1, 2, 0, 2, 2, 1, 1, 2, 0, 2, 2]
    );
}
