//! The invariant-checking harness: what must stay true under every fault
//! schedule, and the machinery for recording violations.

use serde::Serialize;
use std::collections::BTreeSet;
use tlt_coord::{Coordinator, WorkerState};

/// Names of the system invariants the harness checks. Every scenario in the
/// pinned matrix must satisfy all of them.
pub const INVARIANTS: &[&str] = &[
    // Every arrival completes or is dropped exactly once — nothing lost to a
    // crash, nothing duplicated by a failover.
    "request-conservation",
    // No replica ever starts a step with more KV blocks charged than its
    // pool budget (post-preemption accounting; block units under paged
    // accounting, tokens under the legacy flat budget).
    "kv-budget",
    // Block conservation on every replica's KV pool: shared-prefix refcounts
    // sum to the running requests referencing them, charges never exceed
    // capacity, and after a full drain every block is free (no leaks — the
    // prefix cache holds only unreferenced, reclaimable groups).
    "kv-pool-conservation",
    // The coordinator's training-session bookkeeping stays structurally
    // consistent after every event, and a final preemption always succeeds
    // (no deadlock, no double-promotion, no resurrection of failed workers).
    "coordinator-consistency",
    // Greedy speculative output equals vanilla output, including across a
    // mid-generation drafter swap, with the post-fault serving drafter.
    "losslessness",
    // Corrupt and stale drafter checkpoints are always rejected, and the
    // last-good rollback restores the serving drafter bit-exactly.
    "checkpoint-guard",
    // The whole scenario — faults included — is a pure function of its seed:
    // two runs produce bit-identical reports.
    "seed-determinism",
    // The deployment drains: no request is left queued, running or orphaned
    // when the schedule ends.
    "drained",
    // Not a system property: a synthetic violation injected by
    // `Scenario::forced_violation()` to self-test the alerting path — the
    // flight-recorder postmortem must fire whenever any invariant breaks.
    "postmortem-probe",
];

/// One recorded invariant violation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct InvariantViolation {
    /// Which invariant broke (one of [`INVARIANTS`]).
    pub invariant: &'static str,
    /// Human-readable description of the observed breakage.
    pub detail: String,
}

/// The verdict of the invariant harness for one scenario.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct InvariantReport {
    /// All recorded violations (empty means the scenario passed).
    pub violations: Vec<InvariantViolation>,
}

impl InvariantReport {
    /// Creates an empty (passing) report.
    pub fn new() -> Self {
        InvariantReport::default()
    }

    /// Records a violation.
    pub fn violate(&mut self, invariant: &'static str, detail: String) {
        debug_assert!(INVARIANTS.contains(&invariant), "unknown invariant");
        self.violations
            .push(InvariantViolation { invariant, detail });
    }

    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// `PASS` or `FAIL(n)`.
    pub fn verdict(&self) -> String {
        if self.passed() {
            "PASS".to_string()
        } else {
            format!("FAIL({})", self.violations.len())
        }
    }
}

/// Checks request conservation: every id in `arrival_ids` appears exactly once
/// across `completed_ids` and `dropped_ids`, with no strays.
pub fn check_conservation(
    report: &mut InvariantReport,
    arrival_ids: &[u64],
    completed_ids: &[u64],
    dropped_ids: &[u64],
) {
    let arrivals: BTreeSet<u64> = arrival_ids.iter().copied().collect();
    if arrivals.len() != arrival_ids.len() {
        report.violate("request-conservation", "duplicate arrival ids".to_string());
    }
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    for (&id, what) in completed_ids
        .iter()
        .map(|id| (id, "completed"))
        .chain(dropped_ids.iter().map(|id| (id, "dropped")))
    {
        if !arrivals.contains(&id) {
            report.violate(
                "request-conservation",
                format!("{what} id {id} never arrived"),
            );
        }
        if !seen.insert(id) {
            report.violate(
                "request-conservation",
                format!("request {id} finished more than once ({what})"),
            );
        }
    }
    for &id in arrivals.iter() {
        if !seen.contains(&id) {
            report.violate(
                "request-conservation",
                format!("request {id} was lost (neither completed nor dropped)"),
            );
        }
    }
}

/// Checks the coordinator's session structure: unique members, leader is a
/// member, members are TRAINING, every TRAINING worker is a member.
pub fn check_coordinator(report: &mut InvariantReport, coord: &Coordinator, when: &str) {
    if let Some(session) = coord.training_session() {
        let set: BTreeSet<usize> = session.members.iter().copied().collect();
        if set.len() != session.members.len() {
            report.violate(
                "coordinator-consistency",
                format!("{when}: duplicate session member in {:?}", session.members),
            );
        }
        if !session.members.contains(&session.leader) {
            report.violate(
                "coordinator-consistency",
                format!(
                    "{when}: leader {} outside members {:?}",
                    session.leader, session.members
                ),
            );
        }
        for &m in &session.members {
            if coord.worker_state(m) != WorkerState::Training {
                report.violate(
                    "coordinator-consistency",
                    format!("{when}: member {m} is {}", coord.worker_state(m)),
                );
            }
        }
    }
    for w in 0..coord.num_workers() {
        if coord.worker_state(w) == WorkerState::Training
            && !coord
                .training_session()
                .is_some_and(|s| s.members.contains(&w))
        {
            report.violate(
                "coordinator-consistency",
                format!("{when}: TRAINING worker {w} outside the session"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_catches_loss_duplication_and_strays() {
        let mut ok = InvariantReport::new();
        check_conservation(&mut ok, &[0, 1, 2], &[1, 0], &[2]);
        assert!(ok.passed());
        assert_eq!(ok.verdict(), "PASS");

        let mut lost = InvariantReport::new();
        check_conservation(&mut lost, &[0, 1, 2], &[0], &[2]);
        assert!(!lost.passed());
        assert!(lost.violations[0].detail.contains("lost"));

        let mut duplicated = InvariantReport::new();
        check_conservation(&mut duplicated, &[0, 1], &[0, 1, 1], &[]);
        assert!(duplicated
            .violations
            .iter()
            .any(|v| v.detail.contains("more than once")));

        let mut stray = InvariantReport::new();
        check_conservation(&mut stray, &[0], &[0, 9], &[]);
        assert!(stray
            .violations
            .iter()
            .any(|v| v.detail.contains("never arrived")));
        assert_eq!(stray.verdict(), "FAIL(1)");
    }

    #[test]
    fn coordinator_checker_accepts_consistent_sessions() {
        use tlt_coord::{CoordinatorConfig, WorkerEvent};
        let mut coord = Coordinator::new(3, CoordinatorConfig::default());
        coord.handle_event(
            WorkerEvent::StateChanged {
                worker: 1,
                state: WorkerState::Idle,
                at: 0.0,
            },
            0.0,
        );
        let mut report = InvariantReport::new();
        check_coordinator(&mut report, &coord, "test");
        assert!(report.passed());
    }
}
