//! Bucketed-Epsilon-Greedy (BEG) multi-armed-bandit strategy selector (Algorithm 1).
//!
//! Each "arm" is an [`SdStrategy`] (draft depth, top-K, tokens-to-verify); the reward
//! of pulling an arm is the generation efficiency it achieved,
//! `accepted_tokens * batch_size / elapsed_time`. Strategies are grouped by their
//! `tokens_to_verify` and mapped onto batch-size buckets, so only strategies suitable
//! for the current batch size compete; within a bucket the selector is epsilon-greedy
//! over the *median* reward of a sliding window, which keeps it robust to the
//! non-stationary dynamics of RL training.

use crate::spec::SdStrategy;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of the BEG-MAB selector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BegMabConfig {
    /// Exploration probability.
    pub epsilon: f64,
    /// Sliding-window size for reward/accept-length history.
    pub window: usize,
}

impl Default for BegMabConfig {
    fn default() -> Self {
        BegMabConfig {
            epsilon: 0.1,
            window: 16,
        }
    }
}

/// Observation recorded after executing one speculative generation step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepObservation {
    /// Wall-clock (or simulated) duration of the step in seconds.
    pub elapsed_s: f64,
    /// Sum of accepted tokens across the batch (excluding bonus tokens).
    pub accepted_tokens: f64,
    /// Number of sequences in the batch.
    pub batch_size: usize,
}

#[derive(Debug, Clone, Default)]
struct ArmHistory {
    rewards: VecDeque<f64>,
    accept_lens: VecDeque<f64>,
}

/// The BEG-MAB selector.
#[derive(Debug, Clone)]
pub struct BegMabSelector {
    config: BegMabConfig,
    /// Strategy groups ordered by descending `tokens_to_verify`; group `i` serves
    /// batch sizes in `[thresholds[i], thresholds[i+1])`.
    groups: Vec<Vec<SdStrategy>>,
    /// Ascending batch-size thresholds, one per group (`t_1 = 1`).
    thresholds: Vec<usize>,
    histories: Vec<ArmHistory>,
    all_strategies: Vec<SdStrategy>,
    selections: u64,
    explorations: u64,
}

impl BegMabSelector {
    /// Builds a selector from a strategy set and batch thresholds.
    ///
    /// Strategies are grouped by `tokens_to_verify` (descending) and the `i`-th group
    /// is matched to batch sizes of at least `thresholds[i]` and below
    /// `thresholds[i+1]`.
    ///
    /// # Panics
    ///
    /// Panics if strategies or thresholds are empty, or counts do not line up.
    pub fn new(strategies: &[SdStrategy], thresholds: &[usize], config: BegMabConfig) -> Self {
        assert!(!strategies.is_empty(), "need at least one strategy");
        assert!(!thresholds.is_empty(), "need at least one threshold");
        // Group by tokens_to_verify, descending.
        let mut verify_values: Vec<usize> = strategies.iter().map(|s| s.tokens_to_verify).collect();
        verify_values.sort_unstable_by(|a, b| b.cmp(a));
        verify_values.dedup();
        assert!(
            verify_values.len() <= thresholds.len(),
            "need a batch threshold per tokens_to_verify group"
        );
        let groups: Vec<Vec<SdStrategy>> = verify_values
            .iter()
            .map(|&v| {
                strategies
                    .iter()
                    .copied()
                    .filter(|s| s.tokens_to_verify == v)
                    .collect()
            })
            .collect();
        let all_strategies: Vec<SdStrategy> = strategies.to_vec();
        let histories = vec![ArmHistory::default(); all_strategies.len()];
        BegMabSelector {
            config,
            groups,
            thresholds: thresholds[..verify_values.len()].to_vec(),
            histories,
            all_strategies,
            selections: 0,
            explorations: 0,
        }
    }

    /// Builds a selector with the default strategy set and thresholds `1/8/24/48`.
    pub fn with_default_strategies(config: BegMabConfig) -> Self {
        BegMabSelector::new(&SdStrategy::default_set(), &[1, 8, 24, 48], config)
    }

    fn arm_index(&self, strategy: &SdStrategy) -> Option<usize> {
        self.all_strategies.iter().position(|s| s == strategy)
    }

    fn group_for_batch(&self, batch_size: usize) -> usize {
        // The last group whose threshold is <= batch_size; group 0 has the deepest
        // verification and the smallest threshold.
        let mut chosen = 0;
        for (i, &t) in self.thresholds.iter().enumerate() {
            if batch_size >= t {
                chosen = i;
            }
        }
        chosen
    }

    /// Candidate strategies for a batch size.
    pub fn candidates(&self, batch_size: usize) -> &[SdStrategy] {
        &self.groups[self.group_for_batch(batch_size)]
    }

    /// Records the outcome of running `strategy` on a batch.
    pub fn record(&mut self, strategy: &SdStrategy, obs: StepObservation) {
        let Some(idx) = self.arm_index(strategy) else {
            return;
        };
        let accept_len = obs.accepted_tokens / obs.batch_size.max(1) as f64 + 1.0;
        let reward = if obs.elapsed_s > 0.0 {
            accept_len * obs.batch_size as f64 / obs.elapsed_s
        } else {
            0.0
        };
        let history = &mut self.histories[idx];
        history.rewards.push_back(reward);
        history.accept_lens.push_back(accept_len);
        while history.rewards.len() > self.config.window {
            history.rewards.pop_front();
        }
        while history.accept_lens.len() > self.config.window {
            history.accept_lens.pop_front();
        }
    }

    fn median_reward(&self, idx: usize) -> Option<f64> {
        let h = &self.histories[idx];
        if h.rewards.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = h.rewards.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Some(sorted[sorted.len() / 2])
    }

    /// Selects a strategy for the given batch size (Algorithm 1, SelectStrategy).
    pub fn select<R: Rng>(&mut self, batch_size: usize, rng: &mut R) -> SdStrategy {
        self.selections += 1;
        let group = self.group_for_batch(batch_size);
        let candidates = &self.groups[group];
        if candidates.len() == 1 {
            return candidates[0];
        }
        let explore = rng.gen::<f64>() < self.config.epsilon;
        if explore {
            self.explorations += 1;
            return candidates[rng.gen_range(0..candidates.len())];
        }
        // Exploit: maximise median reward; unexplored arms are tried first.
        let mut best: Option<(SdStrategy, f64)> = None;
        for s in candidates {
            let idx = self.arm_index(s).expect("candidate is a known arm");
            match self.median_reward(idx) {
                None => return *s, // untried arm: force exploration of it
                Some(r) => {
                    if best.is_none_or(|(_, br)| r > br) {
                        best = Some((*s, r));
                    }
                }
            }
        }
        best.expect("non-empty candidate set").0
    }

    /// Mean accept length observed for a strategy over its sliding window.
    pub fn mean_accept_length(&self, strategy: &SdStrategy) -> Option<f64> {
        let idx = self.arm_index(strategy)?;
        let h = &self.histories[idx];
        if h.accept_lens.is_empty() {
            None
        } else {
            Some(h.accept_lens.iter().sum::<f64>() / h.accept_lens.len() as f64)
        }
    }

    /// Number of selections and explorations performed.
    pub fn stats(&self) -> (u64, u64) {
        (self.selections, self.explorations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn strategies() -> Vec<SdStrategy> {
        vec![
            SdStrategy {
                draft_depth: 10,
                top_k: 8,
                tokens_to_verify: 64,
            },
            SdStrategy {
                draft_depth: 10,
                top_k: 4,
                tokens_to_verify: 64,
            },
            SdStrategy {
                draft_depth: 8,
                top_k: 8,
                tokens_to_verify: 32,
            },
            SdStrategy {
                draft_depth: 4,
                top_k: 8,
                tokens_to_verify: 16,
            },
        ]
    }

    #[test]
    fn batch_size_maps_to_verify_groups() {
        let selector = BegMabSelector::new(&strategies(), &[1, 8, 24], BegMabConfig::default());
        // Small batches -> deepest verification group (64 tokens).
        assert!(selector
            .candidates(1)
            .iter()
            .all(|s| s.tokens_to_verify == 64));
        assert!(selector
            .candidates(10)
            .iter()
            .all(|s| s.tokens_to_verify == 32));
        assert!(selector
            .candidates(100)
            .iter()
            .all(|s| s.tokens_to_verify == 16));
    }

    #[test]
    fn single_candidate_groups_are_deterministic() {
        let mut selector = BegMabSelector::new(&strategies(), &[1, 8, 24], BegMabConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            let s = selector.select(30, &mut rng);
            assert_eq!(s.tokens_to_verify, 16);
        }
    }

    #[test]
    fn exploitation_prefers_higher_reward_arm() {
        let mut selector = BegMabSelector::new(
            &strategies(),
            &[1, 8, 24],
            BegMabConfig {
                epsilon: 0.0,
                window: 8,
            },
        );
        let good = strategies()[0];
        let bad = strategies()[1];
        for _ in 0..8 {
            selector.record(
                &good,
                StepObservation {
                    elapsed_s: 0.01,
                    accepted_tokens: 6.0,
                    batch_size: 1,
                },
            );
            selector.record(
                &bad,
                StepObservation {
                    elapsed_s: 0.01,
                    accepted_tokens: 2.0,
                    batch_size: 1,
                },
            );
        }
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(selector.select(1, &mut rng), good);
        }
        assert!(
            selector.mean_accept_length(&good).unwrap()
                > selector.mean_accept_length(&bad).unwrap()
        );
    }

    #[test]
    fn unexplored_arms_get_tried_before_exploitation() {
        let mut selector = BegMabSelector::new(
            &strategies(),
            &[1, 8, 24],
            BegMabConfig {
                epsilon: 0.0,
                window: 8,
            },
        );
        let good = strategies()[0];
        for _ in 0..4 {
            selector.record(
                &good,
                StepObservation {
                    elapsed_s: 0.01,
                    accepted_tokens: 6.0,
                    batch_size: 1,
                },
            );
        }
        let mut rng = StdRng::seed_from_u64(2);
        // The other bs=1 arm has never been tried; the selector must pick it at least
        // once before settling.
        let first = selector.select(1, &mut rng);
        assert_eq!(first, strategies()[1]);
    }

    #[test]
    fn exploration_rate_roughly_matches_epsilon() {
        let mut selector = BegMabSelector::new(
            &strategies(),
            &[1, 8, 24],
            BegMabConfig {
                epsilon: 0.3,
                window: 8,
            },
        );
        // Seed both arms so exploitation is possible.
        for s in &strategies()[..2] {
            selector.record(
                s,
                StepObservation {
                    elapsed_s: 0.01,
                    accepted_tokens: 4.0,
                    batch_size: 1,
                },
            );
        }
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            selector.select(1, &mut rng);
        }
        let (selections, explorations) = selector.stats();
        let rate = explorations as f64 / selections as f64;
        assert!((0.2..0.4).contains(&rate), "exploration rate {rate}");
    }

    #[test]
    fn sliding_window_adapts_to_nonstationary_rewards() {
        // An arm that was good early but degrades (e.g. drafter gone stale) should be
        // dethroned once the window rolls over.
        let mut selector = BegMabSelector::new(
            &strategies(),
            &[1, 8, 24],
            BegMabConfig {
                epsilon: 0.0,
                window: 4,
            },
        );
        let a = strategies()[0];
        let b = strategies()[1];
        for _ in 0..4 {
            selector.record(
                &a,
                StepObservation {
                    elapsed_s: 0.01,
                    accepted_tokens: 8.0,
                    batch_size: 1,
                },
            );
            selector.record(
                &b,
                StepObservation {
                    elapsed_s: 0.01,
                    accepted_tokens: 4.0,
                    batch_size: 1,
                },
            );
        }
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(selector.select(1, &mut rng), a);
        // Arm A degrades badly; after `window` new observations it should lose.
        for _ in 0..4 {
            selector.record(
                &a,
                StepObservation {
                    elapsed_s: 0.05,
                    accepted_tokens: 1.0,
                    batch_size: 1,
                },
            );
        }
        assert_eq!(selector.select(1, &mut rng), b);
    }

    #[test]
    fn default_strategy_selector_builds() {
        let selector = BegMabSelector::with_default_strategies(BegMabConfig::default());
        assert!(!selector.candidates(1).is_empty());
        assert!(!selector.candidates(64).is_empty());
    }
}
